//! Network cost report: per-layer FLOPs/bytes/time breakdown for every
//! reference architecture, showing why convolution dominates ResNet18's
//! speedup behaviour (§III of the paper).
//!
//! Run with: `cargo run --release --example network_report [model]`
//! where `model` is one of `resnet18` (default), `resnet34`, `vgg16`,
//! `alexnet`, `mobilenet`.

use sgprs_suite::dnn::{models, report, CostModel};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "resnet18".into());
    let net = match which.as_str() {
        "resnet18" => models::resnet18(1, 224),
        "resnet34" => models::resnet34(1, 224),
        "vgg16" => models::vgg16(1, 224),
        "alexnet" => models::alexnet(1, 224),
        "mobilenet" => models::mobilenet(1, 224),
        other => {
            eprintln!("unknown model `{other}`; use resnet18|resnet34|vgg16|alexnet|mobilenet");
            std::process::exit(1);
        }
    };
    print!("{}", report::render(&net, &CostModel::calibrated()));
}
