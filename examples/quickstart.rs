//! Quickstart: schedule a handful of 30-fps ResNet18 cameras with SGPRS.
//!
//! Run with: `cargo run --release --example quickstart`

use sgprs_suite::core::{offline, ContextPoolSpec, SgprsConfig, SgprsScheduler};
use sgprs_suite::dnn::{models, CostModel};
use sgprs_suite::rt::{SimDuration, SimTime};

fn main() {
    // 1. The device partitioning: two CUDA contexts, 1.5x over-subscribed
    //    (each context gets 51 of the RTX 2080 Ti's 68 SMs).
    let pool = ContextPoolSpec::new(2, 1.5);
    println!("context pool: {:?} SMs", pool.sm_allocations());

    // 2. The offline phase: split ResNet18 into the paper's six stages,
    //    profile per-stage WCETs, assign virtual deadlines and the
    //    two-level priorities.
    let net = models::resnet18(1, 224);
    let task = offline::compile_network_task(
        "camera",
        &net,
        &CostModel::calibrated(),
        6,
        SimDuration::from_micros(33_333), // 30 fps, implicit deadline
        &pool,
    )
    .expect("resnet18 splits into six stages");
    println!("task WCET: {} over {} stages", task.spec.total_stage_wcet(), task.stage_count());
    for (j, s) in task.spec.stages.iter().enumerate() {
        println!(
            "  stage {j}: wcet={} virtual-deadline={} priority={}",
            s.wcet, s.virtual_deadline, s.priority
        );
    }

    // 3. The online phase: eight identical cameras for two simulated
    //    seconds.
    let tasks = vec![task; 8];
    let mut scheduler = SgprsScheduler::new(SgprsConfig::new(pool), tasks);
    let metrics = scheduler.run(SimTime::ZERO + SimDuration::from_secs(2));

    println!();
    println!("total FPS:          {:.1}", metrics.total_fps);
    println!("deadline miss rate: {:.2}%", metrics.dmr * 100.0);
    println!("median response:    {}", metrics.response_p50);
    println!("p95 response:       {}", metrics.response_p95);
    assert!(metrics.is_miss_free(), "8 cameras fit comfortably at np=2, os=1.5");
    println!("all deadlines met");
}
