//! Multi-tenant inference: a heterogeneous model zoo (ResNet18, MobileNet,
//! AlexNet) sharing one GPU, comparing SGPRS against the naive spatial
//! partitioner — the paper's motivating deployment, §I.
//!
//! Run with: `cargo run --release --example multi_tenant_inference`

use sgprs_suite::core::{NaiveConfig, NaiveScheduler, SgprsConfig, SgprsScheduler};
use sgprs_suite::core::{ContextPoolSpec, RunMetrics};
use sgprs_suite::rt::{SimDuration, SimTime};
use sgprs_suite::workload::generator;

fn print_metrics(label: &str, m: &RunMetrics) {
    println!(
        "{label:<8} total FPS = {:>6.1}   DMR = {:>5.1}%   p95 response = {}",
        m.total_fps,
        m.dmr * 100.0,
        m.response_p95
    );
    for t in &m.per_task {
        println!(
            "  {:<14} {:>5.1} fps  ({} completed, {} missed)",
            t.name, t.fps, t.completed, t.missed
        );
    }
}

fn main() {
    let pool = ContextPoolSpec::new(3, 1.5);
    // Twelve tenants cycling through three architectures at 30 fps, each
    // split into four stages.
    let tasks = generator::mixed_model_tasks(12, 30.0, 4, &pool);
    let end = SimTime::ZERO + SimDuration::from_secs(3);

    let mut sgprs = SgprsScheduler::new(SgprsConfig::new(pool.clone()), tasks.clone());
    let sgprs_metrics = sgprs.run(end);
    print_metrics("SGPRS", &sgprs_metrics);

    println!();
    let mut naive = NaiveScheduler::new(NaiveConfig::new(3), tasks);
    let naive_metrics = naive.run(end);
    print_metrics("naive", &naive_metrics);

    println!();
    println!(
        "SGPRS misses {} deadlines, the naive spatial partitioner misses {}",
        sgprs_metrics.late + sgprs_metrics.skipped + sgprs_metrics.dropped,
        naive_metrics.late + naive_metrics.skipped + naive_metrics.dropped,
    );
}
