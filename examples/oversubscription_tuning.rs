//! Over-subscription tuning: sweep the `os` factor to find the sweet spot
//! for a given context count — reproducing the paper's §V observation
//! that "the highest over-subscription will not [always] lead to the best
//! performance".
//!
//! Run with: `cargo run --release --example oversubscription_tuning`

use sgprs_suite::workload::{SchedulerKind, ScenarioSpec};

fn main() {
    let n_tasks = 26; // just past the paper's Scenario-2 pivot point
    println!("np=3 contexts, {n_tasks} ResNet18 tasks at 30 fps, 5-second runs");
    println!("{:>5}  {:>10}  {:>8}", "os", "total FPS", "DMR");
    let mut best = (0.0f64, 0.0f64);
    for os in [1.0, 1.25, 1.5, 1.75, 2.0] {
        let spec = ScenarioSpec::new(
            3,
            SchedulerKind::Sgprs {
                oversubscription: os,
            },
            5,
        );
        let m = spec.run(n_tasks);
        println!("{os:>5.2}  {:>10.1}  {:>7.1}%", m.total_fps, m.dmr * 100.0);
        if m.total_fps > best.1 {
            best = (os, m.total_fps);
        }
    }
    println!();
    println!(
        "sweet spot: os = {:.2} ({:.0} fps) — more over-subscription is not always better",
        best.0, best.1
    );
}
