//! Timeline tracing: run a short SGPRS schedule with device tracing on and
//! export a Chrome-trace JSON (open it at `chrome://tracing` or in
//! Perfetto) showing every stage kernel on its context/stream lane.
//!
//! Run with: `cargo run --release --example timeline_trace`

use sgprs_suite::core::{offline, ContextPoolSpec, SgprsConfig, SgprsScheduler};
use sgprs_suite::dnn::{models, CostModel};
use sgprs_suite::rt::{SimDuration, SimTime};

fn main() {
    let pool = ContextPoolSpec::new(2, 1.5);
    let net = models::resnet18(1, 224);
    let task = offline::compile_network_task(
        "cam",
        &net,
        &CostModel::calibrated(),
        6,
        SimDuration::from_micros(33_333),
        &pool,
    )
    .expect("six stages");

    let mut cfg = SgprsConfig::new(pool);
    cfg.tracing = true;
    let mut scheduler = SgprsScheduler::new(cfg, vec![task; 6]);
    let metrics = scheduler.run(SimTime::ZERO + SimDuration::from_millis(700));

    let trace = scheduler
        .engine()
        .trace()
        .expect("tracing was enabled in the config");
    println!(
        "captured {} kernel spans over {:.0} ms of simulated time ({:.1} fps, {:.1}% DMR)",
        trace.len(),
        700.0,
        metrics.total_fps,
        metrics.dmr * 100.0
    );

    let json = trace.to_chrome_trace_json();
    let path = std::env::temp_dir().join("sgprs_trace.json");
    std::fs::write(&path, &json).expect("write trace file");
    println!("chrome trace written to {}", path.display());
    println!("open chrome://tracing (or https://ui.perfetto.dev) and load it");
}
