//! Schedulability check: predict — without simulating — how many 30-fps
//! ResNet18 tasks a pool configuration can sustain, then verify the
//! prediction with a short simulation.
//!
//! Run with: `cargo run --release --example schedulability_check`

use sgprs_suite::core::{analysis, offline, ContextPoolSpec, SgprsConfig, SgprsScheduler};
use sgprs_suite::dnn::{models, CostModel};
use sgprs_suite::rt::{SimDuration, SimTime};

fn main() {
    println!(
        "{:>4} {:>5} {:>14} {:>12} {:>16}",
        "np", "os", "capacity(fps)", "fluid bound", "bound holds?"
    );
    for (np, os) in [(2usize, 1.0f64), (2, 1.5), (2, 2.0), (3, 1.0), (3, 1.5), (3, 2.0)] {
        let pool = ContextPoolSpec::new(np, os);
        let task = offline::compile_network_task(
            "t",
            &models::resnet18(1, 224),
            &CostModel::calibrated(),
            6,
            SimDuration::from_micros(33_333),
            &pool,
        )
        .expect("six stages");
        let est = analysis::estimate_capacity(&task, &pool, 30.0, 4.0);

        // The fluid estimate ignores queueing and jitter, so it is an
        // *upper bound* on the real pivot: above it the set must miss
        // deadlines, and a 15% margin below it should be safe.
        let above_misses = !run(&pool, &task, est.pivot_tasks + 2);
        let margin_clean = run(&pool, &task, ((est.pivot_tasks as f64) * 0.85) as usize);
        let verdict = match (above_misses, margin_clean) {
            (true, true) => "yes",
            (true, false) => "margin tight",
            _ => "VIOLATED",
        };
        println!(
            "{np:>4} {os:>5.1} {:>14.0} {:>12} {verdict:>16}",
            est.max_fps, est.pivot_tasks
        );
    }
    println!();
    println!("fluid bound = upper bound on the pivot point: loads above it must miss,");
    println!("and 85% of it is expected to be schedulable");
}

fn run(pool: &ContextPoolSpec, task: &sgprs_suite::core::CompiledTask, n: usize) -> bool {
    let mut s = SgprsScheduler::new(SgprsConfig::new(pool.clone()), vec![task.clone(); n]);
    let m = s.run(SimTime::ZERO + SimDuration::from_secs(2));
    m.is_miss_free()
}
