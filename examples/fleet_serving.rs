//! Fleet serving: a heterogeneous four-GPU fleet absorbing tenant churn
//! behind admission control, printing fleet-level JSON metrics.
//!
//! This is the deployment §I of the paper motivates — many tenants,
//! shifting populations — scaled past a single device: each node runs its
//! own SGPRS scheduler and the dispatcher places, queues, and accounts
//! tenants across the fleet.
//!
//! Run with: `cargo run --release --example fleet_serving`

use sgprs_suite::workload::FleetScenario;

fn main() {
    let scenario = FleetScenario::heterogeneous_churn(6);
    eprintln!("running `{}` for {} ...", scenario.label, scenario.sim);
    let metrics = scenario.run();
    println!("{}", metrics.to_json());
    eprintln!(
        "total FPS {:.1}, DMR {:.1}%, rejection rate {:.1}% ({} of {} arrivals)",
        metrics.total_fps,
        metrics.dmr * 100.0,
        metrics.rejection_rate * 100.0,
        metrics.rejected,
        metrics.arrivals
    );
}
