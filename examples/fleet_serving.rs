//! Fleet serving: a heterogeneous four-GPU fleet absorbing tenant churn
//! behind admission control, printing fleet-level JSON metrics — then an
//! overload burst showing deadline-aware queueing with fps re-pricing
//! turning rejections into degraded-rate admissions (with the telemetry
//! layer armed: windowed time-series, queue-wait/latency quantile
//! sketches, and a decision trace), the event-vs-epoch contrast, and a
//! 512-node metro-scale run routed by power-of-two-choices.
//!
//! This is the deployment §I of the paper motivates — many tenants,
//! shifting populations — scaled past a single device: each node runs its
//! own SGPRS scheduler and the dispatcher places, queues, re-prices, and
//! accounts tenants across the fleet.
//!
//! Run with: `cargo run --release --example fleet_serving`

use sgprs_suite::cluster::{Fleet, FleetConfig, QueuePolicy, TelemetryConfig};
use sgprs_suite::rt::SimDuration;
use sgprs_suite::workload::FleetScenario;

fn main() {
    let scenario = FleetScenario::heterogeneous_churn(6);
    eprintln!("running `{}` for {} ...", scenario.label, scenario.sim);
    let metrics = scenario.run();
    println!("{}", metrics.to_json());
    eprintln!(
        "total FPS {:.1}, DMR {:.1}%, rejection rate {:.1}% ({} of {} arrivals)",
        metrics.total_fps,
        metrics.dmr * 100.0,
        metrics.rejection_rate * 100.0,
        metrics.rejected,
        metrics.arrivals
    );

    // The re-pricing contrast: the same overload-burst trace with and
    // without the degraded-fps ladder.
    let fifo = FleetScenario::overload_burst(6);
    let smart = FleetScenario::overload_burst(6)
        .with_queue(QueuePolicy::EarliestDeadline, true)
        .with_telemetry(SimDuration::from_millis(250));
    eprintln!("running `{}` vs `{}` ...", fifo.label, smart.label);
    let fifo_m = fifo.run();
    let smart_m = smart.run();
    println!("{}", smart_m.to_json());
    eprintln!(
        "fifo-reject: rejection {:.1}%, DMR {:.2}% | deadline+repricing: rejection {:.1}%, \
         DMR {:.2}%, {} degraded admissions, {} upgrades, mean wait {:.2}s",
        fifo_m.rejection_rate * 100.0,
        fifo_m.dmr * 100.0,
        smart_m.rejection_rate * 100.0,
        smart_m.dmr * 100.0,
        smart_m.degraded,
        smart_m.upgrades,
        smart_m.queue_wait_mean_secs
    );
    assert!(
        smart_m.rejection_rate <= fifo_m.rejection_rate,
        "re-pricing must never reject more than FIFO-reject"
    );
    // The smart run carried telemetry (its JSON above is schema v3):
    // tail quantiles from the merged sketches plus the hot-path profile.
    let report = smart_m.telemetry.as_ref().expect("telemetry was enabled");
    eprintln!(
        "telemetry: queue wait p50/p99 {:.1}/{:.1} ms, job latency p99 {:.1} ms, peak queue \
         depth {}, {} plans costing {} placement probes, {} drain scans over {} windows",
        report.queue_wait.p50_ms,
        report.queue_wait.p99_ms,
        report.job_latency.p99_ms,
        report.peak_queue_depth(),
        report.profile.plans,
        report.profile.shard_probes,
        report.profile.drain_scans,
        report.windows.len()
    );

    // The decision trace: replay the same overload trace with the ring
    // buffer armed and show the last few dispatch decisions verbatim.
    let mut traced_fleet = Fleet::new(
        FleetConfig::new(smart.nodes.clone())
            .with_seed(smart.seed)
            .with_queue_policy(QueuePolicy::EarliestDeadline)
            .with_repricing()
            .with_telemetry(
                TelemetryConfig::windowed(SimDuration::from_millis(250))
                    .with_trace(6)
                    // Profiling feeds the plan-latency histogram below.
                    .with_profiling(),
            ),
    );
    let traced_m = traced_fleet.run(smart.trace(), smart.sim);
    let traced = traced_m.telemetry.as_ref().expect("telemetry was enabled");
    eprintln!(
        "decision trace (last {} of {} events, {} dropped from the ring):",
        traced.trace.len(),
        traced.profile.trace_recorded,
        traced.profile.trace_dropped
    );
    for line in &traced.trace {
        eprintln!("  {line}");
    }
    let hist = traced_fleet.plan_latency_histogram();
    let planned: u64 = hist.iter().sum();
    let modal_bin = hist
        .iter()
        .enumerate()
        .max_by_key(|&(_, n)| n)
        .map_or(0, |(i, _)| i);
    eprintln!(
        "plan wall-clock: {planned} plans timed, modal bucket < {} ns (log2 histogram)",
        1u64 << (modal_bin + 1)
    );

    // The event-driven contrast: the same hot-naive-node scenario on the
    // epoch grid and on the discrete-event engine — exact boundaries,
    // zero truncation, and migrations that pay a real state-transfer
    // stall while re-pricing switches stay free.
    let epoch = FleetScenario::event_vs_epoch(6);
    let event = FleetScenario::event_vs_epoch(6).with_event_driven();
    eprintln!("running `{}` vs `{}` ...", epoch.label, event.label);
    let epoch_m = epoch.run();
    let event_m = event.run();
    eprintln!(
        "epoch grid: DMR {:.2}%, {} migrations (free), {} jobs truncated | event-driven: \
         DMR {:.2}%, {} migrations paying {:.2}s stall, {} truncated",
        epoch_m.dmr * 100.0,
        epoch_m.migrations,
        epoch_m.truncated_jobs,
        event_m.dmr * 100.0,
        event_m.migrations,
        event_m.migration_stall_secs,
        event_m.truncated_jobs
    );
    assert_eq!(
        event_m.truncated_jobs, 0,
        "the event path must never truncate a job"
    );
    assert!(
        epoch_m.truncated_jobs > 0,
        "the epoch grid shows the truncation artifact this scenario surfaces"
    );

    // Metro scale: 512 heterogeneous nodes behind power-of-two-choices
    // shard routing absorb brisk churn plus synchronized burst waves —
    // the per-arrival routing cost no longer depends on how many shards
    // the fleet has.
    let metro = FleetScenario::metro_scale(512, 4);
    eprintln!("running `{}` ...", metro.label);
    // sgprs-lint: allow(D002) -- demo prints its own wall-clock runtime; never part of the deterministic output
    let started = std::time::Instant::now();
    let metro_m = metro.run();
    eprintln!(
        "512 nodes: {} arrivals routed p2c in {:.0} ms wall, fleet {:.0} FPS, \
         rejection {:.1}%",
        metro_m.arrivals,
        started.elapsed().as_secs_f64() * 1e3,
        metro_m.total_fps,
        metro_m.rejection_rate * 100.0
    );
    assert!(metro_m.arrivals > 512, "metro churn keeps the router busy");
}
