//! Fleet serving: a heterogeneous four-GPU fleet absorbing tenant churn
//! behind admission control, printing fleet-level JSON metrics — then an
//! overload burst showing deadline-aware queueing with fps re-pricing
//! turning rejections into degraded-rate admissions.
//!
//! This is the deployment §I of the paper motivates — many tenants,
//! shifting populations — scaled past a single device: each node runs its
//! own SGPRS scheduler and the dispatcher places, queues, re-prices, and
//! accounts tenants across the fleet.
//!
//! Run with: `cargo run --release --example fleet_serving`

use sgprs_suite::cluster::QueuePolicy;
use sgprs_suite::workload::FleetScenario;

fn main() {
    let scenario = FleetScenario::heterogeneous_churn(6);
    eprintln!("running `{}` for {} ...", scenario.label, scenario.sim);
    let metrics = scenario.run();
    println!("{}", metrics.to_json());
    eprintln!(
        "total FPS {:.1}, DMR {:.1}%, rejection rate {:.1}% ({} of {} arrivals)",
        metrics.total_fps,
        metrics.dmr * 100.0,
        metrics.rejection_rate * 100.0,
        metrics.rejected,
        metrics.arrivals
    );

    // The re-pricing contrast: the same overload-burst trace with and
    // without the degraded-fps ladder.
    let fifo = FleetScenario::overload_burst(6);
    let smart = FleetScenario::overload_burst(6).with_queue(QueuePolicy::EarliestDeadline, true);
    eprintln!("running `{}` vs `{}` ...", fifo.label, smart.label);
    let fifo_m = fifo.run();
    let smart_m = smart.run();
    println!("{}", smart_m.to_json());
    eprintln!(
        "fifo-reject: rejection {:.1}%, DMR {:.2}% | deadline+repricing: rejection {:.1}%, \
         DMR {:.2}%, {} degraded admissions, {} upgrades, mean wait {:.2}s",
        fifo_m.rejection_rate * 100.0,
        fifo_m.dmr * 100.0,
        smart_m.rejection_rate * 100.0,
        smart_m.dmr * 100.0,
        smart_m.degraded,
        smart_m.upgrades,
        smart_m.queue_wait_mean_secs
    );
    assert!(
        smart_m.rejection_rate <= fifo_m.rejection_rate,
        "re-pricing must never reject more than FIFO-reject"
    );
}
