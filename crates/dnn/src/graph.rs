//! Validated layer DAGs.

use crate::{CostModel, DnnError, Layer, LayerKind, TensorShape};
use serde::{Deserialize, Serialize};
use sgprs_gpu_sim::WorkProfile;

/// Index of a layer node within a [`Network`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct NodeId(pub usize);

/// A DAG of layers with resolved shapes, built via [`NetworkBuilder`].
///
/// Nodes are stored in insertion order, which the builder guarantees is a
/// topological order (a layer can only consume already-built nodes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Architecture name (e.g. `"resnet18"`).
    pub name: String,
    /// Input activation shape.
    pub input: TensorShape,
    layers: Vec<Layer>,
    predecessors: Vec<Vec<usize>>,
}

impl Network {
    /// The layers in topological (insertion) order.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` for a network with no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The predecessor node indices of layer `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn predecessors(&self, id: NodeId) -> &[usize] {
        &self.predecessors[id.0]
    }

    /// Total FLOPs per inference.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.layers.iter().map(|l| l.flops).sum()
    }

    /// Total bytes moved per inference.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.bytes).sum()
    }

    /// The whole network's work profile under a cost model (used for
    /// monolithic, non-staged execution — the naive baseline).
    #[must_use]
    pub fn work_profile(&self, cost: &CostModel) -> WorkProfile {
        let mut profile = WorkProfile::new();
        for layer in &self.layers {
            profile.add(layer.op_class(), cost.single_sm_ns(layer));
        }
        profile
    }

    /// The final layer's output shape.
    #[must_use]
    pub fn output_shape(&self) -> Option<TensorShape> {
        self.layers.last().map(|l| l.output)
    }
}

/// Incremental builder for [`Network`] (see `C-BUILDER`).
///
/// # Example
///
/// ```
/// use sgprs_dnn::{LayerKind, NetworkBuilder, TensorShape};
///
/// # fn main() -> Result<(), sgprs_dnn::DnnError> {
/// let mut b = NetworkBuilder::new("tiny", TensorShape::new(1, 3, 8, 8));
/// let c = b.layer(
///     "conv",
///     LayerKind::Conv2d { out_channels: 4, kernel: 3, stride: 1, padding: 1, groups: 1 },
///     &[],
/// )?;
/// b.layer("relu", LayerKind::Relu, &[c])?;
/// let net = b.finish();
/// assert_eq!(net.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    input: TensorShape,
    layers: Vec<Layer>,
    predecessors: Vec<Vec<usize>>,
}

impl NetworkBuilder {
    /// Starts a network with the given input shape.
    #[must_use]
    pub fn new(name: impl Into<String>, input: TensorShape) -> Self {
        NetworkBuilder {
            name: name.into(),
            input,
            layers: Vec::new(),
            predecessors: Vec::new(),
        }
    }

    /// Appends a layer consuming the outputs of `preds`. An empty `preds`
    /// list means the layer reads the network input (or, as a convenience,
    /// the previous layer if one exists — use [`NetworkBuilder::layer_on`]
    /// with explicit ids to be precise).
    ///
    /// Returns the new node's id.
    ///
    /// # Errors
    ///
    /// Propagates shape/arity errors from shape inference, or
    /// [`DnnError::UnknownNode`] for dangling ids.
    pub fn layer(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        preds: &[NodeId],
    ) -> Result<NodeId, DnnError> {
        let name = name.into();
        let mut input_shapes = Vec::with_capacity(preds.len().max(1));
        let mut pred_idx = Vec::with_capacity(preds.len());
        if preds.is_empty() {
            input_shapes.push(self.input);
        } else {
            for &p in preds {
                let layer = self
                    .layers
                    .get(p.0)
                    .ok_or(DnnError::UnknownNode { node: p.0 })?;
                input_shapes.push(layer.output);
                pred_idx.push(p.0);
            }
        }
        let output = kind.infer_shape(&name, &input_shapes)?;
        let flops = kind.flops(input_shapes[0], output);
        let bytes = kind.bytes(&input_shapes, output);
        self.layers.push(Layer {
            name,
            kind,
            inputs: input_shapes,
            output,
            flops,
            bytes,
        });
        self.predecessors.push(pred_idx);
        Ok(NodeId(self.layers.len() - 1))
    }

    /// Appends a layer consuming the single node `pred`.
    ///
    /// # Errors
    ///
    /// Same as [`NetworkBuilder::layer`].
    pub fn layer_on(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        pred: NodeId,
    ) -> Result<NodeId, DnnError> {
        self.layer(name, kind, &[pred])
    }

    /// Finalises the network.
    #[must_use]
    pub fn finish(self) -> Network {
        Network {
            name: self.name,
            input: self.input,
            layers: self.layers,
            predecessors: self.predecessors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(out: u64) -> LayerKind {
        LayerKind::Conv2d {
            out_channels: out,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        }
    }

    #[test]
    fn builder_chains_shapes() {
        let mut b = NetworkBuilder::new("t", TensorShape::new(1, 3, 16, 16));
        let c1 = b.layer("c1", conv(8), &[]).unwrap();
        let r1 = b.layer_on("r1", LayerKind::Relu, c1).unwrap();
        let _c2 = b.layer_on("c2", conv(16), r1).unwrap();
        let net = b.finish();
        assert_eq!(net.len(), 3);
        assert_eq!(net.output_shape(), Some(TensorShape::new(1, 16, 16, 16)));
        assert_eq!(net.predecessors(NodeId(2)), &[1]);
        assert!(net.predecessors(NodeId(0)).is_empty());
    }

    #[test]
    fn unknown_predecessor_is_rejected() {
        let mut b = NetworkBuilder::new("t", TensorShape::new(1, 3, 16, 16));
        let err = b.layer("c", conv(8), &[NodeId(3)]).unwrap_err();
        assert!(matches!(err, DnnError::UnknownNode { node: 3 }));
    }

    #[test]
    fn residual_add_joins_two_branches() {
        let mut b = NetworkBuilder::new("t", TensorShape::new(1, 8, 8, 8));
        let trunk = b.layer("c1", conv(8), &[]).unwrap();
        let branch = b.layer_on("c2", conv(8), trunk).unwrap();
        let add = b.layer("add", LayerKind::Add, &[branch, trunk]).unwrap();
        let net = b.finish();
        assert_eq!(net.predecessors(add), &[1, 0]);
    }

    #[test]
    fn totals_accumulate() {
        let mut b = NetworkBuilder::new("t", TensorShape::new(1, 3, 16, 16));
        let c = b.layer("c", conv(8), &[]).unwrap();
        b.layer_on("r", LayerKind::Relu, c).unwrap();
        let net = b.finish();
        assert_eq!(
            net.total_flops(),
            net.layers()[0].flops + net.layers()[1].flops
        );
        assert!(net.total_bytes() > 0);
    }

    #[test]
    fn work_profile_spans_op_classes() {
        let cost = CostModel::calibrated();
        let mut b = NetworkBuilder::new("t", TensorShape::new(1, 3, 16, 16));
        let c = b.layer("c", conv(8), &[]).unwrap();
        b.layer_on("r", LayerKind::Relu, c).unwrap();
        let net = b.finish();
        let p = net.work_profile(&cost);
        assert_eq!(p.segments().len(), 2);
        assert!(p.total_single_sm_ns() > 0.0);
    }
}
