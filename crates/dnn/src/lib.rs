//! DNN graph substrate for the SGPRS reproduction.
//!
//! The paper schedules DNN inference tasks (ResNet18 at 224×224 in the
//! evaluation) whose layers it groups into *stages*. This crate provides
//! everything needed to turn a network architecture into the work profiles
//! the GPU simulator executes:
//!
//! * [`TensorShape`] — NCHW activation shapes with element/byte counts.
//! * [`LayerKind`] / [`Layer`] — operator definitions with shape inference
//!   and FLOP/byte accounting (convolution, pooling, batch-norm, ReLU,
//!   residual add, linear, softmax).
//! * [`Network`] / [`NetworkBuilder`] — a validated DAG of layers.
//! * [`models`] — reference architectures: ResNet18/34, VGG16, an
//!   AlexNet-style network, and a depthwise-separable MobileNet-style
//!   network.
//! * [`CostModel`] — maps layer FLOPs/bytes to single-SM execution time,
//!   calibrated so ResNet18 reproduces the paper's Figure 1 (≈ 23× overall
//!   speedup at 68 SMs, convolution-dominated).
//! * [`partition`] — splits a network into `k` balanced stages (the paper
//!   uses six) and emits per-stage [`sgprs_gpu_sim::WorkProfile`]s.
//!
//! # Example
//!
//! ```
//! use sgprs_dnn::{models, partition, CostModel};
//!
//! let net = models::resnet18(1, 224);
//! let cost = CostModel::calibrated();
//! let stages = partition::by_count(&net, &cost, 6).expect("resnet18 has ≥ 6 layers");
//! assert_eq!(stages.len(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod error;
mod graph;
mod layer;
pub mod models;
pub mod partition;
pub mod report;
mod shape;

pub use cost::CostModel;
pub use error::DnnError;
pub use graph::{Network, NetworkBuilder, NodeId};
pub use layer::{Layer, LayerKind};
pub use partition::Stage;
pub use shape::TensorShape;
