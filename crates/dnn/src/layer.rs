//! Layer definitions: shape inference and FLOP/byte accounting.

use crate::{DnnError, TensorShape};
use serde::{Deserialize, Serialize};
use sgprs_gpu_sim::OpClass;

/// The operator a layer performs, with its hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LayerKind {
    /// 2-D convolution with square kernels and symmetric padding.
    Conv2d {
        /// Output channel count.
        out_channels: u64,
        /// Kernel size (k×k).
        kernel: u64,
        /// Stride.
        stride: u64,
        /// Padding.
        padding: u64,
        /// Channel groups (1 = dense, `in_channels` = depthwise).
        groups: u64,
    },
    /// Max pooling.
    MaxPool {
        /// Kernel size (k×k).
        kernel: u64,
        /// Stride.
        stride: u64,
        /// Padding.
        padding: u64,
    },
    /// Global average pooling to 1×1.
    GlobalAvgPool,
    /// Batch normalisation (inference form: scale + shift).
    BatchNorm,
    /// ReLU activation.
    Relu,
    /// Elementwise residual addition of two same-shape inputs.
    Add,
    /// Fully connected layer.
    Linear {
        /// Output feature count.
        out_features: u64,
    },
    /// Softmax over channels.
    Softmax,
}

impl LayerKind {
    /// Number of inputs the operator consumes.
    #[must_use]
    pub fn arity(&self) -> usize {
        match self {
            LayerKind::Add => 2,
            _ => 1,
        }
    }

    /// The speedup-model operation class this operator belongs to.
    #[must_use]
    pub fn op_class(&self) -> OpClass {
        match self {
            LayerKind::Conv2d { .. } => OpClass::Convolution,
            LayerKind::MaxPool { .. } => OpClass::MaxPool,
            LayerKind::GlobalAvgPool => OpClass::AvgPool,
            LayerKind::BatchNorm => OpClass::BatchNorm,
            LayerKind::Relu => OpClass::Activation,
            LayerKind::Add => OpClass::ElementwiseAdd,
            LayerKind::Linear { .. } => OpClass::Linear,
            LayerKind::Softmax => OpClass::Softmax,
        }
    }

    /// Infers the output shape from the input shapes.
    ///
    /// # Errors
    ///
    /// [`DnnError::ArityMismatch`] or [`DnnError::ShapeMismatch`] when the
    /// inputs do not fit the operator.
    pub fn infer_shape(
        &self,
        name: &str,
        inputs: &[TensorShape],
    ) -> Result<TensorShape, DnnError> {
        if inputs.len() != self.arity() {
            return Err(DnnError::ArityMismatch {
                layer: name.to_owned(),
                expected: self.arity(),
                got: inputs.len(),
            });
        }
        let x = inputs[0];
        match *self {
            LayerKind::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                groups,
            } => {
                if x.h + 2 * padding < kernel || x.w + 2 * padding < kernel {
                    return Err(DnnError::ShapeMismatch {
                        layer: name.to_owned(),
                        detail: format!("kernel {kernel} larger than padded input {x}"),
                    });
                }
                if groups == 0
                    || !x.c.is_multiple_of(groups)
                    || !out_channels.is_multiple_of(groups)
                {
                    return Err(DnnError::ShapeMismatch {
                        layer: name.to_owned(),
                        detail: format!(
                            "groups {groups} must divide in={} and out={out_channels}",
                            x.c
                        ),
                    });
                }
                Ok(TensorShape::new(
                    x.n,
                    out_channels,
                    TensorShape::conv_out_dim(x.h, kernel, stride, padding),
                    TensorShape::conv_out_dim(x.w, kernel, stride, padding),
                ))
            }
            LayerKind::MaxPool {
                kernel,
                stride,
                padding,
            } => {
                if x.h + 2 * padding < kernel || x.w + 2 * padding < kernel {
                    return Err(DnnError::ShapeMismatch {
                        layer: name.to_owned(),
                        detail: format!("pool window {kernel} larger than padded input {x}"),
                    });
                }
                Ok(TensorShape::new(
                    x.n,
                    x.c,
                    TensorShape::conv_out_dim(x.h, kernel, stride, padding),
                    TensorShape::conv_out_dim(x.w, kernel, stride, padding),
                ))
            }
            LayerKind::GlobalAvgPool => Ok(TensorShape::new(x.n, x.c, 1, 1)),
            LayerKind::BatchNorm | LayerKind::Relu | LayerKind::Softmax => Ok(x),
            LayerKind::Add => {
                let y = inputs[1];
                if x != y {
                    return Err(DnnError::ShapeMismatch {
                        layer: name.to_owned(),
                        detail: format!("add inputs differ: {x} vs {y}"),
                    });
                }
                Ok(x)
            }
            LayerKind::Linear { out_features } => {
                Ok(TensorShape::flat(x.n, out_features))
            }
        }
    }

    /// Floating-point operations performed for the given input/output
    /// shapes (multiply-accumulate counted as two FLOPs).
    #[must_use]
    pub fn flops(&self, input: TensorShape, output: TensorShape) -> u64 {
        match *self {
            LayerKind::Conv2d { kernel, groups, .. } => {
                // 2 · k² · (Cin/groups) · Cout · Hout · Wout · N
                2 * kernel * kernel * (input.c / groups) * output.c
                    * output.h
                    * output.w
                    * output.n
            }
            LayerKind::MaxPool { kernel, .. } => kernel * kernel * output.elements(),
            LayerKind::GlobalAvgPool => input.elements() + output.elements(),
            LayerKind::BatchNorm => 2 * output.elements(),
            LayerKind::Relu => output.elements(),
            LayerKind::Add => output.elements(),
            LayerKind::Linear { .. } => 2 * input.elements() * output.elements() / output.n,
            LayerKind::Softmax => 5 * output.elements(),
        }
    }

    /// Parameter (weight) count of the operator.
    #[must_use]
    pub fn params(&self, input: TensorShape, output: TensorShape) -> u64 {
        match *self {
            LayerKind::Conv2d { kernel, groups, .. } => {
                kernel * kernel * (input.c / groups) * output.c + output.c
            }
            LayerKind::BatchNorm => 2 * output.c,
            LayerKind::Linear { .. } => {
                (input.elements() / input.n) * (output.elements() / output.n)
                    + output.elements() / output.n
            }
            _ => 0,
        }
    }

    /// Bytes moved to/from device memory: activations in and out plus
    /// parameters, at FP32.
    #[must_use]
    pub fn bytes(&self, inputs: &[TensorShape], output: TensorShape) -> u64 {
        let act: u64 = inputs.iter().map(TensorShape::bytes).sum::<u64>() + output.bytes();
        act + 4 * self.params(inputs[0], output)
    }
}

/// A placed layer in a [`crate::Network`]: kind + resolved shapes + costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Layer name, unique within its network.
    pub name: String,
    /// The operator.
    pub kind: LayerKind,
    /// Input shapes (one per predecessor).
    pub inputs: Vec<TensorShape>,
    /// Inferred output shape.
    pub output: TensorShape,
    /// FLOPs per inference.
    pub flops: u64,
    /// Bytes moved per inference.
    pub bytes: u64,
}

impl Layer {
    /// The speedup-model class of this layer.
    #[must_use]
    pub fn op_class(&self) -> OpClass {
        self.kind.op_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(out: u64, k: u64, s: u64, p: u64) -> LayerKind {
        LayerKind::Conv2d {
            out_channels: out,
            kernel: k,
            stride: s,
            padding: p,
            groups: 1,
        }
    }

    #[test]
    fn resnet_stem_conv_shape_and_flops() {
        let input = TensorShape::new(1, 3, 224, 224);
        let kind = conv(64, 7, 2, 3);
        let out = kind.infer_shape("conv1", &[input]).unwrap();
        assert_eq!(out, TensorShape::new(1, 64, 112, 112));
        // 2·49·3·64·112·112 = 236 MFLOPs.
        assert_eq!(kind.flops(input, out), 2 * 49 * 3 * 64 * 112 * 112);
    }

    #[test]
    fn depthwise_conv_divides_flops_by_groups() {
        let input = TensorShape::new(1, 32, 56, 56);
        let dense = LayerKind::Conv2d {
            out_channels: 32,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        };
        let depthwise = LayerKind::Conv2d {
            out_channels: 32,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 32,
        };
        let out = dense.infer_shape("d", &[input]).unwrap();
        assert_eq!(
            dense.flops(input, out) / depthwise.flops(input, out),
            32
        );
    }

    #[test]
    fn invalid_groups_are_rejected() {
        let input = TensorShape::new(1, 30, 8, 8);
        let bad = LayerKind::Conv2d {
            out_channels: 64,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 7,
        };
        assert!(matches!(
            bad.infer_shape("g", &[input]),
            Err(DnnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn add_requires_matching_shapes() {
        let a = TensorShape::new(1, 64, 56, 56);
        let b = TensorShape::new(1, 64, 28, 28);
        assert!(matches!(
            LayerKind::Add.infer_shape("add", &[a, b]),
            Err(DnnError::ShapeMismatch { .. })
        ));
        assert_eq!(LayerKind::Add.infer_shape("add", &[a, a]).unwrap(), a);
    }

    #[test]
    fn add_arity_is_two() {
        let a = TensorShape::new(1, 64, 56, 56);
        assert!(matches!(
            LayerKind::Add.infer_shape("add", &[a]),
            Err(DnnError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn linear_flattens_and_counts_weights() {
        let input = TensorShape::flat(1, 512);
        let kind = LayerKind::Linear { out_features: 1000 };
        let out = kind.infer_shape("fc", &[input]).unwrap();
        assert_eq!(out, TensorShape::flat(1, 1000));
        assert_eq!(kind.flops(input, out), 2 * 512 * 1000);
        assert_eq!(kind.params(input, out), 512 * 1000 + 1000);
    }

    #[test]
    fn pool_too_large_is_rejected() {
        let input = TensorShape::new(1, 64, 2, 2);
        let kind = LayerKind::MaxPool {
            kernel: 5,
            stride: 1,
            padding: 0,
        };
        assert!(matches!(
            kind.infer_shape("p", &[input]),
            Err(DnnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn elementwise_layers_preserve_shape() {
        let x = TensorShape::new(1, 128, 28, 28);
        for kind in [LayerKind::BatchNorm, LayerKind::Relu, LayerKind::Softmax] {
            assert_eq!(kind.infer_shape("e", &[x]).unwrap(), x);
        }
    }

    #[test]
    fn global_avg_pool_collapses_spatial_dims() {
        let x = TensorShape::new(1, 512, 7, 7);
        let out = LayerKind::GlobalAvgPool.infer_shape("gap", &[x]).unwrap();
        assert_eq!(out, TensorShape::new(1, 512, 1, 1));
    }

    #[test]
    fn bytes_include_weights() {
        let input = TensorShape::flat(1, 512);
        let kind = LayerKind::Linear { out_features: 1000 };
        let out = kind.infer_shape("fc", &[input]).unwrap();
        let bytes = kind.bytes(&[input], out);
        assert!(bytes > 4 * 512 * 1000, "weights dominate fc traffic");
    }

    #[test]
    fn op_class_mapping_is_total() {
        let kinds = [
            conv(8, 3, 1, 1),
            LayerKind::MaxPool {
                kernel: 2,
                stride: 2,
                padding: 0,
            },
            LayerKind::GlobalAvgPool,
            LayerKind::BatchNorm,
            LayerKind::Relu,
            LayerKind::Add,
            LayerKind::Linear { out_features: 10 },
            LayerKind::Softmax,
        ];
        let classes: std::collections::HashSet<_> =
            kinds.iter().map(|k| k.op_class()).collect();
        assert_eq!(classes.len(), kinds.len(), "each kind maps to its own class");
    }
}
