//! Error type for network construction.

use core::fmt;

/// Errors produced while building or partitioning networks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DnnError {
    /// A layer referenced a node id that does not exist yet.
    UnknownNode {
        /// The offending node index.
        node: usize,
    },
    /// A layer received inputs whose shapes are incompatible with it.
    ShapeMismatch {
        /// The layer's name.
        layer: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A layer expected a different number of inputs.
    ArityMismatch {
        /// The layer's name.
        layer: String,
        /// Inputs expected.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// A partition was requested with zero stages or more stages than
    /// layers.
    InvalidPartition {
        /// Requested stage count.
        stages: usize,
        /// Available layer count.
        layers: usize,
    },
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::UnknownNode { node } => write!(f, "unknown node id {node}"),
            DnnError::ShapeMismatch { layer, detail } => {
                write!(f, "shape mismatch at layer `{layer}`: {detail}")
            }
            DnnError::ArityMismatch {
                layer,
                expected,
                got,
            } => write!(
                f,
                "layer `{layer}` expects {expected} input(s), got {got}"
            ),
            DnnError::InvalidPartition { stages, layers } => write!(
                f,
                "cannot split {layers} layer(s) into {stages} stage(s)"
            ),
        }
    }
}

impl std::error::Error for DnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DnnError::ArityMismatch {
            layer: "add1".into(),
            expected: 2,
            got: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("add1") && msg.contains('2') && msg.contains('1'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DnnError>();
    }
}
