//! Human-readable network reports: per-layer cost breakdowns.
//!
//! Useful for understanding *why* a network scales the way it does — the
//! convolution/elementwise time split here is exactly what drives the
//! end-to-end speedup of Figure 1.

use crate::{CostModel, Network};
use sgprs_gpu_sim::{OpClass, SpeedupModel};

/// One row of a per-layer report.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRow {
    /// Layer name.
    pub name: String,
    /// Operation class.
    pub op: OpClass,
    /// Output shape, formatted.
    pub output: String,
    /// MFLOPs per inference.
    pub mflops: f64,
    /// MB moved per inference.
    pub mbytes: f64,
    /// Single-SM time in microseconds.
    pub t1_us: f64,
    /// Share of the network's total single-SM time, in percent.
    pub share_pct: f64,
}

/// Builds the per-layer cost table for a network.
#[must_use]
pub fn layer_rows(net: &Network, cost: &CostModel) -> Vec<LayerRow> {
    let total_ns: f64 = net
        .layers()
        .iter()
        .map(|l| cost.single_sm_ns(l))
        .sum::<f64>()
        .max(f64::MIN_POSITIVE);
    net.layers()
        .iter()
        .map(|l| {
            let t1 = cost.single_sm_ns(l);
            LayerRow {
                name: l.name.clone(),
                op: l.op_class(),
                output: l.output.to_string(),
                mflops: l.flops as f64 / 1e6,
                mbytes: l.bytes as f64 / 1e6,
                t1_us: t1 / 1e3,
                share_pct: 100.0 * t1 / total_ns,
            }
        })
        .collect()
}

/// Renders the per-layer table as fixed-width text with a summary footer.
#[must_use]
pub fn render(net: &Network, cost: &CostModel) -> String {
    let rows = layer_rows(net, cost);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>12} {:>14} {:>9} {:>8} {:>9} {:>7}\n",
        "layer", "op", "output", "MFLOPs", "MB", "t1(us)", "share"
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:<22} {:>12} {:>14} {:>9.1} {:>8.2} {:>9.1} {:>6.1}%\n",
            r.name, r.op.label(), r.output, r.mflops, r.mbytes, r.t1_us, r.share_pct
        ));
    }
    let speedup = SpeedupModel::calibrated_rtx_2080_ti();
    let profile = net.work_profile(cost);
    out.push_str(&format!(
        "\n{}: {} layers, {:.2} GFLOPs, {:.1} MB, t1 = {:.2} ms, t68 = {:.2} ms ({:.1}x end-to-end)\n",
        net.name,
        net.len(),
        net.total_flops() as f64 / 1e9,
        net.total_bytes() as f64 / 1e6,
        profile.total_single_sm_ns() / 1e6,
        profile.duration_ns_at(&speedup, 68.0) / 1e6,
        profile.effective_speedup(&speedup, 68.0),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn shares_sum_to_one_hundred_percent() {
        let net = models::resnet18(1, 224);
        let rows = layer_rows(&net, &CostModel::calibrated());
        let total: f64 = rows.iter().map(|r| r.share_pct).sum();
        assert!((total - 100.0).abs() < 1e-6, "shares sum to {total}");
    }

    #[test]
    fn row_count_matches_layers() {
        let net = models::alexnet(1, 224);
        let rows = layer_rows(&net, &CostModel::calibrated());
        assert_eq!(rows.len(), net.len());
    }

    #[test]
    fn render_contains_summary_line() {
        let net = models::resnet18(1, 224);
        let text = render(&net, &CostModel::calibrated());
        assert!(text.contains("resnet18:"));
        assert!(text.contains("GFLOPs"));
        assert!(text.contains("x end-to-end"));
        assert!(text.lines().count() > net.len());
    }

    #[test]
    fn stem_conv_dominates_early_layers() {
        let net = models::resnet18(1, 224);
        let rows = layer_rows(&net, &CostModel::calibrated());
        let stem = rows.iter().find(|r| r.name == "stem.conv").unwrap();
        let stem_bn = rows.iter().find(|r| r.name == "stem.bn").unwrap();
        assert!(stem.t1_us > stem_bn.t1_us);
    }
}
