//! The layer cost model: FLOPs/bytes → single-SM execution time.
//!
//! The GPU simulator needs, for every layer, the time the layer would take
//! on a *single* SM; the speedup curves then scale that to any allocation.
//! We model each layer as a compute term plus a memory term:
//!
//! ```text
//! t₁(layer) = flops · ns_per_flop(class) + bytes · ns_per_byte
//! ```
//!
//! Compute-bound convolutions are dominated by the FLOPs term while the
//! cheap elementwise/normalisation layers are dominated by memory traffic
//! — which is exactly why their speedup saturates early in Figure 1 and
//! why the full ResNet18 only reaches ≈ 23× even though convolution alone
//! reaches 32×.
//!
//! The calibrated constants were chosen so that, together with the
//! calibrated speedup model, (a) ResNet18's overall speedup at 68 SMs
//! lands at ≈ 23× and (b) ResNet18 inference times are in the
//! low-millisecond range the paper's 30-fps evaluation implies.

use crate::Layer;
use serde::{Deserialize, Serialize};
use sgprs_gpu_sim::OpClass;

/// Maps layer FLOP/byte counts to single-SM nanoseconds.
///
/// # Example
///
/// ```
/// use sgprs_dnn::{models, CostModel};
///
/// let net = models::resnet18(1, 224);
/// let cost = CostModel::calibrated();
/// let profile = net.work_profile(&cost);
/// // Convolution dominates single-SM time (Amdahl's serial remainder
/// // comes from the other layers).
/// assert!(profile.fraction_of(sgprs_gpu_sim::OpClass::Convolution) > 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// ns per FLOP for compute-bound classes (convolution, linear).
    pub compute_ns_per_flop: f64,
    /// ns per FLOP for the remaining (memory-bound) classes; small because
    /// their cost is carried by the byte term.
    pub light_ns_per_flop: f64,
    /// ns per byte of device-memory traffic on one SM's share of
    /// bandwidth.
    pub ns_per_byte: f64,
}

impl CostModel {
    /// The calibrated model used by every experiment (see module docs).
    #[must_use]
    pub fn calibrated() -> Self {
        CostModel {
            compute_ns_per_flop: 0.0211,
            light_ns_per_flop: 0.00458,
            ns_per_byte: 0.1134,
        }
    }

    /// ns per FLOP for the given class.
    #[must_use]
    pub fn ns_per_flop(&self, class: OpClass) -> f64 {
        match class {
            OpClass::Convolution | OpClass::Linear => self.compute_ns_per_flop,
            _ => self.light_ns_per_flop,
        }
    }

    /// Single-SM execution time of a layer in nanoseconds.
    #[must_use]
    pub fn single_sm_ns(&self, layer: &Layer) -> f64 {
        layer.flops as f64 * self.ns_per_flop(layer.op_class())
            + layer.bytes as f64 * self.ns_per_byte
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use sgprs_gpu_sim::SpeedupModel;

    #[test]
    fn resnet18_overall_speedup_matches_figure_1() {
        let net = models::resnet18(1, 224);
        let cost = CostModel::calibrated();
        let profile = net.work_profile(&cost);
        let speedup = profile.effective_speedup(&SpeedupModel::calibrated_rtx_2080_ti(), 68.0);
        assert!(
            (21.0..=25.0).contains(&speedup),
            "paper reports 23x for the whole ResNet18, model gives {speedup:.1}x"
        );
    }

    #[test]
    fn resnet18_is_convolution_dominated_at_one_sm() {
        let net = models::resnet18(1, 224);
        let cost = CostModel::calibrated();
        let profile = net.work_profile(&cost);
        let conv = profile.fraction_of(OpClass::Convolution);
        assert!(
            (0.80..=0.95).contains(&conv),
            "conv share should dominate but not monopolise: {conv:.3}"
        );
    }

    #[test]
    fn resnet18_full_gpu_latency_is_low_milliseconds() {
        let net = models::resnet18(1, 224);
        let cost = CostModel::calibrated();
        let profile = net.work_profile(&cost);
        let t68 = profile
            .duration_at(&SpeedupModel::calibrated_rtx_2080_ti(), 68.0)
            .as_secs_f64()
            * 1e3;
        assert!(
            (1.0..=8.0).contains(&t68),
            "full-GPU ResNet18 inference should take a few ms, got {t68:.2} ms"
        );
    }

    #[test]
    fn conv_layers_are_compute_bound_elementwise_memory_bound() {
        let net = models::resnet18(1, 224);
        let cost = CostModel::calibrated();
        for layer in net.layers() {
            let compute = layer.flops as f64 * cost.ns_per_flop(layer.op_class());
            let memory = layer.bytes as f64 * cost.ns_per_byte;
            match layer.op_class() {
                OpClass::Convolution => {
                    assert!(compute > memory, "conv `{}` must be compute-bound", layer.name);
                }
                OpClass::Activation | OpClass::BatchNorm | OpClass::ElementwiseAdd => {
                    assert!(memory > compute, "`{}` must be memory-bound", layer.name);
                }
                _ => {}
            }
        }
    }
}
