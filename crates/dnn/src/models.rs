//! Reference network architectures.
//!
//! [`resnet18`] is the paper's benchmark network; the other architectures
//! exist for extension experiments (heterogeneous multi-tenant workloads)
//! and to exercise the graph substrate on different topologies.

use crate::{LayerKind, Network, NetworkBuilder, NodeId, TensorShape};

fn conv(out_channels: u64, kernel: u64, stride: u64, padding: u64) -> LayerKind {
    LayerKind::Conv2d {
        out_channels,
        kernel,
        stride,
        padding,
        groups: 1,
    }
}

fn depthwise(channels: u64, stride: u64) -> LayerKind {
    LayerKind::Conv2d {
        out_channels: channels,
        kernel: 3,
        stride,
        padding: 1,
        groups: channels,
    }
}

/// Adds `conv → bn → relu` and returns the relu node.
fn conv_bn_relu(
    b: &mut NetworkBuilder,
    name: &str,
    kind: LayerKind,
    input: Option<NodeId>,
) -> NodeId {
    let preds: Vec<NodeId> = input.into_iter().collect();
    let c = b
        .layer(format!("{name}.conv"), kind, &preds)
        .expect("architecture shapes are statically correct");
    let n = b
        .layer_on(format!("{name}.bn"), LayerKind::BatchNorm, c)
        .expect("bn keeps shape");
    b.layer_on(format!("{name}.relu"), LayerKind::Relu, n)
        .expect("relu keeps shape")
}

/// A ResNet basic block: two 3×3 convolutions plus identity (or strided
/// 1×1 projection) shortcut.
fn basic_block(
    b: &mut NetworkBuilder,
    name: &str,
    input: NodeId,
    out_channels: u64,
    stride: u64,
) -> NodeId {
    let c1 = b
        .layer_on(format!("{name}.conv1"), conv(out_channels, 3, stride, 1), input)
        .expect("block conv1");
    let n1 = b
        .layer_on(format!("{name}.bn1"), LayerKind::BatchNorm, c1)
        .expect("block bn1");
    let r1 = b
        .layer_on(format!("{name}.relu1"), LayerKind::Relu, n1)
        .expect("block relu1");
    let c2 = b
        .layer_on(format!("{name}.conv2"), conv(out_channels, 3, 1, 1), r1)
        .expect("block conv2");
    let n2 = b
        .layer_on(format!("{name}.bn2"), LayerKind::BatchNorm, c2)
        .expect("block bn2");
    let shortcut = if stride != 1 {
        let sc = b
            .layer_on(
                format!("{name}.downsample.conv"),
                conv(out_channels, 1, stride, 0),
                input,
            )
            .expect("downsample conv");
        b.layer_on(format!("{name}.downsample.bn"), LayerKind::BatchNorm, sc)
            .expect("downsample bn")
    } else {
        input
    };
    let add = b
        .layer(format!("{name}.add"), LayerKind::Add, &[n2, shortcut])
        .expect("residual add");
    b.layer_on(format!("{name}.relu2"), LayerKind::Relu, add)
        .expect("block relu2")
}

fn resnet(name: &str, batch: u64, resolution: u64, blocks_per_stage: [usize; 4]) -> Network {
    let mut b = NetworkBuilder::new(name, TensorShape::new(batch, 3, resolution, resolution));
    let stem = conv_bn_relu(&mut b, "stem", conv(64, 7, 2, 3), None);
    let mut x = b
        .layer_on(
            "stem.maxpool",
            LayerKind::MaxPool {
                kernel: 3,
                stride: 2,
                padding: 1,
            },
            stem,
        )
        .expect("stem pool");
    let widths = [64u64, 128, 256, 512];
    for (stage, (&width, &blocks)) in widths.iter().zip(blocks_per_stage.iter()).enumerate() {
        for block in 0..blocks {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            x = basic_block(
                &mut b,
                &format!("layer{}.{block}", stage + 1),
                x,
                width,
                stride,
            );
        }
    }
    let gap = b
        .layer_on("gap", LayerKind::GlobalAvgPool, x)
        .expect("gap");
    let fc = b
        .layer_on("fc", LayerKind::Linear { out_features: 1000 }, gap)
        .expect("fc");
    b.layer_on("softmax", LayerKind::Softmax, fc)
        .expect("softmax");
    b.finish()
}

/// ResNet18 (He et al., 2016) — the paper's benchmark DNN.
///
/// `resolution` is the square input size (224 in the evaluation).
#[must_use]
pub fn resnet18(batch: u64, resolution: u64) -> Network {
    resnet("resnet18", batch, resolution, [2, 2, 2, 2])
}

/// ResNet34 — a deeper sibling for heterogeneous-workload experiments.
#[must_use]
pub fn resnet34(batch: u64, resolution: u64) -> Network {
    resnet("resnet34", batch, resolution, [3, 4, 6, 3])
}

/// VGG16 — a plain, convolution-heavy chain (no residuals), much heavier
/// than ResNet18.
#[must_use]
pub fn vgg16(batch: u64, resolution: u64) -> Network {
    let mut b = NetworkBuilder::new("vgg16", TensorShape::new(batch, 3, resolution, resolution));
    let stage_widths: [(u64, usize); 5] =
        [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    let mut x: Option<NodeId> = None;
    for (stage, &(width, convs)) in stage_widths.iter().enumerate() {
        for i in 0..convs {
            let name = format!("conv{}_{}", stage + 1, i + 1);
            let preds: Vec<NodeId> = x.into_iter().collect();
            let c = b
                .layer(&name, conv(width, 3, 1, 1), &preds)
                .expect("vgg conv");
            x = Some(
                b.layer_on(format!("{name}.relu"), LayerKind::Relu, c)
                    .expect("vgg relu"),
            );
        }
        x = Some(
            b.layer_on(
                format!("pool{}", stage + 1),
                LayerKind::MaxPool {
                    kernel: 2,
                    stride: 2,
                    padding: 0,
                },
                x.expect("at least one conv per stage"),
            )
            .expect("vgg pool"),
        );
    }
    let mut x = x.expect("stages built");
    for (i, width) in [4096u64, 4096].into_iter().enumerate() {
        let fc = b
            .layer_on(format!("fc{}", i + 1), LayerKind::Linear { out_features: width }, x)
            .expect("vgg fc");
        x = b
            .layer_on(format!("fc{}.relu", i + 1), LayerKind::Relu, fc)
            .expect("vgg fc relu");
    }
    let fc3 = b
        .layer_on("fc3", LayerKind::Linear { out_features: 1000 }, x)
        .expect("vgg fc3");
    b.layer_on("softmax", LayerKind::Softmax, fc3)
        .expect("softmax");
    b.finish()
}

/// An AlexNet-style network: large early kernels, light total cost.
#[must_use]
pub fn alexnet(batch: u64, resolution: u64) -> Network {
    let mut b = NetworkBuilder::new("alexnet", TensorShape::new(batch, 3, resolution, resolution));
    let c1 = b.layer("conv1", conv(96, 11, 4, 2), &[]).expect("conv1");
    let r1 = b.layer_on("relu1", LayerKind::Relu, c1).expect("relu1");
    let p1 = b
        .layer_on(
            "pool1",
            LayerKind::MaxPool {
                kernel: 3,
                stride: 2,
                padding: 0,
            },
            r1,
        )
        .expect("pool1");
    let c2 = b.layer_on("conv2", conv(256, 5, 1, 2), p1).expect("conv2");
    let r2 = b.layer_on("relu2", LayerKind::Relu, c2).expect("relu2");
    let p2 = b
        .layer_on(
            "pool2",
            LayerKind::MaxPool {
                kernel: 3,
                stride: 2,
                padding: 0,
            },
            r2,
        )
        .expect("pool2");
    let c3 = b.layer_on("conv3", conv(384, 3, 1, 1), p2).expect("conv3");
    let r3 = b.layer_on("relu3", LayerKind::Relu, c3).expect("relu3");
    let c4 = b.layer_on("conv4", conv(384, 3, 1, 1), r3).expect("conv4");
    let r4 = b.layer_on("relu4", LayerKind::Relu, c4).expect("relu4");
    let c5 = b.layer_on("conv5", conv(256, 3, 1, 1), r4).expect("conv5");
    let r5 = b.layer_on("relu5", LayerKind::Relu, c5).expect("relu5");
    let p5 = b
        .layer_on(
            "pool5",
            LayerKind::MaxPool {
                kernel: 3,
                stride: 2,
                padding: 0,
            },
            r5,
        )
        .expect("pool5");
    let mut x = p5;
    for (i, width) in [4096u64, 4096].into_iter().enumerate() {
        let fc = b
            .layer_on(format!("fc{}", i + 6), LayerKind::Linear { out_features: width }, x)
            .expect("alexnet fc");
        x = b
            .layer_on(format!("relu{}", i + 6), LayerKind::Relu, fc)
            .expect("alexnet fc relu");
    }
    let fc8 = b
        .layer_on("fc8", LayerKind::Linear { out_features: 1000 }, x)
        .expect("fc8");
    b.layer_on("softmax", LayerKind::Softmax, fc8)
        .expect("softmax");
    b.finish()
}

/// A MobileNetV1-style network built from depthwise-separable blocks —
/// memory-bound and poorly scaling, a stress test for the speedup model.
#[must_use]
pub fn mobilenet(batch: u64, resolution: u64) -> Network {
    let mut b =
        NetworkBuilder::new("mobilenet", TensorShape::new(batch, 3, resolution, resolution));
    let mut x = conv_bn_relu(&mut b, "stem", conv(32, 3, 2, 1), None);
    // (output channels of the pointwise conv, stride of the depthwise conv)
    let blocks: [(u64, u64); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    let mut channels = 32u64;
    for (i, &(out, stride)) in blocks.iter().enumerate() {
        let dw = conv_bn_relu(
            &mut b,
            &format!("dw{i}"),
            depthwise(channels, stride),
            Some(x),
        );
        x = conv_bn_relu(&mut b, &format!("pw{i}"), conv(out, 1, 1, 0), Some(dw));
        channels = out;
    }
    let gap = b
        .layer_on("gap", LayerKind::GlobalAvgPool, x)
        .expect("gap");
    let fc = b
        .layer_on("fc", LayerKind::Linear { out_features: 1000 }, gap)
        .expect("fc");
    b.layer_on("softmax", LayerKind::Softmax, fc)
        .expect("softmax");
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgprs_gpu_sim::OpClass;

    #[test]
    fn resnet18_matches_published_flops() {
        let net = resnet18(1, 224);
        // ~1.8 GFLOPs for 224x224 ResNet18 (3.6 GMACs counted as 2 FLOPs
        // would be double; the accepted figure with MAC=2FLOP is ~3.6G,
        // with MAC=1FLOP ~1.8G; our convention is MAC=2FLOP).
        let gflops = net.total_flops() as f64 / 1e9;
        assert!(
            (3.2..=4.0).contains(&gflops),
            "resnet18 should be ~3.6 GFLOPs (MAC=2), got {gflops:.2}"
        );
        assert_eq!(net.output_shape().unwrap().elements(), 1000);
    }

    #[test]
    fn resnet18_has_expected_structure() {
        let net = resnet18(1, 224);
        let convs = net
            .layers()
            .iter()
            .filter(|l| l.op_class() == OpClass::Convolution)
            .count();
        // 1 stem + 16 block convs + 3 downsample projections = 20.
        assert_eq!(convs, 20);
        let adds = net
            .layers()
            .iter()
            .filter(|l| l.op_class() == OpClass::ElementwiseAdd)
            .count();
        assert_eq!(adds, 8, "eight residual blocks");
    }

    #[test]
    fn resnet34_is_deeper_than_resnet18() {
        let n18 = resnet18(1, 224);
        let n34 = resnet34(1, 224);
        assert!(n34.len() > n18.len());
        assert!(n34.total_flops() > n18.total_flops());
    }

    #[test]
    fn vgg16_is_much_heavier_than_resnet18() {
        let vgg = vgg16(1, 224);
        let rn = resnet18(1, 224);
        // VGG16 ≈ 15.5 GMACs ⇒ ~31 GFLOPs with our convention.
        let gflops = vgg.total_flops() as f64 / 1e9;
        assert!(
            (28.0..=34.0).contains(&gflops),
            "vgg16 should be ~31 GFLOPs, got {gflops:.2}"
        );
        assert!(vgg.total_flops() > 7 * rn.total_flops());
    }

    #[test]
    fn mobilenet_is_lighter_than_resnet18() {
        let mb = mobilenet(1, 224);
        let rn = resnet18(1, 224);
        // ~0.57 GMACs ⇒ ~1.1 GFLOPs.
        let gflops = mb.total_flops() as f64 / 1e9;
        assert!(
            (0.9..=1.5).contains(&gflops),
            "mobilenet should be ~1.1 GFLOPs, got {gflops:.2}"
        );
        assert!(mb.total_flops() < rn.total_flops());
    }

    #[test]
    fn alexnet_builds_and_classifies() {
        let net = alexnet(1, 224);
        assert_eq!(net.output_shape().unwrap().elements(), 1000);
        let gflops = net.total_flops() as f64 / 1e9;
        assert!((1.0..=2.5).contains(&gflops), "alexnet ~1.4 GFLOPs, got {gflops:.2}");
    }

    #[test]
    fn all_models_end_in_softmax_over_1000_classes() {
        for net in [
            resnet18(1, 224),
            resnet34(1, 224),
            vgg16(1, 224),
            alexnet(1, 224),
            mobilenet(1, 224),
        ] {
            let last = net.layers().last().unwrap();
            assert_eq!(last.kind, LayerKind::Softmax, "{}", net.name);
            assert_eq!(last.output.elements(), 1000, "{}", net.name);
        }
    }

    #[test]
    fn resolution_scales_flops_quadratically() {
        let big = resnet18(1, 224);
        let small = resnet18(1, 112);
        let ratio = big.total_flops() as f64 / small.total_flops() as f64;
        assert!(
            (3.0..=5.0).contains(&ratio),
            "halving resolution should quarter conv flops, ratio {ratio:.2}"
        );
    }

    #[test]
    fn batch_scales_flops_linearly() {
        let b1 = resnet18(1, 224);
        let b4 = resnet18(4, 224);
        let ratio = b4.total_flops() as f64 / b1.total_flops() as f64;
        assert!((3.9..=4.1).contains(&ratio));
    }
}
