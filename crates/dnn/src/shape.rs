//! NCHW tensor shapes.

use serde::{Deserialize, Serialize};

/// The shape of an activation tensor in NCHW layout.
///
/// Fully connected activations use `h == w == 1`.
///
/// # Example
///
/// ```
/// use sgprs_dnn::TensorShape;
///
/// let input = TensorShape::new(1, 3, 224, 224);
/// assert_eq!(input.elements(), 3 * 224 * 224);
/// assert_eq!(input.bytes(), input.elements() * 4);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TensorShape {
    /// Batch size.
    pub n: u64,
    /// Channels.
    pub c: u64,
    /// Height.
    pub h: u64,
    /// Width.
    pub w: u64,
}

impl TensorShape {
    /// Creates an NCHW shape.
    #[must_use]
    pub const fn new(n: u64, c: u64, h: u64, w: u64) -> Self {
        TensorShape { n, c, h, w }
    }

    /// A flat (fully connected) shape: `n × c × 1 × 1`.
    #[must_use]
    pub const fn flat(n: u64, c: u64) -> Self {
        TensorShape::new(n, c, 1, 1)
    }

    /// Total number of elements.
    #[must_use]
    pub const fn elements(&self) -> u64 {
        self.n * self.c * self.h * self.w
    }

    /// Size in bytes at FP32 (4 bytes/element).
    #[must_use]
    pub const fn bytes(&self) -> u64 {
        self.elements() * 4
    }

    /// The spatial output size of a convolution/pool window with the given
    /// kernel size, stride, and symmetric padding, in one dimension.
    #[must_use]
    pub const fn conv_out_dim(input: u64, kernel: u64, stride: u64, padding: u64) -> u64 {
        (input + 2 * padding - kernel) / stride + 1
    }
}

impl core::fmt::Display for TensorShape {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_and_bytes() {
        let s = TensorShape::new(2, 3, 4, 5);
        assert_eq!(s.elements(), 120);
        assert_eq!(s.bytes(), 480);
    }

    #[test]
    fn conv_out_dim_matches_pytorch_convention() {
        // 224, k=7, s=2, p=3 → 112 (ResNet18 stem).
        assert_eq!(TensorShape::conv_out_dim(224, 7, 2, 3), 112);
        // 112, k=3, s=2, p=1 → 56 (stem max-pool).
        assert_eq!(TensorShape::conv_out_dim(112, 3, 2, 1), 56);
        // Same-padding 3×3 stride 1 keeps the size.
        assert_eq!(TensorShape::conv_out_dim(56, 3, 1, 1), 56);
    }

    #[test]
    fn flat_shapes_have_unit_spatial_dims() {
        let s = TensorShape::flat(1, 1000);
        assert_eq!(s.h, 1);
        assert_eq!(s.w, 1);
        assert_eq!(s.elements(), 1000);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(TensorShape::new(1, 3, 224, 224).to_string(), "1x3x224x224");
    }
}
