//! Stage partitioning: splitting a network into sub-tasks.
//!
//! SGPRS "divides a network (task) into multiple stages (sub-tasks) to
//! improve flexibility" (§IV). The evaluation splits ResNet18 into six
//! stages. This module slices a network's topological layer order into `k`
//! contiguous groups, balancing single-SM execution time greedily, and
//! emits one [`sgprs_gpu_sim::WorkProfile`] per stage.

use crate::{CostModel, DnnError, Network};
use serde::{Deserialize, Serialize};
use sgprs_gpu_sim::WorkProfile;

/// One stage of a partitioned network: a contiguous run of layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Stage name (`"stage0"`, ... or boundary-derived).
    pub name: String,
    /// Indices of the layers in the stage (contiguous, topological order).
    pub layers: Vec<usize>,
    /// Aggregate work profile of the stage.
    pub profile: WorkProfile,
}

impl Stage {
    /// The stage's single-SM execution time in nanoseconds.
    #[must_use]
    pub fn single_sm_ns(&self) -> f64 {
        self.profile.total_single_sm_ns()
    }
}

/// Splits `net` into exactly `k` contiguous stages with greedily balanced
/// single-SM work.
///
/// The splitter walks the layers in topological order, accumulating work;
/// it closes the current stage once the running total reaches
/// `remaining_work / remaining_stages`, guaranteeing every stage gets at
/// least one layer.
///
/// # Errors
///
/// [`DnnError::InvalidPartition`] when `k` is zero or exceeds the layer
/// count.
pub fn by_count(net: &Network, cost: &CostModel, k: usize) -> Result<Vec<Stage>, DnnError> {
    let n = net.len();
    if k == 0 || k > n {
        return Err(DnnError::InvalidPartition {
            stages: k,
            layers: n,
        });
    }
    let work: Vec<f64> = net.layers().iter().map(|l| cost.single_sm_ns(l)).collect();
    let mut remaining_work: f64 = work.iter().sum();
    let mut stages = Vec::with_capacity(k);
    let mut current: Vec<usize> = Vec::new();
    let mut current_work = 0.0;
    let mut remaining_stages = k;
    for (i, &w) in work.iter().enumerate() {
        current.push(i);
        current_work += w;
        let layers_left = n - i - 1;
        let must_close = layers_left == remaining_stages - 1 && remaining_stages > 1;
        let target = remaining_work / remaining_stages as f64;
        let reached = current_work >= target && remaining_stages > 1;
        if must_close || (reached && layers_left >= remaining_stages - 1) {
            stages.push(make_stage(net, cost, stages.len(), std::mem::take(&mut current)));
            remaining_work -= current_work;
            current_work = 0.0;
            remaining_stages -= 1;
        }
    }
    if !current.is_empty() {
        stages.push(make_stage(net, cost, stages.len(), current));
    }
    debug_assert_eq!(stages.len(), k);
    Ok(stages)
}

/// Splits `net` at explicit layer-name boundaries: each boundary name
/// *starts* a new stage (the first stage starts implicitly at layer 0).
///
/// # Errors
///
/// [`DnnError::UnknownNode`] if a boundary name does not occur in the
/// network.
pub fn at_boundaries(
    net: &Network,
    cost: &CostModel,
    boundaries: &[&str],
) -> Result<Vec<Stage>, DnnError> {
    let mut starts = vec![0usize];
    for &b in boundaries {
        let idx = net
            .layers()
            .iter()
            .position(|l| l.name == b)
            .ok_or(DnnError::UnknownNode { node: usize::MAX })?;
        starts.push(idx);
    }
    starts.sort_unstable();
    starts.dedup();
    let mut stages = Vec::with_capacity(starts.len());
    for (si, &start) in starts.iter().enumerate() {
        let end = starts.get(si + 1).copied().unwrap_or(net.len());
        let layers: Vec<usize> = (start..end).collect();
        if layers.is_empty() {
            continue;
        }
        stages.push(make_stage(net, cost, si, layers));
    }
    Ok(stages)
}

/// The paper's six-stage ResNet18 split: stem, the four residual layer
/// groups, and the classifier head.
///
/// # Errors
///
/// Propagates [`at_boundaries`] errors (never fails for [`crate::models::resnet18`]).
pub fn resnet18_six_stages(net: &Network, cost: &CostModel) -> Result<Vec<Stage>, DnnError> {
    at_boundaries(
        net,
        cost,
        &[
            "layer1.0.conv1",
            "layer2.0.conv1",
            "layer3.0.conv1",
            "layer4.0.conv1",
            "gap",
        ],
    )
}

fn make_stage(net: &Network, cost: &CostModel, index: usize, layers: Vec<usize>) -> Stage {
    let mut profile = WorkProfile::new();
    for &i in &layers {
        let layer = &net.layers()[i];
        profile.add(layer.op_class(), cost.single_sm_ns(layer));
    }
    Stage {
        name: format!("stage{index}"),
        layers,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    fn setup() -> (Network, CostModel) {
        (models::resnet18(1, 224), CostModel::calibrated())
    }

    #[test]
    fn by_count_covers_every_layer_exactly_once() {
        let (net, cost) = setup();
        for k in [1, 2, 6, 10] {
            let stages = by_count(&net, &cost, k).unwrap();
            assert_eq!(stages.len(), k);
            let mut seen = vec![false; net.len()];
            for s in &stages {
                for &l in &s.layers {
                    assert!(!seen[l], "layer {l} assigned twice");
                    seen[l] = true;
                }
            }
            assert!(seen.iter().all(|&x| x), "every layer covered (k={k})");
        }
    }

    #[test]
    fn by_count_stages_are_contiguous_and_ordered() {
        let (net, cost) = setup();
        let stages = by_count(&net, &cost, 6).unwrap();
        let mut expected = 0usize;
        for s in &stages {
            for &l in &s.layers {
                assert_eq!(l, expected);
                expected += 1;
            }
        }
    }

    #[test]
    fn by_count_balances_work_reasonably() {
        let (net, cost) = setup();
        let stages = by_count(&net, &cost, 6).unwrap();
        let total: f64 = stages.iter().map(Stage::single_sm_ns).sum();
        let mean = total / 6.0;
        for s in &stages {
            assert!(
                s.single_sm_ns() < 2.5 * mean,
                "stage {} is pathologically large: {} vs mean {}",
                s.name,
                s.single_sm_ns(),
                mean
            );
        }
    }

    #[test]
    fn by_count_rejects_degenerate_requests() {
        let (net, cost) = setup();
        assert!(matches!(
            by_count(&net, &cost, 0),
            Err(DnnError::InvalidPartition { .. })
        ));
        assert!(matches!(
            by_count(&net, &cost, net.len() + 1),
            Err(DnnError::InvalidPartition { .. })
        ));
    }

    #[test]
    fn by_count_one_stage_equals_whole_network() {
        let (net, cost) = setup();
        let stages = by_count(&net, &cost, 1).unwrap();
        let whole = net.work_profile(&cost);
        assert!(
            (stages[0].profile.total_single_sm_ns() - whole.total_single_sm_ns()).abs()
                < 1e-6
        );
    }

    #[test]
    fn max_stage_count_gives_one_layer_each() {
        let (net, cost) = setup();
        let stages = by_count(&net, &cost, net.len()).unwrap();
        assert!(stages.iter().all(|s| s.layers.len() == 1));
    }

    #[test]
    fn six_stage_resnet_split_follows_architecture() {
        let (net, cost) = setup();
        let stages = resnet18_six_stages(&net, &cost).unwrap();
        assert_eq!(stages.len(), 6);
        // Stage 0 is the stem: conv/bn/relu/maxpool.
        assert_eq!(stages[0].layers.len(), 4);
        // Final stage is gap + fc + softmax.
        assert_eq!(stages[5].layers.len(), 3);
        // Work is dominated by the middle stages, not the head.
        assert!(stages[5].single_sm_ns() < stages[1].single_sm_ns());
    }

    #[test]
    fn unknown_boundary_is_an_error() {
        let (net, cost) = setup();
        assert!(at_boundaries(&net, &cost, &["nonexistent"]).is_err());
    }

    #[test]
    fn stage_profiles_sum_to_network_profile() {
        let (net, cost) = setup();
        let stages = resnet18_six_stages(&net, &cost).unwrap();
        let sum: f64 = stages.iter().map(Stage::single_sm_ns).sum();
        let whole = net.work_profile(&cost).total_single_sm_ns();
        assert!((sum - whole).abs() / whole < 1e-9);
    }
}
