//! Property-based tests of the admission controller: whatever the fleet
//! shape and offered load, an admitted set stays within the utilisation
//! bound, and rejected tenants get in once departures free capacity.

use proptest::prelude::*;
use sgprs_cluster::{
    AdmissionController, FleetNode, ModelKind, NodeSpec, Placer, PlacementPolicy, TenantSpec,
};
use sgprs_gpu_sim::GpuSpec;

fn model_of(tag: u8) -> ModelKind {
    match tag % 5 {
        0 => ModelKind::ResNet18,
        1 => ModelKind::ResNet34,
        2 => ModelKind::Vgg16,
        3 => ModelKind::AlexNet,
        _ => ModelKind::MobileNet,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Safety: after any sequence of admissions, every node's resident
    /// demand is within its admission budget.
    #[test]
    fn admitted_sets_always_satisfy_the_utilization_bound(
        offers in prop::collection::vec((0u8..5, 5.0f64..60.0), 1..40),
        sms in prop::collection::vec(16u32..69, 1..5),
        policy_tag in 0u8..3,
    ) {
        let policy = match policy_tag {
            0 => PlacementPolicy::RoundRobin,
            1 => PlacementPolicy::LeastUtilization,
            _ => PlacementPolicy::BestFit,
        };
        let mut nodes: Vec<FleetNode> = sms
            .iter()
            .enumerate()
            .map(|(i, &sm)| FleetNode::new(NodeSpec::sgprs(format!("gpu{i}"), GpuSpec::synthetic(sm))))
            .collect();
        let ctl = AdmissionController::default();
        let mut placer = Placer::new(policy);
        for (i, &(tag, fps)) in offers.iter().enumerate() {
            let tenant = TenantSpec::new(format!("t-{i}"), model_of(tag), fps);
            if let Some(idx) = placer.place(&nodes, &tenant, &ctl) {
                nodes[idx].tenants.push(tenant);
            }
        }
        for node in &nodes {
            let budget = ctl.budget(node, None);
            prop_assert!(
                node.total_demand() <= budget + 1e-9,
                "node {} demand {} exceeds budget {}",
                node.spec.name,
                node.total_demand(),
                budget
            );
        }
    }

    /// Liveness: a tenant rejected at saturation is admitted again after
    /// enough departures free capacity.
    #[test]
    fn rejected_tenants_are_admitted_after_departures(
        sm in 23u32..69,
        fps in 10.0f64..40.0,
        tag in 0u8..5,
    ) {
        let ctl = AdmissionController::default();
        let mut node = FleetNode::new(NodeSpec::sgprs("gpu", GpuSpec::synthetic(sm)));
        // Fill the node with copies of the tenant until it rejects.
        let tenant = |i: usize| TenantSpec::new(format!("t-{i}"), model_of(tag), fps);
        // Latency-infeasible combinations (heavy model, fast rate, small
        // device) are rejected outright and never admitted; the
        // readmission property only concerns the utilisation bound.
        prop_assume!(ctl.evaluate(&node, &tenant(0)).is_admit());
        let mut i = 0;
        while ctl.evaluate(&node, &tenant(i)).is_admit() {
            node.tenants.push(tenant(i));
            i += 1;
            prop_assert!(i < 10_000, "saturation must be reached");
        }
        let rejected = tenant(i);
        prop_assert!(!ctl.evaluate(&node, &rejected).is_admit());
        // Departures free capacity one by one; eventually the rejected
        // tenant fits again (it is identical to the ones leaving).
        let mut readmitted = false;
        while !node.tenants.is_empty() {
            node.tenants.pop();
            if ctl.evaluate(&node, &rejected).is_admit() {
                readmitted = true;
                break;
            }
        }
        prop_assert!(readmitted, "an emptied node must re-admit");
        // And exactly one departure suffices for identical tenants.
        prop_assert_eq!(node.tenants.len() + 1, i, "one slot was enough");
    }

    /// The budget is monotone in device size: a strictly bigger GPU never
    /// offers less admissible demand for the same mix.
    #[test]
    fn budget_is_monotone_in_device_size(
        small_sm in 16u32..40,
        extra in 1u32..29,
        tag in 0u8..5,
        fps in 5.0f64..60.0,
    ) {
        let ctl = AdmissionController::default();
        let tenant = TenantSpec::new("t", model_of(tag), fps);
        let mut small = FleetNode::new(NodeSpec::sgprs("s", GpuSpec::synthetic(small_sm)));
        let mut large = FleetNode::new(NodeSpec::sgprs("l", GpuSpec::synthetic(small_sm + extra)));
        small.tenants.push(tenant.clone());
        large.tenants.push(tenant);
        prop_assert!(ctl.budget(&large, None) >= ctl.budget(&small, None) - 1e-9);
    }
}
