//! Equivalence property: the timing-wheel [`EventQueue`] pops the exact
//! `(time, node, seq)` sequence a reference binary heap pops, over
//! random push/pop interleavings — including same-instant floods (many
//! events at one instant across nodes) and far-future overflow events
//! (hours past the wheel's L1 span), and pushes at instants at or
//! before the last pop (the clamp path same-instant follow-up events
//! take in the engine).
//!
//! This is the PR-boundary proof that swapping the queue's internals
//! cannot move a single event: the heap *is* the previous
//! implementation, reconstructed here as the oracle.

use proptest::prelude::*;
use sgprs_cluster::event::{EventKind, EventQueue, NODE_FLEET};
use sgprs_rt::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The reference implementation: exactly the binary heap the wheel
/// replaced — a min-heap over `(time, node, seq)` with a monotone
/// enqueue serial.
#[derive(Default)]
struct HeapQueue {
    heap: BinaryHeap<Reverse<(u64, usize, u64)>>,
    next_seq: u64,
}

impl HeapQueue {
    fn push(&mut self, nanos: u64, node: usize) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((nanos, node, seq)));
    }

    fn pop(&mut self) -> Option<(u64, usize, u64)> {
        self.heap.pop().map(|Reverse(k)| k)
    }
}

/// Decodes one fuzzed op against the queue pair. `time_raw`/`node_tag`
/// are interpreted per regime so every structural path gets traffic:
/// the active slot, later L0 slots, the L1 ring, the overflow list,
/// same-instant floods, and sub-cursor clamps.
fn event_time(regime: u8, time_raw: u64, last_pop: u64) -> u64 {
    match regime % 6 {
        // Dense hot window: within ~33 ms of the origin (L0 direct).
        0 => time_raw % 33_000_000,
        // Mid range: within ~8 s (the L1 ring).
        1 => time_raw % 8_000_000_000,
        // Far future: up to ~12 h (overflow + fast-forward).
        2 => time_raw % 43_200_000_000_000,
        // Same-instant flood: one of four fixed instants.
        3 => 5_000_000 * (time_raw % 4),
        // At the last popped instant (engine follow-ups: Migrate,
        // completions scheduled at "now").
        4 => last_pop,
        // At or before the last popped instant: the clamp path.
        _ => last_pop.saturating_sub(time_raw % 1_000_000),
    }
}

fn event_node(tag: u8) -> usize {
    match tag % 5 {
        4 => NODE_FLEET,
        t => t as usize,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over any interleaving of pushes and pops, both queues emit the
    /// identical `(time, node, seq)` pop sequence, and drain to the
    /// identical tail.
    #[test]
    fn wheel_pops_exactly_what_the_reference_heap_pops(
        ops in prop::collection::vec((0u8..8, any::<u64>(), 0u8..8), 1..300),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::default();
        let mut last_pop = 0u64;
        for &(op, time_raw, node_tag) in &ops {
            if op < 6 {
                let nanos = event_time(op, time_raw, last_pop);
                let node = event_node(node_tag);
                wheel.push(SimTime::from_nanos(nanos), node, EventKind::Sample);
                heap.push(nanos, node);
            } else {
                let got = wheel.pop().map(|e| (e.time.as_nanos(), e.node, e.seq));
                let want = heap.pop();
                prop_assert_eq!(got, want, "mid-run pop diverged");
                if let Some((t, _, _)) = want {
                    last_pop = t;
                }
            }
            prop_assert_eq!(wheel.len(), heap.heap.len());
        }
        // Drain both: the tails must match to the last event.
        loop {
            let got = wheel.pop().map(|e| (e.time.as_nanos(), e.node, e.seq));
            let want = heap.pop();
            prop_assert_eq!(got, want, "drain pop diverged");
            if want.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }

    /// A pure same-instant flood across nodes pops grouped by node then
    /// enqueue order, regardless of push order — the documented
    /// `(time, node, seq)` contract at one instant.
    #[test]
    fn same_instant_floods_group_by_node_then_seq(
        nodes in prop::collection::vec(0u8..8, 2..64),
        nanos in 0u64..10_000_000_000,
    ) {
        let mut wheel = EventQueue::new();
        for &tag in &nodes {
            wheel.push(SimTime::from_nanos(nanos), event_node(tag), EventKind::Sample);
        }
        let mut popped = Vec::new();
        while let Some(e) = wheel.pop() {
            prop_assert_eq!(e.time.as_nanos(), nanos);
            popped.push((e.node, e.seq));
        }
        let mut expect = popped.clone();
        expect.sort_unstable();
        prop_assert_eq!(popped, expect, "flood must pop in (node, seq) order");
    }
}
