//! Fleet-level metrics: per-node and total throughput, miss and
//! rejection rates, and a utilisation histogram.
//!
//! Node schedulers already report the paper's metrics through
//! [`sgprs_core::RunMetrics`] (produced by `sgprs_core::MetricsCollector`);
//! this module folds those per-epoch reports into fleet aggregates and
//! renders them as JSON for downstream tooling.

use crate::telemetry::TelemetryReport;
use serde::{Deserialize, Serialize};
use sgprs_core::RunMetrics;
use sgprs_rt::SimDuration;

/// Number of bins in the utilisation histogram (`[0, 0.1) .. [0.9, ∞)`).
pub const UTILIZATION_BINS: usize = 10;

/// Version stamp of the [`FleetMetrics::to_json`] schema, exported as
/// the `schema_version` field so downstream consumers can detect drift
/// explicitly instead of by parse failure. Bump it whenever the golden
/// snapshot in `tests/fleet_end_to_end.rs` changes shape.
///
/// History: 1 — implicit pre-versioning schema (through PR 3);
/// 2 — adds `schema_version`, `truncated_jobs`, `migration_stall_secs`.
/// Within 2, `expired_hopeless` is an *optional* field emitted only when
/// nonzero (demand-aware expiry is off by default), so default-path
/// exports — and the golden snapshot pinning them — stay byte-stable.
/// 3 — adds the `telemetry` block (windowed time-series, merged-sketch
/// quantiles, profile counters, optional decision trace). A run with
/// telemetry *off* — the default — still renders as
/// [`BASE_SCHEMA_VERSION`] with no `telemetry` member, byte-identical to
/// the pre-telemetry export, so the version number always tells the
/// truth about the shape.
pub const METRICS_SCHEMA_VERSION: u32 = 3;

/// The schema version rendered when telemetry is disabled: the v2 shape,
/// unchanged byte-for-byte (see [`METRICS_SCHEMA_VERSION`]'s history).
pub const BASE_SCHEMA_VERSION: u32 = 2;

/// Accumulated results for one node across every epoch of a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// Node name.
    pub name: String,
    /// Physical SMs of the node's device.
    pub total_sms: u32,
    /// Releases observed across all epochs.
    pub released: u64,
    /// Completions across all epochs.
    pub completed: u64,
    /// Deadline misses (late + skipped + dropped) across all epochs.
    pub missed: u64,
    /// Achieved frames per second over the whole run window.
    pub fps: f64,
    /// Deadline-miss rate over the whole run.
    pub dmr: f64,
    /// Mean admission-utilisation (demand/budget) across epochs.
    pub mean_utilization: f64,
    /// Tenants resident when the run ended.
    pub final_tenants: usize,
}

/// Aggregated results of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetMetrics {
    /// Simulated run length.
    pub window: SimDuration,
    /// Per-node accumulation.
    pub nodes: Vec<NodeReport>,
    /// Fleet-wide frames per second (`Σ completed / window`).
    pub total_fps: f64,
    /// Fleet-wide deadline-miss rate.
    pub dmr: f64,
    /// Tenant arrivals offered to the dispatcher.
    pub arrivals: u64,
    /// Arrivals admitted immediately.
    pub admitted: u64,
    /// Arrivals that never became resident: they were deferred to the
    /// wait queue for lack of capacity and no departure ever let them in
    /// (an *eventual* outcome, not the at-arrival snapshot — see
    /// [`FleetMetrics::deferred`] for how many merely waited).
    pub rejected: u64,
    /// Arrivals dropped outright because they were latency-infeasible on
    /// every node (no departure could ever make them fit).
    pub infeasible: u64,
    /// Arrivals that could not be placed immediately and entered the
    /// wait queue, regardless of whether they were admitted later.
    pub deferred: u64,
    /// Arrivals rejected because a tenant with the same name was already
    /// active (resident or queued); see the uniqueness contract on
    /// [`crate::TenantSpec::name`].
    pub duplicates: u64,
    /// Queued tenants admitted later, after departures freed capacity.
    pub admitted_after_wait: u64,
    /// Tenants still waiting when the run ended.
    pub still_queued: u64,
    /// Tenant departures applied.
    pub departures: u64,
    /// Tenants migrated off overloaded nodes.
    pub migrations: u64,
    /// Jobs lost to epoch-boundary truncation: admitted and still in
    /// flight when their epoch's window closed, so they count neither as
    /// completed nor missed (<3 % at one-second epochs and the paper's
    /// 33 ms periods). The epoch path counts them; the event path
    /// ([`crate::Fleet::run_events`]) carries scheduler state across
    /// boundaries and asserts this stays zero.
    pub truncated_jobs: u64,
    /// Total simulated seconds tenants spent stalled in migration state
    /// transfers ([`crate::MigrationConfig::cost`], event path only).
    /// Re-pricing partition switches contribute nothing here — that gap
    /// is the paper's zero-cost-switching property, measured.
    pub migration_stall_secs: f64,
    /// The [`METRICS_SCHEMA_VERSION`] this report was rendered with.
    pub schema_version: u32,
    /// Admissions at a degraded [`crate::TenantSpec::fps_ladder`] step —
    /// at arrival or out of the wait queue — instead of a rejection
    /// (requires [`crate::QueueConfig::repricing`]).
    pub degraded: u64,
    /// Re-pricing steps back up: at epoch boundaries freed capacity lets
    /// a degraded tenant serve at a higher ladder step (or its requested
    /// rate) again. Counts steps, so one tenant may contribute several.
    pub upgrades: u64,
    /// Queued tenants that gave up waiting: their
    /// [`crate::TenantSpec::max_wait`] elapsed before capacity freed.
    /// Expired in-run deferrals count toward [`FleetMetrics::rejected`].
    pub expired: u64,
    /// Queued tenants expired *early* by demand-aware expiry
    /// ([`crate::QueueConfig::demand_aware_expiry`]): provably unable to
    /// ever be admitted — no node could carry them even fully drained,
    /// at any ladder step — so waiting out their patience could never
    /// pay off. Counted separately from patience [`FleetMetrics::expired`];
    /// in-run deferrals expired this way also count toward
    /// [`FleetMetrics::rejected`]. Exported to JSON only when nonzero
    /// (see [`METRICS_SCHEMA_VERSION`]).
    pub expired_hopeless: u64,
    /// Mean wait (seconds) of this run's deferrals that were admitted
    /// out of the queue (0 when none were).
    pub queue_wait_mean_secs: f64,
    /// Longest such wait in seconds.
    pub queue_wait_max_secs: f64,
    /// `(rejected + infeasible) / arrivals` (0 when nothing arrived),
    /// where `rejected` counts *eventual* outcomes: a tenant that queued
    /// and was later admitted is not a rejection.
    pub rejection_rate: f64,
    /// Histogram of per-node-per-epoch admission utilisation, 10 bins of
    /// width 0.1 with the last bin catching ≥ 0.9.
    pub utilization_histogram: [u64; UTILIZATION_BINS],
    /// The run's telemetry ([`crate::TelemetryConfig`]): windowed
    /// time-series, merged-sketch wait/latency quantiles, profile
    /// counters, and the optional decision trace. `None` — and omitted
    /// from the JSON export — when telemetry is disabled (the default).
    pub telemetry: Option<TelemetryReport>,
}

impl FleetMetrics {
    /// Renders the metrics as pretty-printed JSON (hand-rolled: the
    /// vendored serde stand-in has no serializer).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {},\n",
            self.schema_version
        ));
        out.push_str(&format!(
            "  \"window_secs\": {:.3},\n",
            self.window.as_secs_f64()
        ));
        out.push_str(&format!("  \"total_fps\": {:.2},\n", self.total_fps));
        out.push_str(&format!("  \"dmr\": {:.4},\n", self.dmr));
        out.push_str(&format!("  \"arrivals\": {},\n", self.arrivals));
        out.push_str(&format!("  \"admitted\": {},\n", self.admitted));
        out.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        out.push_str(&format!("  \"infeasible\": {},\n", self.infeasible));
        out.push_str(&format!("  \"deferred\": {},\n", self.deferred));
        out.push_str(&format!("  \"duplicates\": {},\n", self.duplicates));
        out.push_str(&format!(
            "  \"admitted_after_wait\": {},\n",
            self.admitted_after_wait
        ));
        out.push_str(&format!("  \"still_queued\": {},\n", self.still_queued));
        out.push_str(&format!("  \"departures\": {},\n", self.departures));
        out.push_str(&format!("  \"migrations\": {},\n", self.migrations));
        out.push_str(&format!(
            "  \"truncated_jobs\": {},\n",
            self.truncated_jobs
        ));
        out.push_str(&format!(
            "  \"migration_stall_secs\": {:.4},\n",
            self.migration_stall_secs
        ));
        out.push_str(&format!("  \"degraded\": {},\n", self.degraded));
        out.push_str(&format!("  \"upgrades\": {},\n", self.upgrades));
        out.push_str(&format!("  \"expired\": {},\n", self.expired));
        if self.expired_hopeless > 0 {
            // Optional field: emitted only when demand-aware expiry
            // actually fired, keeping default-path exports (and the
            // golden snapshot) byte-stable.
            out.push_str(&format!(
                "  \"expired_hopeless\": {},\n",
                self.expired_hopeless
            ));
        }
        out.push_str(&format!(
            "  \"queue_wait_mean_secs\": {:.4},\n",
            self.queue_wait_mean_secs
        ));
        out.push_str(&format!(
            "  \"queue_wait_max_secs\": {:.4},\n",
            self.queue_wait_max_secs
        ));
        out.push_str(&format!(
            "  \"rejection_rate\": {:.4},\n",
            self.rejection_rate
        ));
        out.push_str("  \"utilization_histogram\": [");
        for (i, b) in self.utilization_histogram.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&b.to_string());
        }
        out.push_str("],\n");
        if let Some(telemetry) = &self.telemetry {
            out.push_str(&telemetry.render_json());
        }
        out.push_str("  \"nodes\": [\n");
        for (i, n) in self.nodes.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": \"{}\", ", json_escape(&n.name)));
            out.push_str(&format!("\"total_sms\": {}, ", n.total_sms));
            out.push_str(&format!("\"fps\": {:.2}, ", n.fps));
            out.push_str(&format!("\"dmr\": {:.4}, ", n.dmr));
            out.push_str(&format!("\"released\": {}, ", n.released));
            out.push_str(&format!("\"completed\": {}, ", n.completed));
            out.push_str(&format!("\"missed\": {}, ", n.missed));
            out.push_str(&format!(
                "\"mean_utilization\": {:.4}, ",
                n.mean_utilization
            ));
            out.push_str(&format!("\"final_tenants\": {}", n.final_tenants));
            out.push('}');
            if i + 1 < self.nodes.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}");
        out
    }

    /// Attaches a finished telemetry report, bumping the export to
    /// [`METRICS_SCHEMA_VERSION`]. A `None` report is a no-op: the
    /// metrics keep the [`BASE_SCHEMA_VERSION`] shape.
    pub fn attach_telemetry(&mut self, telemetry: Option<TelemetryReport>) {
        if telemetry.is_some() {
            self.telemetry = telemetry;
            self.schema_version = METRICS_SCHEMA_VERSION;
        }
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Streaming accumulator: folds per-epoch [`RunMetrics`] and dispatch
/// events into a [`FleetMetrics`].
#[derive(Debug, Clone)]
pub struct FleetMetricsBuilder {
    names: Vec<String>,
    sms: Vec<u32>,
    released: Vec<u64>,
    completed: Vec<u64>,
    missed: Vec<u64>,
    utilization_sum: Vec<f64>,
    utilization_samples: Vec<u64>,
    histogram: [u64; UTILIZATION_BINS],
    pub(crate) arrivals: u64,
    pub(crate) admitted: u64,
    pub(crate) rejected: u64,
    pub(crate) infeasible: u64,
    pub(crate) deferred: u64,
    pub(crate) duplicates: u64,
    pub(crate) admitted_after_wait: u64,
    pub(crate) departures: u64,
    pub(crate) migrations: u64,
    pub(crate) degraded: u64,
    pub(crate) upgrades: u64,
    pub(crate) expired: u64,
    pub(crate) expired_hopeless: u64,
    truncated: u64,
    migration_stall: SimDuration,
    wait_total: SimDuration,
    wait_max: SimDuration,
    wait_samples: u64,
}

impl FleetMetricsBuilder {
    /// A builder for nodes with the given names and SM counts.
    #[must_use]
    pub fn new(names: Vec<String>, sms: Vec<u32>) -> Self {
        let n = names.len();
        assert_eq!(n, sms.len(), "one SM count per node");
        FleetMetricsBuilder {
            names,
            sms,
            released: vec![0; n],
            completed: vec![0; n],
            missed: vec![0; n],
            utilization_sum: vec![0.0; n],
            utilization_samples: vec![0; n],
            histogram: [0; UTILIZATION_BINS],
            arrivals: 0,
            admitted: 0,
            rejected: 0,
            infeasible: 0,
            deferred: 0,
            duplicates: 0,
            admitted_after_wait: 0,
            departures: 0,
            migrations: 0,
            degraded: 0,
            upgrades: 0,
            expired: 0,
            expired_hopeless: 0,
            truncated: 0,
            migration_stall: SimDuration::ZERO,
            wait_total: SimDuration::ZERO,
            wait_max: SimDuration::ZERO,
            wait_samples: 0,
        }
    }

    /// Records the queue wait of one deferred-then-admitted tenant.
    pub fn record_wait(&mut self, waited: SimDuration) {
        self.wait_total += waited;
        if waited > self.wait_max {
            self.wait_max = waited;
        }
        self.wait_samples += 1;
    }

    /// Folds one epoch's scheduler metrics for node `node`. Releases the
    /// epoch admitted but neither completed nor dropped were in flight
    /// when the window closed — the epoch-boundary truncation artifact,
    /// surfaced as [`FleetMetrics::truncated_jobs`].
    pub fn record_epoch(&mut self, node: usize, m: &RunMetrics) {
        self.released[node] += m.released;
        self.completed[node] += m.completed;
        self.missed[node] += m.late + m.skipped + m.dropped;
        self.truncated += m
            .released
            .saturating_sub(m.completed + m.skipped + m.dropped);
    }

    /// Records one frame release of node `node` (event path).
    pub fn record_released(&mut self, node: usize) {
        self.released[node] += 1;
    }

    /// Records one job completion of node `node` (event path); a late
    /// completion is also a miss.
    pub fn record_completed(&mut self, node: usize, late: bool) {
        self.completed[node] += 1;
        if late {
            self.missed[node] += 1;
        }
    }

    /// Records one skipped (dropped-at-release) frame of node `node`
    /// (event path): released but never served, counted as a miss.
    pub fn record_skipped(&mut self, node: usize) {
        self.missed[node] += 1;
    }

    /// Adds one migration's state-transfer stall (event path).
    pub fn record_migration_stall(&mut self, stall: SimDuration) {
        self.migration_stall += stall;
    }

    /// Records a node's admission utilisation (demand/budget) for one
    /// epoch. The engines only produce finite samples (budget > 0 is
    /// checked before dividing), so a non-finite value is a caller bug —
    /// asserted in debug builds, sanitized to 0.0 in release rather than
    /// poisoning the mean. The histogram bin clamps the sample to
    /// `[0, 1]` explicitly: the old `as usize` cast silently collapsed
    /// negative (and NaN) samples into bin 0, which *looked* like a
    /// valid idle reading; overload samples above 1.0 stay in the top
    /// bin, and the mean keeps the raw (unclamped) value so overload
    /// magnitudes still show up in `mean_utilization`.
    pub fn record_utilization(&mut self, node: usize, utilization: f64) {
        debug_assert!(
            utilization.is_finite(),
            "utilization sample must be finite, got {utilization}"
        );
        let sample = if utilization.is_finite() { utilization } else { 0.0 };
        self.utilization_sum[node] += sample;
        self.utilization_samples[node] += 1;
        let clamped = sample.clamp(0.0, 1.0);
        let bin = ((clamped * UTILIZATION_BINS as f64) as usize).min(UTILIZATION_BINS - 1);
        self.histogram[bin] += 1;
    }

    /// Finalises the fleet metrics for a run of length `window`, with
    /// `final_tenants`/`still_queued` from the dispatcher's end state.
    #[must_use]
    pub fn finish(
        self,
        window: SimDuration,
        final_tenants: &[usize],
        still_queued: u64,
    ) -> FleetMetrics {
        let secs = window.as_secs_f64();
        let nodes: Vec<NodeReport> = (0..self.names.len())
            .map(|i| {
                let released = self.released[i];
                let missed = self.missed[i];
                NodeReport {
                    name: self.names[i].clone(),
                    total_sms: self.sms[i],
                    released,
                    completed: self.completed[i],
                    missed,
                    fps: if secs > 0.0 {
                        self.completed[i] as f64 / secs
                    } else {
                        0.0
                    },
                    dmr: if released > 0 {
                        missed as f64 / released as f64
                    } else {
                        0.0
                    },
                    mean_utilization: if self.utilization_samples[i] > 0 {
                        self.utilization_sum[i] / self.utilization_samples[i] as f64
                    } else {
                        0.0
                    },
                    final_tenants: final_tenants.get(i).copied().unwrap_or(0),
                }
            })
            .collect();
        let released: u64 = nodes.iter().map(|n| n.released).sum();
        let completed: u64 = nodes.iter().map(|n| n.completed).sum();
        let missed: u64 = nodes.iter().map(|n| n.missed).sum();
        FleetMetrics {
            window,
            total_fps: if secs > 0.0 {
                completed as f64 / secs
            } else {
                0.0
            },
            dmr: if released > 0 {
                missed as f64 / released as f64
            } else {
                0.0
            },
            nodes,
            arrivals: self.arrivals,
            admitted: self.admitted,
            rejected: self.rejected,
            infeasible: self.infeasible,
            deferred: self.deferred,
            duplicates: self.duplicates,
            admitted_after_wait: self.admitted_after_wait,
            still_queued,
            departures: self.departures,
            migrations: self.migrations,
            degraded: self.degraded,
            upgrades: self.upgrades,
            expired: self.expired,
            expired_hopeless: self.expired_hopeless,
            truncated_jobs: self.truncated,
            migration_stall_secs: self.migration_stall.as_secs_f64(),
            // Telemetry attaches afterwards (see `attach_telemetry`);
            // until then the report has the v2 shape and says so.
            schema_version: BASE_SCHEMA_VERSION,
            telemetry: None,
            queue_wait_mean_secs: if self.wait_samples > 0 {
                self.wait_total.as_secs_f64() / self.wait_samples as f64
            } else {
                0.0
            },
            queue_wait_max_secs: self.wait_max.as_secs_f64(),
            rejection_rate: if self.arrivals > 0 {
                (self.rejected + self.infeasible) as f64 / self.arrivals as f64
            } else {
                0.0
            },
            utilization_histogram: self.histogram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgprs_rt::SimTime;

    fn run_metrics(released: u64, completed: u64, late: u64) -> RunMetrics {
        let mut c = sgprs_core::MetricsCollector::new(vec!["t".into()], SimTime::ZERO);
        let mut t = SimTime::ZERO;
        for i in 0..released {
            t = SimTime::ZERO + SimDuration::from_millis(33 * (i + 1));
            c.record_release(0, t);
            if i < completed {
                let fin = t + SimDuration::from_millis(10);
                let deadline = if i < late {
                    t + SimDuration::from_millis(5)
                } else {
                    t + SimDuration::from_millis(33)
                };
                c.record_completion(0, t, fin, deadline);
            } else {
                c.record_skip(0, t);
            }
        }
        c.finish(t + SimDuration::from_secs(1))
    }

    #[test]
    fn epochs_accumulate_into_totals() {
        let mut b = FleetMetricsBuilder::new(vec!["a".into(), "b".into()], vec![68, 34]);
        b.record_epoch(0, &run_metrics(10, 10, 0));
        b.record_epoch(0, &run_metrics(10, 8, 2));
        b.record_epoch(1, &run_metrics(5, 5, 0));
        b.arrivals = 3;
        b.admitted = 3;
        let m = b.finish(SimDuration::from_secs(2), &[2, 1], 0);
        assert_eq!(m.nodes[0].released, 20);
        assert_eq!(m.nodes[0].completed, 18);
        // 2 late + 2 skipped from the second epoch.
        assert_eq!(m.nodes[0].missed, 4);
        assert_eq!(m.nodes[1].completed, 5);
        assert!((m.total_fps - 23.0 / 2.0).abs() < 1e-9);
        assert_eq!(m.rejection_rate, 0.0);
        assert_eq!(m.nodes[0].final_tenants, 2);
    }

    #[test]
    fn histogram_bins_cover_the_unit_interval() {
        let mut b = FleetMetricsBuilder::new(vec!["a".into()], vec![68]);
        for u in [0.0, 0.05, 0.55, 0.95, 1.4] {
            b.record_utilization(0, u);
        }
        let m = b.finish(SimDuration::from_secs(1), &[0], 0);
        assert_eq!(m.utilization_histogram[0], 2);
        assert_eq!(m.utilization_histogram[5], 1);
        assert_eq!(m.utilization_histogram[9], 2, "overload lands in the top bin");
        assert!((m.nodes[0].mean_utilization - 0.59).abs() < 1e-9);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut b = FleetMetricsBuilder::new(vec!["gpu\"0\"".into()], vec![68]);
        b.arrivals = 2;
        b.rejected = 1;
        b.deferred = 1;
        b.duplicates = 3;
        b.degraded = 2;
        b.upgrades = 1;
        b.expired = 1;
        b.record_wait(SimDuration::from_secs(1));
        b.record_wait(SimDuration::from_secs(3));
        b.record_migration_stall(SimDuration::from_millis(250));
        let m = b.finish(SimDuration::from_secs(1), &[1], 1);
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(
            json.starts_with("{\n  \"schema_version\": 2,"),
            "the schema version leads the export: {json}"
        );
        assert!(json.contains("\"truncated_jobs\": 0"));
        assert!(json.contains("\"migration_stall_secs\": 0.2500"));
        assert!(json.contains("\"rejection_rate\": 0.5000"));
        assert!(json.contains("\"deferred\": 1"));
        assert!(json.contains("\"duplicates\": 3"));
        assert!(json.contains("\"degraded\": 2"));
        assert!(json.contains("\"upgrades\": 1"));
        assert!(json.contains("\"expired\": 1"));
        assert!(json.contains("\"queue_wait_mean_secs\": 2.0000"));
        assert!(json.contains("\"queue_wait_max_secs\": 3.0000"));
        assert!(json.contains("gpu\\\"0\\\""), "names are escaped: {json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn attaching_telemetry_bumps_the_schema_version() {
        use crate::telemetry::{ProfileReport, SketchSummary};
        let b = FleetMetricsBuilder::new(vec!["a".into()], vec![68]);
        let mut m = b.finish(SimDuration::from_secs(1), &[0], 0);
        assert_eq!(m.schema_version, BASE_SCHEMA_VERSION);
        m.attach_telemetry(None);
        assert_eq!(m.schema_version, BASE_SCHEMA_VERSION, "None is a no-op");
        assert!(!m.to_json().contains("\"telemetry\""));
        let empty = SketchSummary {
            count: 0,
            p50_ms: 0.0,
            p90_ms: 0.0,
            p99_ms: 0.0,
            max_ms: 0.0,
        };
        m.attach_telemetry(Some(TelemetryReport {
            window_secs: 0.25,
            windows: Vec::new(),
            queue_wait: empty.clone(),
            job_latency: empty,
            profile: ProfileReport {
                plans: 1,
                shard_probes: 0,
                drain_scans: 0,
                event_queue_ops: 0,
                trace_recorded: 0,
                trace_dropped: 0,
            },
            trace_enabled: false,
            trace: Vec::new(),
        }));
        assert_eq!(m.schema_version, METRICS_SCHEMA_VERSION);
        let json = m.to_json();
        assert!(json.starts_with("{\n  \"schema_version\": 3,"), "{json}");
        assert!(json.contains("\"telemetry\": {"));
        assert!(json.contains("\"window_secs\": 0.250"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn expired_hopeless_is_an_optional_json_field() {
        // Zero (the default path) leaves the export byte-identical to
        // the pinned schema; a nonzero count surfaces explicitly.
        let b = FleetMetricsBuilder::new(vec!["a".into()], vec![68]);
        let silent = b.finish(SimDuration::from_secs(1), &[0], 0);
        assert!(
            !silent.to_json().contains("expired_hopeless"),
            "zero stays out of the pinned schema"
        );
        let mut b = FleetMetricsBuilder::new(vec!["a".into()], vec![68]);
        b.expired_hopeless = 2;
        let m = b.finish(SimDuration::from_secs(1), &[0], 0);
        assert_eq!(m.expired_hopeless, 2);
        let json = m.to_json();
        assert!(json.contains("\"expired_hopeless\": 2"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn epoch_folds_count_truncated_in_flight_jobs() {
        // Three releases: one completed, one skipped, one neither — the
        // last was in flight when the epoch window closed.
        let mut c = sgprs_core::MetricsCollector::new(vec!["t".into()], SimTime::ZERO);
        let t0 = SimTime::ZERO + SimDuration::from_millis(33);
        c.record_release(0, t0);
        c.record_completion(0, t0, t0 + SimDuration::from_millis(10), t0 + SimDuration::from_millis(33));
        let t1 = t0 + SimDuration::from_millis(33);
        c.record_release(0, t1);
        c.record_skip(0, t1);
        let t2 = t1 + SimDuration::from_millis(33);
        c.record_release(0, t2);
        let epoch = c.finish(t2 + SimDuration::from_millis(20));
        assert_eq!(epoch.released, 3);
        assert_eq!(epoch.completed, 1);
        assert_eq!(epoch.skipped, 1);
        let mut b = FleetMetricsBuilder::new(vec!["a".into()], vec![68]);
        b.record_epoch(0, &epoch);
        let m = b.finish(SimDuration::from_secs(1), &[0], 0);
        assert_eq!(
            m.truncated_jobs, 1,
            "the in-flight release is the truncation artifact: {m:?}"
        );
        assert!(m.to_json().contains("\"truncated_jobs\": 1"));
    }

    #[test]
    fn event_records_accumulate_like_an_epoch_fold() {
        let mut b = FleetMetricsBuilder::new(vec!["a".into()], vec![68]);
        for _ in 0..10 {
            b.record_released(0);
        }
        for i in 0..7 {
            b.record_completed(0, i < 2); // two late
        }
        b.record_skipped(0);
        let m = b.finish(SimDuration::from_secs(1), &[0], 0);
        assert_eq!(m.nodes[0].released, 10);
        assert_eq!(m.nodes[0].completed, 7);
        assert_eq!(m.nodes[0].missed, 3, "2 late + 1 skipped");
        assert_eq!(
            m.truncated_jobs, 0,
            "event-path records never touch the truncation counter"
        );
        assert!((m.nodes[0].dmr - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_run_yields_zeroes() {
        let b = FleetMetricsBuilder::new(vec!["a".into()], vec![68]);
        let m = b.finish(SimDuration::from_secs(1), &[0], 0);
        assert_eq!(m.total_fps, 0.0);
        assert_eq!(m.dmr, 0.0);
        assert_eq!(m.rejection_rate, 0.0);
    }

    /// Regression: the histogram bin used a bare `as usize` cast, so a
    /// negative sample (and NaN, via the saturating cast) landed in bin
    /// 0 indistinguishable from a genuine idle reading, and nothing
    /// flagged the bogus input. Edge samples now clamp into the valid
    /// bin range (overload above 1.0 stays in the top bin, as before),
    /// and non-finite samples are a debug assertion.
    #[test]
    fn utilization_edge_samples_bin_sanely() {
        let mut b = FleetMetricsBuilder::new(vec!["a".into()], vec![68]);
        b.record_utilization(0, -0.4); // clamped into bin 0
        b.record_utilization(0, 0.0);
        b.record_utilization(0, 0.95);
        b.record_utilization(0, 7.5); // overload: top bin, not overflow
        let m = b.finish(SimDuration::from_secs(1), &[0], 0);
        assert_eq!(m.utilization_histogram[0], 2);
        assert_eq!(m.utilization_histogram[UTILIZATION_BINS - 1], 2);
        assert_eq!(m.utilization_histogram.iter().sum::<u64>(), 4);
        // The mean keeps raw values: overload magnitude must survive.
        let mean = m.nodes[0].mean_utilization;
        assert!((mean - (-0.4 + 0.95 + 7.5) / 4.0).abs() < 1e-12, "{mean}");
        if cfg!(debug_assertions) {
            let err = std::panic::catch_unwind(|| {
                let mut b = FleetMetricsBuilder::new(vec!["a".into()], vec![68]);
                b.record_utilization(0, f64::NAN);
            });
            assert!(err.is_err(), "non-finite samples are a caller bug");
        } else {
            let mut b = FleetMetricsBuilder::new(vec!["a".into()], vec![68]);
            b.record_utilization(0, f64::NAN);
            let m = b.finish(SimDuration::from_secs(1), &[0], 0);
            assert_eq!(m.utilization_histogram[0], 1, "NaN sanitized to 0.0");
            assert_eq!(m.nodes[0].mean_utilization, 0.0);
        }
    }
}
