//! Fleet nodes: one simulated GPU plus the scheduler that drives it.

use crate::TenantSpec;
use serde::{Deserialize, Serialize};
use sgprs_core::{
    ContextPoolSpec, NaiveConfig, NaiveScheduler, ReconfigConfig, ReconfigScheduler, RunMetrics,
    SgprsConfig, SgprsScheduler,
};
use sgprs_gpu_sim::{GpuSpec, SpeedupModel};
use sgprs_rt::{SimDuration, SimTime};

/// Which scheduler a node runs over its context pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeScheduler {
    /// SGPRS with the given over-subscription factor (the fleet default).
    Sgprs {
        /// The `os` level (1.5 is the paper's sweet spot at `np = 3`).
        oversubscription: f64,
    },
    /// The naive static spatial partitioner.
    Naive,
    /// The reconfiguring partitioner (repartitions on tenant churn).
    Reconfig,
}

/// Static description of one fleet node: the device, how it is
/// partitioned, and which scheduler runs on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Node name for reports (e.g. `"gpu0"`).
    pub name: String,
    /// The simulated device (heterogeneous fleets mix SM counts).
    pub gpu: GpuSpec,
    /// Number of contexts the pool is split into.
    pub contexts: usize,
    /// The scheduler variant.
    pub scheduler: NodeScheduler,
}

impl NodeSpec {
    /// A node running SGPRS at the paper's `np = 3`, `os = 1.5` sweet
    /// spot on the given device.
    #[must_use]
    pub fn sgprs(name: impl Into<String>, gpu: GpuSpec) -> Self {
        NodeSpec {
            name: name.into(),
            gpu,
            contexts: 3,
            scheduler: NodeScheduler::Sgprs {
                oversubscription: 1.5,
            },
        }
    }

    /// Overrides the context count.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero.
    #[must_use]
    pub fn with_contexts(mut self, contexts: usize) -> Self {
        assert!(contexts > 0, "a node needs at least one context");
        self.contexts = contexts;
        self
    }

    /// Overrides the scheduler variant.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: NodeScheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The context pool this node partitions its device into.
    #[must_use]
    pub fn pool(&self) -> ContextPoolSpec {
        let os = match self.scheduler {
            NodeScheduler::Sgprs { oversubscription } => oversubscription,
            NodeScheduler::Naive | NodeScheduler::Reconfig => 1.0,
        };
        ContextPoolSpec::new(self.contexts, os).with_gpu(self.gpu.clone())
    }

    /// Fluid-model capacity of this node in SM-equivalents for work with
    /// the given effective speedup curve sample: each context keeps
    /// `concurrency` stages resident on even SM shares, and the device
    /// never delivers more than its physical SMs (the same occupancy
    /// argument as [`sgprs_core::analysis::estimate_capacity`]).
    #[must_use]
    pub fn capacity_sm_equivalents(
        &self,
        profile: &sgprs_gpu_sim::WorkProfile,
        concurrency: f64,
    ) -> f64 {
        let speedup = SpeedupModel::calibrated_rtx_2080_ti();
        let demand: f64 = self
            .pool()
            .sm_allocations()
            .iter()
            .map(|&sm| {
                let m_eff = f64::from(sm) / concurrency;
                concurrency * profile.effective_speedup(&speedup, m_eff)
            })
            .sum();
        demand.min(f64::from(self.gpu.total_sms))
    }

    /// Runs this node's scheduler over `tenants` compiled against the
    /// node pool, from time zero to `horizon`, with metrics over the whole
    /// window (no warm-up: the fleet driver accounts epochs itself).
    #[must_use]
    pub fn run_epoch(
        &self,
        tasks: Vec<sgprs_core::CompiledTask>,
        horizon: SimDuration,
        seed: u64,
    ) -> RunMetrics {
        let end = SimTime::ZERO + horizon;
        match self.scheduler {
            NodeScheduler::Sgprs { .. } => {
                let mut cfg = SgprsConfig::new(self.pool()).with_seed(seed);
                cfg.warmup = SimDuration::ZERO;
                SgprsScheduler::new(cfg, tasks).run(end)
            }
            NodeScheduler::Naive => {
                let mut cfg = NaiveConfig::new(self.contexts).with_seed(seed);
                cfg.gpu = self.gpu.clone();
                cfg.warmup = SimDuration::ZERO;
                NaiveScheduler::new(cfg, tasks).run(end)
            }
            NodeScheduler::Reconfig => {
                let mut cfg = ReconfigConfig::new();
                cfg.base = NaiveConfig::new(self.contexts).with_seed(seed);
                cfg.base.gpu = self.gpu.clone();
                cfg.base.warmup = SimDuration::ZERO;
                ReconfigScheduler::new(cfg, tasks).run(end)
            }
        }
    }
}

/// Run-time state of a node inside a [`crate::Fleet`]: the spec plus the
/// tenants currently placed on it.
#[derive(Debug, Clone)]
pub struct FleetNode {
    /// The static description.
    pub spec: NodeSpec,
    /// Tenants resident on this node, in placement order.
    pub tenants: Vec<TenantSpec>,
    /// The pool's per-context SM allocations, computed once here: the
    /// spec is immutable after construction, and materialising the pool
    /// on demand allocates (name strings + the allocation Vec) on paths
    /// admission probes per candidate.
    sm_allocs: Vec<u32>,
    /// `max(sm_allocs)` — the biggest context, the capacity side of
    /// every best-case-latency gate.
    max_context_sm: u32,
}

impl FleetNode {
    /// A node with no tenants.
    #[must_use]
    pub fn new(spec: NodeSpec) -> Self {
        let sm_allocs = spec.pool().sm_allocations();
        let max_context_sm = sm_allocs.iter().copied().max().unwrap_or(0);
        FleetNode {
            spec,
            tenants: Vec::new(),
            sm_allocs,
            max_context_sm,
        }
    }

    /// The pool's per-context SM allocations (cached at construction;
    /// identical to `spec.pool().sm_allocations()`).
    #[must_use]
    pub fn sm_allocs(&self) -> &[u32] {
        &self.sm_allocs
    }

    /// SMs of the biggest context (cached at construction).
    #[must_use]
    pub fn max_context_sm(&self) -> u32 {
        self.max_context_sm
    }

    /// [`NodeSpec::capacity_sm_equivalents`] over the cached
    /// allocations: the identical fold in the identical order, without
    /// materialising the pool per call.
    #[must_use]
    pub fn capacity_sm_equivalents(
        &self,
        profile: &sgprs_gpu_sim::WorkProfile,
        concurrency: f64,
    ) -> f64 {
        let speedup = SpeedupModel::calibrated_rtx_2080_ti();
        let demand: f64 = self
            .sm_allocs
            .iter()
            .map(|&sm| {
                let m_eff = f64::from(sm) / concurrency;
                concurrency * profile.effective_speedup(&speedup, m_eff)
            })
            .sum();
        demand.min(f64::from(self.spec.gpu.total_sms))
    }

    /// Total steady-state demand of the resident tenants, in
    /// SM-equivalents.
    #[must_use]
    pub fn total_demand(&self) -> f64 {
        self.tenants
            .iter()
            .map(TenantSpec::demand_sm_equivalents)
            .sum()
    }

    /// The demand-weighted work profile of the resident tenants plus an
    /// optional candidate — the mix the capacity estimate is taken at.
    #[must_use]
    pub fn mixed_profile(&self, candidate: Option<&TenantSpec>) -> sgprs_gpu_sim::WorkProfile {
        let mut mix = sgprs_gpu_sim::WorkProfile::new();
        for t in self.tenants.iter().chain(candidate) {
            mix.merge(t.model.work_profile());
        }
        mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelKind;

    #[test]
    fn pool_reflects_scheduler_and_device() {
        let node = NodeSpec::sgprs("g", GpuSpec::synthetic(34));
        let pool = node.pool();
        assert_eq!(pool.contexts, 3);
        assert_eq!(pool.gpu.total_sms, 34);
        assert!((pool.oversubscription - 1.5).abs() < 1e-12);
        let naive = node.with_scheduler(NodeScheduler::Naive);
        assert!((naive.pool().oversubscription - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_is_bounded_by_physical_sms() {
        let tenant = TenantSpec::new("t", ModelKind::ResNet18, 30.0);
        let profile = tenant.model.network().work_profile(&sgprs_dnn::CostModel::calibrated());
        for sms in [16u32, 34, 68] {
            let node = NodeSpec::sgprs("g", GpuSpec::synthetic(sms));
            let cap = node.capacity_sm_equivalents(&profile, 4.0);
            assert!(cap > 0.0 && cap <= f64::from(sms) + 1e-9, "{sms}: {cap}");
        }
    }

    #[test]
    fn bigger_devices_have_more_capacity() {
        let profile = ModelKind::ResNet18
            .network()
            .work_profile(&sgprs_dnn::CostModel::calibrated());
        let small = NodeSpec::sgprs("s", GpuSpec::synthetic(23));
        let large = NodeSpec::sgprs("l", GpuSpec::synthetic(68));
        assert!(
            large.capacity_sm_equivalents(&profile, 4.0)
                > small.capacity_sm_equivalents(&profile, 4.0)
        );
    }

    #[test]
    fn run_epoch_produces_throughput_for_each_scheduler() {
        for scheduler in [
            NodeScheduler::Sgprs {
                oversubscription: 1.5,
            },
            NodeScheduler::Naive,
            NodeScheduler::Reconfig,
        ] {
            let node = NodeSpec::sgprs("g", GpuSpec::rtx_2080_ti()).with_scheduler(scheduler);
            let tenant = TenantSpec::new("cam", ModelKind::ResNet18, 30.0);
            let tasks = vec![tenant.compile_for(&node.pool()); 2];
            let m = node.run_epoch(tasks, SimDuration::from_secs(1), 7);
            assert!(m.total_fps > 0.0, "{scheduler:?}: {m:?}");
        }
    }

    #[test]
    fn cached_pool_statics_match_the_spec_recompute() {
        // The determinism stake: the cached fold must be *bit*-identical
        // to the on-demand pool math it replaced on the admission path.
        let profile = ModelKind::ResNet18
            .network()
            .work_profile(&sgprs_dnn::CostModel::calibrated());
        for sms in [16u32, 34, 68] {
            let spec = NodeSpec::sgprs("g", GpuSpec::synthetic(sms));
            let node = FleetNode::new(spec.clone());
            assert_eq!(node.sm_allocs(), spec.pool().sm_allocations().as_slice());
            assert_eq!(
                Some(node.max_context_sm()),
                spec.pool().sm_allocations().into_iter().max()
            );
            assert_eq!(
                node.capacity_sm_equivalents(&profile, 4.0),
                spec.capacity_sm_equivalents(&profile, 4.0)
            );
        }
    }

    #[test]
    fn fleet_node_accumulates_demand() {
        let mut node = FleetNode::new(NodeSpec::sgprs("g", GpuSpec::rtx_2080_ti()));
        assert_eq!(node.total_demand(), 0.0);
        node.tenants
            .push(TenantSpec::new("a", ModelKind::ResNet18, 30.0));
        node.tenants
            .push(TenantSpec::new("b", ModelKind::MobileNet, 30.0));
        let d = node.total_demand();
        assert!(d > 0.0);
        assert!(!node.mixed_profile(None).is_empty());
    }
}
