//! Tenant-name interning: dense `u32` ids for the dispatch hot path.
//!
//! The fleet keys every per-tenant structure — resident location, the
//! degraded-rate map, pending release phases, event payloads — by a
//! [`TenantId`] assigned at the fleet boundary, so the hot path does
//! index arithmetic instead of hashing and cloning `String` names.
//! Names are resolved back only at the render edge (JSON, telemetry)
//! and where the execution model's jitter hashes them.
//!
//! # Determinism
//!
//! Ids are assigned in **first-appearance order** of the arrival
//! sequence, and a departed tenant's id is recycled LIFO — both pure
//! functions of the event sequence, never of hash iteration order, so
//! interning is deterministic across runs, worker counts, and engines.
//! Recycling is also what bounds memory: the id space (and every
//! id-indexed `Vec`) grows to the *peak concurrently-active* tenant
//! count, not the trace length — the property that lets a fleet stream
//! millions of tenants in O(active) memory.

use std::collections::HashMap;

/// A dense handle for an active tenant, assigned by [`TenantInterner`]
/// in first-appearance order (recycled LIFO after release). Valid only
/// while the tenant is active; the fleet's generation/incarnation
/// guards make stale ids inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(u32);

impl TenantId {
    /// The id as a `Vec` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw slot (crate-internal: tests and the
    /// interner itself; callers elsewhere receive ids from `intern`).
    pub(crate) const fn from_raw(raw: u32) -> Self {
        TenantId(raw)
    }
}

impl core::fmt::Display for TenantId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "t#{}", self.0)
    }
}

/// Active-tenant name ⇄ id table with LIFO slot recycling.
///
/// `by_name` holds **active** tenants only, so a lookup doubles as the
/// fleet's duplicate/active check (the map is never iterated — keyed
/// lookup only, per the determinism contract's D001).
#[derive(Debug, Default)]
pub struct TenantInterner {
    /// Slot → name of the active tenant occupying it (`None` = free).
    names: Vec<Option<String>>,
    /// Active name → slot. Lookup-only; never iterated.
    by_name: HashMap<String, u32>,
    /// Freed slots, reused LIFO (deterministic: a pure function of the
    /// arrival/departure sequence).
    free: Vec<u32>,
    /// High-water mark of concurrently active tenants.
    peak_live: usize,
}

impl TenantInterner {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        TenantInterner::default()
    }

    /// Interns `name`, assigning the most recently freed slot (or a
    /// fresh one in first-appearance order).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already active (the caller must check
    /// [`TenantInterner::lookup`] first — the fleet's duplicate gate).
    pub fn intern(&mut self, name: &str) -> TenantId {
        assert!(
            !self.by_name.contains_key(name),
            "tenant name {name:?} is already active"
        );
        let slot = match self.free.pop() {
            Some(slot) => {
                self.names[slot as usize] = Some(name.to_string());
                slot
            }
            None => {
                let slot = u32::try_from(self.names.len())
                    .expect("invariant: active tenants fit in u32 ids");
                self.names.push(Some(name.to_string()));
                slot
            }
        };
        self.by_name.insert(name.to_string(), slot);
        self.peak_live = self.peak_live.max(self.live());
        TenantId(slot)
    }

    /// The active tenant's id, if `name` is active.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<TenantId> {
        self.by_name.get(name).copied().map(TenantId)
    }

    /// The active tenant's name.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not active (stale or released).
    #[must_use]
    pub fn name(&self, id: TenantId) -> &str {
        self.names
            .get(id.index())
            .and_then(Option::as_deref)
            .expect("invariant: resolved tenant ids are active")
    }

    /// Releases `id`, freeing its slot (LIFO reuse) and its name.
    pub fn release(&mut self, id: TenantId) {
        if let Some(name) = self.names.get_mut(id.index()).and_then(Option::take) {
            self.by_name.remove(&name);
            self.free.push(id.0);
        }
    }

    /// Number of currently active tenants.
    #[must_use]
    pub fn live(&self) -> usize {
        self.by_name.len()
    }

    /// High-water mark of concurrently active tenants.
    #[must_use]
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Total id slots ever allocated — with LIFO recycling this equals
    /// the peak active population, **not** the number of tenants ever
    /// seen: the capacity check the O(active)-memory claim rests on.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_assign_in_first_appearance_order() {
        let mut i = TenantInterner::new();
        assert_eq!(i.intern("a"), TenantId::from_raw(0));
        assert_eq!(i.intern("b"), TenantId::from_raw(1));
        assert_eq!(i.lookup("a"), Some(TenantId::from_raw(0)));
        assert_eq!(i.name(TenantId::from_raw(1)), "b");
        assert_eq!(i.lookup("c"), None);
    }

    #[test]
    fn released_slots_recycle_lifo_and_bound_capacity() {
        let mut i = TenantInterner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        i.release(a);
        i.release(b);
        // LIFO: the most recently freed slot (b's) goes first.
        assert_eq!(i.intern("c"), b);
        assert_eq!(i.intern("d"), a);
        assert_eq!(i.lookup("a"), None, "released names are forgotten");
        assert_eq!(i.capacity(), 2, "capacity tracks peak live, not total interned");
        assert_eq!(i.peak_live(), 2);
        assert_eq!(i.live(), 2);
    }

    #[test]
    fn release_is_idempotent() {
        let mut i = TenantInterner::new();
        let a = i.intern("a");
        i.release(a);
        i.release(a);
        assert_eq!(i.capacity(), 1);
        assert_eq!(i.intern("b"), a);
        assert_eq!(i.live(), 1);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn double_intern_panics() {
        let mut i = TenantInterner::new();
        i.intern("a");
        i.intern("a");
    }
}
