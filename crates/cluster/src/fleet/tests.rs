//! Fleet orchestration tests: dispatch outcomes, epoch accounting,
//! determinism across execution strategies, migration, queueing, and
//! re-pricing — the behavioural pins that the policy-kernel refactor
//! must keep bit-identical.

use super::*;
use crate::policy::MigrationVictimPolicy;
use crate::{ChurnConfig, ChurnTrace, FleetConfig, ModelKind, NodeScheduler, NodeSpec};
use sgprs_gpu_sim::GpuSpec;

fn three_node_fleet() -> FleetConfig {
    FleetConfig::new(vec![
        NodeSpec::sgprs("gpu0", GpuSpec::rtx_2080_ti()),
        NodeSpec::sgprs("gpu1", GpuSpec::rtx_2080_ti()),
        NodeSpec::sgprs("gpu2", GpuSpec::rtx_2080_ti()),
    ])
}

fn tenant(i: usize) -> TenantSpec {
    TenantSpec::new(format!("cam-{i}"), ModelKind::ResNet18, 30.0)
}

#[test]
fn dispatch_places_until_saturation_then_queues() {
    let mut fleet = Fleet::new(three_node_fleet());
    let mut placed = 0;
    let mut queued = 0;
    for i in 0..100 {
        match fleet.dispatch(tenant(i)) {
            DispatchOutcome::Placed(_) => placed += 1,
            DispatchOutcome::Queued => queued += 1,
            other => panic!("resnet18@30fps with a fresh name always dispatches: {other:?}"),
        }
    }
    assert!(placed >= 45, "3 GPUs take ≥ 15 tenants each, got {placed}");
    assert!(queued > 0, "admission control must eventually say no");
    assert_eq!(fleet.queued(), queued);
}

#[test]
fn infeasible_tenants_are_dropped_not_queued() {
    let mut fleet = Fleet::new(three_node_fleet());
    // VGG-16 at 30 fps cannot meet its period on any node: dropping
    // it keeps the wait queue's head from blocking forever.
    let hopeless = TenantSpec::new("vgg", ModelKind::Vgg16, 30.0);
    assert_eq!(fleet.dispatch(hopeless), DispatchOutcome::Infeasible);
    assert_eq!(fleet.queued(), 0);
    // And a run over a trace containing one reports it as such.
    let mut trace = ChurnTrace::new();
    trace.push(
        sgprs_rt::SimTime::ZERO,
        crate::ChurnEvent::Arrival(TenantSpec::new("vgg", ModelKind::Vgg16, 30.0)),
    );
    trace.push(
        sgprs_rt::SimTime::ZERO,
        crate::ChurnEvent::Arrival(tenant(0)),
    );
    let m = fleet.run(trace, SimDuration::from_secs(1));
    assert_eq!(m.infeasible, 1);
    assert_eq!(m.admitted, 1);
    assert_eq!(m.still_queued, 0);
    assert!((m.rejection_rate - 0.5).abs() < 1e-9);
}

#[test]
fn departures_take_effect_at_the_following_boundary() {
    let mut fleet = Fleet::new(three_node_fleet());
    let mut trace = ChurnTrace::new();
    let t = tenant(0);
    let name = t.name.clone();
    trace.push(sgprs_rt::SimTime::ZERO, crate::ChurnEvent::Arrival(t));
    // Departs mid-second-epoch: it must still serve epoch 2 fully.
    trace.push(
        sgprs_rt::SimTime::ZERO + SimDuration::from_millis(1_500),
        crate::ChurnEvent::Departure(name),
    );
    let m = fleet.run(trace, SimDuration::from_secs(3));
    assert_eq!(m.departures, 1);
    assert!(fleet.nodes().iter().all(|n| n.tenants.is_empty()));
    // Two full epochs of 30 fps service (minus boundary truncation),
    // not one: retroactive removal would roughly halve this.
    assert!(
        m.nodes[0].completed + m.nodes[1].completed + m.nodes[2].completed >= 50,
        "{m:?}"
    );
}

#[test]
fn departures_let_queued_tenants_in() {
    let mut fleet = Fleet::new(three_node_fleet());
    let mut names = Vec::new();
    // Saturate, then one more that must queue.
    let mut i = 0;
    loop {
        let t = tenant(i);
        let name = t.name.clone();
        match fleet.dispatch(t) {
            DispatchOutcome::Placed(_) => names.push(name),
            DispatchOutcome::Queued => break,
            other => panic!("resnet18@30fps with a fresh name always dispatches: {other:?}"),
        }
        i += 1;
    }
    assert_eq!(fleet.queued(), 1);
    assert!(fleet.remove(&names[0]), "departure frees capacity");
    assert_eq!(fleet.drain_queue(), 1, "queued tenant admitted");
    assert_eq!(fleet.queued(), 0);
}

#[test]
fn static_population_run_produces_fleet_throughput() {
    let mut fleet = Fleet::new(three_node_fleet());
    let trace = ChurnTrace::static_population((0..6).map(tenant));
    let m = fleet.run(trace, SimDuration::from_secs(2));
    assert!(m.total_fps > 150.0, "6 × 30 fps minus truncation: {m:?}");
    assert_eq!(m.arrivals, 6);
    assert_eq!(m.admitted, 6);
    assert_eq!(m.rejection_rate, 0.0);
    let node_sum: f64 = m.nodes.iter().map(|n| n.fps).sum();
    assert!((node_sum - m.total_fps).abs() < 1e-6);
}

#[test]
fn churn_run_reports_rejections_under_pressure() {
    // One small GPU, heavy arrivals: rejections are inevitable.
    let cfg = FleetConfig::new(vec![NodeSpec::sgprs("small", GpuSpec::synthetic(23))]);
    let mut fleet = Fleet::new(cfg);
    let churn = ChurnConfig {
        mean_interarrival: SimDuration::from_millis(100),
        min_lifetime: SimDuration::from_secs(2),
        max_lifetime: SimDuration::from_secs(4),
        ..ChurnConfig::default()
    };
    let horizon = SimDuration::from_secs(4);
    let trace = ChurnTrace::generate(&churn, horizon, 11);
    let m = fleet.run(trace, horizon);
    assert!(m.arrivals > 10);
    assert!(m.rejected > 0, "{m:?}");
    assert!(m.rejection_rate > 0.0 && m.rejection_rate <= 1.0);
    assert!(m.total_fps > 0.0);
}

#[test]
fn runs_are_deterministic_per_seed() {
    let run_once = || {
        let mut fleet = Fleet::new(three_node_fleet().with_seed(99));
        let churn = ChurnConfig::default();
        let horizon = SimDuration::from_secs(3);
        let trace = ChurnTrace::generate(&churn, horizon, 5);
        fleet.run(trace, horizon)
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn queued_then_admitted_tenants_are_not_rejections() {
    // Regression: `rejection_rate` used to count a queued-then-
    // admitted tenant as rejected forever. Saturate one small node,
    // queue one extra arrival, then free room with a departure: the
    // waiter is admitted and must not appear as a rejection.
    let cfg = || FleetConfig::new(vec![NodeSpec::sgprs("small", GpuSpec::synthetic(23))]);
    let mut scratch = Fleet::new(cfg());
    let mut fit = 0;
    while matches!(scratch.dispatch(tenant(fit)), DispatchOutcome::Placed(_)) {
        fit += 1;
    }
    assert!(fit >= 2, "a 23-SM node takes a few tenants");
    let mut trace = ChurnTrace::new();
    for i in 0..=fit {
        trace.push(sgprs_rt::SimTime::ZERO, crate::ChurnEvent::Arrival(tenant(i)));
    }
    trace.push(
        sgprs_rt::SimTime::ZERO + SimDuration::from_millis(500),
        crate::ChurnEvent::Departure(tenant(0).name),
    );
    let mut fleet = Fleet::new(cfg());
    let m = fleet.run(trace, SimDuration::from_secs(3));
    assert_eq!(m.arrivals as usize, fit + 1);
    assert_eq!(m.deferred, 1, "one arrival had to wait");
    assert_eq!(m.admitted_after_wait, 1, "and got in after the departure");
    assert_eq!(m.rejected, 0, "eventual admission is not a rejection: {m:?}");
    assert_eq!(m.rejection_rate, 0.0);
    assert_eq!(m.still_queued, 0);
}

#[test]
fn pre_run_queue_admissions_do_not_mask_in_run_rejections() {
    // Regression: a tenant queued via `dispatch` *before* `run` and
    // admitted mid-run used to cancel out one genuinely-rejected
    // in-run deferral in the eventual accounting.
    let mut fleet = Fleet::new(FleetConfig::new(vec![NodeSpec::sgprs(
        "small",
        GpuSpec::synthetic(23),
    )]));
    let mut i = 0;
    let resident = loop {
        match fleet.dispatch(tenant(i)) {
            DispatchOutcome::Placed(_) => i += 1,
            DispatchOutcome::Queued => break i,
            other => panic!("unexpected {other:?}"),
        }
    };
    assert_eq!(fleet.queued(), 1, "tenant {resident} waits pre-run");
    let mut trace = ChurnTrace::new();
    // An in-run arrival that must also wait, behind the pre-run one…
    trace.push(
        sgprs_rt::SimTime::ZERO + SimDuration::from_millis(200),
        crate::ChurnEvent::Arrival(tenant(resident + 1)),
    );
    // …and one departure, freeing room for exactly one of them.
    trace.push(
        sgprs_rt::SimTime::ZERO + SimDuration::from_millis(500),
        crate::ChurnEvent::Departure(tenant(0).name),
    );
    let m = fleet.run(trace, SimDuration::from_secs(3));
    assert_eq!(m.deferred, 1, "the in-run arrival waited");
    assert_eq!(
        m.admitted_after_wait, 0,
        "the freed slot went to the pre-run tenant, which is not this run's deferral"
    );
    assert_eq!(m.rejected, 1, "the in-run arrival was never served: {m:?}");
    assert_eq!(m.still_queued, 1);
}

#[test]
fn still_waiting_arrivals_do_count_as_rejections() {
    // The flip side: with no departures the deferred tenant never
    // gets in, and the eventual accounting reports it rejected.
    let cfg = FleetConfig::new(vec![NodeSpec::sgprs("small", GpuSpec::synthetic(23))]);
    let mut scratch = Fleet::new(cfg.clone());
    let mut fit = 0;
    while matches!(scratch.dispatch(tenant(fit)), DispatchOutcome::Placed(_)) {
        fit += 1;
    }
    let trace = ChurnTrace::static_population((0..=fit).map(tenant));
    let m = Fleet::new(cfg).run(trace, SimDuration::from_secs(2));
    assert_eq!(m.deferred, 1);
    assert_eq!(m.admitted_after_wait, 0);
    assert_eq!(m.rejected, 1);
    assert_eq!(m.still_queued, 1);
    assert!((m.rejection_rate - 1.0 / (fit as f64 + 1.0)).abs() < 1e-9);
}

#[test]
fn duplicate_active_names_are_rejected() {
    let mut fleet = Fleet::new(three_node_fleet());
    assert!(matches!(fleet.dispatch(tenant(0)), DispatchOutcome::Placed(_)));
    assert_eq!(fleet.dispatch(tenant(0)), DispatchOutcome::Duplicate);
    let resident: usize = fleet.nodes().iter().map(|n| n.tenants.len()).sum();
    assert_eq!(resident, 1, "no ghost twin was placed");
    // Departure frees the name for reuse.
    assert!(fleet.remove(&tenant(0).name));
    assert!(matches!(fleet.dispatch(tenant(0)), DispatchOutcome::Placed(_)));
    // Queued names are active too: a duplicate of a waiting tenant
    // would equally confuse removal.
    let mut small = Fleet::new(FleetConfig::new(vec![NodeSpec::sgprs(
        "small",
        GpuSpec::synthetic(23),
    )]));
    let mut i = 0;
    while matches!(small.dispatch(tenant(i)), DispatchOutcome::Placed(_)) {
        i += 1;
    }
    assert_eq!(small.queued(), 1, "tenant {i} waits");
    assert_eq!(small.dispatch(tenant(i)), DispatchOutcome::Duplicate);
}

#[test]
fn duplicate_arrivals_in_a_trace_are_counted_not_served() {
    let mut fleet = Fleet::new(three_node_fleet());
    let mut trace = ChurnTrace::new();
    trace.push(sgprs_rt::SimTime::ZERO, crate::ChurnEvent::Arrival(tenant(1)));
    trace.push(sgprs_rt::SimTime::ZERO, crate::ChurnEvent::Arrival(tenant(1)));
    let m = fleet.run(trace, SimDuration::from_secs(1));
    assert_eq!(m.arrivals, 2);
    assert_eq!(m.admitted, 1);
    assert_eq!(m.duplicates, 1);
    assert_eq!(m.rejection_rate, 0.0, "duplicates are not capacity rejections");
    let resident: usize = fleet.nodes().iter().map(|n| n.tenants.len()).sum();
    assert_eq!(resident, 1);
}

#[test]
fn parallel_and_sequential_epochs_are_bit_identical() {
    // Heterogeneous devices *and* schedulers under churn plus
    // migration — the worst case for accidental order dependence.
    let nodes = || {
        vec![
            NodeSpec::sgprs("a", GpuSpec::rtx_2080_ti()),
            NodeSpec::sgprs("b", GpuSpec::synthetic(34)).with_scheduler(NodeScheduler::Naive),
            NodeSpec::sgprs("c", GpuSpec::synthetic(23)),
        ]
    };
    let run_with = |cfg: FleetConfig| {
        let churn = ChurnConfig {
            mean_interarrival: SimDuration::from_millis(120),
            ..ChurnConfig::default()
        };
        let horizon = SimDuration::from_secs(4);
        let trace = ChurnTrace::generate(&churn, horizon, 17);
        Fleet::new(cfg).run(trace, horizon)
    };
    let par = run_with(FleetConfig::new(nodes()).with_migration(0.1));
    let seq = run_with(FleetConfig::new(nodes()).with_migration(0.1).sequential());
    assert_eq!(par, seq, "parallelism must never change results");
    assert_eq!(par.to_json(), seq.to_json());
}

#[test]
fn migration_moves_load_off_an_overloaded_node() {
    // Two nodes, round-robin placement is blind to the size gap, so
    // the small node overloads and migration must bail it out.
    let cfg = FleetConfig::new(vec![
        NodeSpec::sgprs("small", GpuSpec::synthetic(16)),
        NodeSpec::sgprs("big", GpuSpec::rtx_2080_ti()),
    ])
    .with_placement(crate::PlacementPolicy::RoundRobin)
    .with_migration(0.05);
    // Force-load the small node beyond its means.
    let mut fleet = Fleet::new(cfg);
    for i in 0..6 {
        fleet.seed_resident(0, tenant(i));
    }
    let m = fleet.run(ChurnTrace::new(), SimDuration::from_secs(3));
    assert!(m.migrations > 0, "{m:?}");
    assert!(
        fleet.nodes()[0].tenants.len() < 6,
        "the small node shed load"
    );
    assert!(
        !fleet.nodes()[1].tenants.is_empty(),
        "the big node absorbed it"
    );
}

#[test]
fn demand_aware_victim_sheds_the_most_relieving_tenant() {
    // A mixed-demand overload: one heavy 60 fps tenant placed first,
    // light 15 fps fillers after. LIFO sheds a light filler (barely
    // relieving); demand-aware must shed the tenant whose departure
    // clears the overshoot — here the heavy one.
    let cfg = |victim: MigrationVictimPolicy| {
        FleetConfig::new(vec![
            NodeSpec::sgprs("small", GpuSpec::synthetic(16)),
            NodeSpec::sgprs("big", GpuSpec::rtx_2080_ti()),
        ])
        .with_migration(0.05)
        .with_victim_policy(victim)
    };
    let load = |fleet: &mut Fleet| {
        fleet.seed_resident(0, TenantSpec::new("heavy", ModelKind::ResNet18, 60.0));
        for i in 0..4 {
            fleet.seed_resident(
                0,
                TenantSpec::new(format!("light-{i}"), ModelKind::ResNet18, 15.0),
            );
        }
    };
    let mut lifo = Fleet::new(cfg(MigrationVictimPolicy::Lifo));
    load(&mut lifo);
    let m_lifo = lifo.run(ChurnTrace::new(), SimDuration::from_secs(2));
    let mut aware = Fleet::new(cfg(MigrationVictimPolicy::DemandAware));
    load(&mut aware);
    let m_aware = aware.run(ChurnTrace::new(), SimDuration::from_secs(2));
    assert!(m_lifo.migrations > 0 && m_aware.migrations > 0, "both shed");
    // LIFO moved the most recent (light) tenant; demand-aware moved the
    // heavy one — observable as who ended up on the big node first.
    assert!(
        lifo.nodes()[1].tenants.iter().any(|t| t.name.starts_with("light")),
        "LIFO sheds the last-placed light tenant: {:?}",
        lifo.nodes()[1].tenants.iter().map(|t| &t.name).collect::<Vec<_>>()
    );
    assert!(
        aware.nodes()[1].tenants.iter().any(|t| t.name == "heavy"),
        "demand-aware sheds the overload's cause: {:?}",
        aware.nodes()[1].tenants.iter().map(|t| &t.name).collect::<Vec<_>>()
    );
}

#[test]
fn forced_multi_worker_fanout_matches_inline_execution() {
    // `available_parallelism()` is 1 in small CI containers, which
    // would leave the scoped-thread path untested: drive
    // `run_node_epochs` with an explicit worker count instead.
    let nodes: Vec<FleetNode> = three_node_fleet()
        .nodes
        .into_iter()
        .map(FleetNode::new)
        .collect();
    let jobs = || -> Vec<NodeEpochJob> {
        (0..nodes.len())
            .map(|idx| NodeEpochJob {
                idx,
                tasks: (0..3)
                    .map(|j| tenant(idx * 3 + j).compile_for(&nodes[idx].spec.pool()))
                    .collect(),
                seed: 42 + idx as u64,
            })
            .collect()
    };
    let epoch = SimDuration::from_secs(1);
    let inline = run_node_epochs(&nodes, jobs(), epoch, 1);
    let fanned = run_node_epochs(&nodes, jobs(), epoch, 4);
    assert_eq!(inline.len(), nodes.len());
    assert!(inline.iter().all(|(_, m)| m.released > 0));
    assert_eq!(inline, fanned, "thread count must never change results");
}

#[test]
fn migration_never_targets_a_node_over_the_dmr_threshold() {
    // Regression: the destination filter used to check admission
    // only. A naive-scheduler node sized well under its *fluid*
    // budget still misses deadlines (the budget is calibrated for
    // SGPRS), so admission would happily accept a migrant onto a
    // node that is itself hot — and two such nodes ping-pong the
    // same tenant forever. Destinations past the DMR threshold are
    // now excluded.
    let cfg = FleetConfig::new(vec![
        NodeSpec::sgprs("src", GpuSpec::synthetic(16)),
        NodeSpec::sgprs("hot-dest", GpuSpec::rtx_2080_ti())
            .with_scheduler(NodeScheduler::Naive),
    ])
    .with_migration(0.05);
    let mut fleet = Fleet::new(cfg);
    // Overload the small source node outright.
    for i in 0..6 {
        fleet.seed_resident(0, tenant(i));
    }
    // Load the naive node under its admission budget but past what
    // it can actually serve.
    for i in 6..24 {
        fleet.seed_resident(1, tenant(i));
    }
    let migrant = fleet.nodes[0].tenants.last().cloned().expect("loaded");
    assert!(
        fleet
            .admission()
            .evaluate(&fleet.nodes()[1], &migrant)
            .is_admit(),
        "the destination must look admissible (that is the trap)"
    );
    let m = fleet.run(ChurnTrace::new(), SimDuration::from_secs(3));
    assert!(
        m.nodes[1].dmr > 0.05,
        "the naive node must actually be hot: {m:?}"
    );
    assert_eq!(
        m.migrations, 0,
        "no tenant may migrate onto a node over the DMR threshold: {m:?}"
    );
    assert_eq!(fleet.nodes()[0].tenants.len(), 6, "source population intact");
    assert_eq!(fleet.nodes()[1].tenants.len(), 18, "destination untouched");
}

#[test]
fn drain_skips_the_scan_until_capacity_is_released() {
    // Regression for the epoch-drain hot path: once a pass leaves the
    // head unplaced, further drains are O(1) until a departure (or
    // migration) frees node capacity.
    let mut fleet = Fleet::new(FleetConfig::new(vec![NodeSpec::sgprs(
        "small",
        GpuSpec::synthetic(23),
    )]));
    let mut i = 0;
    let mut names = Vec::new();
    loop {
        let t = tenant(i);
        let name = t.name.clone();
        match fleet.dispatch(t) {
            DispatchOutcome::Placed(_) => names.push(name),
            DispatchOutcome::Queued => break,
            other => panic!("unexpected {other:?}"),
        }
        i += 1;
    }
    // Queue one more waiter behind the first.
    assert_eq!(fleet.dispatch(tenant(i + 1)), DispatchOutcome::Queued);
    let before = fleet.drain_scans();
    assert_eq!(fleet.drain_queue(), 0, "nothing departed yet");
    assert_eq!(fleet.drain_scans(), before + 1, "first pass scans");
    for _ in 0..5 {
        assert_eq!(fleet.drain_queue(), 0);
    }
    assert_eq!(
        fleet.drain_scans(),
        before + 1,
        "no release, no further scans"
    );
    // Ordering is preserved across the skipped passes: the departure
    // admits the first-queued tenant, not the later one.
    assert_eq!(
        fleet.queued_names(),
        vec![tenant(i).name, tenant(i + 1).name]
    );
    assert!(fleet.remove(&names[0]));
    assert_eq!(fleet.drain_queue(), 1);
    assert_eq!(fleet.drain_scans(), before + 2, "release re-arms the scan");
    assert_eq!(fleet.queued_names(), vec![tenant(i + 1).name]);
}

#[test]
fn queued_departure_releases_no_capacity() {
    // Regression: a *queued* tenant departing frees no node capacity —
    // it was never resident — so it must not re-arm the drain scan. If
    // it did, every impatient waiter giving up would trigger a futile
    // O(queue) scan of a still-full fleet.
    let mut fleet = Fleet::new(FleetConfig::new(vec![NodeSpec::sgprs(
        "small",
        GpuSpec::synthetic(23),
    )]));
    let mut i = 0;
    while matches!(fleet.dispatch(tenant(i)), DispatchOutcome::Placed(_)) {
        i += 1;
    }
    // tenant(i) waits; queue one more behind it.
    assert_eq!(fleet.dispatch(tenant(i + 1)), DispatchOutcome::Queued);
    assert_eq!(fleet.drain_queue(), 0, "fleet is full");
    assert!(!fleet.capacity_released, "the failed pass disarms the scan");
    let scans = fleet.drain_scans();
    // The first waiter gives up: removed from the queue, nothing freed.
    assert!(fleet.remove(&tenant(i).name));
    assert!(
        !fleet.capacity_released,
        "a queued departure must not report released node capacity"
    );
    assert_eq!(fleet.drain_queue(), 0);
    assert_eq!(fleet.drain_scans(), scans, "no release, no scan");
    assert_eq!(fleet.queued_names(), vec![tenant(i + 1).name]);
    // A *resident* departure, by contrast, re-arms it.
    assert!(fleet.remove(&tenant(0).name));
    assert!(fleet.capacity_released);
    assert_eq!(fleet.drain_queue(), 1, "the survivor is admitted");
}

#[test]
fn priority_policy_admits_heavier_waiters_first() {
    let cfg = FleetConfig::new(vec![NodeSpec::sgprs("small", GpuSpec::synthetic(23))])
        .with_queue_policy(crate::QueuePolicy::Priority);
    let mut fleet = Fleet::new(cfg);
    let mut i = 0;
    let mut resident = Vec::new();
    loop {
        let t = tenant(i);
        let name = t.name.clone();
        match fleet.dispatch(t) {
            DispatchOutcome::Placed(_) => resident.push(name),
            DispatchOutcome::Queued => break,
            other => panic!("unexpected {other:?}"),
        }
        i += 1;
    }
    // The saturating arrival queued with default weight; add a
    // heavier later waiter that must overtake it in drain order.
    let vip = TenantSpec::new("vip", ModelKind::ResNet18, 30.0).with_weight(9);
    assert_eq!(fleet.dispatch(vip), DispatchOutcome::Queued);
    assert_eq!(fleet.queued_names()[0], "vip");
    assert!(fleet.remove(&resident[0]));
    assert_eq!(fleet.drain_queue(), 1);
    assert!(
        fleet.queued_names().iter().all(|n| n != "vip"),
        "the heavier waiter was admitted first"
    );
}

#[test]
fn repricing_admits_degraded_then_upgrades_after_departures() {
    let cfg = FleetConfig::new(vec![NodeSpec::sgprs("gpu", GpuSpec::rtx_2080_ti())])
        .with_repricing();
    let mut fleet = Fleet::new(cfg);
    // Saturate at 30 fps with no-ladder fillers: leftover headroom is
    // strictly below one filler demand `d`.
    let mut i = 0;
    let mut fillers = Vec::new();
    loop {
        let t = tenant(i);
        let name = t.name.clone();
        match fleet.dispatch(t) {
            DispatchOutcome::Placed(_) => fillers.push(name),
            DispatchOutcome::Queued => {
                assert!(fleet.remove(&name), "scaffolding waiter removed");
                break;
            }
            other => panic!("unexpected {other:?}"),
        }
        i += 1;
    }
    // One departure lifts headroom into [d, 2d): a 60 fps request
    // (demand exactly 2d) cannot fit, its 30 fps ladder step (demand
    // exactly d) must.
    assert!(fleet.remove(&fillers[0]));
    let priced = TenantSpec::new("elastic", ModelKind::ResNet18, 60.0)
        .with_fps_ladder([30.0, 24.0, 15.0]);
    let outcome = fleet.dispatch(priced);
    let DispatchOutcome::PlacedDegraded { fps, .. } = outcome else {
        panic!("expected a degraded admission, got {outcome:?}");
    };
    assert!((fps - 30.0).abs() < 1e-12, "top viable step wins: {fps}");
    assert_eq!(fleet.degraded_residents(), 1);
    // Two more departures free 2d; a run over an empty trace upgrades
    // the tenant back to its requested rate (one more d) at the next
    // epoch boundary.
    assert!(fleet.remove(&fillers[1]));
    assert!(fleet.remove(&fillers[2]));
    let m = fleet.run(ChurnTrace::new(), SimDuration::from_secs(2));
    assert!(m.upgrades >= 1, "{m:?}");
    assert_eq!(fleet.degraded_residents(), 0, "fully restored");
    let restored = fleet
        .nodes()
        .iter()
        .flat_map(|n| n.tenants.iter())
        .find(|t| t.name == "elastic")
        .expect("still resident");
    assert!((restored.fps - 60.0).abs() < 1e-12, "{}", restored.fps);
}

#[test]
fn repricing_keeps_infeasible_models_out_unless_a_step_fits() {
    // VGG-16@30fps is latency-infeasible everywhere; with a ladder
    // step at 15 fps (feasible on a full device) re-pricing admits it
    // degraded instead of dropping it.
    let mut fleet = Fleet::new(
        FleetConfig::new(vec![NodeSpec::sgprs("gpu", GpuSpec::rtx_2080_ti())])
            .with_repricing(),
    );
    let vgg = TenantSpec::new("vgg", ModelKind::Vgg16, 30.0).with_fps_ladder([15.0]);
    match fleet.dispatch(vgg) {
        DispatchOutcome::PlacedDegraded { fps, .. } => {
            assert!((fps - 15.0).abs() < 1e-12);
        }
        other => panic!("expected degraded admission, got {other:?}"),
    }
    // Without a ladder the same model is still dropped outright.
    let hopeless = TenantSpec::new("vgg2", ModelKind::Vgg16, 30.0);
    assert_eq!(fleet.dispatch(hopeless), DispatchOutcome::Infeasible);
}

#[test]
fn expired_waiters_count_as_rejections() {
    // One saturated small node; a waiter with a 1-epoch patience
    // gives up and is accounted as an eventual rejection.
    let cfg = || FleetConfig::new(vec![NodeSpec::sgprs("small", GpuSpec::synthetic(23))]);
    let mut scratch = Fleet::new(cfg());
    let mut fit = 0;
    while matches!(scratch.dispatch(tenant(fit)), DispatchOutcome::Placed(_)) {
        fit += 1;
    }
    let mut trace = ChurnTrace::new();
    for i in 0..fit {
        trace.push(sgprs_rt::SimTime::ZERO, crate::ChurnEvent::Arrival(tenant(i)));
    }
    trace.push(
        sgprs_rt::SimTime::ZERO,
        crate::ChurnEvent::Arrival(
            TenantSpec::new("impatient", ModelKind::ResNet18, 30.0)
                .with_max_wait(SimDuration::from_secs(1)),
        ),
    );
    let mut fleet = Fleet::new(cfg());
    let m = fleet.run(trace, SimDuration::from_secs(4));
    assert_eq!(m.deferred, 1);
    assert_eq!(m.expired, 1, "{m:?}");
    assert_eq!(m.expired_hopeless, 0, "demand-aware expiry is off by default");
    assert_eq!(m.rejected, 1, "an expired waiter was never served");
    assert_eq!(m.still_queued, 0, "it left the queue");
    assert_eq!(fleet.queued(), 0);
}

#[test]
fn hopeless_waiters_expire_early_under_demand_aware_expiry() {
    // Conservative admission (utilisation bound 0.3 keeps heavy
    // headroom): a ResNet18@60fps feed passes the latency gate on a
    // 16-SM node — so it queues — but its steady-state demand exceeds
    // the node's admission budget *even empty* (≈5.4 vs ≈4.8
    // SM-equivalents): no departure pattern can ever admit it. The
    // classic behaviour parks it in the queue forever; demand-aware
    // expiry proves the hopelessness and drops it early, in both
    // engines, counted separately from patience expiry.
    let cfg = |demand_aware: bool| {
        let mut c = FleetConfig::new(vec![NodeSpec::sgprs("small", GpuSpec::synthetic(16))]);
        c.admission.utilization_bound = 0.3;
        if demand_aware {
            c = c.with_demand_aware_expiry();
        }
        c
    };
    let trace = || {
        let mut trace = ChurnTrace::new();
        trace.push(
            sgprs_rt::SimTime::ZERO,
            crate::ChurnEvent::Arrival(TenantSpec::new("doomed", ModelKind::ResNet18, 60.0)),
        );
        trace
    };
    let horizon = SimDuration::from_secs(2);
    for event_driven in [false, true] {
        let run = |demand_aware: bool| {
            let mut fleet = Fleet::new(cfg(demand_aware));
            if event_driven {
                fleet.run_events(trace(), horizon)
            } else {
                fleet.run(trace(), horizon)
            }
        };
        let classic = run(false);
        assert_eq!(classic.deferred, 1, "event={event_driven}: {classic:?}");
        assert_eq!(
            classic.still_queued, 1,
            "event={event_driven}: the classic path waits forever: {classic:?}"
        );
        assert_eq!(classic.expired_hopeless, 0);
        let aware = run(true);
        assert_eq!(aware.deferred, 1, "event={event_driven}: {aware:?}");
        assert_eq!(
            aware.expired_hopeless, 1,
            "event={event_driven}: provably hopeless, expired early: {aware:?}"
        );
        assert_eq!(aware.expired, 0, "patience expiry is counted separately");
        assert_eq!(aware.still_queued, 0);
        assert_eq!(
            aware.rejected, 1,
            "an expired-hopeless in-run deferral is an eventual rejection"
        );
        assert!(
            aware.to_json().contains("\"expired_hopeless\": 1"),
            "the optional field surfaces when nonzero"
        );
    }
}

#[test]
fn pre_run_hopeless_waiters_are_swept_in_both_engines() {
    // Regression: the event engine's seed() used to schedule patience
    // expiries only, so a hopeless waiter queued *before* run_events
    // started was never swept — the epoch path expired it at its first
    // boundary, the event path parked it forever.
    for event_driven in [false, true] {
        let mut cfg = FleetConfig::new(vec![NodeSpec::sgprs("small", GpuSpec::synthetic(16))])
            .with_demand_aware_expiry();
        cfg.admission.utilization_bound = 0.3;
        let mut fleet = Fleet::new(cfg);
        assert_eq!(
            fleet.dispatch(TenantSpec::new("doomed", ModelKind::ResNet18, 60.0)),
            DispatchOutcome::Queued,
            "latency-feasible but demand-hopeless: it queues pre-run"
        );
        let horizon = SimDuration::from_secs(2);
        let m = if event_driven {
            fleet.run_events(ChurnTrace::new(), horizon)
        } else {
            fleet.run(ChurnTrace::new(), horizon)
        };
        assert_eq!(
            m.expired_hopeless, 1,
            "event={event_driven}: the carried-over waiter is swept: {m:?}"
        );
        assert_eq!(m.still_queued, 0, "event={event_driven}");
        assert_eq!(
            m.rejected, 0,
            "event={event_driven}: a pre-run waiter is not this run's deferral"
        );
    }
}

#[test]
fn second_run_restarts_the_queue_clock_for_carried_over_waiters() {
    // Regression: a waiter surviving run 1 used to keep its absolute
    // enqueue stamp, so run 2 (whose clock restarts at zero) measured
    // nonsense waits and stretched the patience window far past
    // `max_wait`. Each run now re-stamps carried-over waiters at its
    // own start.
    let mut fleet = Fleet::new(FleetConfig::new(vec![NodeSpec::sgprs(
        "small",
        GpuSpec::synthetic(23),
    )]));
    let mut fit = 0;
    while matches!(fleet.dispatch(tenant(fit)), DispatchOutcome::Placed(_)) {
        fit += 1;
    }
    assert!(fleet.remove(&tenant(fit).name), "scaffolding waiter out");
    let mut trace = ChurnTrace::new();
    trace.push(
        sgprs_rt::SimTime::ZERO + SimDuration::from_millis(3_500),
        crate::ChurnEvent::Arrival(
            TenantSpec::new("patient", ModelKind::ResNet18, 30.0)
                .with_max_wait(SimDuration::from_secs(2)),
        ),
    );
    let m1 = fleet.run(trace, SimDuration::from_secs(4));
    assert_eq!(m1.deferred, 1);
    assert_eq!(m1.expired, 0, "deadline 5.5s is past run 1's horizon");
    assert_eq!(m1.still_queued, 1);
    // Run 2 is short: the re-based 2-second patience does not elapse.
    let m2 = fleet.run(ChurnTrace::new(), SimDuration::from_secs(2));
    assert_eq!(m2.expired, 0, "patience restarted, not inherited");
    assert_eq!(m2.still_queued, 1);
    // Run 3 is long enough for the re-based patience to elapse.
    let m3 = fleet.run(ChurnTrace::new(), SimDuration::from_secs(4));
    assert_eq!(m3.expired, 1, "{m3:?}");
    assert_eq!(m3.still_queued, 0);
}

#[test]
fn fifo_default_metrics_are_bit_identical_to_the_pre_queue_dispatcher() {
    // The default config must not change behaviour: same run, same
    // JSON, with the new counters pinned at zero.
    let run_once = || {
        let mut fleet = Fleet::new(three_node_fleet().with_seed(7));
        let churn = ChurnConfig {
            mean_interarrival: SimDuration::from_millis(150),
            ..ChurnConfig::default()
        };
        let horizon = SimDuration::from_secs(3);
        let trace = ChurnTrace::generate(&churn, horizon, 3);
        fleet.run(trace, horizon)
    };
    let m = run_once();
    assert_eq!(m.degraded, 0);
    assert_eq!(m.upgrades, 0);
    assert_eq!(m.expired, 0);
    assert_eq!(m.expired_hopeless, 0);
    assert_eq!(m, run_once());
}

#[test]
fn event_runs_are_deterministic_and_truncation_free() {
    let run_once = || {
        let mut fleet = Fleet::new(three_node_fleet().with_seed(99));
        let churn = ChurnConfig::default();
        let horizon = SimDuration::from_secs(3);
        let trace = ChurnTrace::generate(&churn, horizon, 5);
        fleet.run_events(trace, horizon)
    };
    let m = run_once();
    assert_eq!(m, run_once(), "event runs are deterministic per seed");
    assert_eq!(m.truncated_jobs, 0, "{m:?}");
    assert!(m.total_fps > 0.0);
    // Telemetry is off by default, so the export stays on the base schema.
    assert_eq!(m.schema_version, crate::BASE_SCHEMA_VERSION);
}

#[test]
fn event_departures_apply_at_their_exact_instant() {
    // The epoch path serves a departing tenant through the end of
    // its final partial epoch; the event path stops its releases at
    // the departure instant exactly. One 30 fps tenant departing at
    // 1.5 s into a 3 s run: ~45 releases, not ~60 and not ~90.
    let mut fleet = Fleet::new(three_node_fleet());
    let t = tenant(0);
    let name = t.name.clone();
    let mut trace = ChurnTrace::new();
    trace.push(sgprs_rt::SimTime::ZERO, crate::ChurnEvent::Arrival(t));
    trace.push(
        sgprs_rt::SimTime::ZERO + SimDuration::from_millis(1_500),
        crate::ChurnEvent::Departure(name),
    );
    let m = fleet.run_events(trace, SimDuration::from_secs(3));
    assert_eq!(m.departures, 1);
    assert!(fleet.nodes().iter().all(|n| n.tenants.is_empty()));
    let released: u64 = m.nodes.iter().map(|n| n.released).sum();
    assert!(
        (44..=46).contains(&released),
        "30 fps × 1.5 s at the exact boundary: {released}"
    );
    assert_eq!(m.truncated_jobs, 0, "the final in-flight job completed");
}

#[test]
fn event_migration_pays_the_configured_stall() {
    // Force-overload the small node (mirroring the epoch-path
    // migration test): event mode must shed load at a release
    // boundary and charge the state-transfer stall for it.
    let cfg = FleetConfig::new(vec![
        NodeSpec::sgprs("small", GpuSpec::synthetic(16)),
        NodeSpec::sgprs("big", GpuSpec::rtx_2080_ti()),
    ])
    .with_migration(0.05)
    .with_migration_cost(SimDuration::from_millis(100));
    let mut fleet = Fleet::new(cfg);
    for i in 0..6 {
        fleet.seed_resident(0, tenant(i));
    }
    let m = fleet.run_events(ChurnTrace::new(), SimDuration::from_secs(3));
    assert!(m.migrations > 0, "{m:?}");
    assert!(
        (m.migration_stall_secs - 0.1 * m.migrations as f64).abs() < 1e-9,
        "each migration stalls for exactly the configured cost: {m:?}"
    );
    assert!(fleet.nodes()[0].tenants.len() < 6, "the small node shed load");
    assert!(!fleet.nodes()[1].tenants.is_empty(), "the big node absorbed it");
    assert_eq!(m.truncated_jobs, 0);
}

#[test]
fn reused_tenant_name_is_immune_to_its_predecessors_stale_events() {
    // Regression: a departed tenant's still-pending JobCompletion /
    // DeadlineCheck used to match a same-named successor (job serials
    // restart at 0), clearing the new run's busy flag so it served
    // overlapping jobs. Overload one node past its period (admission
    // bound deliberately past capacity), churn the same name out and
    // back in while the first incarnation's job is in flight, and
    // pin the deterministic outcome.
    let cfg = || {
        let mut c = FleetConfig::new(vec![NodeSpec::sgprs("g", GpuSpec::synthetic(34))]);
        c.admission.utilization_bound = 1.5;
        c
    };
    let trace = || {
        let mut trace = ChurnTrace::new();
        for i in 0..16 {
            trace.push(sgprs_rt::SimTime::ZERO, crate::ChurnEvent::Arrival(tenant(i)));
        }
        // Depart while cam-15's stretched first job is still
        // running (arrivals interleave with releases, so the LAST
        // arrival's first job is the one admitted at full load and
        // still in flight here)…
        trace.push(
            sgprs_rt::SimTime::ZERO + SimDuration::from_millis(38),
            crate::ChurnEvent::Departure(tenant(15).name),
        );
        // …and reuse the name before that job's completion fires.
        trace.push(
            sgprs_rt::SimTime::ZERO + SimDuration::from_millis(40),
            crate::ChurnEvent::Arrival(tenant(15)),
        );
        trace
    };
    let horizon = SimDuration::from_secs(2);
    let m = Fleet::new(cfg()).run_events(trace(), horizon);
    assert_eq!(m.departures, 1);
    assert_eq!(m.admitted, 17, "the reused name is re-admitted: {m:?}");
    assert_eq!(m.truncated_jobs, 0);
    // A guard regression trips the engine's overlapping-jobs
    // debug assertion mid-run (verified by mutation); the pinned
    // totals additionally lock the deterministic outcome.
    assert_eq!(m, Fleet::new(cfg()).run_events(trace(), horizon));
    let node = &m.nodes[0];
    assert_eq!(
        (node.released, node.completed, node.missed),
        (976, 496, 964),
        "stale-event immunity changed the served-frame accounting: {m:?}"
    );
}

#[test]
fn departed_pre_run_waiter_does_not_shadow_a_reused_name() {
    // Regression (both paths): a pre-run waiter departing mid-run
    // used to leave its name in the pre-run set, so a later
    // same-named deferred arrival that was eventually admitted
    // matched the stale entry and was reported rejected.
    let saturated = || {
        let mut fleet = Fleet::new(FleetConfig::new(vec![NodeSpec::sgprs(
            "small",
            GpuSpec::synthetic(23),
        )]));
        let mut i = 0;
        while matches!(fleet.dispatch(tenant(i)), DispatchOutcome::Placed(_)) {
            i += 1;
        }
        // tenant(i) queued pre-run under the name the trace reuses.
        (fleet, i)
    };
    let trace = |i: usize| {
        let mut trace = ChurnTrace::new();
        // The pre-run waiter departs while still queued (the epoch
        // path applies this at the 1 s boundary — the granularity
        // contract — so the name reuse below waits past it)…
        trace.push(
            sgprs_rt::SimTime::ZERO + SimDuration::from_millis(100),
            crate::ChurnEvent::Departure(tenant(i).name),
        );
        // …a fresh arrival reuses its name and must wait too…
        trace.push(
            sgprs_rt::SimTime::ZERO + SimDuration::from_millis(1_200),
            crate::ChurnEvent::Arrival(tenant(i)),
        );
        // …until a resident departs (applied at the 2 s boundary on
        // the epoch path) and frees one slot.
        trace.push(
            sgprs_rt::SimTime::ZERO + SimDuration::from_millis(1_400),
            crate::ChurnEvent::Departure(tenant(0).name),
        );
        trace
    };
    for event_driven in [false, true] {
        let (mut fleet, i) = saturated();
        let horizon = SimDuration::from_secs(3);
        let m = if event_driven {
            fleet.run_events(trace(i), horizon)
        } else {
            fleet.run(trace(i), horizon)
        };
        assert_eq!(m.deferred, 1, "event={event_driven}: {m:?}");
        assert_eq!(
            m.admitted_after_wait, 1,
            "event={event_driven}: the reused name is this run's deferral, \
             not the departed pre-run waiter: {m:?}"
        );
        assert_eq!(m.rejected, 0, "event={event_driven}: {m:?}");
        assert!(m.queue_wait_mean_secs > 0.0, "event={event_driven}: {m:?}");
    }
}

#[test]
fn run_configured_dispatches_on_the_event_flag() {
    let trace = || ChurnTrace::static_population((0..3).map(tenant));
    let horizon = SimDuration::from_secs(2);
    let epoch = Fleet::new(three_node_fleet())
        .run_configured(trace(), horizon);
    let event = Fleet::new(three_node_fleet().with_event_driven())
        .run_configured(trace(), horizon);
    // The epoch path truncates the final in-flight job per tenant
    // per epoch; the event path never does — the flag observably
    // switched modes.
    assert!(epoch.truncated_jobs > 0, "{epoch:?}");
    assert_eq!(event.truncated_jobs, 0, "{event:?}");
    assert_eq!(
        epoch,
        Fleet::new(three_node_fleet()).run(trace(), horizon),
        "default mode is the classic epoch path, bit for bit"
    );
}

#[test]
fn heterogeneous_nodes_and_schedulers_coexist() {
    let cfg = FleetConfig::new(vec![
        NodeSpec::sgprs("sgprs", GpuSpec::rtx_2080_ti()),
        NodeSpec::sgprs("naive", GpuSpec::synthetic(34))
            .with_scheduler(NodeScheduler::Naive),
    ]);
    let mut fleet = Fleet::new(cfg);
    let trace = ChurnTrace::static_population((0..4).map(tenant));
    let m = fleet.run(trace, SimDuration::from_secs(2));
    assert!(m.total_fps > 0.0);
    assert_eq!(m.nodes.len(), 2);
    assert!(m.nodes.iter().all(|n| n.released > 0));
}
