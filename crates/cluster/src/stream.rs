//! Lazy arrival streaming: churn pulled one event at a time.
//!
//! [`crate::ChurnTrace::generate`] materialises every arrival and
//! departure up front — O(trace) memory, which caps how much churn a
//! run can offer. An [`ArrivalStream`] delivers the *same* time-ordered
//! `(SimTime, ChurnEvent)` sequence lazily: the generator draws the
//! next arrival on demand and holds only the pending departures of
//! currently-live tenants, so memory is O(active tenants) no matter how
//! many millions of tenants the horizon covers.
//!
//! # Equivalence contract
//!
//! For the same `(config, horizon, seed)`,
//! [`ArrivalStream::generate`] yields **byte-identical** events, in the
//! identical order, to `ChurnTrace::generate(..).into_sorted()`. Both
//! pull from the one [`crate::churn::ChurnSampler`], so the RNG draw
//! order cannot drift; the merge below reproduces the materialised
//! path's *stable sort* tie-breaking exactly: at an equal instant, a
//! pending departure (pushed by an earlier arrival) precedes the next
//! arrival, a tenant's own zero-lifetime departure follows its arrival,
//! and same-instant departures keep generation order.

use crate::churn::{ChurnSampler, SampledArrival};
use crate::{ChurnConfig, ChurnEvent, ChurnTrace};
use sgprs_rt::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A time-ordered source of churn events, pulled lazily.
///
/// Built either [`ArrivalStream::generate`]d (O(active) memory) or
/// [`From`] a materialised [`ChurnTrace`] (tests, hand-built
/// populations, metro burst overlays). [`crate::Fleet::run`],
/// [`crate::Fleet::run_events`], and [`crate::Fleet::run_configured`]
/// accept either through `impl Into<ArrivalStream>`.
#[derive(Debug)]
pub struct ArrivalStream {
    /// One-event lookahead so callers can peek the next instant without
    /// consuming it (the epoch loop's boundary check).
    lookahead: Option<(SimTime, ChurnEvent)>,
    inner: StreamInner,
}

#[derive(Debug)]
enum StreamInner {
    /// A pre-materialised trace, already sorted.
    Materialised(VecDeque<(SimTime, ChurnEvent)>),
    /// The lazy generator.
    Generated(Box<ChurnGen>),
}

/// The lazy churn generator: the shared sampler plus the pending
/// departures of live tenants, merged into one sorted sequence.
#[derive(Debug)]
struct ChurnGen {
    sampler: ChurnSampler,
    /// The next arrival, drawn but not yet emitted.
    next_arrival: Option<SampledArrival>,
    /// Departures of already-emitted arrivals, keyed `(time, serial)` —
    /// the serial is the arrival's emission index, so same-instant
    /// departures keep generation order (the stable-sort order of the
    /// materialised path). Holds one entry per live tenant: the
    /// O(active) bound.
    pending: BinaryHeap<Reverse<(SimTime, u64, String)>>,
    /// Emission serial of the next arrival.
    emitted: u64,
}

impl ChurnGen {
    fn next_event(&mut self) -> Option<(SimTime, ChurnEvent)> {
        if self.next_arrival.is_none() {
            self.next_arrival = self.sampler.next_arrival();
        }
        // A pending departure was pushed by an earlier arrival, so on an
        // equal instant it precedes the next arrival — exactly the
        // materialised trace's stable-sort order. A tenant's own
        // zero-lifetime departure cannot jump its arrival: it only
        // enters `pending` when the arrival is emitted below.
        let depart_first = match (self.pending.peek(), &self.next_arrival) {
            (Some(Reverse((dt, _, _))), Some(arr)) => *dt <= arr.at,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if depart_first {
            let Reverse((t, _, name)) = self
                .pending
                .pop()
                .expect("invariant: a peeked pending departure exists");
            return Some((t, ChurnEvent::Departure(name)));
        }
        let arrival = self.next_arrival.take()?;
        if let Some(departure) = arrival.departure {
            self.pending
                .push(Reverse((departure, self.emitted, arrival.tenant.name.clone())));
        }
        self.emitted += 1;
        Some((arrival.at, ChurnEvent::Arrival(arrival.tenant)))
    }
}

impl ArrivalStream {
    /// A lazily generated stream over `[0, horizon)` — the same event
    /// sequence as `ChurnTrace::generate(cfg, horizon, seed)` sorted,
    /// in O(active-tenants) memory.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty, all weights are zero, or the mean
    /// inter-arrival gap is zero (as the materialised generator does).
    #[must_use]
    pub fn generate(cfg: &ChurnConfig, horizon: SimDuration, seed: u64) -> Self {
        ArrivalStream {
            lookahead: None,
            inner: StreamInner::Generated(Box::new(ChurnGen {
                sampler: ChurnSampler::new(cfg, horizon, seed),
                next_arrival: None,
                pending: BinaryHeap::new(),
                emitted: 0,
            })),
        }
    }

    /// `true` when the stream is generator-driven (lazy), `false` for a
    /// materialised trace.
    #[must_use]
    pub fn is_streaming(&self) -> bool {
        matches!(self.inner, StreamInner::Generated(_))
    }

    /// The instant of the next event without consuming it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.lookahead.is_none() {
            self.lookahead = self.pull();
        }
        self.lookahead.as_ref().map(|&(t, _)| t)
    }

    /// The next event in time order.
    pub fn next_event(&mut self) -> Option<(SimTime, ChurnEvent)> {
        self.lookahead.take().or_else(|| self.pull())
    }

    fn pull(&mut self) -> Option<(SimTime, ChurnEvent)> {
        match &mut self.inner {
            StreamInner::Materialised(events) => events.pop_front(),
            StreamInner::Generated(gen) => gen.next_event(),
        }
    }
}

impl From<ChurnTrace> for ArrivalStream {
    fn from(trace: ChurnTrace) -> Self {
        ArrivalStream {
            lookahead: None,
            inner: StreamInner::Materialised(VecDeque::from(trace.into_sorted())),
        }
    }
}

impl Iterator for ArrivalStream {
    type Item = (SimTime, ChurnEvent);

    fn next(&mut self) -> Option<Self::Item> {
        self.next_event()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The equivalence contract, module-level: generated streams match
    /// the materialised trace byte for byte (the end-to-end suite pins
    /// the same property over the fleet's JSON export).
    #[test]
    fn generated_stream_matches_materialised_trace() {
        for seed in [1u64, 7, 42, 0x5672_5053] {
            let cfg = ChurnConfig {
                mean_interarrival: SimDuration::from_millis(40),
                min_lifetime: SimDuration::from_millis(100),
                max_lifetime: SimDuration::from_secs(3),
                ..ChurnConfig::default()
            };
            let horizon = SimDuration::from_secs(10);
            let lazy: Vec<_> = ArrivalStream::generate(&cfg, horizon, seed).collect();
            let eager = ChurnTrace::generate(&cfg, horizon, seed).into_sorted();
            assert_eq!(lazy, eager, "seed {seed}");
        }
    }

    /// Zero lifetimes put a tenant's departure at its own arrival
    /// instant — the stable-sort tie the merge must not flip.
    #[test]
    fn zero_lifetime_ties_keep_arrival_before_departure() {
        let cfg = ChurnConfig {
            mean_interarrival: SimDuration::from_millis(10),
            min_lifetime: SimDuration::ZERO,
            max_lifetime: SimDuration::ZERO,
            ..ChurnConfig::default()
        };
        let horizon = SimDuration::from_secs(2);
        let lazy: Vec<_> = ArrivalStream::generate(&cfg, horizon, 9).collect();
        let eager = ChurnTrace::generate(&cfg, horizon, 9).into_sorted();
        assert_eq!(lazy, eager);
        let mut alive = std::collections::HashSet::new();
        for (_, e) in &lazy {
            match e {
                ChurnEvent::Arrival(t) => assert!(alive.insert(t.name.clone())),
                ChurnEvent::Departure(n) => assert!(alive.remove(n), "arrival first: {n}"),
            }
        }
    }

    #[test]
    fn materialised_streams_replay_their_trace() {
        let cfg = ChurnConfig::default();
        let horizon = SimDuration::from_secs(5);
        let trace = ChurnTrace::generate(&cfg, horizon, 3);
        let expected = trace.clone().into_sorted();
        let mut stream = ArrivalStream::from(trace);
        assert!(!stream.is_streaming());
        assert_eq!(stream.peek_time(), expected.first().map(|&(t, _)| t));
        let replayed: Vec<_> = stream.collect();
        assert_eq!(replayed, expected);
    }

    /// The memory contract: the generator's pending-departure heap holds
    /// one entry per live tenant, never the whole trace.
    #[test]
    fn generator_holds_only_live_departures() {
        let cfg = ChurnConfig {
            mean_interarrival: SimDuration::from_millis(5),
            min_lifetime: SimDuration::from_millis(50),
            max_lifetime: SimDuration::from_millis(200),
            ..ChurnConfig::default()
        };
        let mut stream = ArrivalStream::generate(&cfg, SimDuration::from_secs(20), 5);
        let mut live = 0usize;
        let mut events = 0usize;
        while let Some((_, e)) = stream.next_event() {
            match e {
                ChurnEvent::Arrival(_) => live += 1,
                ChurnEvent::Departure(_) => live -= 1,
            }
            events += 1;
            if let StreamInner::Generated(gen) = &stream.inner {
                assert!(
                    gen.pending.len() <= live,
                    "pending departures ({}) exceed live tenants ({live})",
                    gen.pending.len()
                );
            }
        }
        assert!(events > 1000, "a real volume was streamed: {events}");
    }
}
