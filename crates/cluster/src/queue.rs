//! The dispatch wait queue: ordering policies and queue-deadline
//! bookkeeping behind [`crate::Fleet`]'s admission retries.
//!
//! PR 1's dispatcher hardcoded a FIFO `VecDeque`; this module replaces it
//! with a [`DispatchQueue`] whose retry order is a [`QueuePolicy`]:
//!
//! * [`QueuePolicy::Fifo`] (the default) — arrival order, no overtaking:
//!   bit-for-bit the original semantics.
//! * [`QueuePolicy::Priority`] — higher [`crate::TenantSpec::weight`]
//!   first; equal weights keep arrival order.
//! * [`QueuePolicy::EarliestDeadline`] — least admission slack first: the
//!   absolute queue deadline (enqueue instant +
//!   [`crate::TenantSpec::max_wait`]) orders the queue, tenants without a
//!   deadline come last in arrival order.
//!
//! Every policy preserves the *no-overtaking-within-the-order* fairness
//! guarantee: a drain pass walks the queue in policy order and stops at
//! the first tenant that fits at no price, so a lower-ranked tenant can
//! never be admitted over a higher-ranked one. Tenants whose `max_wait`
//! elapses are expired out of the queue (under every policy) and count
//! as eventual rejections.
//!
//! The queue itself never talks to the admission controller — the
//! [`crate::Fleet`] drives the drain loop and the re-pricing ladder; the
//! queue only answers "who is next under the policy".

use crate::TenantSpec;
use serde::{Deserialize, Serialize};
use sgprs_rt::SimTime;

/// Retry order of the dispatch wait queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueuePolicy {
    /// Arrival order, no overtaking (the original dispatcher semantics).
    #[default]
    Fifo,
    /// Higher tenant weight first; ties keep arrival order.
    Priority,
    /// Earliest absolute queue deadline (enqueue + `max_wait`) first;
    /// deadline-less tenants last, in arrival order.
    EarliestDeadline,
}

impl core::fmt::Display for QueuePolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QueuePolicy::Fifo => f.write_str("fifo"),
            QueuePolicy::Priority => f.write_str("priority"),
            QueuePolicy::EarliestDeadline => f.write_str("earliest-deadline"),
        }
    }
}

/// Queueing knobs of a [`crate::Fleet`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Retry order of the wait queue.
    pub policy: QueuePolicy,
    /// Enable the fps re-pricing ladder: tenants that do not fit at their
    /// requested rate may be admitted at a degraded
    /// [`crate::TenantSpec::fps_ladder`] step (at arrival or from the
    /// queue) and are upgraded back toward the requested rate at later
    /// epoch boundaries when capacity frees. Both directions are modeled
    /// as SGPRS partition switches on the resident node — no migration,
    /// no stall. Disabled by default (tenants are served at the requested
    /// rate or not at all).
    pub repricing: bool,
}

/// One waiting tenant, with the state the policies order by.
#[derive(Debug, Clone)]
pub(crate) struct QueueEntry {
    /// The waiting tenant (still at its requested rate).
    pub tenant: TenantSpec,
    /// When the tenant entered the queue.
    pub enqueued_at: SimTime,
    /// Arrival serial, the universal tie-break.
    seq: u64,
}

impl QueueEntry {
    /// The absolute instant this entry gives up waiting, if any.
    fn deadline(&self) -> Option<SimTime> {
        self.tenant
            .max_wait
            .map(|w| self.enqueued_at.saturating_add(w))
    }

    /// The policy sort key: entries with smaller keys drain first.
    fn key(&self, policy: QueuePolicy) -> (u64, u64) {
        match policy {
            QueuePolicy::Fifo => (0, self.seq),
            // Higher weight first: invert into an ascending key.
            QueuePolicy::Priority => (u64::MAX - u64::from(self.tenant.weight), self.seq),
            QueuePolicy::EarliestDeadline => (
                self.deadline().map_or(u64::MAX, SimTime::as_nanos),
                self.seq,
            ),
        }
    }
}

/// The wait queue of a [`crate::Fleet`]: insertion-ordered storage with
/// policy-ordered retrieval.
#[derive(Debug)]
pub(crate) struct DispatchQueue {
    policy: QueuePolicy,
    entries: Vec<QueueEntry>,
    next_seq: u64,
}

impl DispatchQueue {
    /// An empty queue draining in `policy` order.
    pub fn new(policy: QueuePolicy) -> Self {
        DispatchQueue {
            policy,
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    /// Number of waiting tenants.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Enqueues `tenant` at instant `now`.
    pub fn push(&mut self, tenant: TenantSpec, now: SimTime) {
        self.entries.push(QueueEntry {
            tenant,
            enqueued_at: now,
            seq: self.next_seq,
        });
        self.next_seq += 1;
    }

    /// The waiting tenants in insertion order (for set-like bookkeeping,
    /// not drain order).
    pub fn iter(&self) -> impl Iterator<Item = &TenantSpec> {
        self.entries.iter().map(|e| &e.tenant)
    }

    /// Index of the entry that drains next under the policy.
    fn first_index(&self) -> Option<usize> {
        (0..self.entries.len()).min_by_key(|&i| self.entries[i].key(self.policy))
    }

    /// Removes and returns the entry that drains next under the policy.
    pub fn pop_first(&mut self) -> Option<QueueEntry> {
        self.first_index().map(|i| self.entries.remove(i))
    }

    /// Puts a popped entry back, keeping its original arrival serial so
    /// the drain order is unchanged (the policy keys ignore storage
    /// position).
    pub fn reinsert(&mut self, entry: QueueEntry) {
        self.entries.push(entry);
    }

    /// Re-stamps every waiting entry as enqueued at `start`: a new
    /// [`crate::Fleet::run`] starts a fresh timeline, so carried-over
    /// waiters measure waits (and their `max_wait` patience) on the new
    /// clock.
    pub fn rebase(&mut self, start: SimTime) {
        for e in &mut self.entries {
            e.enqueued_at = start;
        }
    }

    /// Removes the named tenant; `true` when it was waiting.
    pub fn remove(&mut self, name: &str) -> bool {
        match self.entries.iter().position(|e| e.tenant.name == name) {
            Some(i) => {
                self.entries.remove(i);
                true
            }
            None => false,
        }
    }

    /// Removes and returns every entry whose queue deadline has passed at
    /// `now`, in insertion order.
    pub fn take_expired(&mut self, now: SimTime) -> Vec<QueueEntry> {
        let mut expired = Vec::new();
        self.entries.retain(|e| match e.deadline() {
            Some(d) if d < now => {
                expired.push(e.clone());
                false
            }
            _ => true,
        });
        expired
    }

    /// The waiting tenants' names in drain (policy) order.
    pub fn names_in_order(&self) -> Vec<String> {
        let mut idx: Vec<usize> = (0..self.entries.len()).collect();
        idx.sort_by_key(|&i| self.entries[i].key(self.policy));
        idx.into_iter()
            .map(|i| self.entries[i].tenant.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelKind;
    use sgprs_rt::SimDuration;

    fn tenant(name: &str) -> TenantSpec {
        TenantSpec::new(name, ModelKind::ResNet18, 30.0)
    }

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn fifo_drains_in_arrival_order() {
        let mut q = DispatchQueue::new(QueuePolicy::Fifo);
        for name in ["a", "b", "c"] {
            q.push(tenant(name), SimTime::ZERO);
        }
        assert_eq!(q.names_in_order(), vec!["a", "b", "c"]);
        assert_eq!(q.pop_first().expect("non-empty").tenant.name, "a");
        assert_eq!(q.len(), 2);
        // A popped-then-reinserted head keeps its drain position.
        let head = q.pop_first().expect("non-empty");
        assert_eq!(head.tenant.name, "b");
        q.reinsert(head);
        assert_eq!(q.names_in_order(), vec!["b", "c"]);
    }

    #[test]
    fn priority_drains_heavier_weights_first_fifo_within() {
        let mut q = DispatchQueue::new(QueuePolicy::Priority);
        q.push(tenant("light-0"), SimTime::ZERO);
        q.push(tenant("heavy").with_weight(5), SimTime::ZERO);
        q.push(tenant("light-1"), SimTime::ZERO);
        assert_eq!(q.names_in_order(), vec!["heavy", "light-0", "light-1"]);
    }

    #[test]
    fn earliest_deadline_orders_by_slack_deadline_less_last() {
        let mut q = DispatchQueue::new(QueuePolicy::EarliestDeadline);
        // Enqueued later but tighter deadline: drains first.
        q.push(tenant("patient"), at(0));
        q.push(tenant("loose").with_max_wait(SimDuration::from_secs(9)), at(1));
        q.push(tenant("tight").with_max_wait(SimDuration::from_secs(2)), at(2));
        assert_eq!(q.names_in_order(), vec!["tight", "loose", "patient"]);
    }

    #[test]
    fn expiry_removes_only_past_deadline_entries() {
        let mut q = DispatchQueue::new(QueuePolicy::Fifo);
        q.push(tenant("gives-up").with_max_wait(SimDuration::from_secs(1)), at(0));
        q.push(tenant("waits"), at(0));
        q.push(tenant("later").with_max_wait(SimDuration::from_secs(1)), at(3));
        // At t = 1 the first deadline is exactly due, not yet past.
        assert!(q.take_expired(at(1)).is_empty());
        let expired = q.take_expired(at(2));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].tenant.name, "gives-up");
        assert_eq!(q.names_in_order(), vec!["waits", "later"]);
    }

    #[test]
    fn remove_by_name_works_across_policies() {
        for policy in [
            QueuePolicy::Fifo,
            QueuePolicy::Priority,
            QueuePolicy::EarliestDeadline,
        ] {
            let mut q = DispatchQueue::new(policy);
            q.push(tenant("a"), SimTime::ZERO);
            q.push(tenant("b"), SimTime::ZERO);
            assert!(q.remove("a"), "{policy}");
            assert!(!q.remove("a"), "{policy}");
            assert_eq!(q.iter().count(), 1);
        }
    }
}
