//! The dispatch wait queue: ordering policies and queue-deadline
//! bookkeeping behind [`crate::Fleet`]'s admission retries.
//!
//! PR 1's dispatcher hardcoded a FIFO `VecDeque`; this module replaces it
//! with a [`DispatchQueue`] whose retry order is a [`QueuePolicy`]:
//!
//! * [`QueuePolicy::Fifo`] (the default) — arrival order, no overtaking:
//!   bit-for-bit the original semantics.
//! * [`QueuePolicy::Priority`] — higher [`crate::TenantSpec::weight`]
//!   first; equal weights keep arrival order.
//! * [`QueuePolicy::EarliestDeadline`] — least admission slack first: the
//!   absolute queue deadline (enqueue instant +
//!   [`crate::TenantSpec::max_wait`]) orders the queue, tenants without a
//!   deadline come last in arrival order.
//! * [`QueuePolicy::WeightedFair`] — priority with aging: a waiter's
//!   effective weight is its [`crate::TenantSpec::weight`] plus one per
//!   [`AGING_QUANTUM`] waited, so a stream of heavy arrivals can delay a
//!   light waiter only boundedly — unlike [`QueuePolicy::Priority`],
//!   where it starves (every heavy arrival with weight `w` enqueued less
//!   than `(w - weight) ×` quantum after the light waiter outranks it;
//!   all later ones rank below).
//!
//! Every policy preserves the *no-overtaking-within-the-order* fairness
//! guarantee: a drain pass walks the queue in policy order and stops at
//! the first tenant that fits at no price, so a lower-ranked tenant can
//! never be admitted over a higher-ranked one. Tenants whose `max_wait`
//! elapses are expired out of the queue (under every policy) and count
//! as eventual rejections.
//!
//! The queue itself never talks to the admission controller — the
//! [`crate::Fleet`] drives the drain loop and the re-pricing ladder; the
//! queue only answers "who is next under the policy".

use crate::interner::TenantId;
use crate::TenantSpec;
use serde::{Deserialize, Serialize};
use sgprs_rt::{SimDuration, SimTime};

/// Retry order of the dispatch wait queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueuePolicy {
    /// Arrival order, no overtaking (the original dispatcher semantics).
    #[default]
    Fifo,
    /// Higher tenant weight first; ties keep arrival order.
    Priority,
    /// Earliest absolute queue deadline (enqueue + `max_wait`) first;
    /// deadline-less tenants last, in arrival order.
    EarliestDeadline,
    /// Priority with aging: effective weight grows by one per
    /// [`AGING_QUANTUM`] waited, so heavy streams cannot starve light
    /// waiters. Ties keep arrival order.
    WeightedFair,
}

/// How long a [`QueuePolicy::WeightedFair`] waiter must wait to gain one
/// point of effective weight. One second: a weight-1 tenant overtakes a
/// freshly arrived weight-9 tenant after eight seconds in the queue.
pub const AGING_QUANTUM: SimDuration = SimDuration::from_secs(1);

impl core::fmt::Display for QueuePolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QueuePolicy::Fifo => f.write_str("fifo"),
            QueuePolicy::Priority => f.write_str("priority"),
            QueuePolicy::EarliestDeadline => f.write_str("earliest-deadline"),
            QueuePolicy::WeightedFair => f.write_str("weighted-fair"),
        }
    }
}

/// Queueing knobs of a [`crate::Fleet`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Retry order of the wait queue.
    pub policy: QueuePolicy,
    /// Enable the fps re-pricing ladder: tenants that do not fit at their
    /// requested rate may be admitted at a degraded
    /// [`crate::TenantSpec::fps_ladder`] step (at arrival or from the
    /// queue) and are upgraded back toward the requested rate at later
    /// epoch boundaries when capacity frees. Both directions are modeled
    /// as SGPRS partition switches on the resident node — no migration,
    /// no stall. Disabled by default (tenants are served at the requested
    /// rate or not at all).
    pub repricing: bool,
    /// Enable demand-aware queue expiry: a waiter that *provably* can
    /// never be admitted — no node could carry it even fully drained, at
    /// its requested rate or any ladder step
    /// ([`crate::policy::provably_hopeless`]) — is expired before its
    /// patience elapses instead of blocking the queue until `max_wait`
    /// (or forever). Counted separately from patience expiry as
    /// [`crate::FleetMetrics::expired_hopeless`]. Disabled by default:
    /// the classic behaviour keeps hopeless waiters until their patience
    /// runs out.
    pub demand_aware_expiry: bool,
}

/// One waiting tenant, with the state the policies order by.
#[derive(Debug, Clone)]
pub(crate) struct QueueEntry {
    /// The waiter's interned id (see [`crate::interner`]): the handle
    /// departures and expiry resolve entries by, no string compares.
    pub id: TenantId,
    /// The waiting tenant (still at its requested rate).
    pub tenant: TenantSpec,
    /// When the tenant entered the queue.
    pub enqueued_at: SimTime,
    /// Arrival serial, the universal tie-break.
    seq: u64,
}

impl QueueEntry {
    /// The absolute instant this entry gives up waiting, if any.
    fn deadline(&self) -> Option<SimTime> {
        self.tenant
            .max_wait
            .map(|w| self.enqueued_at.saturating_add(w))
    }

    /// The policy sort key at instant `now`: entries with smaller keys
    /// drain first. Only [`QueuePolicy::WeightedFair`] consults `now`
    /// (aging); the other policies' orders are time-invariant.
    fn key(&self, policy: QueuePolicy, now: SimTime) -> (u64, u64) {
        match policy {
            QueuePolicy::Fifo => (0, self.seq),
            // Higher weight first: invert into an ascending key.
            QueuePolicy::Priority => (u64::MAX - u64::from(self.tenant.weight), self.seq),
            QueuePolicy::EarliestDeadline => (
                self.deadline().map_or(u64::MAX, SimTime::as_nanos),
                self.seq,
            ),
            QueuePolicy::WeightedFair => {
                let aged = now.duration_since(self.enqueued_at).as_nanos()
                    / AGING_QUANTUM.as_nanos().max(1);
                let effective = u64::from(self.tenant.weight).saturating_add(aged);
                (u64::MAX - effective, self.seq)
            }
        }
    }
}

/// The wait queue of a [`crate::Fleet`]: insertion-ordered storage with
/// policy-ordered retrieval.
#[derive(Debug)]
pub(crate) struct DispatchQueue {
    policy: QueuePolicy,
    entries: Vec<QueueEntry>,
    next_seq: u64,
}

impl DispatchQueue {
    /// An empty queue draining in `policy` order.
    pub fn new(policy: QueuePolicy) -> Self {
        DispatchQueue {
            policy,
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    /// Number of waiting tenants.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Enqueues `tenant` (interned as `id`) at instant `now`.
    pub fn push(&mut self, id: TenantId, tenant: TenantSpec, now: SimTime) {
        self.entries.push(QueueEntry {
            id,
            tenant,
            enqueued_at: now,
            seq: self.next_seq,
        });
        self.next_seq += 1;
    }

    /// The waiting entries in insertion order (for set-like bookkeeping,
    /// not drain order).
    pub fn entries(&self) -> impl Iterator<Item = &QueueEntry> {
        self.entries.iter()
    }

    /// The waiting tenants' ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = TenantId> + '_ {
        self.entries.iter().map(|e| e.id)
    }

    /// Index of the entry that drains next under the policy at `now`.
    fn first_index(&self, now: SimTime) -> Option<usize> {
        (0..self.entries.len()).min_by_key(|&i| self.entries[i].key(self.policy, now))
    }

    /// Removes and returns the entry that drains next under the policy
    /// at `now`.
    pub fn pop_first(&mut self, now: SimTime) -> Option<QueueEntry> {
        self.first_index(now).map(|i| self.entries.remove(i))
    }

    /// Puts a popped entry back, keeping its original arrival serial so
    /// the drain order is unchanged (the policy keys ignore storage
    /// position).
    pub fn reinsert(&mut self, entry: QueueEntry) {
        self.entries.push(entry);
    }

    /// Re-stamps every waiting entry as enqueued at `start`: a new
    /// [`crate::Fleet::run`] starts a fresh timeline, so carried-over
    /// waiters measure waits (and their `max_wait` patience) on the new
    /// clock.
    pub fn rebase(&mut self, start: SimTime) {
        for e in &mut self.entries {
            e.enqueued_at = start;
        }
    }

    /// Removes the entry with this id, returning it when it was waiting.
    pub fn remove_id(&mut self, id: TenantId) -> Option<QueueEntry> {
        self.entries
            .iter()
            .position(|e| e.id == id)
            .map(|i| self.entries.remove(i))
    }

    /// Removes and returns every entry whose queue deadline has passed at
    /// `now`, in insertion order.
    pub fn take_expired(&mut self, now: SimTime) -> Vec<QueueEntry> {
        let mut expired = Vec::new();
        self.entries.retain(|e| match e.deadline() {
            Some(d) if d < now => {
                expired.push(e.clone());
                false
            }
            _ => true,
        });
        expired
    }

    /// The waiting tenants' names in drain (policy) order at `now`.
    pub fn names_in_order(&self, now: SimTime) -> Vec<String> {
        let mut idx: Vec<usize> = (0..self.entries.len()).collect();
        idx.sort_by_key(|&i| self.entries[i].key(self.policy, now));
        idx.into_iter()
            .map(|i| self.entries[i].tenant.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelKind;
    use sgprs_rt::SimDuration;

    fn tenant(name: &str) -> TenantSpec {
        TenantSpec::new(name, ModelKind::ResNet18, 30.0)
    }

    fn tid(raw: u32) -> TenantId {
        TenantId::from_raw(raw)
    }

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn fifo_drains_in_arrival_order() {
        let mut q = DispatchQueue::new(QueuePolicy::Fifo);
        for (i, name) in ["a", "b", "c"].into_iter().enumerate() {
            q.push(tid(i as u32), tenant(name), SimTime::ZERO);
        }
        assert_eq!(q.names_in_order(SimTime::ZERO), vec!["a", "b", "c"]);
        assert_eq!(q.pop_first(SimTime::ZERO).expect("non-empty").tenant.name, "a");
        assert_eq!(q.len(), 2);
        // A popped-then-reinserted head keeps its drain position.
        let head = q.pop_first(SimTime::ZERO).expect("non-empty");
        assert_eq!(head.tenant.name, "b");
        q.reinsert(head);
        assert_eq!(q.names_in_order(SimTime::ZERO), vec!["b", "c"]);
    }

    #[test]
    fn priority_drains_heavier_weights_first_fifo_within() {
        let mut q = DispatchQueue::new(QueuePolicy::Priority);
        q.push(tid(0), tenant("light-0"), SimTime::ZERO);
        q.push(tid(1), tenant("heavy").with_weight(5), SimTime::ZERO);
        q.push(tid(2), tenant("light-1"), SimTime::ZERO);
        assert_eq!(q.names_in_order(SimTime::ZERO), vec!["heavy", "light-0", "light-1"]);
    }

    #[test]
    fn earliest_deadline_orders_by_slack_deadline_less_last() {
        let mut q = DispatchQueue::new(QueuePolicy::EarliestDeadline);
        // Enqueued later but tighter deadline: drains first.
        q.push(tid(0), tenant("patient"), at(0));
        q.push(tid(1), tenant("loose").with_max_wait(SimDuration::from_secs(9)), at(1));
        q.push(tid(2), tenant("tight").with_max_wait(SimDuration::from_secs(2)), at(2));
        assert_eq!(q.names_in_order(at(2)), vec!["tight", "loose", "patient"]);
    }

    #[test]
    fn expiry_removes_only_past_deadline_entries() {
        let mut q = DispatchQueue::new(QueuePolicy::Fifo);
        q.push(tid(0), tenant("gives-up").with_max_wait(SimDuration::from_secs(1)), at(0));
        q.push(tid(1), tenant("waits"), at(0));
        q.push(tid(2), tenant("later").with_max_wait(SimDuration::from_secs(1)), at(3));
        // At t = 1 the first deadline is exactly due, not yet past.
        assert!(q.take_expired(at(1)).is_empty());
        let expired = q.take_expired(at(2));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].tenant.name, "gives-up");
        assert_eq!(q.names_in_order(at(2)), vec!["waits", "later"]);
    }

    #[test]
    fn weighted_fair_starts_as_priority_then_ages() {
        let mut q = DispatchQueue::new(QueuePolicy::WeightedFair);
        q.push(tid(0), tenant("light"), at(0));
        q.push(tid(1), tenant("heavy").with_weight(5), at(0));
        // Fresh queue: plain priority order.
        assert_eq!(q.names_in_order(at(0)), vec!["heavy", "light"]);
        // After enough waiting both aged equally — still priority order —
        // but a *newly arrived* heavy no longer outranks the aged light.
        q.push(tid(2), tenant("late-heavy").with_weight(5), at(6));
        assert_eq!(
            q.names_in_order(at(6)),
            vec!["heavy", "light", "late-heavy"],
            "light (1+6) beats late-heavy (5+0), not the equally aged heavy (5+6)"
        );
    }

    #[test]
    fn weighted_fair_never_starves_a_light_waiter() {
        // The starvation scenario: one light waiter, then a sustained
        // stream of heavy arrivals with one drain slot per second. Under
        // `Priority` the light waiter never pops; under `WeightedFair`
        // its aged weight outgrows every fresh heavy arrival.
        let drained_light_within = |policy: QueuePolicy, rounds: u64| -> Option<u64> {
            let mut q = DispatchQueue::new(policy);
            q.push(tid(0), tenant("light"), at(0));
            for round in 0..rounds {
                let now = at(round);
                q.push(
                    tid(round as u32 + 1),
                    tenant(&format!("heavy-{round}")).with_weight(9),
                    now,
                );
                let popped = q.pop_first(now).expect("non-empty");
                if popped.tenant.name == "light" {
                    return Some(round);
                }
            }
            None
        };
        assert_eq!(
            drained_light_within(QueuePolicy::Priority, 64),
            None,
            "priority starves the light waiter"
        );
        let round = drained_light_within(QueuePolicy::WeightedFair, 64)
            .expect("weighted-fair must drain the light waiter");
        // Bound: a fresh weight-9 arrival at round r has effective 9;
        // light has 1 + r. Light wins from r = 9; earlier heavies that
        // aged alongside drain first, one per round.
        assert!(round <= 20, "drained at round {round}");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// Under sustained heavy load with one drain slot per aging
        /// quantum, *every* waiter eventually drains under
        /// `WeightedFair`: aging bounds how many later arrivals can
        /// overtake any given entry.
        #[test]
        fn weighted_fair_eventually_drains_every_waiter(
            seed_weights in proptest::collection::vec(1u32..10, 1..8),
            arrival_weights in proptest::collection::vec(1u32..10, 8..40),
        ) {
            let mut q = DispatchQueue::new(QueuePolicy::WeightedFair);
            for (i, &w) in seed_weights.iter().enumerate() {
                q.push(tid(i as u32), tenant(&format!("seed-{i}")).with_weight(w), at(0));
            }
            let mut drained = std::collections::HashSet::new();
            let mut round = 0u64;
            // Sustained load: one fresh arrival and one drain per round.
            for &w in &arrival_weights {
                let now = at(round);
                q.push(
                    tid(round as u32 + 100),
                    tenant(&format!("in-{round}")).with_weight(w),
                    now,
                );
                let popped = q.pop_first(now).expect("queue non-empty");
                drained.insert(popped.tenant.name);
                round += 1;
            }
            // Load stops; keep draining one per round. Every seed waiter
            // must surface within bounded time: a seed aged `r` rounds
            // has effective weight ≥ 1 + r, while any arrival's lead is
            // bounded by max weight 9.
            while q.len() > 0 {
                let now = at(round);
                let popped = q.pop_first(now).expect("non-empty");
                drained.insert(popped.tenant.name);
                round += 1;
                proptest::prop_assert!(
                    round < 256,
                    "the queue must drain without stalling"
                );
            }
            for i in 0..seed_weights.len() {
                proptest::prop_assert!(
                    drained.contains(&format!("seed-{i}")),
                    "seed waiter {i} never drained"
                );
            }
        }
    }

    #[test]
    fn remove_by_id_works_across_policies() {
        for policy in [
            QueuePolicy::Fifo,
            QueuePolicy::Priority,
            QueuePolicy::EarliestDeadline,
            QueuePolicy::WeightedFair,
        ] {
            let mut q = DispatchQueue::new(policy);
            q.push(tid(0), tenant("a"), SimTime::ZERO);
            q.push(tid(1), tenant("b"), SimTime::ZERO);
            let removed = q.remove_id(tid(0));
            assert_eq!(removed.map(|e| e.tenant.name), Some("a".into()), "{policy}");
            assert!(q.remove_id(tid(0)).is_none(), "{policy}");
            assert_eq!(q.entries().count(), 1);
            assert_eq!(q.ids().collect::<Vec<_>>(), vec![tid(1)]);
        }
    }
}
