//! The span-scoped hot-path profiler: the simulator observing *itself*.
//!
//! Where the rest of [`crate::telemetry`] measures the simulated fleet,
//! this module measures the simulator's own hot paths: a fixed set of
//! [`Span`]s (placement planning, queue drains, event-queue pops, event
//! execution, epoch task compilation, the telemetry fold, stream pulls,
//! and timing-wheel cascades), each accumulating a call count and a
//! log2-bucket wall-clock latency histogram.
//!
//! Two properties keep it inside the determinism contract
//! (DETERMINISM.md, "wall-clock surfaces"):
//!
//! * **Zero-cost when off.** The [`SpanProfiler`] is constructed only
//!   when [`crate::FleetConfig::with_profiling`] armed it for the run;
//!   every hook threads an `Option` that is `None` otherwise, so the
//!   disabled path does no clock reads and allocates nothing.
//! * **Sidecar-only export.** Span call counts are deterministic (they
//!   count deterministic code paths), but the histograms are real time.
//!   Neither ever enters [`crate::FleetMetrics::to_json`]; they are read
//!   through [`crate::Fleet::span_profile`] and land only in the
//!   `BENCH_*.json` perf sidecars.
//!
//! This file is one of the two cluster-side entries on the sgprs-lint
//! D002 wall-clock allowlist — the only place outside
//! `telemetry/mod.rs` where the cluster crate may read `Instant::now`.

/// Number of log2 buckets in every span's wall-clock latency histogram:
/// bucket `i` counts calls that took `[2^i, 2^(i+1))` nanoseconds, with
/// the last bucket catching everything from `2^15` ns (~33 µs) up.
pub const PLAN_LATENCY_BINS: usize = 16;

/// Number of profiled [`Span`]s.
pub const SPAN_COUNT: usize = 8;

/// The fixed set of profiled simulator hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Span {
    /// One `plan_repriced` invocation — the placement scan, flat or
    /// sharded/p2c (this span generalises the original one-off
    /// plan-latency histogram).
    Plan = 0,
    /// One wait-queue drain pass that actually scanned the queue.
    DrainScan = 1,
    /// One event popped off the event queue (event engine).
    EventPop = 2,
    /// One popped event executed by its handler (event engine).
    EventExec = 3,
    /// One epoch's compiled-task preparation across all nodes (epoch
    /// engine) — the span that demonstrates the resident-list clone
    /// hoist.
    EpochCompile = 4,
    /// The deterministic sketch/window fold in `finish_report` at the
    /// end of a telemetry-armed run.
    TelemetryFold = 5,
    /// One arrival/departure consumed from the (possibly
    /// generator-backed, interner-fed) arrival stream.
    ArrivalPull = 6,
    /// One timing-wheel cascade in the event queue: an L1 slot
    /// scattered into L0, an overflow rescan, or a far-future
    /// fast-forward (event engine). The amortised cost the wheel trades
    /// the heap's per-op log n for — watching it stay rare *is* the
    /// O(1)-amortised claim.
    WheelCascade = 7,
}

impl Span {
    /// Every span, in the fixed rendering order used by bench reports.
    pub const ALL: [Span; SPAN_COUNT] = [
        Span::Plan,
        Span::DrainScan,
        Span::EventPop,
        Span::EventExec,
        Span::EpochCompile,
        Span::TelemetryFold,
        Span::ArrivalPull,
        Span::WheelCascade,
    ];

    /// The span's stable lower-snake label (bench reports key on it).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Span::Plan => "plan",
            Span::DrainScan => "drain_scan",
            Span::EventPop => "event_pop",
            Span::EventExec => "event_exec",
            Span::EpochCompile => "epoch_compile",
            Span::TelemetryFold => "telemetry_fold",
            Span::ArrivalPull => "arrival_pull",
            Span::WheelCascade => "wheel_cascade",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One span's accumulated stats: how often it ran and where its
/// wall-clock latencies landed (log2 nanosecond buckets).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Times the span executed. Deterministic: a pure function of
    /// `(config, trace, horizon)`, which is what lets bench baselines
    /// gate on it exactly.
    pub calls: u64,
    /// Wall-clock latency histogram, log2 nanosecond buckets. *Not*
    /// deterministic — never exported on a deterministic surface.
    pub wall_hist: [u64; PLAN_LATENCY_BINS],
}

/// The finished profile of one run: per-span stats for every [`Span`].
///
/// Obtained from [`crate::Fleet::span_profile`] after a run that was
/// armed with [`crate::FleetConfig::with_profiling`]; `None` otherwise —
/// which is also the test hook proving the profiler was never
/// constructed on the disabled path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanProfile {
    spans: [SpanStats; SPAN_COUNT],
}

impl SpanProfile {
    /// The stats of one span.
    #[must_use]
    pub fn stats(&self, span: Span) -> &SpanStats {
        &self.spans[span.index()]
    }

    /// How many times the span executed (deterministic).
    #[must_use]
    pub fn calls(&self, span: Span) -> u64 {
        self.spans[span.index()].calls
    }

    /// The span's wall-clock latency histogram (log2 ns buckets).
    #[must_use]
    pub fn wall_hist(&self, span: Span) -> &[u64; PLAN_LATENCY_BINS] {
        &self.spans[span.index()].wall_hist
    }

    /// Total calls across all spans.
    #[must_use]
    pub fn total_calls(&self) -> u64 {
        self.spans.iter().map(|s| s.calls).sum()
    }
}

/// The live recorder. Constructed **only** when a run is armed with
/// profiling; the disabled path never instantiates it.
#[derive(Debug, Default)]
pub(crate) struct SpanProfiler {
    profile: SpanProfile,
}

impl SpanProfiler {
    pub(crate) fn new() -> Self {
        SpanProfiler::default()
    }

    /// Starts one span measurement. The only `Instant::now` read in the
    /// cluster crate outside `telemetry/mod.rs` (D002-allowlisted).
    pub(crate) fn clock() -> std::time::Instant {
        std::time::Instant::now()
    }

    /// Ends one span measurement started at `started`.
    pub(crate) fn record(&mut self, span: Span, started: std::time::Instant) {
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let stats = &mut self.profile.spans[span.index()];
        stats.calls += 1;
        stats.wall_hist[log2_bin(nanos)] += 1;
    }

    /// Finalises the run into its immutable [`SpanProfile`].
    pub(crate) fn into_profile(self) -> SpanProfile {
        self.profile
    }
}

/// The log2 bucket of a nanosecond latency: 0 and 1 share bucket 0,
/// everything from `2^(BINS-1)` ns up lands in the overflow bucket.
fn log2_bin(nanos: u64) -> usize {
    (64 - nanos.leading_zeros() as usize)
        .saturating_sub(1)
        .min(PLAN_LATENCY_BINS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_wall_histogram_buckets_by_log2() {
        let mut p = SpanProfiler::new();
        let clock = SpanProfiler::clock();
        p.record(Span::Plan, clock);
        let profile = p.into_profile();
        assert_eq!(profile.calls(Span::Plan), 1);
        assert_eq!(profile.wall_hist(Span::Plan).iter().sum::<u64>(), 1);
        assert_eq!(profile.calls(Span::EventPop), 0);
        assert_eq!(profile.total_calls(), 1);
    }

    #[test]
    fn log2_bins_match_the_documented_edges() {
        assert_eq!(log2_bin(0), 0, "0 and 1 share the first bucket");
        assert_eq!(log2_bin(1), 0);
        assert_eq!(log2_bin(2), 1);
        assert_eq!(log2_bin(3), 1);
        assert_eq!(log2_bin(1 << 10), 10);
        assert_eq!(log2_bin(u64::MAX), PLAN_LATENCY_BINS - 1, "overflow bin");
    }

    #[test]
    fn span_names_and_order_are_stable() {
        let names: Vec<&str> = Span::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "plan",
                "drain_scan",
                "event_pop",
                "event_exec",
                "epoch_compile",
                "telemetry_fold",
                "arrival_pull",
                "wheel_cascade"
            ]
        );
        for (i, s) in Span::ALL.iter().enumerate() {
            assert_eq!(s.index(), i, "ALL order matches the discriminants");
        }
    }
}
