//! Fleet observability: windowed time-series, mergeable quantile
//! sketches, and a deterministic decision trace.
//!
//! [`crate::FleetMetrics`] answers *what happened over the whole run*;
//! this module answers *what happened when, where, and why* — without
//! giving up the fleet's determinism contract or more than O(1) memory
//! per node. Three pillars:
//!
//! * **Windowed time-series** ([`window`]) — simulated time is cut into
//!   fixed [`TelemetryConfig::window`] intervals, each accumulating the
//!   dispatch activity that fell inside it (admissions, rejections,
//!   deferrals, re-pricing steps, migrations), the peak wait-queue
//!   depth, and the mean sampled fleet utilisation.
//! * **Quantile sketches** ([`sketch`]) — fixed-size, integer-centroid,
//!   deterministic [`QuantileSketch`]es for the queue-wait and
//!   job-latency distributions, exporting p50/p90/p99 per window and
//!   run-wide. Per-node latency sketches are merged in ascending node
//!   index, and per-window wait sketches in window order, so the export
//!   is byte-identical across worker counts.
//! * **Decision trace** ([`trace`]) — an opt-in ring buffer of
//!   [`TraceEvent`]s (dispatch verdict with cause and shard-probe
//!   count, queue admission/expiry, re-pricing ladder steps, migration
//!   victim/destination/stall, departures) plus hot-path profiling
//!   counters. Deterministic counters land in the JSON profile block;
//!   wall-clock histograms stay out of the export and are read through
//!   [`crate::Fleet::span_profile`] /
//!   [`crate::Fleet::plan_latency_histogram`].
//! * **Span profiler** ([`prof`]) — an independently armed
//!   ([`crate::FleetConfig::with_profiling`]) wall-clock profiler over
//!   the simulator's *own* hot paths ([`Span`]): per-span call counts
//!   and log2 latency histograms, zero-cost when off, exported only via
//!   the `BENCH_*.json` perf sidecars.
//!
//! Everything records on the single-threaded orchestration path of both
//! engines (the epoch path's accounting helpers and fold loop, the
//! event engine's handlers), never inside the parallel per-node fan-out
//! — which is what makes the output a deterministic function of
//! `(config, trace, horizon)`.
//!
//! Telemetry is **off by default** ([`TelemetryConfig::disabled`]) and
//! the off path is zero-cost on the export: a run without telemetry
//! renders byte-identical JSON to the pre-telemetry schema (see
//! [`crate::METRICS_SCHEMA_VERSION`]).

mod prof;
mod sketch;
mod trace;
mod window;

pub use prof::{Span, SpanProfile, SpanStats, PLAN_LATENCY_BINS, SPAN_COUNT};
pub use sketch::{QuantileSketch, DEFAULT_SKETCH_CAPACITY, RANK_ERROR_NUMERATOR};
pub use trace::{ArrivalVerdict, TraceEvent};

use crate::DispatchOutcome;
use prof::SpanProfiler;
use serde::{Deserialize, Serialize};
use sgprs_rt::{SimDuration, SimTime};
use trace::{ProfileCounters, TraceRing};
use window::{WindowSeries, WindowStats};

/// Telemetry knobs on [`crate::FleetConfig`]. Disabled by default; see
/// the module docs for what enabling buys.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Master switch. Off ([`TelemetryConfig::disabled`], the default)
    /// means no telemetry state is allocated, no hook records anything,
    /// and the JSON export is byte-identical to the pre-telemetry
    /// schema.
    pub enabled: bool,
    /// Time-series window length (250 ms by default).
    pub window: SimDuration,
    /// Centroid budget of every quantile sketch (per-window wait and
    /// per-node latency); see [`QuantileSketch`] for the rank-error
    /// bound it buys.
    pub sketch_capacity: usize,
    /// Decision-trace ring capacity; 0 (the default) keeps the trace
    /// off even when telemetry is enabled.
    pub trace_capacity: usize,
    /// Arms the span-scoped hot-path profiler ([`SpanProfile`]) for the
    /// run. Independent of `enabled` — profiling works with the
    /// simulated-fleet telemetry fully off — and off by default: the
    /// profiler is never even constructed unless this is set.
    pub profiling: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::disabled()
    }
}

impl TelemetryConfig {
    /// The default: telemetry fully off.
    #[must_use]
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            window: SimDuration::from_millis(250),
            sketch_capacity: DEFAULT_SKETCH_CAPACITY,
            trace_capacity: 0,
            profiling: false,
        }
    }

    /// Telemetry on, with time-series windows of the given length and no
    /// decision trace.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn windowed(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "telemetry window must be positive");
        TelemetryConfig {
            enabled: true,
            window,
            ..TelemetryConfig::disabled()
        }
    }

    /// Enables the decision trace with the given ring capacity.
    #[must_use]
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Arms the span-scoped hot-path profiler (see [`SpanProfile`]).
    #[must_use]
    pub fn with_profiling(mut self) -> Self {
        self.profiling = true;
        self
    }

    /// Replaces the sketch centroid budget.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 4` (see [`QuantileSketch::new`]).
    #[must_use]
    pub fn with_sketch_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 4, "a sketch needs at least 4 centroids");
        self.sketch_capacity = capacity;
        self
    }
}

/// Quantile summary of one sketch, in milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SketchSummary {
    /// Samples observed.
    pub count: u64,
    /// Median, milliseconds.
    pub p50_ms: f64,
    /// 90th percentile, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Largest observed sample, milliseconds.
    pub max_ms: f64,
}

impl SketchSummary {
    fn from_sketch(s: &QuantileSketch) -> Self {
        let ms = |ns: u64| ns as f64 / 1e6;
        SketchSummary {
            count: s.count(),
            p50_ms: ms(s.quantile(0.50)),
            p90_ms: ms(s.quantile(0.90)),
            p99_ms: ms(s.quantile(0.99)),
            max_ms: ms(s.max()),
        }
    }

    fn render_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}}",
            self.count, self.p50_ms, self.p90_ms, self.p99_ms, self.max_ms
        )
    }
}

/// One time-series window of the finished report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowReport {
    /// Window start, seconds from the run origin.
    pub start_secs: f64,
    /// Arrivals dispatched inside the window.
    pub arrivals: u64,
    /// Arrivals admitted immediately (full rate or degraded).
    pub admitted: u64,
    /// Re-pricing ladder admissions (at arrival or out of the queue).
    pub degraded: u64,
    /// Arrivals deferred to the wait queue.
    pub deferred: u64,
    /// Arrivals dropped as latency-infeasible.
    pub infeasible: u64,
    /// Arrivals rejected as duplicate names.
    pub duplicates: u64,
    /// This run's deferrals admitted out of the queue.
    pub admitted_after_wait: u64,
    /// Waiters expired (patience and demand-aware together).
    pub expired: u64,
    /// Re-pricing ladder steps back up.
    pub upgrades: u64,
    /// Successful migrations.
    pub migrations: u64,
    /// Departures applied.
    pub departures: u64,
    /// Peak wait-queue depth observed after any queue mutation.
    pub queue_depth_peak: u64,
    /// Mean of the utilisation samples that landed in the window.
    pub utilization_mean: f64,
    /// Queue waits of deferrals admitted inside the window.
    pub wait: SketchSummary,
}

/// Deterministic hot-path profile counters of the finished report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Placement plans evaluated (arrival dispatch + queue drains).
    pub plans: u64,
    /// Placement-scan probes spent across all plans: one per probed
    /// shard, one per flat whole-fleet scan.
    pub shard_probes: u64,
    /// Drain passes that actually scanned the queue.
    pub drain_scans: u64,
    /// Event-queue pushes + pops (0 on the epoch path).
    pub event_queue_ops: u64,
    /// Decision-trace events recorded.
    pub trace_recorded: u64,
    /// Decision-trace events dropped by the ring (oldest-first).
    pub trace_dropped: u64,
}

/// The finished telemetry of one run, carried on
/// [`crate::FleetMetrics::telemetry`] and rendered into the schema-v3
/// JSON export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Time-series window length, seconds.
    pub window_secs: f64,
    /// The time-series windows, in order from the run origin. Trailing
    /// fully idle windows are not materialised.
    pub windows: Vec<WindowReport>,
    /// Run-wide queue-wait distribution: the per-window sketches merged
    /// in window order.
    pub queue_wait: SketchSummary,
    /// Run-wide job-latency (response-time) distribution: the per-node
    /// sketches merged in ascending node index.
    pub job_latency: SketchSummary,
    /// Deterministic hot-path profile counters.
    pub profile: ProfileReport,
    /// Whether the decision trace was enabled (capacity > 0); gates the
    /// `trace` block in the JSON export.
    pub trace_enabled: bool,
    /// Rendered decision-trace lines, oldest first (empty when the trace
    /// is off).
    pub trace: Vec<String>,
}

impl TelemetryReport {
    /// The peak wait-queue depth across all windows.
    #[must_use]
    pub fn peak_queue_depth(&self) -> u64 {
        self.windows
            .iter()
            .map(|w| w.queue_depth_peak)
            .max()
            .unwrap_or(0)
    }

    /// Renders the report as the `"telemetry"` member of the metrics
    /// JSON export (hand-rolled like the rest of
    /// [`crate::FleetMetrics::to_json`]), including the trailing comma.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(1_024);
        out.push_str("  \"telemetry\": {\n");
        out.push_str(&format!("    \"window_secs\": {:.3},\n", self.window_secs));
        out.push_str(&format!(
            "    \"queue_wait_ms\": {},\n",
            self.queue_wait.render_json()
        ));
        out.push_str(&format!(
            "    \"job_latency_ms\": {},\n",
            self.job_latency.render_json()
        ));
        out.push_str(&format!(
            "    \"profile\": {{\"plans\": {}, \"shard_probes\": {}, \"drain_scans\": {}, \"event_queue_ops\": {}, \"trace_recorded\": {}, \"trace_dropped\": {}}},\n",
            self.profile.plans,
            self.profile.shard_probes,
            self.profile.drain_scans,
            self.profile.event_queue_ops,
            self.profile.trace_recorded,
            self.profile.trace_dropped
        ));
        out.push_str("    \"windows\": [\n");
        for (i, w) in self.windows.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"start_secs\": {:.3}, \"arrivals\": {}, \"admitted\": {}, \"degraded\": {}, \"deferred\": {}, \"infeasible\": {}, \"duplicates\": {}, \"admitted_after_wait\": {}, \"expired\": {}, \"upgrades\": {}, \"migrations\": {}, \"departures\": {}, \"queue_depth_peak\": {}, \"utilization_mean\": {:.4}, \"wait_ms\": {}}}",
                w.start_secs,
                w.arrivals,
                w.admitted,
                w.degraded,
                w.deferred,
                w.infeasible,
                w.duplicates,
                w.admitted_after_wait,
                w.expired,
                w.upgrades,
                w.migrations,
                w.departures,
                w.queue_depth_peak,
                w.utilization_mean,
                w.wait.render_json()
            ));
            if i + 1 < self.windows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("    ]");
        if self.trace_enabled {
            out.push_str(",\n    \"trace\": [\n");
            for (i, line) in self.trace.iter().enumerate() {
                out.push_str(&format!("      \"{}\"", crate::metrics::json_escape(line)));
                if i + 1 < self.trace.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str("    ]");
        }
        out.push_str("\n  },\n");
        out
    }
}

/// The live telemetry recorder owned by [`crate::Fleet`]: every hook is
/// a no-op until a run begins with telemetry enabled, which is what
/// keeps the disabled path zero-cost.
#[derive(Debug)]
pub(crate) struct Telemetry {
    cfg: TelemetryConfig,
    state: Option<State>,
    /// The span profiler of the *current* run; `Some` only between
    /// `begin_run`/`begin_profile` and `finish_profile` of a
    /// profiling-armed run — never constructed otherwise.
    prof: Option<SpanProfiler>,
    /// The finished profile of the last profiling-armed run (kept
    /// outside the report: real time is not deterministic).
    last_profile: Option<SpanProfile>,
}

#[derive(Debug)]
struct State {
    series: WindowSeries,
    node_latency: Vec<QuantileSketch>,
    trace: TraceRing,
    profile: ProfileCounters,
}

impl Telemetry {
    pub(crate) fn new(cfg: TelemetryConfig) -> Self {
        Telemetry {
            cfg,
            state: None,
            prof: None,
            last_profile: None,
        }
    }

    /// Whether telemetry is configured on (hooks may still no-op before
    /// `begin_run`).
    pub(crate) fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Arms the recorder for a run over `n_nodes` nodes until `horizon`.
    /// A no-op (and a disarm) when telemetry is off.
    pub(crate) fn begin_run(&mut self, n_nodes: usize, horizon: SimDuration) {
        self.begin_profile();
        if !self.cfg.enabled {
            self.state = None;
            return;
        }
        self.state = Some(State {
            series: WindowSeries::new(self.cfg.window, horizon, self.cfg.sketch_capacity),
            node_latency: (0..n_nodes)
                .map(|_| QuantileSketch::new(self.cfg.sketch_capacity))
                .collect(),
            trace: TraceRing::new(self.cfg.trace_capacity),
            profile: ProfileCounters::default(),
        });
    }

    /// Arms the span profiler alone (the non-`run` surfaces —
    /// `replay_dispatch` — call this instead of `begin_run`). The
    /// profiler is constructed *only* here and *only* when configured
    /// on; the zero-cost-off contract hangs on that.
    pub(crate) fn begin_profile(&mut self) {
        self.prof = self.cfg.profiling.then(SpanProfiler::new);
    }

    /// A wall clock for timing one span: `Some` iff the profiler is
    /// armed, so the disabled path never reads the clock.
    pub(crate) fn prof_clock(&self) -> Option<std::time::Instant> {
        self.prof.as_ref().map(|_| SpanProfiler::clock())
    }

    /// Ends one span measurement started at `clock` (a no-op whenever
    /// either side is disarmed).
    pub(crate) fn prof_record(&mut self, span: Span, clock: Option<std::time::Instant>) {
        if let (Some(prof), Some(started)) = (self.prof.as_mut(), clock) {
            prof.record(span, started);
        }
    }

    /// Snapshots the current run's profile into [`Self::span_profile`].
    /// `finish_report` calls it; `replay_dispatch` calls it directly.
    pub(crate) fn finish_profile(&mut self) {
        if let Some(prof) = self.prof.take() {
            self.last_profile = Some(prof.into_profile());
        }
    }

    /// Accounts one `plan_repriced` invocation: the shard probes it
    /// spent (telemetry) and, when `clock` was armed, its wall-clock
    /// latency (the [`Span::Plan`] span).
    pub(crate) fn note_plan(&mut self, probes: u64, clock: Option<std::time::Instant>) {
        if let Some(state) = self.state.as_mut() {
            state.profile.plans += 1;
            state.profile.shard_probes += probes;
        }
        self.prof_record(Span::Plan, clock);
    }

    /// Accounts one drain pass that actually scanned the queue.
    pub(crate) fn note_drain_scan(&mut self) {
        if let Some(state) = self.state.as_mut() {
            state.profile.drain_scans += 1;
        }
    }

    /// Accounts the event queue's push+pop total (event engine only).
    pub(crate) fn note_event_ops(&mut self, ops: u64) {
        if let Some(state) = self.state.as_mut() {
            state.profile.event_queue_ops += ops;
        }
    }

    /// Records a dispatched arrival: verdict counters, queue depth, and
    /// (when tracing) the decision with its cause and probe count.
    pub(crate) fn record_arrival(
        &mut self,
        at: SimTime,
        name: &str,
        outcome: &DispatchOutcome,
        probes: u64,
        queue_depth: usize,
    ) {
        let Some(state) = self.state.as_mut() else {
            return;
        };
        let w = state.series.at(at);
        w.arrivals += 1;
        match outcome {
            DispatchOutcome::Placed(_) => w.admitted += 1,
            DispatchOutcome::PlacedDegraded { .. } => {
                w.admitted += 1;
                w.degraded += 1;
            }
            DispatchOutcome::Queued => w.deferred += 1,
            DispatchOutcome::Infeasible => w.infeasible += 1,
            DispatchOutcome::Duplicate => w.duplicates += 1,
        }
        w.note_queue_depth(queue_depth as u64);
        if state.trace.enabled() {
            let verdict = match outcome {
                DispatchOutcome::Placed(node) => ArrivalVerdict::Placed { node: *node },
                DispatchOutcome::PlacedDegraded { node, fps } => {
                    ArrivalVerdict::PlacedDegraded {
                        node: *node,
                        fps: *fps,
                    }
                }
                DispatchOutcome::Queued => ArrivalVerdict::Queued,
                DispatchOutcome::Infeasible => ArrivalVerdict::Infeasible,
                DispatchOutcome::Duplicate => ArrivalVerdict::Duplicate,
            };
            state.trace.push(TraceEvent::Arrival {
                at,
                tenant: name.to_string(),
                verdict,
                probes,
            });
        }
    }

    /// Records one admission out of the wait queue. `counted` mirrors the
    /// builder's contract: only this run's deferrals feed the wait
    /// statistics (pre-run carry-overs are traced but not counted).
    pub(crate) fn record_queue_admit(
        &mut self,
        at: SimTime,
        name: &str,
        degraded: bool,
        waited: SimDuration,
        counted: bool,
        queue_depth: usize,
    ) {
        let Some(state) = self.state.as_mut() else {
            return;
        };
        let w = state.series.at(at);
        if degraded {
            w.degraded += 1;
        }
        if counted {
            w.admitted_after_wait += 1;
            w.wait.add(waited.as_nanos());
        }
        w.note_queue_depth(queue_depth as u64);
        if state.trace.enabled() {
            state.trace.push(TraceEvent::QueueAdmit {
                at,
                tenant: name.to_string(),
                degraded,
                waited,
            });
        }
    }

    /// Records one waiter expiry (patience or demand-aware hopeless).
    pub(crate) fn record_expired(
        &mut self,
        at: SimTime,
        name: &str,
        hopeless: bool,
        queue_depth: usize,
    ) {
        let Some(state) = self.state.as_mut() else {
            return;
        };
        let w = state.series.at(at);
        w.expired += 1;
        w.note_queue_depth(queue_depth as u64);
        if state.trace.enabled() {
            state.trace.push(TraceEvent::QueueExpire {
                at,
                tenant: name.to_string(),
                hopeless,
            });
        }
    }

    /// Records one re-pricing upgrade step.
    pub(crate) fn record_upgrade(&mut self, at: SimTime, name: &str, fps: f64) {
        let Some(state) = self.state.as_mut() else {
            return;
        };
        state.series.at(at).upgrades += 1;
        if state.trace.enabled() {
            state.trace.push(TraceEvent::Upgrade {
                at,
                tenant: name.to_string(),
                fps,
            });
        }
    }

    /// Records one migration attempt (successful when `to` is set).
    pub(crate) fn record_migration(
        &mut self,
        at: SimTime,
        name: &str,
        from: usize,
        to: Option<usize>,
        stall: SimDuration,
    ) {
        let Some(state) = self.state.as_mut() else {
            return;
        };
        if to.is_some() {
            state.series.at(at).migrations += 1;
        }
        if state.trace.enabled() {
            state.trace.push(TraceEvent::Migration {
                at,
                tenant: name.to_string(),
                from,
                to,
                stall,
            });
        }
    }

    /// Records one departure.
    pub(crate) fn record_departure(
        &mut self,
        at: SimTime,
        name: &str,
        resident: bool,
        queue_depth: usize,
    ) {
        let Some(state) = self.state.as_mut() else {
            return;
        };
        let w = state.series.at(at);
        w.departures += 1;
        w.note_queue_depth(queue_depth as u64);
        if state.trace.enabled() {
            state.trace.push(TraceEvent::Departure {
                at,
                tenant: name.to_string(),
                resident,
            });
        }
    }

    /// Folds one fleet-utilisation sample (recorded per node in
    /// ascending index order by both engines).
    pub(crate) fn record_utilization(&mut self, at: SimTime, utilization: f64) {
        if let Some(state) = self.state.as_mut() {
            state.series.at(at).record_utilization(utilization);
        }
    }

    /// Feeds job-latency samples of node `node` (the epoch fold's
    /// response samples, already in ascending-node-index order).
    pub(crate) fn record_latency_samples(&mut self, node: usize, samples_ns: &[u64]) {
        if let Some(state) = self.state.as_mut() {
            for &ns in samples_ns {
                state.node_latency[node].add(ns);
            }
        }
    }

    /// Feeds one job-latency sample of node `node` (event path).
    pub(crate) fn record_latency(&mut self, node: usize, latency_ns: u64) {
        if let Some(state) = self.state.as_mut() {
            state.node_latency[node].add(latency_ns);
        }
    }

    /// The span profile of the last finished run (`None` when profiling
    /// was off — the profiler is never constructed on that path).
    pub(crate) fn span_profile(&self) -> Option<&SpanProfile> {
        self.last_profile.as_ref()
    }

    /// The wall-clock plan-latency histogram of the last finished run —
    /// the [`Span::Plan`] row of [`Self::span_profile`] (all zeros when
    /// profiling was off).
    pub(crate) fn plan_latency_histogram(&self) -> [u64; PLAN_LATENCY_BINS] {
        self.last_profile
            .as_ref()
            .map(|p| *p.wall_hist(Span::Plan))
            .unwrap_or([0; PLAN_LATENCY_BINS])
    }

    /// Finalises the run: folds the telemetry into a [`TelemetryReport`]
    /// (or `None` when telemetry was off) and snapshots the span
    /// profile.
    pub(crate) fn finish_report(&mut self) -> Option<TelemetryReport> {
        let report = self.fold_report();
        self.finish_profile();
        report
    }

    /// The report fold proper, timed as the [`Span::TelemetryFold`]
    /// span: merges the per-window wait sketches in window order and the
    /// per-node latency sketches in ascending node index — the
    /// deterministic fold.
    fn fold_report(&mut self) -> Option<TelemetryReport> {
        let state = self.state.take()?;
        let fold_clock = self.prof_clock();
        let window = state.series.window();
        let mut queue_wait = QuantileSketch::new(self.cfg.sketch_capacity);
        // Window order — the deterministic fold.
        for w in state.series.windows() {
            queue_wait.merge(&w.wait);
        }
        let mut job_latency = QuantileSketch::new(self.cfg.sketch_capacity);
        // Ascending node-index order — the deterministic fold.
        for s in &state.node_latency {
            job_latency.merge(s);
        }
        let windows = state
            .series
            .windows()
            .iter()
            .enumerate()
            .map(|(i, w)| window_report(i, window, w))
            .collect();
        let report = TelemetryReport {
            window_secs: window.as_secs_f64(),
            windows,
            queue_wait: SketchSummary::from_sketch(&queue_wait),
            job_latency: SketchSummary::from_sketch(&job_latency),
            profile: ProfileReport {
                plans: state.profile.plans,
                shard_probes: state.profile.shard_probes,
                drain_scans: state.profile.drain_scans,
                event_queue_ops: state.profile.event_queue_ops,
                trace_recorded: state.trace.recorded(),
                trace_dropped: state.trace.dropped(),
            },
            trace_enabled: self.cfg.trace_capacity > 0,
            trace: state.trace.events().map(TraceEvent::render).collect(),
        };
        self.prof_record(Span::TelemetryFold, fold_clock);
        Some(report)
    }
}

fn window_report(index: usize, window: SimDuration, w: &WindowStats) -> WindowReport {
    WindowReport {
        start_secs: window.as_secs_f64() * index as f64,
        arrivals: w.arrivals,
        admitted: w.admitted,
        degraded: w.degraded,
        deferred: w.deferred,
        infeasible: w.infeasible,
        duplicates: w.duplicates,
        admitted_after_wait: w.admitted_after_wait,
        expired: w.expired,
        upgrades: w.upgrades,
        migrations: w.migrations,
        departures: w.departures,
        queue_depth_peak: w.queue_depth_peak,
        utilization_mean: w.utilization_mean(),
        wait: SketchSummary::from_sketch(&w.wait),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn disabled_telemetry_records_and_reports_nothing() {
        let mut t = Telemetry::new(TelemetryConfig::disabled());
        t.begin_run(4, SimDuration::from_secs(1));
        t.record_arrival(at(10), "a", &DispatchOutcome::Placed(0), 0, 0);
        t.record_utilization(at(100), 0.5);
        assert!(t.finish_report().is_none());
    }

    #[test]
    fn report_folds_windows_and_sketches() {
        let cfg = TelemetryConfig::windowed(SimDuration::from_millis(250)).with_trace(8);
        let mut t = Telemetry::new(cfg);
        t.begin_run(2, SimDuration::from_secs(1));
        t.record_arrival(at(10), "a", &DispatchOutcome::Placed(0), 2, 0);
        t.record_arrival(at(300), "b", &DispatchOutcome::Queued, 1, 1);
        t.record_queue_admit(
            at(600),
            "b",
            false,
            SimDuration::from_millis(300),
            true,
            0,
        );
        t.record_latency(0, 5_000_000);
        t.record_latency(1, 9_000_000);
        t.record_utilization(at(999), 0.75);
        let r = t.finish_report().expect("enabled run reports");
        assert_eq!(r.windows.len(), 4, "activity reached the 0.75s window");
        assert_eq!(r.windows[0].arrivals, 1);
        assert_eq!(r.windows[1].deferred, 1);
        assert_eq!(r.windows[1].queue_depth_peak, 1);
        assert_eq!(r.windows[2].admitted_after_wait, 1);
        assert_eq!(r.queue_wait.count, 1);
        assert!((r.queue_wait.p50_ms - 300.0).abs() < 1e-9);
        assert_eq!(r.job_latency.count, 2, "both nodes' sketches merged");
        assert!(r.job_latency.max_ms > 8.9);
        assert_eq!(r.profile.shard_probes, 0, "probes are planner-fed, not arrival-fed");
        assert_eq!(r.profile.trace_recorded, 3);
        assert_eq!(r.peak_queue_depth(), 1);
        assert_eq!(r.trace.len(), 3);
        assert!(r.trace_enabled);
    }

    #[test]
    fn report_json_is_balanced_and_versionable() {
        let cfg = TelemetryConfig::windowed(SimDuration::from_millis(500)).with_trace(4);
        let mut t = Telemetry::new(cfg);
        t.begin_run(1, SimDuration::from_secs(1));
        t.record_arrival(at(1), "a\"quote", &DispatchOutcome::Infeasible, 0, 0);
        let r = t.finish_report().expect("report");
        let json = r.render_json();
        assert!(json.starts_with("  \"telemetry\": {"));
        assert!(json.ends_with("},\n"), "trailing comma chains into the next field");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"window_secs\": 0.500"));
        assert!(json.contains("\"infeasible\": 1"));
        assert!(json.contains("\\\"quote"), "trace lines are escaped");
    }

    #[test]
    fn traceless_report_omits_the_trace_block() {
        let cfg = TelemetryConfig::windowed(SimDuration::from_millis(500));
        let mut t = Telemetry::new(cfg);
        t.begin_run(1, SimDuration::from_secs(1));
        t.record_arrival(at(1), "a", &DispatchOutcome::Placed(0), 0, 0);
        let r = t.finish_report().expect("report");
        assert!(!r.trace_enabled);
        assert!(!r.render_json().contains("\"trace\""));
    }

    #[test]
    fn note_plan_accumulates_probes_and_wall_time() {
        let cfg = TelemetryConfig::windowed(SimDuration::from_millis(250)).with_profiling();
        let mut t = Telemetry::new(cfg);
        t.begin_run(1, SimDuration::from_secs(1));
        let clock = t.prof_clock();
        assert!(clock.is_some());
        t.note_plan(3, clock);
        t.note_plan(2, None);
        let r = t.finish_report().expect("report");
        assert_eq!(r.profile.plans, 2);
        assert_eq!(r.profile.shard_probes, 5);
        let hist = t.plan_latency_histogram();
        assert_eq!(hist.iter().sum::<u64>(), 1, "one timed plan landed");
        let profile = t.span_profile().expect("profiling was armed");
        assert_eq!(profile.calls(Span::Plan), 1, "only the clocked plan spans");
        assert_eq!(
            profile.calls(Span::TelemetryFold),
            1,
            "the report fold timed itself"
        );
    }

    #[test]
    fn profiler_arms_without_telemetry_and_never_constructs_when_off() {
        // Profiling alone: no telemetry state, no report — but spans land.
        let mut t = Telemetry::new(TelemetryConfig::disabled().with_profiling());
        t.begin_run(1, SimDuration::from_secs(1));
        let clock = t.prof_clock();
        assert!(clock.is_some(), "profiler armed without telemetry");
        t.prof_record(Span::EventPop, clock);
        t.note_plan(7, t.prof_clock());
        assert!(t.finish_report().is_none(), "telemetry stays off");
        let profile = t.span_profile().expect("profile survives a report-less run");
        assert_eq!(profile.calls(Span::EventPop), 1);
        assert_eq!(profile.calls(Span::Plan), 1);
        assert_eq!(profile.calls(Span::TelemetryFold), 0, "no fold ran");

        // Fully off: the profiler is never constructed and no clock is read.
        let mut off = Telemetry::new(TelemetryConfig::windowed(SimDuration::from_millis(250)));
        off.begin_run(1, SimDuration::from_secs(1));
        assert!(off.prof_clock().is_none(), "no clock without profiling");
        assert!(off.finish_report().is_some());
        assert!(off.span_profile().is_none(), "profiler never constructed");
        assert_eq!(off.plan_latency_histogram(), [0; PLAN_LATENCY_BINS]);
    }
}
