//! Fixed-interval time-series windows over one fleet run.
//!
//! Simulated time is cut into windows of [`crate::TelemetryConfig::window`]
//! length; each window accumulates the dispatch activity that fell inside
//! it (admissions, rejections, deferrals, expiries, re-pricing steps,
//! migrations, departures), the peak wait-queue depth, the mean sampled
//! fleet utilisation, and a per-window queue-wait sketch. Every record
//! happens on the single-threaded orchestration path of either engine,
//! and utilisation is folded in ascending node index, so the series is a
//! deterministic function of `(config, trace, horizon)` — byte-identical
//! across worker counts.

use super::sketch::QuantileSketch;
use sgprs_rt::{SimDuration, SimTime};

/// One window's accumulated activity.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WindowStats {
    pub(crate) arrivals: u64,
    pub(crate) admitted: u64,
    /// Re-pricing ladder admissions (at arrival or out of the queue).
    pub(crate) degraded: u64,
    pub(crate) deferred: u64,
    pub(crate) infeasible: u64,
    pub(crate) duplicates: u64,
    pub(crate) admitted_after_wait: u64,
    /// Patience and demand-aware expiries together.
    pub(crate) expired: u64,
    /// Re-pricing ladder steps back up.
    pub(crate) upgrades: u64,
    pub(crate) migrations: u64,
    pub(crate) departures: u64,
    /// Largest wait-queue depth observed after any queue mutation.
    pub(crate) queue_depth_peak: u64,
    utilization_sum: f64,
    utilization_samples: u64,
    /// Queue waits of deferrals admitted inside this window.
    pub(crate) wait: QuantileSketch,
}

impl WindowStats {
    fn new(sketch_capacity: usize) -> Self {
        WindowStats {
            arrivals: 0,
            admitted: 0,
            degraded: 0,
            deferred: 0,
            infeasible: 0,
            duplicates: 0,
            admitted_after_wait: 0,
            expired: 0,
            upgrades: 0,
            migrations: 0,
            departures: 0,
            queue_depth_peak: 0,
            utilization_sum: 0.0,
            utilization_samples: 0,
            wait: QuantileSketch::new(sketch_capacity),
        }
    }

    /// Mean of the utilisation samples folded into this window (0 when
    /// none landed here).
    pub(crate) fn utilization_mean(&self) -> f64 {
        if self.utilization_samples > 0 {
            self.utilization_sum / self.utilization_samples as f64
        } else {
            0.0
        }
    }

    pub(crate) fn record_utilization(&mut self, utilization: f64) {
        self.utilization_sum += utilization;
        self.utilization_samples += 1;
    }

    pub(crate) fn note_queue_depth(&mut self, depth: u64) {
        self.queue_depth_peak = self.queue_depth_peak.max(depth);
    }
}

/// The window series of one run: windows materialise lazily (gaps are
/// filled with empty windows) and instants at or past the horizon clamp
/// into the final window, so end-of-run samples do not open a phantom
/// extra window.
#[derive(Debug, Clone)]
pub(crate) struct WindowSeries {
    window_ns: u64,
    /// Highest admissible window index (`ceil(horizon/window) - 1`).
    last_index: u64,
    sketch_capacity: usize,
    windows: Vec<WindowStats>,
}

impl WindowSeries {
    /// A series of `window`-length windows covering `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub(crate) fn new(
        window: SimDuration,
        horizon: SimDuration,
        sketch_capacity: usize,
    ) -> Self {
        assert!(!window.is_zero(), "telemetry window must be positive");
        let window_ns = window.as_nanos();
        let last_index = horizon.as_nanos().div_ceil(window_ns).saturating_sub(1);
        WindowSeries {
            window_ns,
            last_index,
            sketch_capacity,
            windows: Vec::new(),
        }
    }

    /// The window length.
    pub(crate) fn window(&self) -> SimDuration {
        SimDuration::from_nanos(self.window_ns)
    }

    /// The window covering instant `at`, materialising it (and any gap
    /// before it) on first touch.
    pub(crate) fn at(&mut self, at: SimTime) -> &mut WindowStats {
        let index = (at.duration_since(SimTime::ZERO).as_nanos() / self.window_ns)
            .min(self.last_index) as usize;
        while self.windows.len() <= index {
            self.windows.push(WindowStats::new(self.sketch_capacity));
        }
        &mut self.windows[index]
    }

    /// The materialised windows, in time order.
    pub(crate) fn windows(&self) -> &[WindowStats] {
        &self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn instants_land_in_their_windows() {
        let mut s = WindowSeries::new(
            SimDuration::from_millis(250),
            SimDuration::from_secs(1),
            16,
        );
        s.at(at(0)).arrivals += 1;
        s.at(at(249)).arrivals += 1;
        s.at(at(250)).arrivals += 1;
        s.at(at(900)).arrivals += 1;
        assert_eq!(s.windows().len(), 4);
        assert_eq!(s.windows()[0].arrivals, 2);
        assert_eq!(s.windows()[1].arrivals, 1);
        assert_eq!(s.windows()[2].arrivals, 0, "gap windows materialise empty");
        assert_eq!(s.windows()[3].arrivals, 1);
    }

    #[test]
    fn horizon_instants_clamp_into_the_last_window() {
        let mut s = WindowSeries::new(
            SimDuration::from_millis(250),
            SimDuration::from_secs(1),
            16,
        );
        // An end-of-run sample at exactly t = horizon belongs to the
        // final window, not a phantom fifth one.
        s.at(at(1_000)).record_utilization(0.5);
        assert_eq!(s.windows().len(), 4);
        assert!(s.windows()[3].utilization_mean() > 0.0);
    }

    #[test]
    fn peak_depth_is_a_running_max() {
        let mut s = WindowSeries::new(
            SimDuration::from_millis(250),
            SimDuration::from_secs(1),
            16,
        );
        s.at(at(10)).note_queue_depth(3);
        s.at(at(20)).note_queue_depth(7);
        s.at(at(30)).note_queue_depth(2);
        assert_eq!(s.windows()[0].queue_depth_peak, 7);
    }

    #[test]
    fn short_horizons_still_have_one_window() {
        let mut s = WindowSeries::new(
            SimDuration::from_millis(250),
            SimDuration::from_millis(100),
            16,
        );
        s.at(at(99)).arrivals += 1;
        assert_eq!(s.windows().len(), 1);
    }
}
