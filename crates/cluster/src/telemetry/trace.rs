//! The structured decision trace and the hot-path profiling counters.
//!
//! The trace is an opt-in ring buffer
//! ([`crate::TelemetryConfig::trace_capacity`]) of [`TraceEvent`]s: every
//! dispatch verdict with its cause and shard-probe count, queue
//! admissions with their waits, expiries, re-pricing ladder steps,
//! migrations with victim/destination/stall, and departures. When the
//! ring is full the *oldest* events are dropped (the tail of a run is
//! usually what an investigation needs) and the drop count is surfaced in
//! the profile block. All recording happens on the single-threaded
//! orchestration path, so the trace is deterministic.
//!
//! The profile counters here are the *deterministic* ones (plan
//! invocations, shard probes, drain scans, event-queue operations, trace
//! drops); they go into the JSON export. Wall-clock measurement lives in
//! the sibling [`super::prof`] module — real time is not a function of
//! `(config, trace, horizon)` and is exposed separately through
//! [`crate::Fleet::span_profile`].

use sgprs_rt::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Why (and where) an arrival ended up — the dispatch verdict with its
/// cause, mirroring [`crate::DispatchOutcome`] in a form the trace can
/// render without holding node references.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalVerdict {
    /// Admitted at its requested rate onto the node.
    Placed {
        /// Destination node index.
        node: usize,
    },
    /// Admitted at a degraded re-pricing ladder step.
    PlacedDegraded {
        /// Destination node index.
        node: usize,
        /// The degraded rate it serves at.
        fps: f64,
    },
    /// Over capacity everywhere: entered the wait queue.
    Queued,
    /// Latency-infeasible on every node at every admissible price.
    Infeasible,
    /// The name was already active (resident or queued).
    Duplicate,
}

/// One traced dispatch decision.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An arrival was dispatched: the verdict with its cause and how many
    /// shard probes the placement planning spent (0 on flat fleets).
    Arrival {
        /// When the arrival was dispatched.
        at: SimTime,
        /// Tenant name.
        tenant: String,
        /// The dispatch verdict.
        verdict: ArrivalVerdict,
        /// Shard probes spent planning this arrival.
        probes: u64,
    },
    /// A waiter was admitted out of the queue.
    QueueAdmit {
        /// When the admission happened.
        at: SimTime,
        /// Tenant name.
        tenant: String,
        /// Whether it was admitted at a degraded ladder step.
        degraded: bool,
        /// How long it waited.
        waited: SimDuration,
    },
    /// A waiter left the queue unserved.
    QueueExpire {
        /// When the expiry fired.
        at: SimTime,
        /// Tenant name.
        tenant: String,
        /// `true` for the demand-aware provably-hopeless sweep, `false`
        /// for plain patience expiry.
        hopeless: bool,
    },
    /// A degraded resident stepped back up its re-pricing ladder.
    Upgrade {
        /// When the upgrade happened.
        at: SimTime,
        /// Tenant name.
        tenant: String,
        /// The rate it now serves at.
        fps: f64,
    },
    /// A migration attempt: victim, destination (`None` when nobody could
    /// take it), and the state-transfer stall paid (zero on the epoch
    /// path, which models migration as free).
    Migration {
        /// When the migration fired.
        at: SimTime,
        /// The shed tenant.
        tenant: String,
        /// Source node index.
        from: usize,
        /// Destination node index, or `None` for a failed attempt.
        to: Option<usize>,
        /// The stall the migrant paid.
        stall: SimDuration,
    },
    /// A tenant departed (from the churn trace).
    Departure {
        /// When the departure applied.
        at: SimTime,
        /// Tenant name.
        tenant: String,
        /// `true` when it was resident (serving), `false` when it was
        /// still waiting in the queue.
        resident: bool,
    },
}

impl TraceEvent {
    /// Renders the event as one compact, stable line (used by the JSON
    /// trace block and the example output).
    #[must_use]
    pub fn render(&self) -> String {
        let secs = |t: &SimTime| t.duration_since(SimTime::ZERO).as_secs_f64();
        match self {
            TraceEvent::Arrival {
                at,
                tenant,
                verdict,
                probes,
            } => {
                let verdict = match verdict {
                    ArrivalVerdict::Placed { node } => format!("placed node={node}"),
                    ArrivalVerdict::PlacedDegraded { node, fps } => {
                        format!("placed-degraded node={node} fps={fps:.1}")
                    }
                    ArrivalVerdict::Queued => "queued".to_string(),
                    ArrivalVerdict::Infeasible => "infeasible".to_string(),
                    ArrivalVerdict::Duplicate => "duplicate".to_string(),
                };
                format!(
                    "{:.3}s arrival {tenant}: {verdict} probes={probes}",
                    secs(at)
                )
            }
            TraceEvent::QueueAdmit {
                at,
                tenant,
                degraded,
                waited,
            } => format!(
                "{:.3}s queue-admit {tenant}: waited={:.3}s{}",
                secs(at),
                waited.as_secs_f64(),
                if *degraded { " degraded" } else { "" }
            ),
            TraceEvent::QueueExpire {
                at,
                tenant,
                hopeless,
            } => format!(
                "{:.3}s queue-expire {tenant}: {}",
                secs(at),
                if *hopeless { "hopeless" } else { "patience" }
            ),
            TraceEvent::Upgrade { at, tenant, fps } => {
                format!("{:.3}s upgrade {tenant}: fps={fps:.1}", secs(at))
            }
            TraceEvent::Migration {
                at,
                tenant,
                from,
                to,
                stall,
            } => match to {
                Some(to) => format!(
                    "{:.3}s migrate {tenant}: node {from} -> {to} stall={:.3}s",
                    secs(at),
                    stall.as_secs_f64()
                ),
                None => format!(
                    "{:.3}s migrate {tenant}: node {from} -> nowhere (failed)",
                    secs(at)
                ),
            },
            TraceEvent::Departure {
                at,
                tenant,
                resident,
            } => format!(
                "{:.3}s departure {tenant}: was {}",
                secs(at),
                if *resident { "resident" } else { "queued" }
            ),
        }
    }
}

/// A bounded ring of [`TraceEvent`]s: newest kept, oldest dropped.
#[derive(Debug, Clone, Default)]
pub(crate) struct TraceRing {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    recorded: u64,
    dropped: u64,
}

impl TraceRing {
    pub(crate) fn new(capacity: usize) -> Self {
        TraceRing {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1_024)),
            recorded: 0,
            dropped: 0,
        }
    }

    /// Whether the ring accepts events at all (capacity 0 = trace off).
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
        self.recorded += 1;
    }

    pub(crate) fn recorded(&self) -> u64 {
        self.recorded
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }
}

/// Deterministic hot-path profiling counters; they land in the JSON
/// profile block. Wall-clock span histograms live in [`super::prof`].
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct ProfileCounters {
    /// `plan_repriced` invocations (arrival dispatch + queue drains).
    pub(crate) plans: u64,
    /// Placement-scan probes spent across all plans: one per probed
    /// shard, one per flat whole-fleet scan.
    pub(crate) shard_probes: u64,
    /// Drain passes that actually scanned the queue.
    pub(crate) drain_scans: u64,
    /// Event-queue pushes + pops (event engine only).
    pub(crate) event_queue_ops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut ring = TraceRing::new(2);
        for i in 0..5u64 {
            ring.push(TraceEvent::Departure {
                at: SimTime::ZERO + SimDuration::from_millis(i),
                tenant: format!("t{i}"),
                resident: true,
            });
        }
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 3);
        let kept: Vec<String> = ring
            .events()
            .map(|e| match e {
                TraceEvent::Departure { tenant, .. } => tenant.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec!["t3", "t4"], "newest survive");
    }

    #[test]
    fn zero_capacity_ring_records_nothing() {
        let mut ring = TraceRing::new(0);
        assert!(!ring.enabled());
        ring.push(TraceEvent::QueueExpire {
            at: SimTime::ZERO,
            tenant: "t".into(),
            hopeless: false,
        });
        assert_eq!(ring.recorded(), 0);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn rendered_lines_are_compact_and_stable() {
        let e = TraceEvent::Arrival {
            at: SimTime::ZERO + SimDuration::from_millis(1_500),
            tenant: "cam-3".into(),
            verdict: ArrivalVerdict::PlacedDegraded { node: 2, fps: 15.0 },
            probes: 2,
        };
        assert_eq!(
            e.render(),
            "1.500s arrival cam-3: placed-degraded node=2 fps=15.0 probes=2"
        );
        let m = TraceEvent::Migration {
            at: SimTime::ZERO + SimDuration::from_millis(250),
            tenant: "t".into(),
            from: 1,
            to: None,
            stall: SimDuration::ZERO,
        };
        assert_eq!(m.render(), "0.250s migrate t: node 1 -> nowhere (failed)");
    }
}
