//! A small, fixed-size, deterministic quantile sketch for duration
//! distributions (queue wait, job latency).
//!
//! The structure is t-digest-style: the distribution is summarised by at
//! most [`QuantileSketch::capacity`] *centroids*, each an integer
//! nanosecond mean plus a sample count. Unlike the floating-point
//! t-digest, every operation here is integer arithmetic over a totally
//! ordered centroid list, so adding the same samples — or merging the
//! same sub-sketches in the same order — always produces bit-identical
//! centroids. That is the property the fleet needs: per-node sketches
//! merged in ascending node index yield byte-identical JSON regardless
//! of how many worker threads ran the nodes.
//!
//! # Rank-error bound
//!
//! Compression caps every centroid at `ceil(2·n / capacity)` samples
//! (`n` = total count), and a quantile query answers with the mean of
//! the centroid containing the target rank. Within one compression the
//! samples of a centroid are contiguous in sorted order, so the answer's
//! rank is off by less than one centroid's weight; merging sketches can
//! interleave neighbouring centroids' value ranges and widen that by a
//! small constant factor. The documented contract, pinned by the
//! proptests in `tests/telemetry_sketch.rs` over random inputs and the
//! production merge pattern (per-node sketches merged in index order),
//! is [`RANK_ERROR_NUMERATOR`]` / capacity`: the estimate for quantile
//! `p` has a rank within `4·n / capacity + 1` of `p·(n-1)`. With the
//! default capacity of 128 that is ≈ 3 % of the population — and exact
//! (error zero) while `n ≤ capacity / 2`, which covers the per-window
//! sketches of all but the most crowded windows.

/// Default number of centroids a sketch keeps (see the module docs for
/// the resulting rank-error bound).
pub const DEFAULT_SKETCH_CAPACITY: usize = 128;

/// Numerator of the documented rank-error bound: a quantile estimate is
/// within `RANK_ERROR_NUMERATOR · n / capacity + 1` ranks of exact.
pub const RANK_ERROR_NUMERATOR: u64 = 4;

/// One cluster of nearby samples: integer-nanosecond mean and count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Centroid {
    mean: u64,
    count: u64,
}

/// A mergeable, deterministic, fixed-size quantile sketch over `u64`
/// samples (nanoseconds by convention). See the module docs for the
/// determinism and rank-error contracts.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    capacity: usize,
    /// Sorted by mean; at most `capacity + 1` entries after compression.
    centroids: Vec<Centroid>,
    /// Samples not yet folded into centroids (flushed when full).
    buffer: Vec<u64>,
    count: u64,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new(DEFAULT_SKETCH_CAPACITY)
    }
}

impl QuantileSketch {
    /// An empty sketch keeping at most `capacity` centroids.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 4` (the compression needs room to work).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 4, "a sketch needs at least 4 centroids");
        QuantileSketch {
            capacity,
            centroids: Vec::new(),
            buffer: Vec::new(),
            count: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The centroid budget this sketch was built with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total samples observed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no sample was ever added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The smallest observed sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 { 0 } else { self.min }
    }

    /// The largest observed sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Adds one sample.
    pub fn add(&mut self, value: u64) {
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buffer.push(value);
        if self.buffer.len() >= self.capacity {
            self.flush();
        }
    }

    /// Merges `other` into `self`. Deterministic: merging the same
    /// sketches in the same order always yields bit-identical state, so
    /// per-node sketches folded in ascending node index give the same
    /// result for every worker count.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut items = std::mem::take(&mut self.centroids);
        items.extend(other.centroids.iter().copied());
        for &v in self.buffer.iter().chain(other.buffer.iter()) {
            items.push(Centroid { mean: v, count: 1 });
        }
        self.buffer.clear();
        self.centroids = compress(items, self.capacity, self.count);
    }

    /// Folds the buffered samples into the centroid list.
    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut items = std::mem::take(&mut self.centroids);
        for v in self.buffer.drain(..) {
            items.push(Centroid { mean: v, count: 1 });
        }
        self.centroids = compress(items, self.capacity, self.count);
    }

    /// Estimates the value at quantile `p` (clamped to `[0, 1]`): the
    /// mean of the centroid containing rank `p·(n-1)`, with `p = 0` and
    /// `p = 1` answered exactly from the tracked extremes. Returns 0 for
    /// an empty sketch.
    #[must_use]
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return self.min();
        }
        if p >= 1.0 {
            return self.max;
        }
        // Merge centroids and the (sorted) buffer on the fly: queries are
        // rare (report time), so the copy is cheap and `&self` stays
        // immutable for callers holding a finished sketch.
        let mut items: Vec<Centroid> = self.centroids.clone();
        let mut buf = self.buffer.clone();
        buf.sort_unstable();
        items.extend(buf.into_iter().map(|v| Centroid { mean: v, count: 1 }));
        items.sort_by_key(|c| (c.mean, c.count));
        let target = p * (self.count.saturating_sub(1)) as f64;
        let mut cum = 0u64;
        for c in &items {
            // Ranks [cum, cum + count) live in this centroid.
            if target < (cum + c.count) as f64 {
                return c.mean;
            }
            cum += c.count;
        }
        self.max
    }
}

/// Compresses `items` (centroids in any order) down to at most
/// `capacity + 1` centroids by sorting and greedily merging neighbours,
/// capping each merged centroid at `ceil(2·total / capacity)` samples.
/// Pure function of its inputs — the determinism anchor.
fn compress(mut items: Vec<Centroid>, capacity: usize, total: u64) -> Vec<Centroid> {
    items.sort_by_key(|c| (c.mean, c.count));
    let limit = (2 * total).div_ceil(capacity as u64).max(1);
    let mut out: Vec<Centroid> = Vec::with_capacity(capacity + 1);
    for item in items {
        match out.last_mut() {
            Some(last) if last.count + item.count <= limit => {
                // Integer weighted mean; u128 so `mean · count` cannot
                // overflow (10-second waits over millions of samples).
                let weighted = u128::from(last.mean) * u128::from(last.count)
                    + u128::from(item.mean) * u128::from(item.count);
                let count = last.count + item.count;
                last.mean = u64::try_from(weighted / u128::from(count))
                    .expect("mean of u64 samples fits u64");
                last.count = count;
            }
            _ => out.push(item),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_answers_zero() {
        let s = QuantileSketch::default();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn small_populations_are_exact() {
        // Below capacity/2 the compression limit is 1: every sample is
        // its own centroid and quantiles are exact.
        let mut s = QuantileSketch::new(128);
        for v in 1..=50u64 {
            s.add(v * 10);
        }
        assert_eq!(s.quantile(0.0), 10);
        assert_eq!(s.quantile(1.0), 500);
        assert_eq!(s.quantile(0.5), s.quantile(0.5));
        // Rank 0.5·(50-1) = 24.5 → the 25th sample (0-based 24) = 250.
        assert_eq!(s.quantile(0.5), 250);
    }

    #[test]
    fn quantiles_stay_ordered_and_bounded() {
        let mut s = QuantileSketch::new(32);
        for i in 0..10_000u64 {
            // A deterministic scramble so insertion order is not sorted.
            s.add((i * 2_654_435_761) % 100_000);
        }
        let q50 = s.quantile(0.5);
        let q90 = s.quantile(0.9);
        let q99 = s.quantile(0.99);
        assert!(q50 <= q90 && q90 <= q99, "{q50} {q90} {q99}");
        assert!(q99 <= s.max());
        assert!(s.quantile(0.0) == s.min());
        assert_eq!(s.count(), 10_000);
    }

    #[test]
    fn merge_matches_merging_order_determinism() {
        let build = |range: std::ops::Range<u64>| {
            let mut s = QuantileSketch::new(64);
            for v in range {
                s.add((v * 48_271) % 7_919);
            }
            s
        };
        let parts = [build(0..500), build(500..900), build(900..1_700)];
        let mut a = QuantileSketch::new(64);
        for p in &parts {
            a.merge(p);
        }
        let mut b = QuantileSketch::new(64);
        for p in &parts {
            b.merge(p);
        }
        assert_eq!(a, b, "same merge order, bit-identical state");
        assert_eq!(a.count(), 1_700);
        for p in [0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(p), b.quantile(p));
        }
    }

    #[test]
    fn merged_sketch_tracks_global_extremes() {
        let mut lo = QuantileSketch::new(16);
        lo.add(5);
        lo.add(7);
        let mut hi = QuantileSketch::new(16);
        hi.add(1_000);
        let mut s = QuantileSketch::new(16);
        s.merge(&lo);
        s.merge(&hi);
        assert_eq!(s.min(), 5);
        assert_eq!(s.max(), 1_000);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn memory_stays_bounded() {
        let mut s = QuantileSketch::new(32);
        for i in 0..100_000u64 {
            s.add(i);
        }
        assert!(
            s.centroids.len() <= 33,
            "compression caps the centroid list: {}",
            s.centroids.len()
        );
        assert!(s.buffer.len() < 32);
    }
}
