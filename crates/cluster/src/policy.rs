//! The dispatch-policy kernel: backend-agnostic decision logic shared by
//! every fleet execution engine.
//!
//! The fleet simulates time two ways — the epoch grid ([`crate::Fleet::run`])
//! and the discrete-event engine ([`crate::Fleet::run_events`]) — and a
//! third front door ([`crate::ShardedFleet`]) wraps whichever is
//! configured. All three must *decide* identically: who is admitted and
//! where, in what order the wait queue drains, which ladder step a
//! re-priced tenant serves at, which tenant a hot node sheds, and where
//! the migrant lands. This module is the single home of those decisions;
//! the engines own only *when* a decision instant occurs and how its
//! outcome is folded into metrics.
//!
//! The kernel sees the fleet through a [`FleetState`] view — the nodes
//! with their residents plus the admission controller — and through the
//! [`DispatchPlanner`], which carries the only mutable policy state
//! (the placement cursor and the shard directory with its cached
//! summaries). Everything else is a pure function of the view:
//!
//! * [`DispatchPlanner::plan`] / [`DispatchPlanner::plan_repriced`] —
//!   admission + placement planning, flat or shard-routed
//!   ([`crate::ShardRouter::Scan`] orders every shard;
//!   [`crate::ShardRouter::P2c`] probes two and falls back to a sweep
//!   only when both refuse), with the re-pricing ladder walked best
//!   step first.
//! * [`queue_feasible`] — whether queueing a tenant can ever pay off
//!   (load-independent latency feasibility at any admissible price).
//! * [`can_ever_fit`] / [`provably_hopeless`] — the demand-aware expiry
//!   test: a waiter no node could admit *even empty*, at any ladder
//!   step, can never be served and may be expired before its patience
//!   elapses.
//! * [`upgrade_candidates`] — the ladder steps an upgrade pass tries,
//!   best first.
//! * [`select_migration_victim`] — which resident a shedding node gives
//!   up ([`MigrationVictimPolicy::Lifo`] keeps the classic
//!   most-recently-placed choice; `DemandAware` picks the tenant whose
//!   departure best relieves the overload).
//! * [`migration_destination`] — where the victim lands: the least
//!   loaded node at or under the DMR threshold that admits it.
//!
//! Both engines call these through [`crate::Fleet`]'s orchestration
//! methods, so a policy change lands in the epoch path, the event path,
//! and sharded dispatch at once — the determinism matrices in
//! `tests/fleet_end_to_end.rs` and the kernel-parity property tests in
//! `tests/fleet_invariants.rs` pin that the three can no longer drift.

use crate::shard::{ShardConfig, ShardDirectory};
use crate::{AdmissionController, FleetNode, Placer, PlacementPolicy, TenantSpec};
use serde::{Deserialize, Serialize};
use sgprs_rt::SimDuration;

/// A read-only view of the fleet the policy kernel decides over: the
/// nodes (with their resident tenants) and the admission controller.
/// Both execution engines and the sharded front door build the same
/// view, so a decision is a function of fleet *state*, never of the
/// engine driving it.
#[derive(Debug, Clone, Copy)]
pub struct FleetState<'a> {
    /// The nodes, in dispatch order, with their resident tenants.
    pub nodes: &'a [FleetNode],
    /// The admission controller every decision consults.
    pub admission: &'a AdmissionController,
}

impl<'a> FleetState<'a> {
    /// A view over `nodes` judged by `admission`.
    #[must_use]
    pub fn new(nodes: &'a [FleetNode], admission: &'a AdmissionController) -> Self {
        FleetState { nodes, admission }
    }
}

/// Where the re-pricing ladder found room for a tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PricedPlan {
    /// Fits at its requested rate on this node.
    Full(usize),
    /// Fits only at the given degraded ladder step on this node.
    Degraded(usize, f64),
}

/// One admission out of the wait queue: who got in (by interned id), at
/// what price, and after how long a wait.
#[derive(Debug, Clone)]
pub(crate) struct QueueAdmission {
    pub(crate) id: crate::interner::TenantId,
    pub(crate) degraded: bool,
    pub(crate) waited: SimDuration,
}

/// How a node over the DMR threshold chooses which resident to shed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationVictimPolicy {
    /// The most recently placed tenant (the classic PR-2 behaviour and
    /// the default): cheap and stable, but blind to how much relief the
    /// departure actually buys.
    #[default]
    Lifo,
    /// The tenant whose departure best relieves the source node's
    /// overload: the *smallest* resident whose demand covers the node's
    /// budget overshoot (sheds the overload while keeping the most
    /// service resident); when no single resident covers it — or the
    /// node misses deadlines without exceeding its fluid budget, as
    /// naive-scheduler nodes do — the largest-demand resident. Ties
    /// break toward the earliest placement slot, deterministically.
    DemandAware,
}

impl core::fmt::Display for MigrationVictimPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MigrationVictimPolicy::Lifo => f.write_str("lifo"),
            MigrationVictimPolicy::DemandAware => f.write_str("demand-aware"),
        }
    }
}

/// The mutable half of the kernel: the placement cursor plus the shard
/// directory with its cached summaries. [`crate::Fleet`] owns exactly
/// one, and both execution engines plan through it — there is no other
/// path from an arrival to a node.
#[derive(Debug)]
pub(crate) struct DispatchPlanner {
    placer: Placer,
    router: Option<ShardDirectory>,
    /// Cumulative placement-scan probes across all plans: one per
    /// per-shard placement attempt, and one per flat whole-fleet scan —
    /// so a single shard covering the fleet costs exactly what flat
    /// dispatch does. Telemetry reads deltas around a dispatch to cost
    /// individual arrivals.
    probes: u64,
}

impl DispatchPlanner {
    /// A planner over `n_nodes` nodes with the given placement policy,
    /// shard-routed when `sharding` is configured.
    pub(crate) fn new(
        policy: PlacementPolicy,
        n_nodes: usize,
        sharding: Option<&ShardConfig>,
    ) -> Self {
        DispatchPlanner {
            placer: Placer::new(policy),
            router: sharding.map(|cfg| ShardDirectory::new(n_nodes, cfg)),
            probes: 0,
        }
    }

    /// Cumulative shard probes spent planning so far (see the field
    /// docs); monotonic, so callers cost a dispatch by delta.
    pub(crate) fn probes(&self) -> u64 {
        self.probes
    }

    /// The shard directory, when sharding is configured.
    pub(crate) fn router(&self) -> Option<&ShardDirectory> {
        self.router.as_ref()
    }

    /// Accounts a committed placement on `node_idx` (incremental shard
    /// summary update).
    pub(crate) fn note_place(&mut self, node_idx: usize, demand: f64) {
        if let Some(router) = self.router.as_mut() {
            router.note_place(node_idx, demand);
        }
    }

    /// Drops the cached summary of the shard holding `node_idx` (a
    /// removal, migration, or price change touched it).
    pub(crate) fn invalidate_node(&mut self, node_idx: usize) {
        if let Some(router) = self.router.as_mut() {
            router.invalidate_node(node_idx);
        }
    }

    /// Chooses a node for `tenant` without committing the placement —
    /// the per-arrival hot path the placement benches measure. Flat
    /// fleets scan every node through the placement policy; sharded
    /// fleets route to a shard first and fall back shard by shard when
    /// summaries prove stale. Under [`crate::ShardRouter::P2c`] only two
    /// deterministically chosen shards are probed — O(1) in the shard
    /// count — with the exhaustive sweep reserved for the rare case
    /// where both probes refuse, so routing never destroys feasibility.
    pub(crate) fn plan(
        &mut self,
        state: &FleetState<'_>,
        tenant: &TenantSpec,
    ) -> Option<usize> {
        let Some(router) = self.router.as_mut() else {
            self.probes += 1;
            return self.placer.place(state.nodes, tenant, state.admission);
        };
        let probes = router.route(state.nodes, state.admission, tenant);
        for &shard in &probes {
            let range = router.range(shard);
            self.probes += 1;
            if let Some(rel) =
                self.placer
                    .place(&state.nodes[range.clone()], tenant, state.admission)
            {
                return Some(range.start + rel);
            }
        }
        if !router.is_exhaustive() {
            // P2c probed two shards and both refused: sweep the rest in
            // index order (skipping shards the latency lower bound rules
            // out) so the two-choice fast path can narrow *where* the
            // policy looks but never *whether* a feasible node is found.
            for shard in 0..router.shard_count() {
                if probes.contains(&shard)
                    || router.latency_infeasible(shard, state.nodes, state.admission, tenant)
                {
                    continue;
                }
                let range = router.range(shard);
                self.probes += 1;
                if let Some(rel) =
                    self.placer
                        .place(&state.nodes[range.clone()], tenant, state.admission)
                {
                    return Some(range.start + rel);
                }
            }
        }
        None
    }

    /// Plans `tenant` at its requested rate, then — with re-pricing on —
    /// down its degrade ladder, best step first. The single definition of
    /// the ladder walk, shared by arrival dispatch and the queue drain in
    /// both execution engines.
    pub(crate) fn plan_repriced(
        &mut self,
        state: &FleetState<'_>,
        tenant: &TenantSpec,
        repricing: bool,
    ) -> Option<PricedPlan> {
        if let Some(idx) = self.plan(state, tenant) {
            return Some(PricedPlan::Full(idx));
        }
        if repricing {
            let steps: Vec<f64> = tenant.degrade_steps().collect();
            for fps in steps {
                if let Some(idx) = self.plan(state, &tenant.at_fps(fps)) {
                    return Some(PricedPlan::Degraded(idx, fps));
                }
            }
        }
        None
    }
}

/// Whether some node could ever carry `tenant` once load drains — at its
/// requested rate or, under re-pricing, at any ladder step. Best-case
/// latency is load-independent, so a tenant failing the gate everywhere
/// at every price can never fit and queueing it would only block the
/// queue.
#[must_use]
pub fn queue_feasible(state: &FleetState<'_>, tenant: &TenantSpec, repricing: bool) -> bool {
    let fits = |t: &TenantSpec| {
        state
            .nodes
            .iter()
            .any(|node| state.admission.best_case_latency(node, t) <= t.period())
    };
    if fits(tenant) {
        return true;
    }
    repricing && tenant.degrade_steps().any(|fps| fits(&tenant.at_fps(fps)))
}

/// Whether any node could admit `tenant` *with every resident gone* —
/// the strongest capacity any future departure pattern can ever offer.
/// Unlike [`queue_feasible`] (latency only), this runs the full
/// admission test against an emptied clone of each node, so it also
/// catches tenants whose steady-state demand exceeds every node's
/// admission budget outright. Load-independent: the answer never changes
/// over a fleet's lifetime, which is what makes early expiry *provable*.
#[must_use]
pub fn can_ever_fit(state: &FleetState<'_>, tenant: &TenantSpec) -> bool {
    state.nodes.iter().any(|node| {
        let empty = FleetNode::new(node.spec.clone());
        state.admission.evaluate(&empty, tenant).is_admit()
    })
}

/// The demand-aware expiry test: `true` when `tenant` provably can never
/// be admitted — no node, even fully drained, admits it at its requested
/// rate or (with re-pricing on) at any ladder step. Such a waiter cannot
/// fit before its queue deadline no matter what departs, so expiring it
/// early loses nothing; see [`crate::QueueConfig::demand_aware_expiry`].
#[must_use]
pub fn provably_hopeless(state: &FleetState<'_>, tenant: &TenantSpec, repricing: bool) -> bool {
    if can_ever_fit(state, tenant) {
        return false;
    }
    if repricing {
        let steps: Vec<f64> = tenant.degrade_steps().collect();
        if steps.iter().any(|&fps| can_ever_fit(state, &tenant.at_fps(fps))) {
            return false;
        }
    }
    true
}

/// Candidate prices an upgrade pass tries for a degraded resident, best
/// first: the requested rate, then every ladder step below it, keeping
/// only steps strictly above the currently served rate.
#[must_use]
pub fn upgrade_candidates(resident: &TenantSpec, requested: f64) -> Vec<f64> {
    std::iter::once(requested)
        .chain(
            resident
                .fps_ladder
                .iter()
                .copied()
                .filter(|&s| s < requested),
        )
        .filter(|&s| s > resident.fps)
        .collect()
}

/// Chooses which resident of `node` a migration sheds, as a slot index
/// into `node.tenants`, or `None` when the node has no residents.
/// [`MigrationVictimPolicy::Lifo`] takes the most recently placed;
/// `DemandAware` takes the smallest resident whose demand covers the
/// node's budget overshoot, falling back to the largest-demand resident
/// when none does (or when the node misses without exceeding its fluid
/// budget). One definition shared by the epoch path's boundary sweep and
/// the event engine's release-boundary migration.
#[must_use]
pub fn select_migration_victim(
    node: &FleetNode,
    admission: &AdmissionController,
    policy: MigrationVictimPolicy,
) -> Option<usize> {
    if node.tenants.is_empty() {
        return None;
    }
    match policy {
        MigrationVictimPolicy::Lifo => Some(node.tenants.len() - 1),
        MigrationVictimPolicy::DemandAware => {
            let budget = admission.budget(node, None);
            let overshoot = (node.total_demand() - budget).max(0.0);
            let demand = |slot: usize| node.tenants[slot].demand_sm_equivalents();
            let covering = (0..node.tenants.len())
                .filter(|&s| overshoot > 0.0 && demand(s) >= overshoot)
                .min_by(|&a, &b| demand(a).total_cmp(&demand(b)).then(a.cmp(&b)));
            covering.or_else(|| {
                (0..node.tenants.len())
                    .max_by(|&a, &b| demand(a).total_cmp(&demand(b)).then(b.cmp(&a)))
            })
        }
    }
}

/// Chooses the destination for migrating `victim` off `src`: among the
/// *other* nodes, those whose miss estimate is at or under `threshold`
/// (admission alone would happily bounce a tenant between two hot nodes
/// forever) and that admit the victim, the least loaded by
/// demand/budget. One policy shared by the epoch path's per-boundary
/// sweep and the event engine's release-boundary migration, so the two
/// modes cannot silently fork.
#[must_use]
pub fn migration_destination(
    state: &FleetState<'_>,
    src: usize,
    victim: &TenantSpec,
    node_dmr: &[f64],
    threshold: f64,
) -> Option<usize> {
    (0..state.nodes.len())
        .filter(|&j| j != src)
        .filter(|&j| node_dmr[j] <= threshold)
        .filter(|&j| {
            state
                .admission
                .evaluate(&state.nodes[j], victim)
                .is_admit()
        })
        .min_by(|&a, &b| {
            let load = |j: usize| {
                let budget = state.admission.budget(&state.nodes[j], None);
                if budget > 0.0 {
                    state.nodes[j].total_demand() / budget
                } else {
                    f64::INFINITY
                }
            };
            load(a).total_cmp(&load(b))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelKind, NodeSpec};
    use sgprs_gpu_sim::GpuSpec;

    fn tenant(name: &str, fps: f64) -> TenantSpec {
        TenantSpec::new(name, ModelKind::ResNet18, fps)
    }

    fn node(sms: u32) -> FleetNode {
        FleetNode::new(NodeSpec::sgprs(format!("gpu-{sms}"), GpuSpec::synthetic(sms)))
    }

    #[test]
    fn lifo_victim_is_the_most_recent_placement() {
        let ctl = AdmissionController::default();
        let mut n = node(68);
        for i in 0..4 {
            n.tenants.push(tenant(&format!("t{i}"), 30.0));
        }
        assert_eq!(
            select_migration_victim(&n, &ctl, MigrationVictimPolicy::Lifo),
            Some(3)
        );
        let empty = node(68);
        assert_eq!(
            select_migration_victim(&empty, &ctl, MigrationVictimPolicy::Lifo),
            None
        );
    }

    #[test]
    fn demand_aware_victim_covers_the_overshoot_minimally() {
        let ctl = AdmissionController::default();
        let mut n = node(34);
        // Fill past the budget with mixed demands: a heavy 60 fps tenant
        // placed first, light 15 fps tenants after. LIFO would shed a
        // light one (barely relieving); demand-aware must find the
        // smallest tenant that covers the overshoot.
        n.tenants.push(tenant("heavy", 60.0));
        while ctl
            .evaluate(&n, &tenant(&format!("l{}", n.tenants.len()), 15.0))
            .is_admit()
        {
            let name = format!("l{}", n.tenants.len());
            n.tenants.push(tenant(&name, 15.0));
        }
        // Push it into overload so there is an overshoot to cover.
        n.tenants.push(tenant("extra-a", 15.0));
        n.tenants.push(tenant("extra-b", 15.0));
        let budget = ctl.budget(&n, None);
        let overshoot = n.total_demand() - budget;
        assert!(overshoot > 0.0, "the node must be over budget");
        let slot = select_migration_victim(&n, &ctl, MigrationVictimPolicy::DemandAware)
            .expect("non-empty node");
        let victim_demand = n.tenants[slot].demand_sm_equivalents();
        assert!(
            victim_demand >= overshoot,
            "the victim's departure clears the overload: {victim_demand:.2} vs {overshoot:.2}"
        );
        // Minimality: no lighter resident also covers the overshoot.
        for (s, t) in n.tenants.iter().enumerate() {
            let d = t.demand_sm_equivalents();
            if d >= overshoot {
                assert!(
                    victim_demand <= d + 1e-12,
                    "slot {s} ({d:.2}) is a smaller cover than the chosen {victim_demand:.2}"
                );
            }
        }
    }

    #[test]
    fn demand_aware_victim_falls_back_to_the_heaviest() {
        let ctl = AdmissionController::default();
        // Under budget (overshoot 0, the hot-naive-node case): shed the
        // heaviest resident.
        let mut n = node(68);
        n.tenants.push(tenant("light", 15.0));
        n.tenants.push(tenant("heavy", 60.0));
        n.tenants.push(tenant("mid", 30.0));
        let slot = select_migration_victim(&n, &ctl, MigrationVictimPolicy::DemandAware)
            .expect("non-empty");
        assert_eq!(n.tenants[slot].name, "heavy");
    }

    #[test]
    fn upgrade_candidates_walk_the_ladder_best_first() {
        let t = tenant("t", 60.0).with_fps_ladder([30.0, 24.0, 15.0]);
        let degraded = t.at_fps(15.0);
        assert_eq!(upgrade_candidates(&degraded, 60.0), vec![60.0, 30.0, 24.0]);
        let half = t.at_fps(30.0);
        assert_eq!(upgrade_candidates(&half, 60.0), vec![60.0]);
        let full = t.clone();
        assert!(upgrade_candidates(&full, 60.0).is_empty());
    }

    #[test]
    fn hopeless_needs_every_price_to_fail_even_on_empty_nodes() {
        let ctl = AdmissionController::default();
        let nodes = vec![node(68)];
        let state = FleetState::new(&nodes, &ctl);
        // A plain 30 fps feed fits an empty paper GPU.
        assert!(can_ever_fit(&state, &tenant("ok", 30.0)));
        assert!(!provably_hopeless(&state, &tenant("ok", 30.0), false));
        // VGG-16@30fps is latency-infeasible even alone; its 15 fps
        // ladder step is not — hopeless without re-pricing, saved by it.
        let vgg = TenantSpec::new("vgg", ModelKind::Vgg16, 30.0).with_fps_ladder([15.0]);
        assert!(!can_ever_fit(&state, &vgg));
        assert!(provably_hopeless(&state, &vgg, false));
        assert!(!provably_hopeless(&state, &vgg, true));
    }

    #[test]
    fn migration_destination_prefers_cool_admissible_nodes() {
        let ctl = AdmissionController::default();
        let mut nodes = vec![node(68), node(68), node(68)];
        nodes[2].tenants.push(tenant("busy", 30.0));
        let state = FleetState::new(&nodes, &ctl);
        let victim = tenant("victim", 30.0);
        // Node 1 is empty and cool: the least-loaded admissible choice.
        assert_eq!(
            migration_destination(&state, 0, &victim, &[0.5, 0.0, 0.0], 0.2),
            Some(1)
        );
        // A hot estimate excludes a destination outright.
        assert_eq!(
            migration_destination(&state, 0, &victim, &[0.5, 0.9, 0.0], 0.2),
            Some(2)
        );
        assert_eq!(
            migration_destination(&state, 0, &victim, &[0.5, 0.9, 0.9], 0.2),
            None
        );
    }
}
