//! Fleet configuration: the nodes, policies, and execution-mode knobs a
//! [`crate::Fleet`] is built from.
//!
//! Carved out of the fleet module so the dispatcher file holds
//! orchestration only; every knob here is consumed by the shared policy
//! kernel ([`crate::policy`]) or by one of the execution engines.

use crate::policy::MigrationVictimPolicy;
use crate::telemetry::TelemetryConfig;
use crate::{AdmissionConfig, PlacementPolicy, QueueConfig, ShardConfig, ShardRouter};
use crate::{NodeSpec, QueuePolicy};
use sgprs_rt::SimDuration;

/// Migration knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationConfig {
    /// Enable migration off overloaded nodes.
    pub enabled: bool,
    /// Epoch deadline-miss rate above which a node sheds one tenant.
    pub dmr_threshold: f64,
    /// The state-transfer stall a migration pays in event-driven mode
    /// ([`crate::Fleet::run_events`]): the migrant serves nothing while
    /// its weights and context state move, roughly a reconfiguration
    /// window (the default matches `sgprs_core::ReconfigConfig`'s 100 ms
    /// repartition stall). Re-pricing degrade/upgrade switches are SGPRS
    /// partition switches and never pay it. The epoch path models
    /// migration as free (its pre-existing contract) and ignores this
    /// field.
    pub cost: SimDuration,
    /// How the shedding node chooses its victim (see
    /// [`MigrationVictimPolicy`]); LIFO — the most recently placed
    /// tenant — is the default and the classic behaviour.
    pub victim: MigrationVictimPolicy,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            enabled: false,
            dmr_threshold: 0.2,
            cost: SimDuration::from_millis(100),
            victim: MigrationVictimPolicy::Lifo,
        }
    }
}

/// Configuration of a [`crate::Fleet`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// The nodes, in dispatch order.
    pub nodes: Vec<NodeSpec>,
    /// Placement policy.
    pub placement: PlacementPolicy,
    /// Admission-control knobs.
    pub admission: AdmissionConfig,
    /// Epoch length (the dispatch/re-evaluation granularity).
    pub epoch: SimDuration,
    /// Migration knobs.
    pub migration: MigrationConfig,
    /// Base seed for the nodes' execution jitter.
    pub seed: u64,
    /// Fan per-epoch node execution out over worker threads (results are
    /// bit-identical either way; see the fleet module docs).
    pub parallel: bool,
    /// Worker-thread count for the parallel fan-out; `None` uses every
    /// available core. Ignored when `parallel` is off. Results are
    /// bit-identical for every count.
    pub workers: Option<usize>,
    /// Optional two-level sharded dispatch (see [`crate::ShardedFleet`]).
    pub sharding: Option<ShardConfig>,
    /// Wait-queue policy and re-pricing knobs (see [`crate::QueuePolicy`]).
    pub queue: QueueConfig,
    /// Run in event-driven mode ([`crate::Fleet::run_events`]) instead
    /// of the epoch grid when dispatched through
    /// [`crate::Fleet::run_configured`]: exact release/departure
    /// boundaries, no epoch truncation, migration with an explicit stall
    /// cost. Off by default — the epoch path stays bit-for-bit the
    /// classic semantics.
    pub event_driven: bool,
    /// Observability knobs (see [`crate::telemetry`]). Disabled by
    /// default; enabling never changes simulation decisions, only what
    /// gets recorded and exported (schema v3 with a `telemetry` block).
    pub telemetry: TelemetryConfig,
}

impl FleetConfig {
    /// A fleet over `nodes` with least-utilisation placement, default
    /// admission control, one-second epochs, and no migration.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    #[must_use]
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        assert!(!nodes.is_empty(), "a fleet needs at least one node");
        FleetConfig {
            nodes,
            placement: PlacementPolicy::LeastUtilization,
            admission: AdmissionConfig::default(),
            epoch: SimDuration::from_secs(1),
            migration: MigrationConfig::default(),
            seed: 0x5672_5053,
            parallel: true,
            workers: None,
            sharding: None,
            queue: QueueConfig::default(),
            event_driven: false,
            telemetry: TelemetryConfig::disabled(),
        }
    }

    /// Replaces the telemetry configuration (see [`crate::telemetry`]).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables telemetry with time-series windows of the given length
    /// (and no decision trace); shorthand for
    /// [`TelemetryConfig::windowed`].
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn with_telemetry_window(mut self, window: SimDuration) -> Self {
        self.telemetry = TelemetryConfig::windowed(window);
        self
    }

    /// Arms the span-scoped hot-path profiler for the run (see
    /// [`crate::SpanProfile`] and [`crate::Fleet::span_profile`]).
    /// Independent of telemetry: the simulated-fleet telemetry may stay
    /// off while the simulator profiles itself. Off by default, and
    /// provably zero-cost when off — the profiler is never constructed
    /// and no wall clock is read. The deterministic JSON export is
    /// byte-identical either way.
    #[must_use]
    pub fn with_profiling(mut self) -> Self {
        self.telemetry.profiling = true;
        self
    }

    /// Disables the parallel per-epoch fan-out: nodes run one after
    /// another on the calling thread. The escape hatch for debugging and
    /// for determinism tests — metrics are bit-identical either way.
    #[must_use]
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Enables two-level sharded dispatch with shards of `shard_size`
    /// nodes (see [`crate::ShardedFleet`]), routed by the default
    /// ordered spare-budget scan.
    ///
    /// # Panics
    ///
    /// Panics if `shard_size` is zero.
    #[must_use]
    pub fn with_sharding(mut self, shard_size: usize) -> Self {
        self.sharding = Some(ShardConfig::new(shard_size));
        self
    }

    /// Enables two-level sharded dispatch with shards of `shard_size`
    /// nodes routed by power-of-two-choices ([`ShardRouter::P2c`]):
    /// per-arrival routing cost independent of the shard count, the
    /// regime 512-node-and-up fleets need.
    ///
    /// # Panics
    ///
    /// Panics if `shard_size` is zero.
    #[must_use]
    pub fn with_p2c_sharding(mut self, shard_size: usize) -> Self {
        self.sharding = Some(ShardConfig::new(shard_size).with_router(ShardRouter::P2c));
        self
    }

    /// Replaces the placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Enables migration with the given epoch-DMR threshold. The stall
    /// cost and victim policy keep whatever earlier builder calls set
    /// (or the defaults), regardless of call order.
    #[must_use]
    pub fn with_migration(mut self, dmr_threshold: f64) -> Self {
        self.migration.enabled = true;
        self.migration.dmr_threshold = dmr_threshold;
        self
    }

    /// Replaces the migration state-transfer stall charged in
    /// event-driven mode (see [`MigrationConfig::cost`]).
    #[must_use]
    pub fn with_migration_cost(mut self, cost: SimDuration) -> Self {
        self.migration.cost = cost;
        self
    }

    /// Replaces the migration victim-selection policy (see
    /// [`MigrationVictimPolicy`]; LIFO is the default).
    #[must_use]
    pub fn with_victim_policy(mut self, victim: MigrationVictimPolicy) -> Self {
        self.migration.victim = victim;
        self
    }

    /// Selects the event-driven execution mode for
    /// [`crate::Fleet::run_configured`] (see
    /// [`crate::Fleet::run_events`]).
    #[must_use]
    pub fn with_event_driven(mut self) -> Self {
        self.event_driven = true;
        self
    }

    /// Replaces the jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Forces the parallel fan-out onto exactly `workers` threads
    /// (metrics are bit-identical for every count; the knob exists for
    /// determinism tests and for capping thread pressure).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "the fan-out needs at least one worker");
        self.workers = Some(workers);
        self
    }

    /// Replaces the wait-queue policy (FIFO is the default).
    #[must_use]
    pub fn with_queue_policy(mut self, policy: QueuePolicy) -> Self {
        self.queue.policy = policy;
        self
    }

    /// Enables the fps re-pricing ladder (see
    /// [`QueueConfig::repricing`]).
    #[must_use]
    pub fn with_repricing(mut self) -> Self {
        self.queue.repricing = true;
        self
    }

    /// Enables demand-aware queue expiry (see
    /// [`QueueConfig::demand_aware_expiry`]): waiters that provably can
    /// never be admitted — no node could carry them even fully drained,
    /// at any ladder step — are expired before their patience elapses
    /// and counted in [`crate::FleetMetrics::expired_hopeless`].
    #[must_use]
    pub fn with_demand_aware_expiry(mut self) -> Self {
        self.queue.demand_aware_expiry = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgprs_gpu_sim::GpuSpec;

    #[test]
    fn migration_cost_survives_builder_order() {
        // Regression: `with_migration` used to rebuild the whole
        // MigrationConfig from its default, silently resetting a cost
        // set earlier in the chain.
        let cost = SimDuration::from_millis(500);
        let early = FleetConfig::new(vec![NodeSpec::sgprs("g", GpuSpec::rtx_2080_ti())])
            .with_migration_cost(cost)
            .with_migration(0.1);
        let late = FleetConfig::new(vec![NodeSpec::sgprs("g", GpuSpec::rtx_2080_ti())])
            .with_migration(0.1)
            .with_migration_cost(cost);
        assert_eq!(early.migration.cost, cost, "cost set before with_migration");
        assert_eq!(early.migration, late.migration, "builder order is irrelevant");
        assert!(early.migration.enabled);
    }

    #[test]
    fn victim_policy_survives_builder_order() {
        let early = FleetConfig::new(vec![NodeSpec::sgprs("g", GpuSpec::rtx_2080_ti())])
            .with_victim_policy(MigrationVictimPolicy::DemandAware)
            .with_migration(0.1);
        let late = FleetConfig::new(vec![NodeSpec::sgprs("g", GpuSpec::rtx_2080_ti())])
            .with_migration(0.1)
            .with_victim_policy(MigrationVictimPolicy::DemandAware);
        assert_eq!(early.migration, late.migration);
        assert_eq!(early.migration.victim, MigrationVictimPolicy::DemandAware);
        // And the default stays LIFO — the classic bit-identical path.
        assert_eq!(
            FleetConfig::new(vec![NodeSpec::sgprs("g", GpuSpec::rtx_2080_ti())])
                .migration
                .victim,
            MigrationVictimPolicy::Lifo
        );
    }

    #[test]
    fn p2c_sharding_builder_sets_the_router() {
        let cfg = FleetConfig::new(vec![NodeSpec::sgprs("g", GpuSpec::rtx_2080_ti())])
            .with_p2c_sharding(4);
        let shard = cfg.sharding.expect("sharding configured");
        assert_eq!(shard.shard_size, 4);
        assert_eq!(shard.router, ShardRouter::P2c);
        // The classic builder keeps the ordered scan.
        let scan = FleetConfig::new(vec![NodeSpec::sgprs("g", GpuSpec::rtx_2080_ti())])
            .with_sharding(4);
        assert_eq!(scan.sharding.expect("sharding").router, ShardRouter::Scan);
    }
}
