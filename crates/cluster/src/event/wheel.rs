//! The hierarchical timing wheel under [`super::EventQueue`].
//!
//! Periodic frame releases make the event stream *near-sorted*: almost
//! every push lands within one release period (33 ms at 30 fps) of the
//! clock. A binary heap pays O(log n) sift work per push/pop for a
//! total order it rarely needs; a calendar queue turns the common case
//! into O(1) amortised bucket appends and only ever sorts the one
//! bucket currently being drained.
//!
//! # Layout
//!
//! Two wheel levels plus an unsorted far-future overflow:
//!
//! * **L0** — [`L0_SLOTS`] slots of 2^[`L0_GRAIN_BITS`] ns (≈65.5 µs)
//!   each, spanning ≈33.5 ms: one slot block covers the dominant 33 ms
//!   release/completion horizon, so the hot-path push is a bucket
//!   append.
//! * **L1** — [`L1_SLOTS`] slots of ≈33.5 ms each, spanning ≈8.6 s:
//!   utilisation samples (+1 epoch), queue-deadline expiries (seconds
//!   of patience), and releases that straddle an L0 window edge wait
//!   here and are scattered into L0 when their slot's window opens.
//! * **overflow** — everything beyond the L1 span, unsorted; rescanned
//!   whenever the L1 window advances over new ground.
//!
//! Each event therefore cascades at most twice (overflow → L1 → L0)
//! before it pops — the amortised-O(1) argument.
//!
//! # Ordering and determinism
//!
//! The queue's contract is the total order on `(time, node, seq)` keys
//! (see the [`super`] module docs). The wheel preserves it exactly:
//!
//! * Only the **active** slot — the one `cursor` points at — is ever
//!   popped from. It is kept sorted descending by key, so the back of
//!   its `Vec` is the global minimum (every other slot holds strictly
//!   later times) and `pop` is O(1).
//! * Future slots collect events unsorted and are sorted **once**, on
//!   activation, with an unstable sort — safe because keys are unique
//!   (`seq` is a monotone serial), so the sorted order is total and
//!   machine-independent.
//! * A push at or before the cursor's instant (same-instant follow-ups
//!   such as `Migrate`, or an arbitrary interleaving from a test) is
//!   binary-search-inserted into the active slot. Clamping cannot
//!   reorder anything: every event in a later slot has a strictly
//!   greater time, and within the active slot the insert position is
//!   decided by the full key.
//!
//! No hashing, no wall clock, no randomness: slot indices are pure
//! shifts of the integer nanosecond timestamp, and every structure is a
//! `Vec` or bitmap walked in index order (D001-clean by construction).
//!
//! # Allocation discipline
//!
//! Slot `Vec`s are never dropped — a drained slot keeps its capacity
//! for the next wheel turn, so after warm-up the steady-state push/pop
//! path allocates nothing. The slots *are* the event arena: `SimEvent`s
//! move by value between them, with no per-event box or freelist node.
//! Cascading drains an L1 slot through a reusable scratch buffer and
//! swaps the (now empty, still-allocated) buffer back, recycling both
//! sides.

use super::SimEvent;
use sgprs_rt::SimTime;

/// log2 nanoseconds per L0 slot: 2^16 ns ≈ 65.5 µs.
const L0_GRAIN_BITS: u32 = 16;
/// log2 slots in the L0 wheel: 512 slots ≈ 33.5 ms per window — at
/// least one 33 ms release period, so releases/completions land direct.
const L0_SLOT_BITS: u32 = 9;
/// Slots in the L0 wheel.
const L0_SLOTS: usize = 1 << L0_SLOT_BITS;
/// log2 slots in the L1 wheel: 256 slots of one L0 window each ≈ 8.6 s
/// — covers epoch samples and queue-patience expiries for every
/// shipped scenario.
const L1_SLOT_BITS: u32 = 8;
/// Slots in the L1 wheel.
const L1_SLOTS: usize = 1 << L1_SLOT_BITS;
/// log2 nanoseconds per L1 slot (= one full L0 window).
const L1_GRAIN_BITS: u32 = L0_GRAIN_BITS + L0_SLOT_BITS;

/// The absolute L0 slot of a timestamp.
fn slot0(time: SimTime) -> u64 {
    time.as_nanos() >> L0_GRAIN_BITS
}

/// The absolute L1 slot of a timestamp.
fn slot1(time: SimTime) -> u64 {
    time.as_nanos() >> L1_GRAIN_BITS
}

/// The hierarchical timing wheel. See the module docs for the layout
/// and the ordering argument.
#[derive(Debug)]
pub(crate) struct TimingWheel {
    /// L0 slot buckets; index = absolute slot & (L0_SLOTS - 1).
    l0: Vec<Vec<SimEvent>>,
    /// L0 occupancy bitmap (bit per slot), so empty-slot scans are word
    /// steps instead of Vec probes.
    l0_bits: [u64; L0_SLOTS / 64],
    /// L1 slot buckets; index = absolute slot & (L1_SLOTS - 1).
    l1: Vec<Vec<SimEvent>>,
    /// L1 occupancy bitmap.
    l1_bits: [u64; L1_SLOTS / 64],
    /// Events beyond the L1 span, unsorted; internal order is a pure
    /// function of the push sequence (`swap_remove` rescues), and
    /// irrelevant — placement re-sorts on activation.
    overflow: Vec<SimEvent>,
    /// Absolute L0 slot currently being drained. Its bucket is sorted
    /// descending by key; everything earlier has already popped.
    cursor: u64,
    /// Reusable drain buffer for cascades (capacity recycled).
    scratch: Vec<SimEvent>,
    /// Pending events across all levels.
    len: usize,
}

impl Default for TimingWheel {
    fn default() -> Self {
        TimingWheel {
            l0: vec![Vec::new(); L0_SLOTS],
            l0_bits: [0; L0_SLOTS / 64],
            l1: vec![Vec::new(); L1_SLOTS],
            l1_bits: [0; L1_SLOTS / 64],
            overflow: Vec::new(),
            cursor: 0,
            scratch: Vec::new(),
            len: 0,
        }
    }
}

impl TimingWheel {
    /// Number of pending events.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The absolute L1 slot whose L0 window the cursor is inside.
    fn cur_l1(&self) -> u64 {
        self.cursor >> L0_SLOT_BITS
    }

    /// One past the last absolute L0 slot the L0 wheel currently
    /// covers: the end of the cursor's (aligned) window.
    fn l0_end(&self) -> u64 {
        (self.cur_l1() + 1) << L0_SLOT_BITS
    }

    /// One past the last absolute L1 slot the L1 wheel currently
    /// covers. The covered range `(cur_l1, cur_l1 + L1_SLOTS]` holds
    /// exactly [`L1_SLOTS`] values, so ring indices never alias.
    fn l1_end(&self) -> u64 {
        self.cur_l1() + 1 + L1_SLOTS as u64
    }

    /// Schedules one event. O(1) amortised: a bucket append everywhere
    /// except the active slot, which takes a binary-search insert.
    pub(crate) fn push(&mut self, ev: SimEvent) {
        self.len += 1;
        self.place(ev);
    }

    /// Routes an event to its level under the current windows (shared
    /// by `push` and cascade rescues; does not touch `len`).
    fn place(&mut self, ev: SimEvent) {
        let s0 = slot0(ev.time);
        if s0 <= self.cursor {
            // At or before the drain point: joins the active slot in
            // key order (see the module docs' clamping argument).
            let ring = (self.cursor as usize) & (L0_SLOTS - 1);
            self.l0_bits[ring / 64] |= 1 << (ring % 64);
            let bucket = &mut self.l0[ring];
            let key = ev.key();
            // Descending by key, so the back stays the minimum.
            let at = bucket.partition_point(|e| e.key() > key);
            bucket.insert(at, ev);
        } else if s0 < self.l0_end() {
            let ring = (s0 as usize) & (L0_SLOTS - 1);
            self.l0_bits[ring / 64] |= 1 << (ring % 64);
            self.l0[ring].push(ev);
        } else {
            let s1 = s0 >> L0_SLOT_BITS;
            if s1 < self.l1_end() {
                let ring = (s1 as usize) & (L1_SLOTS - 1);
                self.l1_bits[ring / 64] |= 1 << (ring % 64);
                self.l1[ring].push(ev);
            } else {
                self.overflow.push(ev);
            }
        }
    }

    /// Whether [`Self::prepare`] has wheel-turning to do: pending
    /// events but an empty active slot. O(1); the engine's merge loop
    /// uses it to skip the prepare call (and its profiling clock read)
    /// on the common already-prepared iteration.
    pub(crate) fn needs_prepare(&self) -> bool {
        self.len != 0 && self.l0[(self.cursor as usize) & (L0_SLOTS - 1)].is_empty()
    }

    /// The key of the earliest pending event. Requires a preceding
    /// [`Self::prepare`] (or [`Self::needs_prepare`] `== false`); after
    /// it, the head (if any) sits at the back of the active slot.
    pub(crate) fn peek_key(&self) -> Option<(SimTime, usize, u64)> {
        debug_assert!(!self.needs_prepare(), "peek_key requires a prepared wheel");
        self.l0[(self.cursor as usize) & (L0_SLOTS - 1)]
            .last()
            .map(SimEvent::key)
    }

    /// Removes and returns the earliest pending event.
    pub(crate) fn pop(&mut self) -> Option<SimEvent> {
        self.prepare();
        let ring = (self.cursor as usize) & (L0_SLOTS - 1);
        let ev = self.l0[ring].pop()?;
        self.len -= 1;
        if self.l0[ring].is_empty() {
            self.l0_bits[ring / 64] &= !(1 << (ring % 64));
        }
        Some(ev)
    }

    /// Advances the wheel until the earliest pending event sits sorted
    /// at the back of the active slot (or the wheel is empty). Returns
    /// `true` when cascade work ran — an L1 slot scattered into L0, an
    /// overflow rescan, or a far-future fast-forward — which is what
    /// the engine attributes to the `wheel_cascade` span. Idempotent
    /// and O(1) when already prepared.
    pub(crate) fn prepare(&mut self) -> bool {
        if self.len == 0
            || !self.l0[(self.cursor as usize) & (L0_SLOTS - 1)].is_empty()
        {
            return false;
        }
        // Cheap path: a later slot inside the current L0 window.
        if let Some(s0) = self.next_l0(self.cursor + 1) {
            self.activate(s0);
            return false;
        }
        // The window is dry: cascade L1 slots (and, when both wheels
        // are dry, fast-forward over the overflow) until a slot fills.
        loop {
            if let Some(s1) = self.next_l1() {
                self.open_window(s1);
            } else {
                debug_assert!(
                    !self.overflow.is_empty(),
                    "len > 0 with both wheels dry means overflow holds the rest"
                );
                // Jump straight to the earliest overflow event's window
                // instead of turning the wheel over dead seconds.
                let min_s1 = self
                    .overflow
                    .iter()
                    .map(|e| slot1(e.time))
                    .min()
                    .unwrap_or(self.cur_l1() + 1);
                self.open_window(min_s1.max(self.cur_l1() + 1));
            }
            if let Some(s0) = self.next_l0(self.cursor) {
                self.activate(s0);
                return true;
            }
            // The opened window was empty after all (an overflow jump
            // can land short when rescued events straddle windows);
            // keep turning.
        }
    }

    /// Moves the cursor into L1 slot `s1`'s window: scatters that
    /// slot's bucket into L0 and rescues overflow events the advanced
    /// L1 window now covers.
    fn open_window(&mut self, s1: u64) {
        self.cursor = s1 << L0_SLOT_BITS;
        let ring = (s1 as usize) & (L1_SLOTS - 1);
        if self.l1_bits[ring / 64] & (1 << (ring % 64)) != 0 {
            self.l1_bits[ring / 64] &= !(1 << (ring % 64));
            // Drain through the scratch buffer, then hand the (empty,
            // still-allocated) buffer back to the slot.
            let mut batch = std::mem::take(&mut self.scratch);
            std::mem::swap(&mut batch, &mut self.l1[ring]);
            for ev in batch.drain(..) {
                self.place(ev);
            }
            self.scratch = batch;
        }
        if !self.overflow.is_empty() {
            let l1_end = self.l1_end();
            let mut i = 0;
            while i < self.overflow.len() {
                if slot1(self.overflow[i].time) < l1_end {
                    let ev = self.overflow.swap_remove(i);
                    self.place(ev);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Makes `s0` the active slot and sorts its bucket into pop order.
    fn activate(&mut self, s0: u64) {
        self.cursor = s0;
        let ring = (s0 as usize) & (L0_SLOTS - 1);
        // Unique keys (seq is a monotone serial) make the unstable sort
        // deterministic.
        self.l0[ring].sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
    }

    /// The first occupied absolute L0 slot at or after `from` within
    /// the current window, by bitmap scan. `from` and the window end
    /// share one aligned 512-slot block, so the ring scan never wraps.
    fn next_l0(&self, from: u64) -> Option<u64> {
        if from >= self.l0_end() {
            return None;
        }
        let base = self.cur_l1() << L0_SLOT_BITS;
        let start = (from as usize) & (L0_SLOTS - 1);
        let mut word = start / 64;
        let mut bits = self.l0_bits[word] & (!0u64 << (start % 64));
        loop {
            if bits != 0 {
                let idx = word * 64 + bits.trailing_zeros() as usize;
                return Some(base + idx as u64);
            }
            word += 1;
            if word == L0_SLOTS / 64 {
                return None;
            }
            bits = self.l0_bits[word];
        }
    }

    /// The first occupied absolute L1 slot after the cursor's, in
    /// absolute order. The covered range starts at `cur_l1 + 1` and
    /// wraps the ring once, so the scan runs ring-start→end, then
    /// begin→ring-start — each part in increasing absolute order, the
    /// first part entirely before the second.
    fn next_l1(&self) -> Option<u64> {
        let first = self.cur_l1() + 1;
        let start = (first as usize) & (L1_SLOTS - 1);
        // Part 1: ring indices [start, L1_SLOTS).
        let mut word = start / 64;
        let mut bits = self.l1_bits[word] & (!0u64 << (start % 64));
        loop {
            if bits != 0 {
                let idx = word * 64 + bits.trailing_zeros() as usize;
                return Some(first + (idx - start) as u64);
            }
            word += 1;
            if word == L1_SLOTS / 64 {
                break;
            }
            bits = self.l1_bits[word];
        }
        // Part 2: ring indices [0, start) — one window turn later.
        let turned = first + (L1_SLOTS - start) as u64;
        let mut word = 0;
        loop {
            let bits = if (word + 1) * 64 <= start {
                self.l1_bits[word]
            } else {
                self.l1_bits[word] & !(!0u64 << (start % 64))
            };
            if bits != 0 {
                let idx = word * 64 + bits.trailing_zeros() as usize;
                return Some(turned + idx as u64);
            }
            word += 1;
            if word * 64 >= start {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{EventKind, NODE_FLEET};
    use super::*;
    use sgprs_rt::SimDuration;

    fn ev(nanos: u64, node: usize, seq: u64) -> SimEvent {
        SimEvent {
            time: SimTime::from_nanos(nanos),
            node,
            seq,
            kind: EventKind::Sample,
        }
    }

    fn drain(w: &mut TimingWheel) -> Vec<(u64, usize, u64)> {
        std::iter::from_fn(|| w.pop())
            .map(|e| (e.time.as_nanos(), e.node, e.seq))
            .collect()
    }

    #[test]
    fn pops_in_key_order_across_levels() {
        let mut w = TimingWheel::default();
        // Active slot, later L0 slot, L1 slot, and deep overflow.
        let far = SimDuration::from_secs(3600).as_nanos();
        w.push(ev(far, 1, 3));
        w.push(ev(SimDuration::from_secs(2).as_nanos(), 0, 2));
        w.push(ev(SimDuration::from_millis(5).as_nanos(), 5, 1));
        w.push(ev(100, 9, 0));
        assert_eq!(w.len(), 4);
        let order = drain(&mut w);
        assert_eq!(
            order,
            vec![
                (100, 9, 0),
                (SimDuration::from_millis(5).as_nanos(), 5, 1),
                (SimDuration::from_secs(2).as_nanos(), 0, 2),
                (far, 1, 3),
            ]
        );
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn same_slot_orders_by_full_key() {
        let mut w = TimingWheel::default();
        w.push(ev(50, NODE_FLEET, 0));
        w.push(ev(50, 2, 1));
        w.push(ev(50, 0, 2));
        w.push(ev(10, 7, 3));
        let order = drain(&mut w);
        assert_eq!(
            order,
            vec![(10, 7, 3), (50, 0, 2), (50, 2, 1), (50, NODE_FLEET, 0)]
        );
    }

    #[test]
    fn pushes_at_or_before_the_cursor_join_the_active_slot_in_order() {
        let mut w = TimingWheel::default();
        w.push(ev(1_000, 3, 0));
        assert_eq!(w.pop().map(|e| e.seq), Some(0));
        // Same instant, later seq — and an *earlier* instant in the
        // same slot (heap semantics: pop order is over what remains).
        w.push(ev(1_000, 3, 1));
        w.push(ev(900, 1, 2));
        w.push(ev(1_000, 0, 3));
        let order = drain(&mut w);
        assert_eq!(order, vec![(900, 1, 2), (1_000, 0, 3), (1_000, 3, 1)]);
    }

    #[test]
    fn window_straddling_pushes_cascade_back_into_l0() {
        let mut w = TimingWheel::default();
        // One event per 33 ms period for 2 simulated seconds: every
        // push beyond the first window lands in L1 first and must
        // cascade out in order.
        let period = SimDuration::from_millis(33).as_nanos();
        for i in 0..60u64 {
            w.push(ev(i * period, 0, i));
        }
        let order = drain(&mut w);
        let seqs: Vec<u64> = order.iter().map(|&(_, _, s)| s).collect();
        assert_eq!(seqs, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn overflow_fast_forward_skips_dead_time() {
        let mut w = TimingWheel::default();
        // Two events hours apart: the wheel must jump, not iterate
        // 100k empty windows.
        let h1 = SimDuration::from_secs(3600).as_nanos();
        let h9 = SimDuration::from_secs(9 * 3600).as_nanos();
        w.push(ev(h9, 1, 0));
        w.push(ev(h1, 0, 1));
        assert_eq!(drain(&mut w), vec![(h1, 0, 1), (h9, 1, 0)]);
    }

    #[test]
    fn prepare_reports_cascade_work_and_is_idempotent() {
        let mut w = TimingWheel::default();
        w.push(ev(10, 0, 0));
        assert!(!w.prepare(), "head already in the active slot");
        w.push(ev(SimDuration::from_secs(1).as_nanos(), 0, 1));
        assert_eq!(w.pop().map(|e| e.seq), Some(0));
        assert!(w.prepare(), "reaching the L1 event is a cascade");
        assert!(!w.prepare(), "second prepare is a no-op");
        assert_eq!(w.pop().map(|e| e.seq), Some(1));
        assert!(!w.prepare(), "empty wheel has nothing to prepare");
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn slot_capacity_is_recycled_across_wheel_turns() {
        let mut w = TimingWheel::default();
        let period = SimDuration::from_millis(33).as_nanos();
        // Three full wheel turns of periodic traffic through one slot
        // pattern; afterwards the buckets must still be warm (this is
        // a behavioural proxy: correctness here, the allocation gate
        // in the bench baseline).
        for turn in 0..3u64 {
            for i in 0..32u64 {
                w.push(ev(turn * 1_100_000_000 + i * period, 0, turn * 32 + i));
            }
            let popped = drain(&mut w);
            assert_eq!(popped.len(), 32);
        }
    }
}
