//! The event path's fluid execution model.
//!
//! Event mode cannot reuse the per-stage schedulers (they are
//! constructed per epoch over a fixed task set), so each node serves
//! jobs under a fluid approximation that keeps the same qualitative
//! behaviour the epoch path observes from the real schedulers:
//!
//! * **Load stretch** — a job of a tenant with period `P`, released on a
//!   node whose resident demand is `D` SM-equivalents against an
//!   effective capacity `C`, takes `max(best_case, P · D/C)` to finish,
//!   scaled by a small deterministic jitter. Under admission-respecting
//!   load (`D ≤ 0.9 C` on SGPRS nodes) jobs finish inside their period;
//!   past capacity the stretch makes frames late and the skip-if-busy
//!   policy drops the backlog — a DMR that grows with overload.
//! * **Scheduler variants** — an SGPRS node samples its capacity at the
//!   calibrated multi-stream concurrency (its partitions keep several
//!   stages resident, and switching costs nothing). Naive and reconfig
//!   nodes execute whole networks sequentially on a single stream per
//!   partition, so their capacity is sampled at concurrency 1, and every
//!   job pays the calibrated partition-switch tax when tenants share a
//!   context — which is how "admission admits it, the node still
//!   misses" arises here exactly as on the epoch path (admission is
//!   deliberately scheduler-blind about execution efficiency).
//!
//! Demand/capacity samples are cached per node and validated against
//! the fleet's per-node version counters (bumped on every population or
//! price change), so a mutation on node `i` recomputes only node `i`'s
//! sample — not the whole fleet's. Best-case latency is cached per
//! `(node, model, stages, fps)` in a per-node linear list (the distinct
//! price points per node are few), so the release hot path does no
//! hashing at all.

use crate::{AdmissionController, FleetNode, ModelKind, NodeScheduler, TenantSpec};
use sgprs_core::NaiveConfig;
use sgprs_rt::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Relative half-width of the deterministic per-job jitter band.
const JITTER_SPAN: f64 = 0.03;

/// One node's cached load sample.
#[derive(Debug, Clone, Copy)]
struct NodeLoad {
    demand: f64,
    capacity: f64,
}

/// One distinct price point on a node: `(model, stages, fps-bits)`
/// keying its memoised best-case latency.
type PricePoint = ((ModelKind, usize, u64), SimDuration);

/// The fluid execution model: cached per-node load and the service-time
/// function.
#[derive(Debug)]
pub(crate) struct FluidExec {
    seed: u64,
    /// Per-node `(node version, sample)` — valid while the fleet's
    /// version counter for the node still matches.
    loads: Vec<Option<(u64, NodeLoad)>>,
    /// Per-node [`PricePoint`] entries, scanned linearly: a node hosts
    /// only a handful of distinct price points, and a short scan beats
    /// hashing on the release hot path.
    best_case: Vec<Vec<PricePoint>>,
}

impl FluidExec {
    pub(crate) fn new(n_nodes: usize, seed: u64) -> Self {
        FluidExec {
            seed,
            loads: vec![None; n_nodes],
            best_case: vec![Vec::new(); n_nodes],
        }
    }

    /// The node's `(demand, capacity)` in SM-equivalents, sampled lazily
    /// and revalidated against `versions[idx]` (the fleet bumps a node's
    /// counter on every population/price mutation). The sample is a pure
    /// function of node state, so a version hit returns bit-identical
    /// values to a fresh compute.
    fn load(
        &mut self,
        nodes: &[FleetNode],
        admission: &AdmissionController,
        versions: &[u64],
        idx: usize,
    ) -> NodeLoad {
        if let Some((v, l)) = self.loads[idx] {
            if v == versions[idx] {
                return l;
            }
        }
        let node = &nodes[idx];
        let l = if node.tenants.is_empty() {
            NodeLoad {
                demand: 0.0,
                capacity: f64::from(node.spec.gpu.total_sms),
            }
        } else {
            let mix = node.mixed_profile(None);
            let concurrency = match node.spec.scheduler {
                NodeScheduler::Sgprs { .. } => admission.config().concurrency,
                // One stream per partition, whole networks in sequence.
                NodeScheduler::Naive | NodeScheduler::Reconfig => 1.0,
            };
            NodeLoad {
                demand: node.total_demand() + switch_tax(node),
                capacity: node.capacity_sm_equivalents(&mix, concurrency),
            }
        };
        self.loads[idx] = Some((versions[idx], l));
        l
    }

    /// The node's demand/capacity ratio (the fluid stretch factor).
    pub(crate) fn load_ratio(
        &mut self,
        nodes: &[FleetNode],
        admission: &AdmissionController,
        versions: &[u64],
        idx: usize,
    ) -> f64 {
        let l = self.load(nodes, admission, versions, idx);
        if l.capacity > 0.0 {
            l.demand / l.capacity
        } else {
            0.0
        }
    }

    /// Service time of one job released on node `idx` by a tenant
    /// serving `model` in `stages` stages at `fps`:
    /// `max(best_case, period · D/C)` scaled by the deterministic jitter
    /// for `(name, job_seq)`. Takes the price-dependent fields by value
    /// — and the tenant name pre-hashed (see [`fnv1a`]) — so the release
    /// hot path neither clones a [`TenantSpec`] nor re-hashes a string.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn service_time(
        &mut self,
        nodes: &[FleetNode],
        admission: &AdmissionController,
        versions: &[u64],
        idx: usize,
        model: ModelKind,
        stages: usize,
        fps: f64,
        name_hash: u64,
        job_seq: u64,
    ) -> SimDuration {
        let rho = self.load_ratio(nodes, admission, versions, idx);
        let key = (model, stages, fps.to_bits());
        let cached = self.best_case[idx]
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, bcl)| bcl);
        let bcl = match cached {
            Some(bcl) => bcl,
            None => {
                // Only a cache miss pays for the probe spec (the name is
                // irrelevant to the latency bound).
                let probe = TenantSpec::new("bcl-probe", model, fps).with_stages(stages);
                let bcl = admission.best_case_latency(&nodes[idx], &probe);
                self.best_case[idx].push((key, bcl));
                bcl
            }
        };
        let period = SimDuration::from_secs_f64(1.0 / fps);
        let base = bcl.max(period.mul_f64(rho));
        base.mul_f64(self.jitter(idx, name_hash, job_seq))
    }

    /// Deterministic multiplicative jitter in `[1 - J, 1 + J]`, a pure
    /// function of `(fleet seed, node, tenant-name hash, job serial)` —
    /// execution strategy can never change it. Callers pass
    /// [`fnv1a`]`(name)`; the engine caches that hash per tenant run, so
    /// the value is byte-identical to hashing the name in place.
    fn jitter(&self, node: usize, name_hash: u64, job_seq: u64) -> f64 {
        let mut x = self
            .seed
            .wrapping_add((node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(name_hash)
            .wrapping_add(job_seq.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        // splitmix64 finalizer.
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
        1.0 - JITTER_SPAN + 2.0 * JITTER_SPAN * unit
    }
}

/// FNV-1a over the tenant name: a stable, dependency-free string hash
/// (the std hasher is seeded per process and would break determinism).
/// The engine hashes each name once when a tenant run starts and feeds
/// the cached value to [`FluidExec::service_time`] on every release.
pub(super) fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The partition-switch demand a naive/reconfig node pays, in
/// SM-equivalents: each job reconfigures its context to a different
/// tenant (whole-context stall at the calibrated
/// [`sgprs_core::NaiveConfig`] switch cost) whenever tenants share a
/// partition. SGPRS's zero-configuration switch makes this exactly zero.
fn switch_tax(node: &FleetNode) -> f64 {
    if matches!(node.spec.scheduler, NodeScheduler::Sgprs { .. }) {
        return 0.0;
    }
    let contexts = node.spec.contexts.max(1);
    let per_ctx = node.tenants.len().div_ceil(contexts);
    if per_ctx < 2 {
        // A partition serving a single tenant never switches.
        return 0.0;
    }
    let switch_secs = NaiveConfig::new(contexts).switch_cost_ns(per_ctx) / 1e9;
    let sm_ctx = f64::from(node.spec.gpu.total_sms) / contexts as f64;
    node.tenants
        .iter()
        .map(|t| t.fps * switch_secs * sm_ctx)
        .sum()
}

/// A sliding window of per-release outcomes feeding the node's DMR
/// estimate — the event path's migration trigger, evaluated at job-
/// release boundaries instead of once per epoch.
#[derive(Debug, Default)]
pub(crate) struct MissWindow {
    samples: VecDeque<(SimTime, bool)>,
}

/// Outcomes required in the window before the DMR estimate is trusted
/// (avoids migrating a node off the back of one or two early misses).
const MIN_WINDOW_SAMPLES: usize = 8;

impl MissWindow {
    /// Records one resolved release outcome at `t`, pruning outcomes
    /// that aged past `span` — so the window stays bounded even on
    /// nodes whose `dmr` is never consulted (e.g. single-tenant nodes,
    /// which are never migration sources).
    pub(crate) fn push(&mut self, t: SimTime, missed: bool, span: SimDuration) {
        self.prune(t, span);
        self.samples.push_back((t, missed));
    }

    /// Drops outcomes older than `now - span`.
    fn prune(&mut self, now: SimTime, span: SimDuration) {
        let cutoff = now.duration_since(SimTime::ZERO);
        let keep_from = if cutoff > span {
            SimTime::ZERO + (cutoff - span)
        } else {
            SimTime::ZERO
        };
        while let Some(&(t, _)) = self.samples.front() {
            if t < keep_from {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// The miss rate over outcomes within the trailing `span` at `now`,
    /// or 0 while fewer than [`MIN_WINDOW_SAMPLES`] outcomes are inside
    /// the window.
    pub(crate) fn dmr(&mut self, now: SimTime, span: SimDuration) -> f64 {
        self.prune(now, span);
        if self.samples.len() < MIN_WINDOW_SAMPLES {
            return 0.0;
        }
        let missed = self.samples.iter().filter(|&&(_, m)| m).count();
        missed as f64 / self.samples.len() as f64
    }

    /// Forgets every outcome (hysteresis after shedding a tenant: the
    /// post-migration node earns a fresh estimate before it may shed
    /// again).
    pub(crate) fn clear(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeSpec;
    use sgprs_gpu_sim::GpuSpec;

    fn tenant(i: usize) -> TenantSpec {
        TenantSpec::new(format!("cam-{i}"), ModelKind::ResNet18, 30.0)
    }

    #[test]
    fn admission_respecting_sgprs_load_finishes_inside_the_period() {
        let mut node = FleetNode::new(NodeSpec::sgprs("g", GpuSpec::rtx_2080_ti()));
        let admission = AdmissionController::default();
        // Fill to the admission bound, no further.
        while admission.evaluate(&node, &tenant(node.tenants.len())).is_admit() {
            let i = node.tenants.len();
            node.tenants.push(tenant(i));
        }
        let nodes = vec![node];
        let mut exec = FluidExec::new(1, 7);
        let rho = exec.load_ratio(&nodes, &admission, &[0], 0);
        assert!(rho > 0.5 && rho < 1.0, "bound-respecting load: {rho}");
        for job in 0..64 {
            let t = tenant(0);
            let s = exec.service_time(
                &nodes,
                &admission,
                &[0],
                0,
                t.model,
                t.stages,
                t.fps,
                fnv1a(&t.name),
                job,
            );
            assert!(
                s <= t.period(),
                "job {job} took {s} > period {} at rho {rho}",
                t.period()
            );
        }
    }

    #[test]
    fn overload_stretches_service_past_the_period() {
        let mut node = FleetNode::new(NodeSpec::sgprs("g", GpuSpec::synthetic(16)));
        for i in 0..12 {
            node.tenants.push(tenant(i));
        }
        let admission = AdmissionController::default();
        let nodes = vec![node];
        let mut exec = FluidExec::new(1, 7);
        let rho = exec.load_ratio(&nodes, &admission, &[0], 0);
        assert!(rho > 1.0, "12 tenants on 16 SMs must overload: {rho}");
        let t = tenant(0);
        let s = exec.service_time(
            &nodes,
            &admission,
            &[0],
            0,
            t.model,
            t.stages,
            t.fps,
            fnv1a(&t.name),
            0,
        );
        assert!(s > t.period(), "{s} vs {}", t.period());
    }

    #[test]
    fn naive_nodes_miss_at_loads_their_admission_budget_accepts() {
        // The epoch path's "hot naive node" trap, reproduced by the fluid
        // model: a naive node filled to its own admission budget still
        // has demand above its sequential-execution capacity.
        let spec = NodeSpec::sgprs("naive", GpuSpec::rtx_2080_ti())
            .with_scheduler(NodeScheduler::Naive);
        let mut node = FleetNode::new(spec);
        let admission = AdmissionController::default();
        while admission.evaluate(&node, &tenant(node.tenants.len())).is_admit() {
            let i = node.tenants.len();
            node.tenants.push(tenant(i));
        }
        let n = node.tenants.len();
        assert!(n >= 8, "the budget admits a crowd: {n}");
        let nodes = vec![node];
        let mut exec = FluidExec::new(1, 7);
        let rho = exec.load_ratio(&nodes, &admission, &[0], 0);
        assert!(
            rho > 1.0,
            "sequential execution + switch tax must exceed capacity: {rho}"
        );
    }

    #[test]
    fn load_cache_revalidates_on_version_bump() {
        let mut node = FleetNode::new(NodeSpec::sgprs("g", GpuSpec::rtx_2080_ti()));
        node.tenants.push(tenant(0));
        let admission = AdmissionController::default();
        let mut nodes = vec![node];
        let mut exec = FluidExec::new(1, 7);
        let before = exec.load_ratio(&nodes, &admission, &[0], 0);
        nodes[0].tenants.push(tenant(1));
        assert_eq!(
            exec.load_ratio(&nodes, &admission, &[0], 0),
            before,
            "an unbumped version serves the cached sample"
        );
        let after = exec.load_ratio(&nodes, &admission, &[1], 0);
        assert!(
            after > before,
            "the bumped version recomputes: {after} vs {before}"
        );
    }

    #[test]
    fn jitter_is_deterministic_and_tightly_banded() {
        let exec = FluidExec::new(3, 0x5672_5053);
        let again = FluidExec::new(3, 0x5672_5053);
        let h = fnv1a("cam-0");
        for job in 0..100 {
            let j = exec.jitter(1, h, job);
            assert_eq!(j, again.jitter(1, h, job));
            assert!((1.0 - JITTER_SPAN..=1.0 + JITTER_SPAN).contains(&j), "{j}");
        }
        assert_ne!(
            exec.jitter(1, h, 0),
            exec.jitter(1, h, 1),
            "jitter varies per job"
        );
    }

    #[test]
    fn miss_window_stays_bounded_without_a_dmr_consumer() {
        // Regression: pruning used to live only in `dmr`, so windows of
        // nodes whose estimate is never consulted (single-tenant nodes
        // are never migration sources) grew one entry per job forever.
        let mut w = MissWindow::default();
        let span = SimDuration::from_secs(1);
        for i in 0..10_000u64 {
            w.push(SimTime::ZERO + SimDuration::from_millis(i * 33), true, span);
        }
        assert!(
            w.samples.len() <= 32,
            "push prunes to the span (~30 samples at 33 ms): {}",
            w.samples.len()
        );
    }

    #[test]
    fn miss_window_prunes_and_gates_on_sample_count() {
        let mut w = MissWindow::default();
        let span = SimDuration::from_secs(1);
        for i in 0..MIN_WINDOW_SAMPLES as u64 - 1 {
            w.push(SimTime::from_nanos(i), true, span);
        }
        let now = SimTime::from_nanos(MIN_WINDOW_SAMPLES as u64);
        assert_eq!(w.dmr(now, span), 0.0, "too few samples to trust");
        w.push(now, true, span);
        assert!(w.dmr(now, span) > 0.99, "all misses once trusted");
        // Old samples age out of the window.
        let later = now + SimDuration::from_secs(2);
        assert_eq!(w.dmr(later, span), 0.0, "everything aged out");
        w.clear();
        assert_eq!(w.dmr(later, span), 0.0);
    }
}
