//! The event-driven run loop behind [`crate::Fleet::run_events`].
//!
//! One [`super::EventQueue`] drives the whole fleet: churn, every
//! tenant's periodic releases, job completions, deadline checks, queue
//! expiry, migration, and utilisation sampling are all events on the
//! same monotonic clock. Scheduler state (the in-flight job of every
//! tenant) lives in [`TenantRun`] entries that persist across the whole
//! run — there are no epoch boundaries to truncate against, which is the
//! point.
//!
//! # Streaming churn
//!
//! Churn is *not* materialised into the heap. The engine holds the
//! [`ArrivalStream`] beside the event queue and merges lazily: at each
//! step it compares the heap head's `(time, node, seq)` against the
//! stream's next instant. Stream events are fleet-scope
//! ([`NODE_FLEET`]), and on the materialised path they were all enqueued
//! after the pre-trace seeds (resident releases, waiter expiries, the
//! initial queue sweep) and before anything scheduled at runtime — so a
//! heap event at an equal instant wins exactly when it is node-local or
//! its seq lies below the *stream watermark* (the seq counter captured
//! after seeding, before the first sample). This reproduces the
//! materialised path's total order byte for byte while keeping heap
//! population — and memory — O(active tenants), not O(trace).

use super::exec::{FluidExec, MissWindow};
use super::{EventKind, EventQueue, NODE_FLEET};
use crate::fleet::Fleet;
use crate::interner::TenantId;
use crate::policy::{self, FleetState};
use crate::telemetry::Span;
use crate::{ArrivalStream, ChurnEvent, DispatchOutcome, FleetMetrics, FleetMetricsBuilder};
use sgprs_rt::{SimDuration, SimTime};
use std::collections::HashSet;

/// Persistent per-tenant scheduler state: which node the tenant serves
/// on, its release/job serials, and the job currently in flight.
#[derive(Debug)]
struct TenantRun {
    node: usize,
    /// Generation guard: release events scheduled under an older
    /// generation (before a migration, or a previous occupant of a
    /// recycled id) are stale and dropped on pop.
    gen: u64,
    /// Incarnation guard for completion/deadline events: assigned once
    /// when the run starts and *not* bumped by migration, so a departed
    /// predecessor's stale events cannot touch a recycled id's fresh
    /// run, while an in-flight job still resolves across a migration.
    inc: u64,
    /// Next job serial.
    job_seq: u64,
    /// The job currently in flight, if any, with its finish instant
    /// (skip-if-busy admission; migration resumption waits for it).
    in_flight: Option<(u64, SimTime)>,
    /// When the next release event is scheduled (or `SimTime::MAX` when
    /// none is), so a migration can re-anchor the clock after its stall.
    next_release: SimTime,
    /// [`super::exec::fnv1a`] of the tenant name, hashed once when the
    /// run starts: the jitter input every release needs, without a
    /// per-release interner lookup + string hash.
    name_hash: u64,
}

/// Runs `fleet` over `arrivals` in event-driven mode until `horizon`.
pub(crate) fn run_events(
    fleet: &mut Fleet,
    arrivals: ArrivalStream,
    horizon: SimDuration,
) -> FleetMetrics {
    assert!(
        !fleet.cfg.epoch.is_zero(),
        "epoch must be positive (it paces utilisation sampling and the DMR window)"
    );
    let builder = FleetMetricsBuilder::new(
        fleet.nodes.iter().map(|n| n.spec.name.clone()).collect(),
        fleet.nodes.iter().map(|n| n.spec.gpu.total_sms).collect(),
    );
    let n_nodes = fleet.nodes.len();
    fleet.telemetry.begin_run(n_nodes, horizon);
    let seed = fleet.cfg.seed;
    let mut engine = Engine {
        fleet,
        events: EventQueue::new(),
        arrivals,
        stream_watermark: 0,
        exec: FluidExec::new(n_nodes, seed),
        windows: (0..n_nodes).map(|_| MissWindow::default()).collect(),
        runs: Vec::new(),
        builder,
        pre_run_queued: HashSet::new(),
        migration_pending: vec![false; n_nodes],
        sample_cache: vec![None; n_nodes],
        dmr_scratch: Vec::new(),
        in_flight: 0,
        next_gen: 0,
        processed: 0,
        end: SimTime::ZERO + horizon,
    };
    engine.seed(horizon);
    engine.drive();
    engine.finish(horizon)
}

struct Engine<'a> {
    fleet: &'a mut Fleet,
    events: EventQueue,
    /// The lazy churn source, merged against the heap on pop (see the
    /// module docs) instead of being materialised into it.
    arrivals: ArrivalStream,
    /// Heap seqs below this belong to pre-churn seeds and outrank stream
    /// events at an equal fleet-scope instant; seqs at or above it were
    /// scheduled at runtime and rank after.
    stream_watermark: u64,
    exec: FluidExec,
    windows: Vec<MissWindow>,
    /// Per-tenant run state, indexed by [`TenantId`] (`None` = departed
    /// or never started). Capacity tracks the interner's: peak active
    /// tenants, not trace length.
    runs: Vec<Option<TenantRun>>,
    builder: FleetMetricsBuilder,
    /// Tenants already waiting when the run started: their later
    /// admission must not offset this run's deferral accounting (same
    /// contract as the epoch path). Lookup/remove only, never iterated.
    pre_run_queued: HashSet<TenantId>,
    /// One pending `Migrate` event per node at a time.
    migration_pending: Vec<bool>,
    /// Per-node `(node version, (budget, demand))` for utilisation
    /// samples: between mutations a node's sample is a constant, so
    /// each `Sample` event recomputes only nodes whose version moved.
    sample_cache: Vec<Option<(u64, (f64, f64))>>,
    /// Reused buffer for the per-migration fleet DMR snapshot.
    dmr_scratch: Vec<f64>,
    /// Jobs admitted but not yet completed — asserted zero at the end:
    /// the event path never truncates.
    in_flight: u64,
    next_gen: u64,
    /// Events handled by the merge loop (queue pops + stream pulls) —
    /// the run-length figure raw-mode benches read back through
    /// [`Fleet::events_processed`] when profiling is off.
    processed: u64,
    end: SimTime,
}

impl Engine<'_> {
    /// Seeds the initial event population: releases for tenants already
    /// resident, expiry deadlines for tenants already waiting, and the
    /// first utilisation sample. Churn stays in [`Engine::arrivals`];
    /// the watermark captured between the seeds and the first sample
    /// anchors where its events slot into the total order.
    fn seed(&mut self, horizon: SimDuration) {
        // Every run is its own timeline starting at zero, mirroring
        // `Fleet::run`: carried-over waiters are re-stamped at the start.
        self.fleet.now = SimTime::ZERO;
        self.fleet.queue.rebase(SimTime::ZERO);
        self.pre_run_queued = self.fleet.queue.ids().collect();
        if horizon.is_zero() {
            return;
        }
        for idx in 0..self.fleet.nodes.len() {
            // Indexed, not cloned: `start_run` never reshapes the
            // resident lists, so the position walk stays valid.
            for pos in 0..self.fleet.node_ids[idx].len() {
                let id = self.fleet.node_ids[idx][pos];
                self.start_run(id, idx, SimTime::ZERO);
            }
        }
        let waiting_patience: Vec<SimDuration> = self
            .fleet
            .queue
            .entries()
            .filter_map(|e| e.tenant.max_wait)
            .collect();
        for patience in waiting_patience {
            self.schedule_expiry(SimTime::ZERO, patience);
        }
        // Carried-over waiters get a demand-aware sweep at the start,
        // matching the epoch path's first boundary: a provably hopeless
        // pre-run waiter must not sit in the queue forever just because
        // it arrived before this run.
        if self.fleet.cfg.queue.demand_aware_expiry && self.fleet.queue.len() > 0 {
            self.events.push(SimTime::ZERO, NODE_FLEET, EventKind::QueueExpire);
        }
        // The materialised path enqueued the whole trace exactly here;
        // lazily delivered stream events inherit this slot in the total
        // order via the watermark.
        self.stream_watermark = self.events.next_seq();
        let first_sample = (SimTime::ZERO + self.fleet.cfg.epoch).min(self.end);
        self.events.push(first_sample, NODE_FLEET, EventKind::Sample);
    }

    /// Merges the heap and the churn stream until both run dry.
    /// Completions and deadline checks of jobs released before the
    /// horizon are processed even past it, so in-flight work drains
    /// instead of truncating.
    fn drive(&mut self) {
        loop {
            // Stream events at/past the horizon were dropped at seed time
            // on the materialised path; the stream is time-ordered, so
            // once its head crosses the horizon the whole tail has.
            let stream_t = self.arrivals.peek_time().filter(|&t| t < self.end);
            // Turn the wheel before peeking, so cascade work is billed
            // to its own span instead of inflating `event_pop`. The
            // `needs_prepare` pre-check keeps the common already-prepared
            // iteration free of the clock read and the prepare call.
            if self.events.needs_prepare() {
                let cascade_clock = self.fleet.telemetry.prof_clock();
                if self.events.prepare() {
                    self.fleet
                        .telemetry
                        .prof_record(Span::WheelCascade, cascade_clock);
                }
            }
            let heap_wins = match (self.events.peek_key(), stream_t) {
                (Some((ht, hn, hs)), Some(st)) => {
                    // At an equal instant, node-local events precede
                    // fleet-scope ones; among fleet-scope, only pre-seed
                    // events (seq below the watermark) precede churn.
                    ht < st || (ht == st && (hn != NODE_FLEET || hs < self.stream_watermark))
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            self.processed += 1;
            if heap_wins {
                let pop_clock = self.fleet.telemetry.prof_clock();
                let ev = self
                    .events
                    .pop()
                    .expect("invariant: a peeked heap event exists");
                self.fleet
                    .telemetry
                    .prof_record(Span::EventPop, pop_clock);
                self.fleet.now = ev.time;
                let exec_clock = self.fleet.telemetry.prof_clock();
                match ev.kind {
                    EventKind::Arrival(tenant) => self.on_arrival(ev.time, *tenant),
                    EventKind::Departure(name) => self.on_departure(ev.time, &name),
                    EventKind::JobRelease { tenant, gen } => {
                        self.on_release(ev.time, ev.node, tenant, gen);
                    }
                    EventKind::JobCompletion {
                        tenant,
                        job,
                        inc,
                        deadline,
                    } => self.on_completion(ev.time, ev.node, tenant, job, inc, deadline),
                    EventKind::DeadlineCheck { tenant, job, inc } => {
                        self.on_deadline_check(ev.time, ev.node, tenant, job, inc);
                    }
                    EventKind::Migrate => self.on_migrate(ev.time, ev.node),
                    EventKind::QueueExpire => self.on_queue_expire(ev.time),
                    EventKind::Sample => self.on_sample(ev.time),
                }
                self.fleet
                    .telemetry
                    .prof_record(Span::EventExec, exec_clock);
            } else {
                let pull_clock = self.fleet.telemetry.prof_clock();
                let (t, event) = self
                    .arrivals
                    .next_event()
                    .expect("invariant: a peeked stream event exists");
                self.fleet
                    .telemetry
                    .prof_record(Span::ArrivalPull, pull_clock);
                self.events.note_stream_event();
                self.fleet.now = t;
                match event {
                    ChurnEvent::Arrival(tenant) => self.on_arrival(t, tenant),
                    ChurnEvent::Departure(name) => self.on_departure(t, &name),
                }
            }
        }
    }

    fn finish(mut self, horizon: SimDuration) -> FleetMetrics {
        self.builder.rejected = self.builder.deferred - self.builder.admitted_after_wait;
        assert_eq!(
            self.in_flight, 0,
            "the event path never truncates: every admitted job ran to completion"
        );
        self.fleet.telemetry.note_event_ops(self.events.ops());
        self.fleet.events_processed = self.processed;
        let final_tenants: Vec<usize> =
            self.fleet.nodes.iter().map(|n| n.tenants.len()).collect();
        let mut metrics =
            self.builder
                .finish(horizon, &final_tenants, self.fleet.queue.len() as u64);
        metrics.attach_telemetry(self.fleet.telemetry.finish_report());
        metrics
    }

    fn run_of(&self, id: TenantId) -> Option<&TenantRun> {
        self.runs.get(id.index()).and_then(Option::as_ref)
    }

    fn run_mut(&mut self, id: TenantId) -> Option<&mut TenantRun> {
        self.runs.get_mut(id.index()).and_then(Option::as_mut)
    }

    /// Registers a (fresh-generation) run for the tenant on node `idx`
    /// and schedules its first release at `t`.
    fn start_run(&mut self, id: TenantId, idx: usize, t: SimTime) {
        let gen = self.next_gen;
        self.next_gen += 1;
        self.events
            .push(t, idx, EventKind::JobRelease { tenant: id, gen });
        let slot = id.index();
        if slot >= self.runs.len() {
            self.runs.resize_with(slot + 1, || None);
        }
        self.runs[slot] = Some(TenantRun {
            node: idx,
            gen,
            inc: gen,
            job_seq: 0,
            in_flight: None,
            next_release: t,
            // The one string hash of the tenant's lifetime; every
            // release reuses it (the jitter input is exactly this).
            name_hash: super::exec::fnv1a(self.fleet.interner.name(id)),
        });
    }

    /// Schedules a queue-expiry sweep one nanosecond past the waiter's
    /// deadline (`DispatchQueue::take_expired` expires strictly-overdue
    /// entries only).
    fn schedule_expiry(&mut self, enqueued_at: SimTime, patience: SimDuration) {
        let due = enqueued_at
            .saturating_add(patience)
            .saturating_add(SimDuration::from_nanos(1));
        self.events.push(due, NODE_FLEET, EventKind::QueueExpire);
    }

    fn on_arrival(&mut self, t: SimTime, tenant: crate::TenantSpec) {
        let patience = tenant.max_wait;
        // The shared kernel + accounting path (identical to the epoch
        // engine); only the event bookkeeping below is mode-specific.
        let (outcome, id) = self.fleet.dispatch_accounted(tenant, &mut self.builder);
        match outcome {
            DispatchOutcome::Placed(idx) => {
                let id = id.expect("invariant: placed arrivals are interned");
                self.start_run(id, idx, t);
            }
            DispatchOutcome::PlacedDegraded { node, .. } => {
                let id = id.expect("invariant: placed arrivals are interned");
                self.start_run(id, node, t);
            }
            DispatchOutcome::Queued => {
                if let Some(patience) = patience {
                    self.schedule_expiry(t, patience);
                }
                if self.fleet.cfg.queue.demand_aware_expiry {
                    // Hopelessness is load-independent, so one sweep at
                    // the enqueue instant decides the waiter's fate at
                    // the same decision point the epoch path uses (its
                    // next boundary sweep).
                    self.events.push(t, NODE_FLEET, EventKind::QueueExpire);
                }
            }
            DispatchOutcome::Infeasible | DispatchOutcome::Duplicate => {}
        }
    }

    fn on_departure(&mut self, t: SimTime, name: &str) {
        // Churn speaks names; the fleet boundary resolves to the interned
        // id once, here.
        let Some(id) = self.fleet.tenant_id(name) else {
            return;
        };
        let was_resident = self.fleet.resident_node_of(id).is_some();
        // Shared removal accounting (departure count + pre-run hygiene)
        // — identical to the epoch path by construction.
        if self
            .fleet
            .remove_accounted(id, &mut self.builder, &mut self.pre_run_queued)
        {
            // Future releases die with the run entry; a job already in
            // flight still completes (its event carries all it needs).
            if let Some(slot) = self.runs.get_mut(id.index()) {
                *slot = None;
            }
            if was_resident {
                self.drain_and_upgrade(t);
            }
        }
    }

    fn on_release(&mut self, t: SimTime, idx: usize, id: TenantId, gen: u64) {
        debug_assert!(t < self.end, "releases are never scheduled past the horizon");
        let (busy, job, inc, name_hash) = match self.run_of(id) {
            Some(run) if run.gen == gen => {
                (run.in_flight.is_some(), run.job_seq, run.inc, run.name_hash)
            }
            // Departed, or a stale schedule from before a migration (or
            // from a recycled id's previous occupant).
            _ => return,
        };
        // Copy the few price-dependent fields instead of cloning the
        // whole spec: this is the engine's hottest path. The id resolves
        // to the node slot by integer compare, no string hashing.
        let Some((model, stages, fps)) = self
            .fleet
            .node_slot(idx, id)
            .map(|pos| {
                let t = &self.fleet.nodes[idx].tenants[pos];
                (t.model, t.stages, t.fps)
            })
        else {
            return;
        };
        self.builder.record_released(idx);
        let period = SimDuration::from_secs_f64(1.0 / fps);
        let next = t + period;
        let end = self.end;
        if let Some(run) = self.run_mut(id) {
            run.next_release = if next < end { next } else { SimTime::MAX };
        }
        let migration_on = self.fleet.cfg.migration.enabled;
        if busy {
            // Skip-if-busy: the frame is dropped and counts as a miss —
            // in the migration estimator too, but only while the
            // estimator has a consumer (the windows grow unboundedly
            // otherwise; pruning happens inside `dmr`, which only the
            // migration trigger calls).
            self.builder.record_skipped(idx);
            if migration_on {
                let span = self.fleet.cfg.epoch;
                self.windows[idx].push(t, true, span);
            }
        } else {
            let service = self.exec.service_time(
                &self.fleet.nodes,
                &self.fleet.admission,
                &self.fleet.node_version,
                idx,
                model,
                stages,
                fps,
                name_hash,
                job,
            );
            let finish = t + service;
            // The fluid service time *is* the job's response time (the
            // job is admitted at release), so it feeds the latency
            // sketch the way the epoch fold feeds response samples.
            self.fleet.telemetry.record_latency(idx, service.as_nanos());
            self.in_flight += 1;
            self.events.push(
                finish,
                idx,
                EventKind::JobCompletion {
                    tenant: id,
                    job,
                    inc,
                    deadline: next,
                },
            );
            // Deadline checks only feed the migration estimator; with
            // migration off they would be popped and discarded, so the
            // hot path skips scheduling them entirely.
            if migration_on {
                self.events.push(
                    next,
                    idx,
                    EventKind::DeadlineCheck {
                        tenant: id,
                        job,
                        inc,
                    },
                );
            }
            if let Some(run) = self.run_mut(id) {
                run.in_flight = Some((job, finish));
                run.job_seq += 1;
            }
        }
        let migration_check = migration_on
            && !self.migration_pending[idx]
            && self.fleet.nodes[idx].tenants.len() >= 2;
        let over_threshold = migration_check && {
            let span = self.fleet.cfg.epoch;
            self.windows[idx].dmr(t, span) > self.fleet.cfg.migration.dmr_threshold
        };
        if over_threshold {
            self.migration_pending[idx] = true;
            self.events.push(t, idx, EventKind::Migrate);
        }
        if next < self.end {
            self.events
                .push(next, idx, EventKind::JobRelease { tenant: id, gen });
        }
    }

    fn on_completion(
        &mut self,
        t: SimTime,
        idx: usize,
        id: TenantId,
        job: u64,
        inc: u64,
        deadline: SimTime,
    ) {
        // The job genuinely ran and finishes on its node regardless of
        // what happened to the tenant since (departure, migration, id
        // recycling) — only the busy flag is incarnation-guarded.
        self.in_flight -= 1;
        self.builder.record_completed(idx, t > deadline);
        if let Some(run) = self.run_mut(id) {
            if run.inc == inc {
                // Skip-if-busy invariant: a live incarnation has exactly
                // one job in flight, so its completions arrive strictly
                // in admission order. A mismatch means a stale event
                // from a dead incarnation slipped past the guard and
                // double-admitted the tenant.
                debug_assert_eq!(
                    run.in_flight.map(|(j, _)| j),
                    Some(job),
                    "overlapping jobs for live tenant {id}"
                );
                run.in_flight = None;
            }
        }
    }

    fn on_deadline_check(&mut self, t: SimTime, idx: usize, id: TenantId, job: u64, inc: u64) {
        // Exactly one estimator sample per admitted job, taken at its
        // deadline with no look-ahead: missed iff it is still in flight.
        // A stale check (the tenant departed, or its id was recycled by
        // a fresh incarnation) feeds nothing — and with migration off
        // the estimator has no consumer, so nothing is retained at all.
        if !self.fleet.cfg.migration.enabled {
            return;
        }
        let Some(run) = self.run_of(id) else {
            return;
        };
        if run.inc != inc || run.node != idx {
            // Departed, recycled, or migrated away: a shed victim's last
            // in-flight job must not bill its miss to the source node's
            // freshly cleared post-shed estimate.
            return;
        }
        let span = self.fleet.cfg.epoch;
        let missed = run.in_flight.map(|(j, _)| j) == Some(job);
        self.windows[idx].push(t, missed, span);
    }

    fn on_migrate(&mut self, t: SimTime, idx: usize) {
        self.migration_pending[idx] = false;
        let threshold = self.fleet.cfg.migration.dmr_threshold;
        let cost = self.fleet.cfg.migration.cost;
        let span = self.fleet.cfg.epoch;
        if !self.fleet.cfg.migration.enabled || self.fleet.nodes[idx].tenants.len() < 2 {
            return;
        }
        // Re-verify on pop: the trigger and the move are distinct events,
        // and the world may have changed in between.
        if self.windows[idx].dmr(t, span) <= threshold {
            return;
        }
        // Same victim policy as the epoch path — the shared kernel's
        // selection, LIFO by default, demand-aware when configured.
        let Some(slot) = policy::select_migration_victim(
            &self.fleet.nodes[idx],
            &self.fleet.admission,
            self.fleet.cfg.migration.victim,
        ) else {
            return;
        };
        let (id, victim) = self.fleet.detach_resident(idx, slot);
        self.dmr_scratch.clear();
        for j in 0..self.fleet.nodes.len() {
            let dmr = self.windows[j].dmr(t, span);
            self.dmr_scratch.push(dmr);
        }
        // Same destination policy as the epoch path, fed the windowed
        // estimates instead of per-epoch DMRs.
        let dest = policy::migration_destination(
            &FleetState::new(&self.fleet.nodes, &self.fleet.admission),
            idx,
            &victim,
            &self.dmr_scratch,
            threshold,
        );
        match dest {
            Some(j) => {
                let traced = self.fleet.telemetry.enabled().then(|| victim.name.clone());
                self.fleet.attach_resident(j, id, victim);
                self.fleet.planner.invalidate_node(idx);
                self.fleet.planner.invalidate_node(j);
                self.fleet.capacity_released = true;
                self.builder.migrations += 1;
                // The explicit cost model: a migration is a state
                // transfer, stalling the migrant for the reconfiguration
                // window. Re-pricing partition switches never pay this.
                self.builder.record_migration_stall(cost);
                if let Some(name) = traced {
                    self.fleet
                        .telemetry
                        .record_migration(t, &name, idx, Some(j), cost);
                }
                let gen = self.next_gen;
                self.next_gen += 1;
                let resume = if let Some(run) = self.run_mut(id) {
                    run.node = j;
                    run.gen = gen;
                    // The state transfer cannot finish before the
                    // migrant's in-flight job drains on the source:
                    // resuming earlier would skip-drop frames on the
                    // destination and misattribute those misses to a
                    // healthy node's migration estimator. One extra
                    // nanosecond breaks the (time, node, seq) tie a
                    // lower-indexed destination would otherwise win
                    // against the source-node completion.
                    let drained = run.in_flight.map_or(SimTime::ZERO, |(_, finish)| {
                        finish.saturating_add(SimDuration::from_nanos(1))
                    });
                    let resume = run
                        .next_release
                        .max(t.saturating_add(cost))
                        .max(drained);
                    run.next_release = resume;
                    resume
                } else {
                    SimTime::MAX
                };
                if resume < self.end {
                    self.events
                        .push(resume, j, EventKind::JobRelease { tenant: id, gen });
                }
                self.windows[idx].clear();
                // The source node freed capacity: waiters may fit now.
                self.drain_and_upgrade(t);
            }
            None => {
                if self.fleet.telemetry.enabled() {
                    let name = victim.name.clone();
                    self.fleet
                        .telemetry
                        .record_migration(t, &name, idx, None, SimDuration::ZERO);
                }
                // Nobody can take it; restore its slot and wait for
                // fresh evidence before trying again (epoch-path pacing).
                self.fleet.restore_resident(idx, slot, id, victim);
                self.windows[idx].clear();
            }
        }
    }

    fn on_queue_expire(&mut self, t: SimTime) {
        if t > self.end {
            return;
        }
        // Patience expiry plus (when armed) the demand-aware
        // provably-hopeless sweep — the same shared accounting the epoch
        // path runs at its boundaries.
        self.fleet
            .expire_accounted(&mut self.builder, &mut self.pre_run_queued);
    }

    fn on_sample(&mut self, t: SimTime) {
        for idx in 0..self.fleet.nodes.len() {
            // Budget and demand are pure functions of node state; the
            // version check makes each sample O(changed nodes), which at
            // fleet scale (10k nodes, epoch sampling) dominates the
            // whole run if recomputed blindly.
            let version = self.fleet.node_version[idx];
            let (budget, demand) = match self.sample_cache[idx] {
                Some((v, cached)) if v == version => cached,
                _ => {
                    let budget = self.fleet.admission().budget(&self.fleet.nodes[idx], None);
                    let demand = self.fleet.nodes[idx].total_demand();
                    self.sample_cache[idx] = Some((version, (budget, demand)));
                    (budget, demand)
                }
            };
            let utilization = if budget > 0.0 { demand / budget } else { 0.0 };
            self.builder.record_utilization(idx, utilization);
            self.fleet.telemetry.record_utilization(t, utilization);
        }
        if t < self.end {
            let next = (t + self.fleet.cfg.epoch).min(self.end);
            self.events.push(next, NODE_FLEET, EventKind::Sample);
        }
    }

    /// Admits waiters freed capacity allows and upgrades degraded
    /// residents (the shared accounting in
    /// [`Fleet::drain_and_upgrade_accounted`] — identical to the epoch
    /// path by construction), then starts a release clock for every
    /// admitted waiter.
    fn drain_and_upgrade(&mut self, t: SimTime) {
        let admissions = self
            .fleet
            .drain_and_upgrade_accounted(&mut self.builder, &mut self.pre_run_queued);
        for adm in admissions {
            if let Some(idx) = self.fleet.resident_node_of(adm.id) {
                self.start_run(adm.id, idx, t);
            }
        }
    }
}
