//! Utilisation-bound admission control.
//!
//! The dispatcher must not place a tenant on a node that cannot carry it:
//! the paper's schedulers degrade gracefully under overload, but a
//! serving fleet should *reject or queue* work it cannot finish rather
//! than silently miss deadlines. Admission combines two gates:
//!
//! 1. **Fluid occupancy bound** (the argument behind
//!    [`sgprs_core::analysis::estimate_capacity`], generalised to mixed
//!    tenants): the summed steady-state demand `Σ fpsᵢ·T₁ᵢ` in
//!    SM-equivalents must stay below `bound × capacity`, where the
//!    capacity is sampled at the node's pool layout and the resident op
//!    mix.
//! 2. **Density bound** ([`sgprs_rt::analysis::density_feasible`]): the
//!    tenants' compiled real-time specs, profiled against this node's
//!    pool, must have total density within the node's fluid processor
//!    count — the classic necessary condition for EDF-like policies.

use crate::{FleetNode, TenantSpec};
use serde::{Deserialize, Serialize};
use sgprs_gpu_sim::SpeedupModel;
use sgprs_rt::{analysis, TaskSet};

/// Knobs of the admission controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Fraction of the fluid capacity tenants may occupy (< 1 keeps
    /// headroom for jitter and stage imbalance).
    pub utilization_bound: f64,
    /// Stages assumed resident per context when sampling capacity (the
    /// paper's stream layout sustains 3–4; 4.0 matches
    /// `sgprs_core::analysis`'s calibration).
    pub concurrency: f64,
    /// Enable the secondary density gate over compiled task specs. More
    /// precise on small pools, but requires compiling the candidate for
    /// the node, so the pure occupancy check can be preferred in hot
    /// paths.
    pub density_gate: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            utilization_bound: 0.9,
            concurrency: 4.0,
            density_gate: false,
        }
    }
}

/// Why a tenant was turned away.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Even alone on the node's largest context, one inference cannot
    /// finish within the tenant's deadline — no schedule can serve it.
    LatencyInfeasible {
        /// Best-case single-inference latency on this node.
        best_case: sgprs_rt::SimDuration,
        /// The tenant's relative deadline (its period).
        deadline: sgprs_rt::SimDuration,
    },
    /// The fluid occupancy bound would be exceeded.
    OverUtilization {
        /// Demand including the candidate, in SM-equivalents.
        demand: f64,
        /// Admissible demand (`bound × capacity`).
        budget: f64,
    },
    /// The compiled task set's density exceeds the node's fluid
    /// processor count.
    OverDensity {
        /// Total density of resident + candidate specs.
        density: f64,
        /// Fluid processors available at the reference WCET speed.
        processors: f64,
    },
}

/// Outcome of an admission test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// The node can carry the tenant.
    Admit {
        /// Demand including the candidate, in SM-equivalents.
        demand: f64,
        /// Admissible demand (`bound × capacity`).
        budget: f64,
    },
    /// The node cannot carry the tenant.
    Reject(RejectReason),
}

impl AdmissionDecision {
    /// `true` when the decision admits the tenant.
    #[must_use]
    pub fn is_admit(&self) -> bool {
        matches!(self, AdmissionDecision::Admit { .. })
    }

    /// Remaining admissible demand after this decision (zero when
    /// rejected).
    #[must_use]
    pub fn headroom(&self) -> f64 {
        match self {
            AdmissionDecision::Admit { demand, budget } => (budget - demand).max(0.0),
            AdmissionDecision::Reject(_) => 0.0,
        }
    }
}

/// The admission controller: pure functions of node state, shared by
/// every placement policy.
#[derive(Debug, Clone, Default)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
}

impl AdmissionController {
    /// A controller with the given configuration.
    #[must_use]
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionController { cfg }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// The admissible demand budget of `node` for its current mix plus
    /// `candidate`, in SM-equivalents.
    #[must_use]
    pub fn budget(&self, node: &FleetNode, candidate: Option<&TenantSpec>) -> f64 {
        let mix = node.mixed_profile(candidate);
        if mix.is_empty() {
            // An empty node admits against its physical size.
            return self.cfg.utilization_bound * f64::from(node.spec.gpu.total_sms);
        }
        // The cached-allocation fold: identical math to
        // `node.spec.capacity_sm_equivalents`, no pool materialisation
        // per admission probe.
        self.cfg.utilization_bound * node.capacity_sm_equivalents(&mix, self.cfg.concurrency)
    }

    /// Optimistic single-inference latency of `candidate` on `node`: the
    /// whole network at the node's largest context allocation, plus one
    /// launch overhead per stage. No schedule can beat this, so a tenant
    /// whose bound exceeds its deadline is hopeless on this node.
    #[must_use]
    pub fn best_case_latency(
        &self,
        node: &FleetNode,
        candidate: &TenantSpec,
    ) -> sgprs_rt::SimDuration {
        self.best_case_latency_at(
            node.max_context_sm(),
            node.spec.gpu.launch_overhead_ns,
            candidate,
        )
    }

    /// [`Self::best_case_latency`] evaluated at an explicit context size
    /// and launch overhead instead of a concrete node. Feeding it the
    /// *largest* context allocation and *smallest* launch overhead found
    /// across a group of nodes yields a sound lower bound over the whole
    /// group — the shard router's cheap feasibility pre-filter.
    #[must_use]
    pub fn best_case_latency_at(
        &self,
        context_sms: u32,
        launch_overhead_ns: u64,
        candidate: &TenantSpec,
    ) -> sgprs_rt::SimDuration {
        let speedup = SpeedupModel::calibrated_rtx_2080_ti();
        let compute_ns = candidate
            .model
            .work_profile()
            .duration_ns_at(&speedup, f64::from(context_sms));
        let overhead_ns = launch_overhead_ns * candidate.stages as u64;
        sgprs_rt::SimDuration::from_nanos(compute_ns as u64)
            + sgprs_rt::SimDuration::from_nanos(overhead_ns)
    }

    /// Tests whether `candidate` fits on `node` alongside its resident
    /// tenants.
    #[must_use]
    pub fn evaluate(&self, node: &FleetNode, candidate: &TenantSpec) -> AdmissionDecision {
        let best_case = self.best_case_latency(node, candidate);
        let deadline = candidate.period();
        if best_case > deadline {
            return AdmissionDecision::Reject(RejectReason::LatencyInfeasible {
                best_case,
                deadline,
            });
        }
        let demand = node.total_demand() + candidate.demand_sm_equivalents();
        let budget = self.budget(node, Some(candidate));
        if demand > budget {
            return AdmissionDecision::Reject(RejectReason::OverUtilization { demand, budget });
        }
        if self.cfg.density_gate {
            let pool = node.spec.pool();
            let set: TaskSet = node
                .tenants
                .iter()
                .chain(Some(candidate))
                .map(|t| t.compile_for(&pool).spec)
                .collect();
            let processors = self.fluid_processors(node, candidate);
            if !analysis::density_feasible(&set, processors) {
                return AdmissionDecision::Reject(RejectReason::OverDensity {
                    density: set.total_density(),
                    processors,
                });
            }
        }
        AdmissionDecision::Admit { demand, budget }
    }

    /// The node's capacity expressed in processors running at the WCET
    /// reference speed (one context at the pool's smallest allocation,
    /// executing the mixed profile alone).
    #[must_use]
    pub fn fluid_processors(&self, node: &FleetNode, candidate: &TenantSpec) -> f64 {
        let mix = node.mixed_profile(Some(candidate));
        let speedup = SpeedupModel::calibrated_rtx_2080_ti();
        let reference =
            mix.effective_speedup(&speedup, f64::from(node.spec.pool().min_sm_allocation()));
        if reference <= 0.0 {
            return 0.0;
        }
        self.cfg.utilization_bound
            * node.spec.capacity_sm_equivalents(&mix, self.cfg.concurrency)
            / reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelKind, NodeSpec};
    use sgprs_gpu_sim::GpuSpec;

    fn node() -> FleetNode {
        FleetNode::new(NodeSpec::sgprs("g", GpuSpec::rtx_2080_ti()))
    }

    fn resnet_tenant(i: usize) -> TenantSpec {
        TenantSpec::new(format!("cam-{i}"), ModelKind::ResNet18, 30.0)
    }

    #[test]
    fn empty_node_admits_a_tenant() {
        let ctl = AdmissionController::default();
        let d = ctl.evaluate(&node(), &resnet_tenant(0));
        assert!(d.is_admit(), "{d:?}");
        assert!(d.headroom() > 0.0);
    }

    /// The acceptance-criterion proof: a task set whose fluid demand
    /// exceeds the utilisation bound is rejected, exactly at the
    /// crossover predicted by the bound.
    #[test]
    fn rejects_task_sets_exceeding_the_utilization_bound() {
        let ctl = AdmissionController::default();
        let mut n = node();
        let mut admitted = 0usize;
        // Keep offering tenants until the controller says no.
        for i in 0..200 {
            let t = resnet_tenant(i);
            match ctl.evaluate(&n, &t) {
                AdmissionDecision::Admit { demand, budget } => {
                    assert!(demand <= budget, "admitted within budget");
                    n.tenants.push(t);
                    admitted += 1;
                }
                AdmissionDecision::Reject(RejectReason::OverUtilization { demand, budget }) => {
                    assert!(demand > budget, "rejected because over budget");
                    // The crossover must match the closed-form bound.
                    let per_tenant = resnet_tenant(0).demand_sm_equivalents();
                    let expected = (budget / per_tenant).floor() as usize;
                    assert_eq!(admitted, expected, "pivot at the fluid bound");
                    return;
                }
                AdmissionDecision::Reject(r) => panic!("unexpected rejection {r:?}"),
            }
        }
        panic!("the controller admitted 200 ResNet18@30fps tenants on one GPU");
    }

    #[test]
    fn admitted_count_tracks_the_paper_pivot_ballpark() {
        // Scenario-2 measured pivot is ~24 tasks; the bound at 0.9 must
        // land in the same region, not at 5 and not at 100.
        let ctl = AdmissionController::default();
        let mut n = node();
        while ctl.evaluate(&n, &resnet_tenant(n.tenants.len())).is_admit() {
            let i = n.tenants.len();
            n.tenants.push(resnet_tenant(i));
        }
        assert!(
            (15..=30).contains(&n.tenants.len()),
            "admitted {} tenants",
            n.tenants.len()
        );
    }

    #[test]
    fn smaller_devices_admit_fewer_tenants() {
        let ctl = AdmissionController::default();
        let count_for = |sms: u32| {
            let mut n = FleetNode::new(NodeSpec::sgprs("g", GpuSpec::synthetic(sms)));
            while ctl.evaluate(&n, &resnet_tenant(n.tenants.len())).is_admit() {
                let i = n.tenants.len();
                n.tenants.push(resnet_tenant(i));
            }
            n.tenants.len()
        };
        assert!(count_for(23) < count_for(68));
    }

    #[test]
    fn latency_infeasible_tenants_are_rejected_outright() {
        // VGG-16 at 30 fps cannot finish one inference inside 33 ms even
        // on the full device — utilisation looks fine, latency does not.
        let ctl = AdmissionController::default();
        let hopeless = TenantSpec::new("vgg-fast", ModelKind::Vgg16, 30.0);
        let d = ctl.evaluate(&node(), &hopeless);
        assert!(
            matches!(
                d,
                AdmissionDecision::Reject(RejectReason::LatencyInfeasible { .. })
            ),
            "{d:?}"
        );
        // The same model at a relaxed rate is admissible.
        let relaxed = TenantSpec::new("vgg-slow", ModelKind::Vgg16, 15.0);
        assert!(ctl.evaluate(&node(), &relaxed).is_admit());
    }

    #[test]
    fn heterogeneous_nodes_disagree_on_latency_feasibility() {
        // ResNet-34 at 60 fps fits a big device but not a tiny one.
        let ctl = AdmissionController::default();
        let tenant = TenantSpec::new("r34", ModelKind::ResNet34, 60.0);
        let big = FleetNode::new(NodeSpec::sgprs("big", GpuSpec::rtx_2080_ti()));
        let tiny = FleetNode::new(NodeSpec::sgprs("tiny", GpuSpec::synthetic(12)));
        assert!(ctl.evaluate(&big, &tenant).is_admit());
        assert!(
            matches!(
                ctl.evaluate(&tiny, &tenant),
                AdmissionDecision::Reject(RejectReason::LatencyInfeasible { .. })
            ),
            "a 12-SM device cannot make 16.7 ms deadlines for resnet34"
        );
    }

    #[test]
    fn density_gate_also_rejects_overload() {
        let cfg = AdmissionConfig {
            density_gate: true,
            ..AdmissionConfig::default()
        };
        let ctl = AdmissionController::new(cfg);
        let mut n = node();
        let mut rejected = false;
        for i in 0..100 {
            let t = resnet_tenant(i);
            if ctl.evaluate(&n, &t).is_admit() {
                n.tenants.push(t);
            } else {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "the gated controller must saturate");
        assert!(n.tenants.len() >= 10, "but not spuriously early");
    }
}
