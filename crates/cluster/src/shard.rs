//! Two-level sharded dispatch: shards of nodes behind a summary router.
//!
//! A flat [`crate::Fleet`] pays O(nodes) admission evaluations per
//! arrival (~40 µs at 64 nodes), which caps how fast the front door can
//! go exactly where the fleet gets interesting. Sharding splits the
//! nodes into contiguous groups and keeps one cached [`ShardSummary`]
//! per group:
//!
//! * **spare budget** — the summed admission headroom (budget − demand,
//!   clamped at zero) of the shard's nodes, decremented incrementally on
//!   placement and recomputed lazily after removals and migrations;
//! * **latency lower bound inputs** — the largest context allocation and
//!   smallest launch overhead in the shard, from which the router
//!   derives a best-case latency no node in the shard can beat.
//!
//! How an arrival picks a shard is the [`ShardRouter`] strategy:
//!
//! * [`ShardRouter::Scan`] (the default) orders *every* shard —
//!   provably latency-infeasible shards are skipped outright; shards
//!   whose spare budget covers the tenant's demand come first,
//!   most-spare first — then the regular [`crate::PlacementPolicy`]
//!   runs inside the chosen shard only: O(shards + nodes/shard) per
//!   arrival.
//! * [`ShardRouter::P2c`] probes **two** deterministically chosen
//!   shards (a seeded hash of the tenant name and a routing serial) and
//!   tries the one with more spare budget first — O(1) in the shard
//!   count, the difference between 64 shards and 128 shards vanishing
//!   from the arrival hot path. Only when both probes refuse does the
//!   planner fall back to an exhaustive sweep, so two-choice routing
//!   can narrow *where* placement looks but never *whether* a feasible
//!   node is found.
//!
//! The summaries are heuristics, not admission decisions: real admission
//! always re-runs inside the shard, and when it disagrees the router
//! simply falls through to the next candidate, degrading to the flat
//! scan in the worst case rather than rejecting wrongly.

use crate::{AdmissionController, ArrivalStream, DispatchOutcome, Fleet, FleetConfig,
    FleetMetrics, FleetNode, TenantSpec};
use serde::{Deserialize, Serialize};
use sgprs_rt::SimDuration;
use std::ops::Range;

/// The first-level routing strategy of a sharded fleet: how an arrival
/// picks which shard to try (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardRouter {
    /// Order every shard by cached spare budget, feasibility-filtered —
    /// O(shards) per arrival, the classic behaviour and the default.
    #[default]
    Scan,
    /// Power-of-two-choices: probe two deterministically chosen shards
    /// and take the better, falling back to an exhaustive sweep only
    /// when both refuse — O(1) per arrival in the shard count.
    P2c,
}

impl core::fmt::Display for ShardRouter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShardRouter::Scan => f.write_str("scan"),
            ShardRouter::P2c => f.write_str("p2c"),
        }
    }
}

/// Sharding knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Nodes per shard (the last shard may be smaller).
    pub shard_size: usize,
    /// First-level routing strategy ([`ShardRouter::Scan`] by default).
    pub router: ShardRouter,
}

impl ShardConfig {
    /// Shards of `shard_size` nodes routed by the ordered scan.
    ///
    /// # Panics
    ///
    /// Panics if `shard_size` is zero.
    #[must_use]
    pub fn new(shard_size: usize) -> Self {
        assert!(shard_size > 0, "a shard needs at least one node");
        ShardConfig {
            shard_size,
            router: ShardRouter::Scan,
        }
    }

    /// Replaces the routing strategy.
    #[must_use]
    pub fn with_router(mut self, router: ShardRouter) -> Self {
        self.router = router;
        self
    }
}

/// Cached capacity summary of one shard.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardSummary {
    /// Σ over the shard's nodes of `max(budget − demand, 0)`.
    spare_budget: f64,
    /// Largest single-context SM allocation of any node in the shard.
    max_context_sm: u32,
    /// Smallest per-stage launch overhead of any node in the shard.
    min_launch_overhead_ns: u64,
}

/// The first routing level: contiguous shards of node indices with
/// lazily maintained [`ShardSummary`]s, consulted through the
/// configured [`ShardRouter`] strategy.
#[derive(Debug)]
pub(crate) struct ShardDirectory {
    shard_size: usize,
    n_nodes: usize,
    router: ShardRouter,
    summaries: Vec<Option<ShardSummary>>,
    /// Serial mixed into the P2c probe hash so repeated routing attempts
    /// for the same tenant spread over different shard pairs
    /// (deterministic: it advances once per routing decision).
    probe_serial: u64,
}

impl ShardDirectory {
    /// A directory over `n_nodes` nodes in shards of `cfg.shard_size`.
    pub(crate) fn new(n_nodes: usize, cfg: &ShardConfig) -> Self {
        let shards = n_nodes.div_ceil(cfg.shard_size).max(1);
        ShardDirectory {
            shard_size: cfg.shard_size,
            n_nodes,
            router: cfg.router,
            summaries: vec![None; shards],
            probe_serial: 0,
        }
    }

    /// Number of shards.
    pub(crate) fn shard_count(&self) -> usize {
        self.summaries.len()
    }

    /// Whether [`ShardDirectory::route`] already covered every feasible
    /// shard (the ordered scan does; P2c returns two probes and relies
    /// on the caller's fallback sweep).
    pub(crate) fn is_exhaustive(&self) -> bool {
        matches!(self.router, ShardRouter::Scan)
    }

    /// The node-index range shard `shard` covers.
    pub(crate) fn range(&self, shard: usize) -> Range<usize> {
        let start = shard * self.shard_size;
        start..((start + self.shard_size).min(self.n_nodes))
    }

    /// The shard holding node `node_idx`.
    pub(crate) fn shard_of(&self, node_idx: usize) -> usize {
        node_idx / self.shard_size
    }

    /// Drops the cached summary of the shard holding `node_idx`; it is
    /// recomputed on the next routing decision.
    pub(crate) fn invalidate_node(&mut self, node_idx: usize) {
        let shard = self.shard_of(node_idx);
        self.summaries[shard] = None;
    }

    /// Accounts a committed placement on `node_idx` incrementally: the
    /// shard's spare budget shrinks by the tenant's demand. (The true
    /// budget also shifts with the resident mix; the summary is a
    /// routing heuristic, so the cheap update is preferred over a
    /// recompute.)
    pub(crate) fn note_place(&mut self, node_idx: usize, demand: f64) {
        let shard = self.shard_of(node_idx);
        if let Some(summary) = self.summaries[shard].as_mut() {
            summary.spare_budget = (summary.spare_budget - demand).max(0.0);
        }
    }

    /// The summary of `shard`, recomputing it from the nodes when the
    /// cache was invalidated.
    fn summary(
        &mut self,
        shard: usize,
        nodes: &[FleetNode],
        admission: &AdmissionController,
    ) -> ShardSummary {
        if self.summaries[shard].is_none() {
            let mut spare_budget = 0.0;
            let mut max_context_sm = 0u32;
            let mut min_launch_overhead_ns = u64::MAX;
            for node in &nodes[self.range(shard)] {
                spare_budget +=
                    (admission.budget(node, None) - node.total_demand()).max(0.0);
                max_context_sm = max_context_sm.max(node.max_context_sm());
                min_launch_overhead_ns =
                    min_launch_overhead_ns.min(node.spec.gpu.launch_overhead_ns);
            }
            self.summaries[shard] = Some(ShardSummary {
                spare_budget,
                max_context_sm,
                min_launch_overhead_ns: if min_launch_overhead_ns == u64::MAX {
                    0
                } else {
                    min_launch_overhead_ns
                },
            });
        }
        self.summaries[shard].expect("invariant: summary just refreshed above")
    }

    /// Whether the shard's best-case latency lower bound already rules
    /// `tenant` out (no node inside can ever admit it).
    pub(crate) fn latency_infeasible(
        &mut self,
        shard: usize,
        nodes: &[FleetNode],
        admission: &AdmissionController,
        tenant: &TenantSpec,
    ) -> bool {
        let summary = self.summary(shard, nodes, admission);
        let bound = admission.best_case_latency_at(
            summary.max_context_sm,
            summary.min_launch_overhead_ns,
            tenant,
        );
        bound > tenant.period()
    }

    /// The shards to try for `tenant`, in order, under the configured
    /// strategy. [`ShardRouter::Scan`] returns every feasible shard
    /// (demand-covering shards first, most spare budget first, shard
    /// index as the deterministic tie-break); [`ShardRouter::P2c`]
    /// returns at most two probes — the caller sweeps the rest only if
    /// both refuse (see [`ShardDirectory::is_exhaustive`]).
    pub(crate) fn route(
        &mut self,
        nodes: &[FleetNode],
        admission: &AdmissionController,
        tenant: &TenantSpec,
    ) -> Vec<usize> {
        match self.router {
            ShardRouter::Scan => self.route_scan(nodes, admission, tenant),
            ShardRouter::P2c => self.route_p2c(nodes, admission, tenant),
        }
    }

    /// The ordered exhaustive scan (see [`ShardDirectory::route`]).
    fn route_scan(
        &mut self,
        nodes: &[FleetNode],
        admission: &AdmissionController,
        tenant: &TenantSpec,
    ) -> Vec<usize> {
        let demand = tenant.demand_sm_equivalents();
        let period = tenant.period();
        let mut order: Vec<(usize, f64, bool)> = Vec::with_capacity(self.shard_count());
        for shard in 0..self.shard_count() {
            let summary = self.summary(shard, nodes, admission);
            let bound = admission.best_case_latency_at(
                summary.max_context_sm,
                summary.min_launch_overhead_ns,
                tenant,
            );
            if bound > period {
                continue;
            }
            order.push((shard, summary.spare_budget, summary.spare_budget >= demand));
        }
        order.sort_by(|a, b| {
            b.2.cmp(&a.2)
                .then(b.1.total_cmp(&a.1))
                .then(a.0.cmp(&b.0))
        });
        order.into_iter().map(|(shard, _, _)| shard).collect()
    }

    /// The power-of-two-choices probe (see [`ShardDirectory::route`]):
    /// two distinct shards drawn from a deterministic hash of the tenant
    /// name and the routing serial, feasibility-filtered and ordered
    /// better-probe-first by the same covering-then-spare criterion the
    /// scan uses. Touches exactly two summaries, so the routing cost is
    /// independent of how many shards the fleet has.
    fn route_p2c(
        &mut self,
        nodes: &[FleetNode],
        admission: &AdmissionController,
        tenant: &TenantSpec,
    ) -> Vec<usize> {
        let n = self.shard_count();
        if n == 1 {
            return vec![0];
        }
        let h = splitmix64(fnv1a(&tenant.name) ^ self.probe_serial.wrapping_mul(0x9E37_79B9));
        self.probe_serial = self.probe_serial.wrapping_add(1);
        let a = (h % n as u64) as usize;
        let b = {
            let b = ((h >> 32) % (n as u64 - 1)) as usize;
            if b >= a { b + 1 } else { b }
        };
        let demand = tenant.demand_sm_equivalents();
        let period = tenant.period();
        let mut probes: Vec<(usize, f64, bool)> = Vec::with_capacity(2);
        for shard in [a, b] {
            let summary = self.summary(shard, nodes, admission);
            let bound = admission.best_case_latency_at(
                summary.max_context_sm,
                summary.min_launch_overhead_ns,
                tenant,
            );
            if bound > period {
                continue;
            }
            probes.push((shard, summary.spare_budget, summary.spare_budget >= demand));
        }
        probes.sort_by(|x, y| {
            y.2.cmp(&x.2)
                .then(y.1.total_cmp(&x.1))
                .then(x.0.cmp(&y.0))
        });
        probes.into_iter().map(|(shard, _, _)| shard).collect()
    }
}

/// FNV-1a over the tenant name: a stable, dependency-free string hash
/// (the std hasher is seeded per process and would break determinism).
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The splitmix64 finalizer: spreads the probe hash over both halves so
/// the two shard draws are decorrelated.
fn splitmix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A [`Fleet`] dispatching through the two-level shard router: the
/// ergonomic front door for 64-node-and-up fleets.
///
/// Construction is the only difference from a flat fleet —
/// `ShardedFleet::new(cfg, 8)` is exactly
/// `Fleet::new(cfg.with_sharding(8))` — so every behavioural guarantee
/// (admission, queueing, epoch determinism, metrics) carries over; only
/// *which* admissible node an arrival lands on may differ from the flat
/// scan, because placement policies run within the routed shard.
#[derive(Debug)]
pub struct ShardedFleet {
    inner: Fleet,
}

impl ShardedFleet {
    /// A sharded fleet over `cfg` with shards of `shard_size` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `shard_size` is zero or `cfg.nodes` is empty.
    #[must_use]
    pub fn new(cfg: FleetConfig, shard_size: usize) -> Self {
        ShardedFleet {
            inner: Fleet::new(cfg.with_sharding(shard_size)),
        }
    }

    /// A sharded fleet routed by power-of-two-choices
    /// ([`ShardRouter::P2c`]): arrival routing cost independent of the
    /// shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shard_size` is zero or `cfg.nodes` is empty.
    #[must_use]
    pub fn p2c(cfg: FleetConfig, shard_size: usize) -> Self {
        ShardedFleet {
            inner: Fleet::new(cfg.with_p2c_sharding(shard_size)),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner
            .router()
            .map_or(1, ShardDirectory::shard_count)
    }

    /// The node-index ranges of every shard, in order.
    #[must_use]
    pub fn shard_ranges(&self) -> Vec<Range<usize>> {
        let router = self
            .inner
            .router()
            .expect("invariant: ShardedFleet always configures a router");
        (0..router.shard_count()).map(|s| router.range(s)).collect()
    }

    /// See [`Fleet::dispatch`].
    pub fn dispatch(&mut self, tenant: TenantSpec) -> DispatchOutcome {
        self.inner.dispatch(tenant)
    }

    /// See [`Fleet::plan`].
    #[must_use]
    pub fn plan(&mut self, tenant: &TenantSpec) -> Option<usize> {
        self.inner.plan(tenant)
    }

    /// See [`Fleet::remove`].
    pub fn remove(&mut self, name: &str) -> bool {
        self.inner.remove(name)
    }

    /// See [`Fleet::drain_queue`].
    pub fn drain_queue(&mut self) -> u64 {
        self.inner.drain_queue()
    }

    /// See [`Fleet::run`]. Accepts a [`crate::ChurnTrace`] or a lazy
    /// [`ArrivalStream`], like the flat fleet.
    ///
    /// # Panics
    ///
    /// Panics if the configured epoch is zero.
    #[must_use]
    pub fn run(
        &mut self,
        arrivals: impl Into<ArrivalStream>,
        horizon: SimDuration,
    ) -> FleetMetrics {
        self.inner.run(arrivals, horizon)
    }

    /// See [`Fleet::nodes`].
    #[must_use]
    pub fn nodes(&self) -> &[FleetNode] {
        self.inner.nodes()
    }

    /// See [`Fleet::queued`].
    #[must_use]
    pub fn queued(&self) -> usize {
        self.inner.queued()
    }

    /// See [`Fleet::queued_names`].
    #[must_use]
    pub fn queued_names(&self) -> Vec<String> {
        self.inner.queued_names()
    }

    /// See [`Fleet::degraded_residents`]. Degrades and upgrades adjust a
    /// resident's demand in place, so the router's shard summaries are
    /// invalidated when a price changes — routing stays aware of the
    /// degraded demand.
    #[must_use]
    pub fn degraded_residents(&self) -> usize {
        self.inner.degraded_residents()
    }

    /// The underlying flat fleet (sharding only changes routing).
    #[must_use]
    pub fn fleet(&self) -> &Fleet {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelKind, NodeSpec, PlacementPolicy};
    use sgprs_gpu_sim::GpuSpec;

    fn nodes(n: usize) -> Vec<NodeSpec> {
        (0..n)
            .map(|i| NodeSpec::sgprs(format!("gpu{i}"), GpuSpec::rtx_2080_ti()))
            .collect()
    }

    fn tenant(i: usize) -> TenantSpec {
        TenantSpec::new(format!("cam-{i}"), ModelKind::ResNet18, 30.0)
    }

    #[test]
    fn shards_partition_the_nodes() {
        let fleet = ShardedFleet::new(FleetConfig::new(nodes(10)), 4);
        assert_eq!(fleet.shard_count(), 3);
        assert_eq!(fleet.shard_ranges(), vec![0..4, 4..8, 8..10]);
        let covered: usize = fleet.shard_ranges().iter().map(|r| r.len()).sum();
        assert_eq!(covered, 10);
    }

    #[test]
    fn sharded_dispatch_places_and_saturates_like_flat() {
        let mut flat = Fleet::new(FleetConfig::new(nodes(8)));
        let mut sharded = ShardedFleet::new(FleetConfig::new(nodes(8)), 4);
        let mut flat_placed = 0;
        let mut sharded_placed = 0;
        for i in 0..300 {
            if matches!(flat.dispatch(tenant(i)), DispatchOutcome::Placed(_)) {
                flat_placed += 1;
            }
            if matches!(sharded.dispatch(tenant(i)), DispatchOutcome::Placed(_)) {
                sharded_placed += 1;
            }
        }
        // Identical per-tenant admission maths on both sides: the same
        // total population fits, whatever route it took.
        assert_eq!(flat_placed, sharded_placed, "same capacity either way");
        assert!(sharded.queued() > 0, "and then saturation queues");
    }

    #[test]
    fn p2c_dispatch_saturates_at_the_same_population_as_flat() {
        let mut flat = Fleet::new(FleetConfig::new(nodes(8)));
        let mut p2c = ShardedFleet::p2c(FleetConfig::new(nodes(8)), 2);
        let mut flat_placed = 0;
        let mut p2c_placed = 0;
        for i in 0..300 {
            if matches!(flat.dispatch(tenant(i)), DispatchOutcome::Placed(_)) {
                flat_placed += 1;
            }
            if matches!(p2c.dispatch(tenant(i)), DispatchOutcome::Placed(_)) {
                p2c_placed += 1;
            }
        }
        // The fallback sweep guarantees p2c never strands capacity the
        // flat scan would use.
        assert_eq!(flat_placed, p2c_placed, "same capacity either way");
        assert!(p2c.queued() > 0);
    }

    #[test]
    fn p2c_spreads_load_across_every_shard() {
        let mut fleet = ShardedFleet::p2c(FleetConfig::new(nodes(8)), 2);
        for i in 0..32 {
            assert!(matches!(
                fleet.dispatch(tenant(i)),
                DispatchOutcome::Placed(_)
            ));
        }
        for range in fleet.shard_ranges() {
            let resident: usize = fleet.nodes()[range.clone()]
                .iter()
                .map(|n| n.tenants.len())
                .sum();
            assert!(resident > 0, "shard {range:?} left idle");
        }
    }

    #[test]
    fn p2c_routing_is_deterministic() {
        let run_once = || {
            let mut fleet = ShardedFleet::p2c(FleetConfig::new(nodes(12)), 3);
            (0..24)
                .map(|i| match fleet.dispatch(tenant(i)) {
                    DispatchOutcome::Placed(idx) => idx,
                    other => panic!("unexpected {other:?}"),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run_once(), run_once(), "same seq of routing decisions");
    }

    #[test]
    fn routing_spreads_load_across_shards() {
        let mut fleet = ShardedFleet::new(
            FleetConfig::new(nodes(8)).with_placement(PlacementPolicy::LeastUtilization),
            2,
        );
        for i in 0..16 {
            assert!(matches!(
                fleet.dispatch(tenant(i)),
                DispatchOutcome::Placed(_)
            ));
        }
        // Spare-budget routing must not dogpile one shard: every shard
        // carries something.
        for range in fleet.shard_ranges() {
            let resident: usize = fleet.nodes()[range.clone()]
                .iter()
                .map(|n| n.tenants.len())
                .sum();
            assert!(resident > 0, "shard {range:?} left idle");
        }
    }

    #[test]
    fn latency_infeasible_shards_are_skipped() {
        // Shard 0 holds tiny devices that can never meet a ResNet34@60fps
        // deadline; shard 1 holds full devices that can. The router must
        // land the tenant in shard 1 without ever scanning shard 0's
        // nodes through the placement policy.
        let mut specs = vec![
            NodeSpec::sgprs("tiny0", GpuSpec::synthetic(12)),
            NodeSpec::sgprs("tiny1", GpuSpec::synthetic(12)),
        ];
        specs.extend(nodes(2));
        let mut fleet = ShardedFleet::new(FleetConfig::new(specs), 2);
        let heavy = TenantSpec::new("r34", ModelKind::ResNet34, 60.0);
        match fleet.dispatch(heavy) {
            DispatchOutcome::Placed(idx) => assert!(idx >= 2, "placed on a full device"),
            other => panic!("expected placement, got {other:?}"),
        }
    }

    #[test]
    fn p2c_fallback_finds_the_only_feasible_shard() {
        // Three of four shards hold tiny devices a ResNet34@60fps tenant
        // can never run on; whatever pair p2c probes, the fallback sweep
        // must land it in the single feasible shard.
        let mut specs: Vec<NodeSpec> = (0..6)
            .map(|i| NodeSpec::sgprs(format!("tiny{i}"), GpuSpec::synthetic(12)))
            .collect();
        specs.extend(nodes(2));
        let mut fleet = ShardedFleet::p2c(FleetConfig::new(specs), 2);
        for k in 0..8 {
            let heavy = TenantSpec::new(format!("r34-{k}"), ModelKind::ResNet34, 60.0);
            match fleet.dispatch(heavy) {
                DispatchOutcome::Placed(idx) => assert!(idx >= 6, "full device only"),
                DispatchOutcome::Queued => {} // the feasible shard saturated
                other => panic!("expected placement or queue, got {other:?}"),
            }
        }
    }

    #[test]
    fn summaries_survive_remove_and_requeue_cycles() {
        let mut fleet = ShardedFleet::new(FleetConfig::new(nodes(4)), 2);
        let mut names = Vec::new();
        let mut i = 0;
        loop {
            let t = tenant(i);
            let name = t.name.clone();
            match fleet.dispatch(t) {
                DispatchOutcome::Placed(_) => names.push(name),
                DispatchOutcome::Queued => break,
                other => panic!("unexpected {other:?}"),
            }
            i += 1;
        }
        assert_eq!(fleet.queued(), 1);
        // A departure invalidates the shard summary; the queued tenant
        // must still find the freed room.
        assert!(fleet.remove(&names[0]));
        assert_eq!(fleet.drain_queue(), 1);
        assert_eq!(fleet.queued(), 0);
    }

    #[test]
    fn sharded_run_is_deterministic() {
        let run_once = || {
            let cfg = FleetConfig::new(nodes(6)).with_seed(11);
            let mut fleet = ShardedFleet::new(cfg, 2);
            let trace = crate::ChurnTrace::generate(
                &crate::ChurnConfig::default(),
                SimDuration::from_secs(3),
                5,
            );
            fleet.run(trace, SimDuration::from_secs(3))
        };
        assert_eq!(run_once(), run_once());
    }
}
