//! Tenants: node-independent descriptions of periodic inference services.
//!
//! A fleet cannot store [`sgprs_core::CompiledTask`]s directly: WCETs are
//! profiled against a *specific* context pool, and a heterogeneous fleet
//! has a different pool per node (and migration moves tenants between
//! them). A [`TenantSpec`] is therefore the portable unit of work — model,
//! frame rate, stage count — compiled on demand for whichever node it
//! lands on.

use serde::{Deserialize, Serialize};
use sgprs_core::{offline, CompiledTask, ContextPoolSpec};
use sgprs_dnn::{models, CostModel, Network};
use sgprs_rt::SimDuration;

/// The reference architectures a tenant can serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// ResNet-18 (the paper's evaluation network).
    ResNet18,
    /// ResNet-34 (≈2× the ResNet-18 work).
    ResNet34,
    /// VGG-16 (the heavyweight of the zoo).
    Vgg16,
    /// AlexNet (light, dominated by its linear head).
    AlexNet,
    /// MobileNet (depthwise-separable; the lightest).
    MobileNet,
}

impl ModelKind {
    /// Builds the network at batch 1 and the paper's 224×224 input.
    #[must_use]
    pub fn network(self) -> Network {
        match self {
            ModelKind::ResNet18 => models::resnet18(1, 224),
            ModelKind::ResNet34 => models::resnet34(1, 224),
            ModelKind::Vgg16 => models::vgg16(1, 224),
            ModelKind::AlexNet => models::alexnet(1, 224),
            ModelKind::MobileNet => models::mobilenet(1, 224),
        }
    }

    /// Every model kind, in a stable order.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::ResNet18,
        ModelKind::ResNet34,
        ModelKind::Vgg16,
        ModelKind::AlexNet,
        ModelKind::MobileNet,
    ];

    /// The whole-network work profile under the calibrated cost model,
    /// computed once per process.
    ///
    /// Admission decisions consult the profile on every placement
    /// attempt; rebuilding the layer graph each time would dominate the
    /// dispatch hot path, so the five reference profiles are cached.
    #[must_use]
    pub fn work_profile(self) -> &'static sgprs_gpu_sim::WorkProfile {
        use std::sync::OnceLock;
        static PROFILES: OnceLock<Vec<sgprs_gpu_sim::WorkProfile>> = OnceLock::new();
        let profiles = PROFILES.get_or_init(|| {
            let cost = CostModel::calibrated();
            ModelKind::ALL
                .iter()
                .map(|m| m.network().work_profile(&cost))
                .collect()
        });
        let idx = ModelKind::ALL
            .iter()
            .position(|&m| m == self)
            .expect("ALL covers every variant");
        &profiles[idx]
    }

    /// Stable short name for reports and task labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::ResNet18 => "resnet18",
            ModelKind::ResNet34 => "resnet34",
            ModelKind::Vgg16 => "vgg16",
            ModelKind::AlexNet => "alexnet",
            ModelKind::MobileNet => "mobilenet",
        }
    }
}

impl core::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A periodic inference service as the dispatcher sees it: which model,
/// how often, and how finely staged — independent of any GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Unique tenant name.
    ///
    /// **Uniqueness contract:** the dispatcher keys removal, migration,
    /// and release phases on this name, so at most one *active* tenant
    /// (resident on a node or waiting in the dispatch queue) may carry
    /// it at a time. [`crate::Fleet::dispatch`] enforces this by
    /// rejecting a same-named arrival with
    /// [`crate::DispatchOutcome::Duplicate`] — without the check, a
    /// later `remove` would delete whichever instance it found first
    /// and leave a resident ghost simulated forever. A name becomes
    /// free again once the tenant departs.
    pub name: String,
    /// Served architecture.
    pub model: ModelKind,
    /// Frame rate in releases per second.
    pub fps: f64,
    /// Stage count for the offline split (6 in the paper).
    pub stages: usize,
}

impl TenantSpec {
    /// Creates a tenant serving `model` at `fps` frames per second with
    /// the paper's six-stage split.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not a positive finite number.
    #[must_use]
    pub fn new(name: impl Into<String>, model: ModelKind, fps: f64) -> Self {
        assert!(fps.is_finite() && fps > 0.0, "fps must be positive, got {fps}");
        TenantSpec {
            name: name.into(),
            model,
            fps,
            stages: 6,
        }
    }

    /// Overrides the stage count.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero.
    #[must_use]
    pub fn with_stages(mut self, stages: usize) -> Self {
        assert!(stages > 0, "a tenant needs at least one stage");
        self.stages = stages;
        self
    }

    /// The release period implied by the frame rate.
    #[must_use]
    pub fn period(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.fps)
    }

    /// Single-SM work per inference in seconds (`T₁` of the fluid model):
    /// the currency the admission controller budgets in.
    #[must_use]
    pub fn work_single_sm_secs(&self) -> f64 {
        self.model.work_profile().total_single_sm_ns() / 1e9
    }

    /// Steady-state demand in SM-equivalents: `fps × T₁` — the number of
    /// fully-utilised SMs this tenant consumes on an ideal fluid device.
    #[must_use]
    pub fn demand_sm_equivalents(&self) -> f64 {
        self.fps * self.work_single_sm_secs()
    }

    /// Compiles the tenant for a concrete context pool (the offline
    /// phase, run against the node the dispatcher chose).
    ///
    /// # Panics
    ///
    /// Panics if the model cannot be split into `self.stages` stages
    /// (every reference network splits into at least nine).
    #[must_use]
    pub fn compile_for(&self, pool: &ContextPoolSpec) -> CompiledTask {
        offline::compile_network_task(
            &self.name,
            &self.model.network(),
            &CostModel::calibrated(),
            self.stages,
            self.period(),
            pool,
        )
        .expect("reference networks split into small stage counts")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_scales_with_rate_and_model_weight() {
        let light = TenantSpec::new("a", ModelKind::MobileNet, 30.0);
        let heavy = TenantSpec::new("b", ModelKind::Vgg16, 30.0);
        assert!(heavy.demand_sm_equivalents() > light.demand_sm_equivalents());
        let faster = TenantSpec::new("c", ModelKind::MobileNet, 60.0);
        let ratio = faster.demand_sm_equivalents() / light.demand_sm_equivalents();
        assert!((ratio - 2.0).abs() < 1e-9, "demand is linear in fps: {ratio}");
    }

    #[test]
    fn compile_for_profiles_against_the_pool() {
        let tenant = TenantSpec::new("cam0", ModelKind::ResNet18, 30.0);
        let small = tenant.compile_for(&ContextPoolSpec::new(3, 1.0));
        let large = tenant.compile_for(&ContextPoolSpec::new(2, 2.0));
        assert_eq!(small.stage_count(), 6);
        // Smaller contexts ⇒ pessimistic (longer) profiled WCETs.
        assert!(small.spec.wcet > large.spec.wcet);
        assert_eq!(small.spec.period, tenant.period());
    }

    #[test]
    fn every_model_kind_compiles() {
        let pool = ContextPoolSpec::new(2, 1.5);
        for model in [
            ModelKind::ResNet18,
            ModelKind::ResNet34,
            ModelKind::Vgg16,
            ModelKind::AlexNet,
            ModelKind::MobileNet,
        ] {
            let t = TenantSpec::new(format!("t-{model}"), model, 15.0).with_stages(4);
            let c = t.compile_for(&pool);
            assert!(c.is_consistent(), "{model}");
            assert_eq!(c.stage_count(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "fps must be positive")]
    fn zero_fps_panics() {
        let _ = TenantSpec::new("t", ModelKind::ResNet18, 0.0);
    }
}
