//! Tenants: node-independent descriptions of periodic inference services.
//!
//! A fleet cannot store [`sgprs_core::CompiledTask`]s directly: WCETs are
//! profiled against a *specific* context pool, and a heterogeneous fleet
//! has a different pool per node (and migration moves tenants between
//! them). A [`TenantSpec`] is therefore the portable unit of work — model,
//! frame rate, stage count — compiled on demand for whichever node it
//! lands on.

use serde::{Deserialize, Serialize};
use sgprs_core::{offline, CompiledTask, ContextPoolSpec};
use sgprs_dnn::{models, CostModel, Network};
use sgprs_rt::SimDuration;

/// The reference architectures a tenant can serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// ResNet-18 (the paper's evaluation network).
    ResNet18,
    /// ResNet-34 (≈2× the ResNet-18 work).
    ResNet34,
    /// VGG-16 (the heavyweight of the zoo).
    Vgg16,
    /// AlexNet (light, dominated by its linear head).
    AlexNet,
    /// MobileNet (depthwise-separable; the lightest).
    MobileNet,
}

impl ModelKind {
    /// Builds the network at batch 1 and the paper's 224×224 input.
    #[must_use]
    pub fn network(self) -> Network {
        match self {
            ModelKind::ResNet18 => models::resnet18(1, 224),
            ModelKind::ResNet34 => models::resnet34(1, 224),
            ModelKind::Vgg16 => models::vgg16(1, 224),
            ModelKind::AlexNet => models::alexnet(1, 224),
            ModelKind::MobileNet => models::mobilenet(1, 224),
        }
    }

    /// Every model kind, in a stable order.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::ResNet18,
        ModelKind::ResNet34,
        ModelKind::Vgg16,
        ModelKind::AlexNet,
        ModelKind::MobileNet,
    ];

    /// The whole-network work profile under the calibrated cost model,
    /// computed once per process.
    ///
    /// Admission decisions consult the profile on every placement
    /// attempt; rebuilding the layer graph each time would dominate the
    /// dispatch hot path, so the five reference profiles are cached.
    #[must_use]
    pub fn work_profile(self) -> &'static sgprs_gpu_sim::WorkProfile {
        use std::sync::OnceLock;
        static PROFILES: OnceLock<Vec<sgprs_gpu_sim::WorkProfile>> = OnceLock::new();
        let profiles = PROFILES.get_or_init(|| {
            let cost = CostModel::calibrated();
            ModelKind::ALL
                .iter()
                .map(|m| m.network().work_profile(&cost))
                .collect()
        });
        let idx = ModelKind::ALL
            .iter()
            .position(|&m| m == self)
            .expect("ALL covers every variant");
        &profiles[idx]
    }

    /// Stable short name for reports and task labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::ResNet18 => "resnet18",
            ModelKind::ResNet34 => "resnet34",
            ModelKind::Vgg16 => "vgg16",
            ModelKind::AlexNet => "alexnet",
            ModelKind::MobileNet => "mobilenet",
        }
    }
}

impl core::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A periodic inference service as the dispatcher sees it: which model,
/// how often, and how finely staged — independent of any GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Unique tenant name.
    ///
    /// **Uniqueness contract:** the dispatcher keys removal, migration,
    /// and release phases on this name, so at most one *active* tenant
    /// (resident on a node or waiting in the dispatch queue) may carry
    /// it at a time. [`crate::Fleet::dispatch`] enforces this by
    /// rejecting a same-named arrival with
    /// [`crate::DispatchOutcome::Duplicate`] — without the check, a
    /// later `remove` would delete whichever instance it found first
    /// and leave a resident ghost simulated forever. A name becomes
    /// free again once the tenant departs.
    pub name: String,
    /// Served architecture.
    pub model: ModelKind,
    /// Frame rate in releases per second. For a freshly constructed
    /// tenant this is the *requested* rate; the dispatcher's re-pricing
    /// ladder may serve a clone of the spec at one of the degraded
    /// [`TenantSpec::fps_ladder`] steps instead (see
    /// [`crate::QueuePolicy`]), in which case this field carries the
    /// rate currently served.
    pub fps: f64,
    /// Stage count for the offline split (6 in the paper).
    pub stages: usize,
    /// Queueing priority weight (higher is served first under
    /// [`crate::QueuePolicy::Priority`]; ties break FIFO). Default 1.
    pub weight: u32,
    /// How long the tenant is willing to wait in the dispatch queue
    /// before giving up. `None` waits forever. Under
    /// [`crate::QueuePolicy::EarliestDeadline`] the implied absolute
    /// deadline (enqueue instant + `max_wait`) also orders the queue.
    pub max_wait: Option<SimDuration>,
    /// The re-pricing ladder: degraded frame rates (strictly descending)
    /// the dispatcher may serve this tenant at when the requested rate is
    /// infeasible, upgrading back toward the requested rate at later
    /// epoch boundaries as capacity frees. Empty (the default) opts the
    /// tenant out of re-pricing.
    pub fps_ladder: Vec<f64>,
}

impl TenantSpec {
    /// Creates a tenant serving `model` at `fps` frames per second with
    /// the paper's six-stage split.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not a positive finite number.
    #[must_use]
    pub fn new(name: impl Into<String>, model: ModelKind, fps: f64) -> Self {
        assert!(fps.is_finite() && fps > 0.0, "fps must be positive, got {fps}");
        TenantSpec {
            name: name.into(),
            model,
            fps,
            stages: 6,
            weight: 1,
            max_wait: None,
            fps_ladder: Vec::new(),
        }
    }

    /// Overrides the stage count.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero.
    #[must_use]
    pub fn with_stages(mut self, stages: usize) -> Self {
        assert!(stages > 0, "a tenant needs at least one stage");
        self.stages = stages;
        self
    }

    /// Overrides the queueing priority weight.
    #[must_use]
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Sets the maximum time the tenant will wait in the dispatch queue.
    #[must_use]
    pub fn with_max_wait(mut self, max_wait: SimDuration) -> Self {
        self.max_wait = Some(max_wait);
        self
    }

    /// Sets the re-pricing ladder: degraded frame rates the dispatcher
    /// may fall back to, in strictly descending order.
    ///
    /// # Panics
    ///
    /// Panics if any step is not a positive finite number or the steps
    /// are not strictly descending.
    #[must_use]
    pub fn with_fps_ladder(mut self, steps: impl Into<Vec<f64>>) -> Self {
        let steps = steps.into();
        for pair in steps.windows(2) {
            assert!(pair[1] < pair[0], "ladder steps must strictly descend");
        }
        for &s in &steps {
            assert!(s.is_finite() && s > 0.0, "ladder steps must be positive, got {s}");
        }
        self.fps_ladder = steps;
        self
    }

    /// The same tenant re-priced to serve at `fps` (name, model, ladder,
    /// and queueing attributes unchanged) — how the dispatcher models a
    /// degrade or upgrade: a partition switch on the resident node, not
    /// a migration.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not a positive finite number.
    #[must_use]
    pub fn at_fps(&self, fps: f64) -> Self {
        assert!(fps.is_finite() && fps > 0.0, "fps must be positive, got {fps}");
        let mut spec = self.clone();
        spec.fps = fps;
        spec
    }

    /// The ladder steps strictly below the currently served rate, in
    /// descending order — the degrade options open to the dispatcher.
    pub fn degrade_steps(&self) -> impl Iterator<Item = f64> + '_ {
        let fps = self.fps;
        self.fps_ladder.iter().copied().filter(move |&s| s < fps)
    }

    /// The release period implied by the frame rate.
    #[must_use]
    pub fn period(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.fps)
    }

    /// Single-SM work per inference in seconds (`T₁` of the fluid model):
    /// the currency the admission controller budgets in.
    #[must_use]
    pub fn work_single_sm_secs(&self) -> f64 {
        self.model.work_profile().total_single_sm_ns() / 1e9
    }

    /// Steady-state demand in SM-equivalents: `fps × T₁` — the number of
    /// fully-utilised SMs this tenant consumes on an ideal fluid device.
    #[must_use]
    pub fn demand_sm_equivalents(&self) -> f64 {
        self.fps * self.work_single_sm_secs()
    }

    /// Compiles the tenant for a concrete context pool (the offline
    /// phase, run against the node the dispatcher chose).
    ///
    /// # Panics
    ///
    /// Panics if the model cannot be split into `self.stages` stages
    /// (every reference network splits into at least nine).
    #[must_use]
    pub fn compile_for(&self, pool: &ContextPoolSpec) -> CompiledTask {
        offline::compile_network_task(
            &self.name,
            &self.model.network(),
            &CostModel::calibrated(),
            self.stages,
            self.period(),
            pool,
        )
        .expect("reference networks split into small stage counts")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_scales_with_rate_and_model_weight() {
        let light = TenantSpec::new("a", ModelKind::MobileNet, 30.0);
        let heavy = TenantSpec::new("b", ModelKind::Vgg16, 30.0);
        assert!(heavy.demand_sm_equivalents() > light.demand_sm_equivalents());
        let faster = TenantSpec::new("c", ModelKind::MobileNet, 60.0);
        let ratio = faster.demand_sm_equivalents() / light.demand_sm_equivalents();
        assert!((ratio - 2.0).abs() < 1e-9, "demand is linear in fps: {ratio}");
    }

    #[test]
    fn compile_for_profiles_against_the_pool() {
        let tenant = TenantSpec::new("cam0", ModelKind::ResNet18, 30.0);
        let small = tenant.compile_for(&ContextPoolSpec::new(3, 1.0));
        let large = tenant.compile_for(&ContextPoolSpec::new(2, 2.0));
        assert_eq!(small.stage_count(), 6);
        // Smaller contexts ⇒ pessimistic (longer) profiled WCETs.
        assert!(small.spec.wcet > large.spec.wcet);
        assert_eq!(small.spec.period, tenant.period());
    }

    #[test]
    fn every_model_kind_compiles() {
        let pool = ContextPoolSpec::new(2, 1.5);
        for model in [
            ModelKind::ResNet18,
            ModelKind::ResNet34,
            ModelKind::Vgg16,
            ModelKind::AlexNet,
            ModelKind::MobileNet,
        ] {
            let t = TenantSpec::new(format!("t-{model}"), model, 15.0).with_stages(4);
            let c = t.compile_for(&pool);
            assert!(c.is_consistent(), "{model}");
            assert_eq!(c.stage_count(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "fps must be positive")]
    fn zero_fps_panics() {
        let _ = TenantSpec::new("t", ModelKind::ResNet18, 0.0);
    }

    #[test]
    fn repricing_clone_keeps_identity_and_scales_demand() {
        let t = TenantSpec::new("cam", ModelKind::ResNet18, 30.0)
            .with_fps_ladder([24.0, 15.0])
            .with_weight(3)
            .with_max_wait(SimDuration::from_secs(2));
        let degraded = t.at_fps(15.0);
        assert_eq!(degraded.name, t.name);
        assert_eq!(degraded.weight, 3);
        assert_eq!(degraded.max_wait, t.max_wait);
        assert_eq!(degraded.fps_ladder, t.fps_ladder);
        assert!((degraded.demand_sm_equivalents() - t.demand_sm_equivalents() / 2.0).abs() < 1e-9);
        // Degrade options are the ladder steps below the served rate.
        assert_eq!(t.degrade_steps().collect::<Vec<_>>(), vec![24.0, 15.0]);
        assert_eq!(degraded.degrade_steps().count(), 0, "already at the bottom");
        assert_eq!(t.at_fps(24.0).degrade_steps().collect::<Vec<_>>(), vec![15.0]);
    }

    #[test]
    #[should_panic(expected = "strictly descend")]
    fn non_descending_ladder_panics() {
        let _ = TenantSpec::new("t", ModelKind::ResNet18, 30.0).with_fps_ladder([15.0, 24.0]);
    }
}
