//! `sgprs-cluster` — a simulated multi-GPU fleet over the SGPRS stack.
//!
//! The paper (Babaei & Chantem, DATE 2024) schedules periodic DNN tasks
//! on *one* partitioned GPU. This crate scales that out: a [`Fleet`] of
//! per-GPU nodes — each wrapping an [`sgprs_core::SgprsScheduler`] (or
//! the naive / reconfiguring baselines) over a possibly heterogeneous
//! [`sgprs_gpu_sim::GpuSpec`] — fronted by a dispatcher that admits,
//! places, and migrates tenants.
//!
//! # Architecture
//!
//! * [`TenantSpec`] / [`ModelKind`] — node-independent descriptions of
//!   periodic inference services; compiled per node pool on placement
//!   (heterogeneous nodes profile different WCETs).
//! * [`NodeSpec`] / [`FleetNode`] — one simulated GPU, its context pool,
//!   and the scheduler variant driving it.
//! * [`AdmissionController`] — utilisation-bound admission built on the
//!   fluid occupancy argument of [`sgprs_core::analysis`] plus the
//!   density gate of [`sgprs_rt::analysis`]: infeasible tenants are
//!   rejected (queued) instead of silently missing deadlines.
//! * [`Placer`] / [`PlacementPolicy`] — round-robin, least-utilisation,
//!   and best-fit placement over admissible nodes.
//! * [`policy`] — the **dispatch-policy kernel**: one backend-agnostic
//!   home for admission+placement planning (flat, shard-scan, or
//!   power-of-two-choices), the re-pricing ladder walk, queue
//!   feasibility and demand-aware expiry, upgrade candidates, and
//!   migration victim ([`MigrationVictimPolicy`]) / destination choice
//!   — consumed identically by the epoch path, the event engine, and
//!   sharded dispatch, so the engines cannot fork on decisions.
//! * [`ChurnTrace`] / [`ChurnConfig`] — deterministic arrival/departure
//!   traces driven by [`sgprs_rt::SimTime`]; [`ArrivalStream`] delivers
//!   the identical event sequence *lazily* (generator-driven, holding
//!   only live tenants' pending departures), so a run's churn memory is
//!   O(active tenants) instead of O(trace) — millions of tenants stream
//!   through without materialising.
//! * [`TenantInterner`] / [`TenantId`] — tenant names are interned to
//!   dense `u32` ids at the fleet boundary (first-appearance order,
//!   LIFO slot recycling): residents, queue entries, the degraded table,
//!   and event payloads are all id-indexed, with names resolved back
//!   only at the JSON/telemetry render edge.
//! * [`Fleet`] / [`FleetConfig`] — the epoch-driven dispatcher, with
//!   optional migration off overloaded nodes. Per-epoch node execution
//!   fans out over scoped worker threads with bit-identical metrics
//!   (see the determinism contract in the `fleet` module docs). The
//!   fleet module itself is orchestration only: every decision routes
//!   through [`policy`].
//! * [`event`] — the discrete-event core behind [`Fleet::run_events`]:
//!   a monotonic `(time, node, seq)` event queue carrying scheduler
//!   state across what used to be epoch boundaries, so no in-flight job
//!   is truncated; departures apply at exact instants and DMR-triggered
//!   migration fires at job-release boundaries, paying the
//!   [`MigrationConfig::cost`] state-transfer stall that re-pricing
//!   partition switches never pay. The queue is a two-level
//!   hierarchical timing wheel (`event::wheel`) — O(1) amortised
//!   push/pop for the near-sorted periodic-release workload, slot
//!   capacity recycled so the steady-state hot path allocates nothing,
//!   pop order byte-identical to the binary heap it replaced (pinned
//!   by a heap-oracle equivalence proptest); the execution model keeps
//!   per-node fluid-capacity and best-case caches valid across events
//!   via per-node version counters bumped only on resident/price
//!   mutations.
//! * [`QueuePolicy`] / [`QueueConfig`] — the wait queue's retry order
//!   (FIFO, priority-weight, earliest queue deadline, weighted-fair
//!   with aging so heavy streams cannot starve light waiters) and the
//!   fps re-pricing ladder: admit at a degraded
//!   [`TenantSpec::fps_ladder`] step instead of rejecting, upgrade back
//!   in place when capacity frees — both directions are SGPRS partition
//!   switches, never migrations.
//! * [`ShardedFleet`] / [`ShardConfig`] / [`ShardRouter`] — two-level
//!   dispatch: cached per-shard capacity summaries route each arrival
//!   to a shard, the placement policy runs inside it —
//!   O(shards + nodes/shard) under the ordered [`ShardRouter::Scan`],
//!   or O(1) in the shard count under power-of-two-choices
//!   ([`ShardRouter::P2c`]: probe two seeded shards, take the better,
//!   sweep exhaustively only when both refuse), the regime
//!   512–1024-node metro fleets dispatch in.
//! * [`FleetMetrics`] — per-node and fleet-level FPS, miss rate,
//!   rejection rate, and a utilisation histogram, aggregated from the
//!   nodes' [`sgprs_core::RunMetrics`] and rendered as JSON.
//! * [`telemetry`] — opt-in observability over both engines: windowed
//!   time-series of dispatch activity, mergeable deterministic
//!   [`QuantileSketch`]es for queue-wait and job-latency percentiles
//!   (folded in node-index order, byte-identical across worker counts),
//!   and a ring-buffered decision trace ([`TraceEvent`]) with hot-path
//!   profile counters. Off by default ([`TelemetryConfig::disabled`])
//!   with a byte-identical schema-v2 export; enabling bumps the export
//!   to schema v3 with a `telemetry` block.
//!
//! # Example
//!
//! ```
//! use sgprs_cluster::{
//!     ChurnTrace, Fleet, FleetConfig, ModelKind, NodeSpec, TenantSpec,
//! };
//! use sgprs_gpu_sim::GpuSpec;
//! use sgprs_rt::SimDuration;
//!
//! // Two 2080 Ti nodes serving four ResNet18 camera feeds at 30 fps.
//! let mut fleet = Fleet::new(FleetConfig::new(vec![
//!     NodeSpec::sgprs("gpu0", GpuSpec::rtx_2080_ti()),
//!     NodeSpec::sgprs("gpu1", GpuSpec::rtx_2080_ti()),
//! ]));
//! let tenants =
//!     (0..4).map(|i| TenantSpec::new(format!("cam-{i}"), ModelKind::ResNet18, 30.0));
//! let metrics = fleet.run(
//!     ChurnTrace::static_population(tenants),
//!     SimDuration::from_secs(1),
//! );
//! assert!(metrics.total_fps > 0.0);
//! assert_eq!(metrics.rejected, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod churn;
mod config;
pub mod event;
mod fleet;
mod interner;
mod metrics;
mod node;
mod placement;
pub mod policy;
mod queue;
mod shard;
mod stream;
pub mod telemetry;
mod tenant;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionDecision, RejectReason};
pub use churn::{ChurnConfig, ChurnEvent, ChurnTrace};
pub use config::{FleetConfig, MigrationConfig};
pub use fleet::{DispatchOutcome, DispatchReplay, Fleet};
pub use interner::{TenantId, TenantInterner};
pub use stream::ArrivalStream;
pub use policy::{FleetState, MigrationVictimPolicy};
pub use queue::{QueueConfig, QueuePolicy, AGING_QUANTUM};
pub use shard::{ShardConfig, ShardRouter, ShardedFleet};
pub use metrics::{
    FleetMetrics, FleetMetricsBuilder, NodeReport, BASE_SCHEMA_VERSION, METRICS_SCHEMA_VERSION,
    UTILIZATION_BINS,
};
pub use node::{FleetNode, NodeScheduler, NodeSpec};
pub use placement::{Placer, PlacementPolicy};
pub use telemetry::{
    ArrivalVerdict, ProfileReport, QuantileSketch, SketchSummary, Span, SpanProfile, SpanStats,
    TelemetryConfig, TelemetryReport, TraceEvent, WindowReport, DEFAULT_SKETCH_CAPACITY,
    PLAN_LATENCY_BINS, RANK_ERROR_NUMERATOR, SPAN_COUNT,
};
pub use tenant::{ModelKind, TenantSpec};
