//! The fleet dispatcher: epoch-driven simulation of many GPU nodes under
//! tenant churn.
//!
//! Simulated time is divided into *epochs*. At each epoch boundary the
//! dispatcher applies churn events (arrivals are placed through the
//! [`Placer`] + [`AdmissionController`]; departures free capacity and
//! drain the wait queue), then every non-empty node runs its scheduler
//! for one epoch and reports [`sgprs_core::RunMetrics`], which the
//! [`FleetMetricsBuilder`] folds into fleet totals. Optional migration
//! moves a tenant off any node whose epoch miss rate crossed a threshold.
//!
//! Granularity contract: arrivals keep sub-epoch precision (they enter
//! as release phases inside their first epoch); departures and
//! migrations take effect at the epoch boundary *following* the event,
//! so a departing tenant serves out its final partial epoch. Jobs still
//! in flight
//! when an epoch ends are not counted as completed — with the default
//! one-second epoch and the paper's 33 ms periods this truncation is
//! under 3 % and affects every scheduler equally.

use crate::{
    AdmissionConfig, AdmissionController, ChurnEvent, ChurnTrace, FleetMetrics,
    FleetMetricsBuilder, FleetNode, NodeSpec, Placer, PlacementPolicy, TenantSpec,
};
use sgprs_core::CompiledTask;
use sgprs_rt::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// Migration knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationConfig {
    /// Enable migration off overloaded nodes.
    pub enabled: bool,
    /// Epoch deadline-miss rate above which a node sheds one tenant.
    pub dmr_threshold: f64,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            enabled: false,
            dmr_threshold: 0.2,
        }
    }
}

/// Configuration of a [`Fleet`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// The nodes, in dispatch order.
    pub nodes: Vec<NodeSpec>,
    /// Placement policy.
    pub placement: PlacementPolicy,
    /// Admission-control knobs.
    pub admission: AdmissionConfig,
    /// Epoch length (the dispatch/re-evaluation granularity).
    pub epoch: SimDuration,
    /// Migration knobs.
    pub migration: MigrationConfig,
    /// Base seed for the nodes' execution jitter.
    pub seed: u64,
}

impl FleetConfig {
    /// A fleet over `nodes` with least-utilisation placement, default
    /// admission control, one-second epochs, and no migration.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    #[must_use]
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        assert!(!nodes.is_empty(), "a fleet needs at least one node");
        FleetConfig {
            nodes,
            placement: PlacementPolicy::LeastUtilization,
            admission: AdmissionConfig::default(),
            epoch: SimDuration::from_secs(1),
            migration: MigrationConfig::default(),
            seed: 0x5672_5053,
        }
    }

    /// Replaces the placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Enables migration with the given epoch-DMR threshold.
    #[must_use]
    pub fn with_migration(mut self, dmr_threshold: f64) -> Self {
        self.migration = MigrationConfig {
            enabled: true,
            dmr_threshold,
        };
        self
    }

    /// Replaces the jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Where a dispatched tenant ended up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchOutcome {
    /// Placed on the node with the given index.
    Placed(usize),
    /// Currently over capacity everywhere; the tenant waits in the
    /// dispatch queue for departures to free room.
    Queued,
    /// Latency-infeasible on every node: no departure can ever make it
    /// fit, so it is dropped rather than queued (queueing it would block
    /// the FIFO queue's head forever).
    Infeasible,
}

/// A simulated multi-GPU fleet with admission control, load balancing,
/// and tenant churn.
#[derive(Debug)]
pub struct Fleet {
    cfg: FleetConfig,
    nodes: Vec<FleetNode>,
    placer: Placer,
    admission: AdmissionController,
    queue: VecDeque<TenantSpec>,
    /// Sub-epoch release phase of tenants that arrived mid-epoch,
    /// consumed by the next `run_epoch`.
    pending_phase: HashMap<String, SimDuration>,
    /// Compiled-task cache keyed by (model, stages, period ns, node).
    compiled: HashMap<(crate::ModelKind, usize, u64, usize), CompiledTask>,
}

impl Fleet {
    /// Builds an empty fleet from its configuration.
    #[must_use]
    pub fn new(cfg: FleetConfig) -> Self {
        let nodes = cfg.nodes.iter().cloned().map(FleetNode::new).collect();
        let placer = Placer::new(cfg.placement);
        let admission = AdmissionController::new(cfg.admission.clone());
        Fleet {
            cfg,
            nodes,
            placer,
            admission,
            queue: VecDeque::new(),
            pending_phase: HashMap::new(),
            compiled: HashMap::new(),
        }
    }

    /// The nodes with their resident tenants.
    #[must_use]
    pub fn nodes(&self) -> &[FleetNode] {
        &self.nodes
    }

    /// Tenants waiting for capacity.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The admission controller in use.
    #[must_use]
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Offers `tenant` to the placement policy: on success the tenant
    /// becomes resident; when merely over capacity it joins the wait
    /// queue; when latency-infeasible on every node it is dropped.
    pub fn dispatch(&mut self, tenant: TenantSpec) -> DispatchOutcome {
        match self.placer.place(&self.nodes, &tenant, &self.admission) {
            Some(idx) => {
                self.nodes[idx].tenants.push(tenant);
                DispatchOutcome::Placed(idx)
            }
            None => {
                // Queue only tenants some node could carry once load
                // drains; best-case latency is load-independent, so a
                // tenant failing the gate everywhere can never fit.
                let feasible_somewhere = self.nodes.iter().any(|node| {
                    self.admission.best_case_latency(node, &tenant) <= tenant.period()
                });
                if feasible_somewhere {
                    self.queue.push_back(tenant);
                    DispatchOutcome::Queued
                } else {
                    DispatchOutcome::Infeasible
                }
            }
        }
    }

    /// Removes the named tenant wherever it lives (node or queue).
    /// Returns `true` when something was removed.
    pub fn remove(&mut self, name: &str) -> bool {
        for node in &mut self.nodes {
            if let Some(pos) = node.tenants.iter().position(|t| t.name == name) {
                node.tenants.remove(pos);
                return true;
            }
        }
        if let Some(pos) = self.queue.iter().position(|t| t.name == name) {
            self.queue.remove(pos);
            return true;
        }
        false
    }

    /// Retries queued tenants in FIFO order; returns how many were
    /// admitted. Stops at the first tenant that still does not fit, so
    /// the queue stays fair (no overtaking).
    pub fn drain_queue(&mut self) -> u64 {
        let mut admitted = 0;
        while let Some(front) = self.queue.front() {
            match self.placer.place(&self.nodes, front, &self.admission) {
                Some(idx) => {
                    let tenant = self.queue.pop_front().expect("front exists");
                    self.nodes[idx].tenants.push(tenant);
                    admitted += 1;
                }
                None => break,
            }
        }
        admitted
    }

    fn compiled_for(&mut self, tenant: &TenantSpec, node_idx: usize) -> CompiledTask {
        let key = (
            tenant.model,
            tenant.stages,
            tenant.period().as_nanos(),
            node_idx,
        );
        let pool = self.nodes[node_idx].spec.pool();
        let mut task = self
            .compiled
            .entry(key)
            .or_insert_with(|| tenant.compile_for(&pool))
            .clone();
        task.spec.name = tenant.name.clone();
        task
    }

    /// Runs the fleet over `trace` until `horizon`, returning the
    /// aggregated metrics.
    ///
    /// # Panics
    ///
    /// Panics if the configured epoch is zero.
    #[must_use]
    pub fn run(&mut self, trace: ChurnTrace, horizon: SimDuration) -> FleetMetrics {
        assert!(!self.cfg.epoch.is_zero(), "epoch must be positive");
        let mut builder = FleetMetricsBuilder::new(
            self.nodes.iter().map(|n| n.spec.name.clone()).collect(),
            self.nodes.iter().map(|n| n.spec.gpu.total_sms).collect(),
        );
        let mut events = VecDeque::from(trace.into_sorted());
        let mut epoch_start = SimTime::ZERO;
        let end = SimTime::ZERO + horizon;
        let mut epoch_index = 0u64;
        // Departures observed mid-epoch, applied at the *next* epoch
        // boundary (the granularity contract: a departing tenant serves
        // out its final partial epoch).
        let mut deferred_departures: Vec<String> = Vec::new();
        while epoch_start < end {
            let epoch_len = self.cfg.epoch.min(end.duration_since(epoch_start));
            let epoch_end = epoch_start + epoch_len;
            // 1a. Apply departures from the previous epoch.
            for name in deferred_departures.drain(..) {
                if self.remove(&name) {
                    builder.departures += 1;
                }
            }
            // The departures may have freed room for queued tenants.
            builder.admitted_after_wait += self.drain_queue();
            // 1b. Apply churn falling inside this epoch.
            while let Some((at, _)) = events.front() {
                if *at >= epoch_end {
                    break;
                }
                let (at, event) = events.pop_front().expect("front exists");
                match event {
                    ChurnEvent::Arrival(tenant) => {
                        builder.arrivals += 1;
                        let phase = at.duration_since(epoch_start);
                        match self.dispatch(tenant.clone()) {
                            DispatchOutcome::Placed(_) => {
                                builder.admitted += 1;
                                self.pending_phase.insert(tenant.name, phase);
                            }
                            DispatchOutcome::Queued => builder.rejected += 1,
                            DispatchOutcome::Infeasible => builder.infeasible += 1,
                        }
                    }
                    ChurnEvent::Departure(name) => deferred_departures.push(name),
                }
            }
            // 2. Sample utilisation, then run every non-empty node.
            let mut epoch_dmr: Vec<f64> = vec![0.0; self.nodes.len()];
            // Indexing (not iterating `self.nodes`) because the body
            // needs `&mut self` for the compiled-task cache.
            #[allow(clippy::needless_range_loop)]
            for idx in 0..self.nodes.len() {
                let budget = self.admission.budget(&self.nodes[idx], None);
                let demand = self.nodes[idx].total_demand();
                builder.record_utilization(
                    idx,
                    if budget > 0.0 { demand / budget } else { 0.0 },
                );
                if self.nodes[idx].tenants.is_empty() {
                    continue;
                }
                let tenants = self.nodes[idx].tenants.clone();
                let tasks: Vec<CompiledTask> = tenants
                    .iter()
                    .map(|t| {
                        let mut task = self.compiled_for(t, idx);
                        task.spec.phase = self
                            .pending_phase
                            .get(&t.name)
                            .copied()
                            .unwrap_or(SimDuration::ZERO);
                        task
                    })
                    .collect();
                let seed = self
                    .cfg
                    .seed
                    .wrapping_add(epoch_index.wrapping_mul(0x9E37_79B9))
                    .wrapping_add(idx as u64);
                let m = self.nodes[idx].spec.run_epoch(tasks, epoch_len, seed);
                if m.released > 0 {
                    epoch_dmr[idx] = (m.late + m.skipped + m.dropped) as f64 / m.released as f64;
                }
                builder.record_epoch(idx, &m);
            }
            self.pending_phase.clear();
            // 3. Shed load from nodes that missed too much this epoch.
            if self.cfg.migration.enabled {
                builder.migrations += self.migrate_overloaded(&epoch_dmr);
            }
            epoch_start = epoch_end;
            epoch_index += 1;
        }
        // Departures whose boundary is the end of the run still count.
        for name in deferred_departures.drain(..) {
            if self.remove(&name) {
                builder.departures += 1;
            }
        }
        let final_tenants: Vec<usize> = self.nodes.iter().map(|n| n.tenants.len()).collect();
        builder.finish(horizon, &final_tenants, self.queue.len() as u64)
    }

    /// Moves the most recently placed tenant off every node whose epoch
    /// miss rate crossed the threshold, if another node admits it.
    fn migrate_overloaded(&mut self, epoch_dmr: &[f64]) -> u64 {
        let mut migrations = 0;
        // Indexing because the body mutates several nodes at once.
        #[allow(clippy::needless_range_loop)]
        for idx in 0..self.nodes.len() {
            if epoch_dmr[idx] <= self.cfg.migration.dmr_threshold
                || self.nodes[idx].tenants.len() < 2
            {
                continue;
            }
            let Some(tenant) = self.nodes[idx].tenants.pop() else {
                continue;
            };
            // Choose among the *other* nodes only.
            let moved = {
                let candidate_idx = (0..self.nodes.len())
                    .filter(|&j| j != idx)
                    .filter(|&j| self.admission.evaluate(&self.nodes[j], &tenant).is_admit())
                    .min_by(|&a, &b| {
                        let load = |j: usize| {
                            let budget = self.admission.budget(&self.nodes[j], None);
                            if budget > 0.0 {
                                self.nodes[j].total_demand() / budget
                            } else {
                                f64::INFINITY
                            }
                        };
                        load(a).total_cmp(&load(b))
                    });
                match candidate_idx {
                    Some(j) => {
                        self.nodes[j].tenants.push(tenant.clone());
                        true
                    }
                    None => false,
                }
            };
            if moved {
                migrations += 1;
            } else {
                // Nobody can take it; keep it where it was.
                self.nodes[idx].tenants.push(tenant);
            }
        }
        migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChurnConfig, ModelKind, NodeScheduler};
    use sgprs_gpu_sim::GpuSpec;

    fn three_node_fleet() -> FleetConfig {
        FleetConfig::new(vec![
            NodeSpec::sgprs("gpu0", GpuSpec::rtx_2080_ti()),
            NodeSpec::sgprs("gpu1", GpuSpec::rtx_2080_ti()),
            NodeSpec::sgprs("gpu2", GpuSpec::rtx_2080_ti()),
        ])
    }

    fn tenant(i: usize) -> TenantSpec {
        TenantSpec::new(format!("cam-{i}"), ModelKind::ResNet18, 30.0)
    }

    #[test]
    fn dispatch_places_until_saturation_then_queues() {
        let mut fleet = Fleet::new(three_node_fleet());
        let mut placed = 0;
        let mut queued = 0;
        for i in 0..100 {
            match fleet.dispatch(tenant(i)) {
                DispatchOutcome::Placed(_) => placed += 1,
                DispatchOutcome::Queued => queued += 1,
                DispatchOutcome::Infeasible => panic!("resnet18@30fps is feasible"),
            }
        }
        assert!(placed >= 45, "3 GPUs take ≥ 15 tenants each, got {placed}");
        assert!(queued > 0, "admission control must eventually say no");
        assert_eq!(fleet.queued(), queued);
    }

    #[test]
    fn infeasible_tenants_are_dropped_not_queued() {
        let mut fleet = Fleet::new(three_node_fleet());
        // VGG-16 at 30 fps cannot meet its period on any node: dropping
        // it keeps the wait queue's head from blocking forever.
        let hopeless = TenantSpec::new("vgg", ModelKind::Vgg16, 30.0);
        assert_eq!(fleet.dispatch(hopeless), DispatchOutcome::Infeasible);
        assert_eq!(fleet.queued(), 0);
        // And a run over a trace containing one reports it as such.
        let mut trace = ChurnTrace::new();
        trace.push(
            sgprs_rt::SimTime::ZERO,
            crate::ChurnEvent::Arrival(TenantSpec::new("vgg", ModelKind::Vgg16, 30.0)),
        );
        trace.push(
            sgprs_rt::SimTime::ZERO,
            crate::ChurnEvent::Arrival(tenant(0)),
        );
        let m = fleet.run(trace, SimDuration::from_secs(1));
        assert_eq!(m.infeasible, 1);
        assert_eq!(m.admitted, 1);
        assert_eq!(m.still_queued, 0);
        assert!((m.rejection_rate - 0.5).abs() < 1e-9);
    }

    #[test]
    fn departures_take_effect_at_the_following_boundary() {
        let mut fleet = Fleet::new(three_node_fleet());
        let mut trace = ChurnTrace::new();
        let t = tenant(0);
        let name = t.name.clone();
        trace.push(sgprs_rt::SimTime::ZERO, crate::ChurnEvent::Arrival(t));
        // Departs mid-second-epoch: it must still serve epoch 2 fully.
        trace.push(
            sgprs_rt::SimTime::ZERO + SimDuration::from_millis(1_500),
            crate::ChurnEvent::Departure(name),
        );
        let m = fleet.run(trace, SimDuration::from_secs(3));
        assert_eq!(m.departures, 1);
        assert!(fleet.nodes().iter().all(|n| n.tenants.is_empty()));
        // Two full epochs of 30 fps service (minus boundary truncation),
        // not one: retroactive removal would roughly halve this.
        assert!(
            m.nodes[0].completed + m.nodes[1].completed + m.nodes[2].completed >= 50,
            "{m:?}"
        );
    }

    #[test]
    fn departures_let_queued_tenants_in() {
        let mut fleet = Fleet::new(three_node_fleet());
        let mut names = Vec::new();
        // Saturate, then one more that must queue.
        let mut i = 0;
        loop {
            let t = tenant(i);
            let name = t.name.clone();
            match fleet.dispatch(t) {
                DispatchOutcome::Placed(_) => names.push(name),
                DispatchOutcome::Queued => break,
                DispatchOutcome::Infeasible => panic!("resnet18@30fps is feasible"),
            }
            i += 1;
        }
        assert_eq!(fleet.queued(), 1);
        assert!(fleet.remove(&names[0]), "departure frees capacity");
        assert_eq!(fleet.drain_queue(), 1, "queued tenant admitted");
        assert_eq!(fleet.queued(), 0);
    }

    #[test]
    fn static_population_run_produces_fleet_throughput() {
        let mut fleet = Fleet::new(three_node_fleet());
        let trace = ChurnTrace::static_population((0..6).map(tenant));
        let m = fleet.run(trace, SimDuration::from_secs(2));
        assert!(m.total_fps > 150.0, "6 × 30 fps minus truncation: {m:?}");
        assert_eq!(m.arrivals, 6);
        assert_eq!(m.admitted, 6);
        assert_eq!(m.rejection_rate, 0.0);
        let node_sum: f64 = m.nodes.iter().map(|n| n.fps).sum();
        assert!((node_sum - m.total_fps).abs() < 1e-6);
    }

    #[test]
    fn churn_run_reports_rejections_under_pressure() {
        // One small GPU, heavy arrivals: rejections are inevitable.
        let cfg = FleetConfig::new(vec![NodeSpec::sgprs("small", GpuSpec::synthetic(23))]);
        let mut fleet = Fleet::new(cfg);
        let churn = ChurnConfig {
            mean_interarrival: SimDuration::from_millis(100),
            min_lifetime: SimDuration::from_secs(2),
            max_lifetime: SimDuration::from_secs(4),
            ..ChurnConfig::default()
        };
        let horizon = SimDuration::from_secs(4);
        let trace = ChurnTrace::generate(&churn, horizon, 11);
        let m = fleet.run(trace, horizon);
        assert!(m.arrivals > 10);
        assert!(m.rejected > 0, "{m:?}");
        assert!(m.rejection_rate > 0.0 && m.rejection_rate <= 1.0);
        assert!(m.total_fps > 0.0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run_once = || {
            let mut fleet = Fleet::new(three_node_fleet().with_seed(99));
            let churn = ChurnConfig::default();
            let horizon = SimDuration::from_secs(3);
            let trace = ChurnTrace::generate(&churn, horizon, 5);
            fleet.run(trace, horizon)
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn migration_moves_load_off_an_overloaded_node() {
        // Two nodes, round-robin placement is blind to the size gap, so
        // the small node overloads and migration must bail it out.
        let cfg = FleetConfig::new(vec![
            NodeSpec::sgprs("small", GpuSpec::synthetic(16)),
            NodeSpec::sgprs("big", GpuSpec::rtx_2080_ti()),
        ])
        .with_placement(PlacementPolicy::RoundRobin)
        .with_migration(0.05);
        // Force-load the small node beyond its means.
        let mut fleet = Fleet::new(cfg);
        for i in 0..6 {
            fleet.nodes[0].tenants.push(tenant(i));
        }
        let m = fleet.run(ChurnTrace::new(), SimDuration::from_secs(3));
        assert!(m.migrations > 0, "{m:?}");
        assert!(
            fleet.nodes()[0].tenants.len() < 6,
            "the small node shed load"
        );
        assert!(
            !fleet.nodes()[1].tenants.is_empty(),
            "the big node absorbed it"
        );
    }

    #[test]
    fn heterogeneous_nodes_and_schedulers_coexist() {
        let cfg = FleetConfig::new(vec![
            NodeSpec::sgprs("sgprs", GpuSpec::rtx_2080_ti()),
            NodeSpec::sgprs("naive", GpuSpec::synthetic(34))
                .with_scheduler(NodeScheduler::Naive),
        ]);
        let mut fleet = Fleet::new(cfg);
        let trace = ChurnTrace::static_population((0..4).map(tenant));
        let m = fleet.run(trace, SimDuration::from_secs(2));
        assert!(m.total_fps > 0.0);
        assert_eq!(m.nodes.len(), 2);
        assert!(m.nodes.iter().all(|n| n.released > 0));
    }
}
