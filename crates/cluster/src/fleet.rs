//! The fleet dispatcher: epoch-driven simulation of many GPU nodes under
//! tenant churn.
//!
//! Simulated time is divided into *epochs*. At each epoch boundary the
//! dispatcher applies churn events (arrivals are placed through the
//! [`Placer`] + [`AdmissionController`]; departures free capacity, expire
//! overdue waiters, and drain the wait queue in [`crate::QueuePolicy`]
//! order), then every non-empty node runs its scheduler for one epoch and
//! reports [`sgprs_core::RunMetrics`], which the [`FleetMetricsBuilder`]
//! folds into fleet totals. Optional migration moves a tenant off any
//! node whose epoch miss rate crossed a threshold.
//!
//! With [`QueueConfig::repricing`] on, an arrival that does not fit at
//! its requested rate may be admitted at a degraded
//! [`TenantSpec::fps_ladder`] step — SGPRS's zero-cost partition switch
//! makes the later upgrade free — and each epoch boundary steps degraded
//! residents back up: departures first admit waiting tenants (policy
//! order), then leftover capacity upgrades degraded residents in place,
//! in tenant-name order, jumping each as high up its ladder as the node
//! admits. Degrades and upgrades never move a tenant between nodes.
//!
//! Granularity contract: arrivals keep sub-epoch precision (they enter
//! as release phases inside their first epoch); departures and
//! migrations take effect at the epoch boundary *following* the event,
//! so a departing tenant serves out its final partial epoch. Jobs still
//! in flight
//! when an epoch ends are not counted as completed — with the default
//! one-second epoch and the paper's 33 ms periods this truncation is
//! under 3 % and affects every scheduler equally; the count is surfaced
//! as [`FleetMetrics::truncated_jobs`]. The event-driven mode
//! ([`Fleet::run_events`], see [`crate::event`]) removes the grid
//! entirely: exact boundaries, zero truncation, and migration at
//! job-release boundaries paying [`MigrationConfig::cost`].
//!
//! Parallel-execution determinism: within one epoch the nodes are
//! mutually independent — they share no simulator state, their compiled
//! tasks are prepared before any node runs, and each node's jitter seed
//! is a pure function of `(fleet seed, epoch index, node index)`. `run`
//! therefore fans the per-node `run_epoch` calls out over scoped worker
//! threads and folds the results back in ascending node index, so the
//! resulting [`FleetMetrics`] is bit-identical to sequential execution
//! ([`FleetConfig::sequential`] is the escape hatch): parallelism
//! changes wall-clock time, never results.

use crate::queue::DispatchQueue;
use crate::shard::ShardRouter;
use crate::{
    AdmissionConfig, AdmissionController, ChurnEvent, ChurnTrace, FleetMetrics,
    FleetMetricsBuilder, FleetNode, NodeSpec, Placer, PlacementPolicy, QueueConfig, ShardConfig,
    TenantSpec,
};
use sgprs_core::{CompiledTask, RunMetrics};
use sgprs_rt::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Migration knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationConfig {
    /// Enable migration off overloaded nodes.
    pub enabled: bool,
    /// Epoch deadline-miss rate above which a node sheds one tenant.
    pub dmr_threshold: f64,
    /// The state-transfer stall a migration pays in event-driven mode
    /// ([`Fleet::run_events`]): the migrant serves nothing while its
    /// weights and context state move, roughly a reconfiguration window
    /// (the default matches `sgprs_core::ReconfigConfig`'s 100 ms
    /// repartition stall). Re-pricing degrade/upgrade switches are SGPRS
    /// partition switches and never pay it. The epoch path models
    /// migration as free (its pre-existing contract) and ignores this
    /// field.
    pub cost: SimDuration,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            enabled: false,
            dmr_threshold: 0.2,
            cost: SimDuration::from_millis(100),
        }
    }
}

/// Configuration of a [`Fleet`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// The nodes, in dispatch order.
    pub nodes: Vec<NodeSpec>,
    /// Placement policy.
    pub placement: PlacementPolicy,
    /// Admission-control knobs.
    pub admission: AdmissionConfig,
    /// Epoch length (the dispatch/re-evaluation granularity).
    pub epoch: SimDuration,
    /// Migration knobs.
    pub migration: MigrationConfig,
    /// Base seed for the nodes' execution jitter.
    pub seed: u64,
    /// Fan per-epoch node execution out over worker threads (results are
    /// bit-identical either way; see the module docs).
    pub parallel: bool,
    /// Worker-thread count for the parallel fan-out; `None` uses every
    /// available core. Ignored when `parallel` is off. Results are
    /// bit-identical for every count.
    pub workers: Option<usize>,
    /// Optional two-level sharded dispatch (see [`crate::ShardedFleet`]).
    pub sharding: Option<ShardConfig>,
    /// Wait-queue policy and re-pricing knobs (see [`crate::QueuePolicy`]).
    pub queue: QueueConfig,
    /// Run in event-driven mode ([`Fleet::run_events`]) instead of the
    /// epoch grid when dispatched through [`Fleet::run_configured`]:
    /// exact release/departure boundaries, no epoch truncation, migration
    /// with an explicit stall cost. Off by default — the epoch path stays
    /// bit-for-bit the classic semantics.
    pub event_driven: bool,
}

impl FleetConfig {
    /// A fleet over `nodes` with least-utilisation placement, default
    /// admission control, one-second epochs, and no migration.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    #[must_use]
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        assert!(!nodes.is_empty(), "a fleet needs at least one node");
        FleetConfig {
            nodes,
            placement: PlacementPolicy::LeastUtilization,
            admission: AdmissionConfig::default(),
            epoch: SimDuration::from_secs(1),
            migration: MigrationConfig::default(),
            seed: 0x5672_5053,
            parallel: true,
            workers: None,
            sharding: None,
            queue: QueueConfig::default(),
            event_driven: false,
        }
    }

    /// Disables the parallel per-epoch fan-out: nodes run one after
    /// another on the calling thread. The escape hatch for debugging and
    /// for determinism tests — metrics are bit-identical either way.
    #[must_use]
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Enables two-level sharded dispatch with shards of `shard_size`
    /// nodes (see [`crate::ShardedFleet`]).
    ///
    /// # Panics
    ///
    /// Panics if `shard_size` is zero.
    #[must_use]
    pub fn with_sharding(mut self, shard_size: usize) -> Self {
        self.sharding = Some(ShardConfig::new(shard_size));
        self
    }

    /// Replaces the placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Enables migration with the given epoch-DMR threshold. The stall
    /// cost keeps whatever [`FleetConfig::with_migration_cost`] set (or
    /// the default), regardless of builder-call order.
    #[must_use]
    pub fn with_migration(mut self, dmr_threshold: f64) -> Self {
        self.migration.enabled = true;
        self.migration.dmr_threshold = dmr_threshold;
        self
    }

    /// Replaces the migration state-transfer stall charged in
    /// event-driven mode (see [`MigrationConfig::cost`]).
    #[must_use]
    pub fn with_migration_cost(mut self, cost: SimDuration) -> Self {
        self.migration.cost = cost;
        self
    }

    /// Selects the event-driven execution mode for
    /// [`Fleet::run_configured`] (see [`Fleet::run_events`]).
    #[must_use]
    pub fn with_event_driven(mut self) -> Self {
        self.event_driven = true;
        self
    }

    /// Replaces the jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Forces the parallel fan-out onto exactly `workers` threads
    /// (metrics are bit-identical for every count; the knob exists for
    /// determinism tests and for capping thread pressure).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "the fan-out needs at least one worker");
        self.workers = Some(workers);
        self
    }

    /// Replaces the wait-queue policy (FIFO is the default).
    #[must_use]
    pub fn with_queue_policy(mut self, policy: crate::QueuePolicy) -> Self {
        self.queue.policy = policy;
        self
    }

    /// Enables the fps re-pricing ladder (see [`QueueConfig::repricing`]).
    #[must_use]
    pub fn with_repricing(mut self) -> Self {
        self.queue.repricing = true;
        self
    }
}

/// Where a dispatched tenant ended up.
#[derive(Debug, Clone, PartialEq)]
pub enum DispatchOutcome {
    /// Placed on the node with the given index.
    Placed(usize),
    /// Did not fit at its requested rate, but the re-pricing ladder found
    /// room at the degraded rate `fps` on node `node` — the tenant is
    /// resident and will be upgraded back toward its requested rate when
    /// capacity frees (requires [`QueueConfig::repricing`]).
    PlacedDegraded {
        /// The node the tenant landed on.
        node: usize,
        /// The degraded rate it serves at.
        fps: f64,
    },
    /// Currently over capacity everywhere; the tenant waits in the
    /// dispatch queue for departures to free room.
    Queued,
    /// Latency-infeasible on every node: no departure can ever make it
    /// fit, so it is dropped rather than queued (queueing it would block
    /// the FIFO queue's head forever).
    Infeasible,
    /// A tenant with the same name is already active (resident or
    /// queued). Names key removal, migration, and release phases, so the
    /// dispatcher enforces the uniqueness contract documented on
    /// [`TenantSpec::name`] instead of letting a later `remove` delete
    /// the wrong instance and leave a resident ghost.
    Duplicate,
}

/// A simulated multi-GPU fleet with admission control, load balancing,
/// and tenant churn.
#[derive(Debug)]
pub struct Fleet {
    pub(crate) cfg: FleetConfig,
    pub(crate) nodes: Vec<FleetNode>,
    placer: Placer,
    admission: AdmissionController,
    pub(crate) queue: DispatchQueue,
    /// Sub-epoch release phase of tenants that arrived mid-epoch,
    /// consumed by the next `run_epoch`.
    pending_phase: HashMap<String, SimDuration>,
    /// Compiled-task cache keyed by (model, stages, period ns, node).
    compiled: HashMap<(crate::ModelKind, usize, u64, usize), CompiledTask>,
    /// Names of active tenants (resident or queued), enforcing the
    /// uniqueness contract of [`TenantSpec::name`].
    active: HashSet<String>,
    /// Two-level dispatch router, present when sharding is configured.
    pub(crate) router: Option<ShardRouter>,
    /// The dispatcher's clock: advanced by `run`/`run_events`, stamps
    /// queue entries so waits and queue deadlines are measurable.
    pub(crate) now: SimTime,
    /// Whether node capacity was released (departure or migration) since
    /// the last drain pass — when it was not, the queue head still cannot
    /// fit and the whole retry scan is skipped.
    pub(crate) capacity_released: bool,
    /// Drain passes that actually scanned the queue (skip-scan
    /// observability for tests).
    drain_scans: u64,
    /// Residents currently serving below their requested rate: tenant
    /// name → requested fps. Ordered so upgrade passes are deterministic.
    degraded: BTreeMap<String, f64>,
}

impl Fleet {
    /// Builds an empty fleet from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.nodes` is empty (possible despite the check in
    /// [`FleetConfig::new`], since the config's fields are public).
    #[must_use]
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(!cfg.nodes.is_empty(), "a fleet needs at least one node");
        let nodes: Vec<FleetNode> = cfg.nodes.iter().cloned().map(FleetNode::new).collect();
        let placer = Placer::new(cfg.placement);
        let admission = AdmissionController::new(cfg.admission.clone());
        let router = cfg
            .sharding
            .as_ref()
            .map(|shard| ShardRouter::new(nodes.len(), shard));
        let queue = DispatchQueue::new(cfg.queue.policy);
        Fleet {
            cfg,
            nodes,
            placer,
            admission,
            queue,
            pending_phase: HashMap::new(),
            compiled: HashMap::new(),
            active: HashSet::new(),
            router,
            now: SimTime::ZERO,
            capacity_released: true,
            drain_scans: 0,
            degraded: BTreeMap::new(),
        }
    }

    /// The nodes with their resident tenants.
    #[must_use]
    pub fn nodes(&self) -> &[FleetNode] {
        &self.nodes
    }

    /// Tenants waiting for capacity.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Names of the waiting tenants in drain (policy) order.
    #[must_use]
    pub fn queued_names(&self) -> Vec<String> {
        self.queue.names_in_order(self.now)
    }

    /// Number of residents currently serving below their requested rate.
    #[must_use]
    pub fn degraded_residents(&self) -> usize {
        self.degraded.len()
    }

    /// The admission controller in use.
    #[must_use]
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The shard router, when sharding is configured.
    pub(crate) fn router(&self) -> Option<&ShardRouter> {
        self.router.as_ref()
    }

    /// Chooses a node for `tenant` without committing the placement —
    /// the per-arrival hot path the placement benches measure. Flat
    /// fleets scan every node through the placement policy; sharded
    /// fleets route to a shard first (O(shards + nodes/shard) in the
    /// common case) and fall back shard by shard when summaries prove
    /// stale.
    #[must_use]
    pub fn plan(&mut self, tenant: &TenantSpec) -> Option<usize> {
        match self.router.as_mut() {
            Some(router) => {
                for shard in router.route(&self.nodes, &self.admission, tenant) {
                    let range = router.range(shard);
                    if let Some(rel) =
                        self.placer
                            .place(&self.nodes[range.clone()], tenant, &self.admission)
                    {
                        return Some(range.start + rel);
                    }
                }
                None
            }
            None => self.placer.place(&self.nodes, tenant, &self.admission),
        }
    }

    /// Makes `tenant` resident on node `idx`, keeping the active-name
    /// set and the shard summaries in sync.
    fn commit(&mut self, idx: usize, tenant: TenantSpec) {
        if let Some(router) = self.router.as_mut() {
            router.note_place(idx, tenant.demand_sm_equivalents());
        }
        self.active.insert(tenant.name.clone());
        self.nodes[idx].tenants.push(tenant);
    }

    /// Offers `tenant` to the placement policy: on success the tenant
    /// becomes resident; when it does not fit at its requested rate and
    /// re-pricing is on, its [`TenantSpec::fps_ladder`] steps are tried
    /// next (degrade instead of defer); when merely over capacity it
    /// joins the wait queue; when latency-infeasible on every node (at
    /// every admissible price) it is dropped; when its name is already
    /// active it is rejected as a duplicate.
    pub fn dispatch(&mut self, tenant: TenantSpec) -> DispatchOutcome {
        if self.active.contains(&tenant.name) {
            return DispatchOutcome::Duplicate;
        }
        match self.plan_repriced(&tenant) {
            Some(PricedPlan::Full(idx)) => {
                self.commit(idx, tenant);
                return DispatchOutcome::Placed(idx);
            }
            Some(PricedPlan::Degraded(idx, fps)) => {
                self.degraded.insert(tenant.name.clone(), tenant.fps);
                self.commit(idx, tenant.at_fps(fps));
                return DispatchOutcome::PlacedDegraded { node: idx, fps };
            }
            None => {}
        }
        if self.queue_feasible(&tenant) {
            self.active.insert(tenant.name.clone());
            self.queue.push(tenant, self.now);
            DispatchOutcome::Queued
        } else {
            DispatchOutcome::Infeasible
        }
    }

    /// Plans `tenant` at its requested rate, then — with re-pricing on —
    /// down its degrade ladder, best step first. The single definition of
    /// the ladder walk, shared by arrival dispatch and the queue drain.
    fn plan_repriced(&mut self, tenant: &TenantSpec) -> Option<PricedPlan> {
        if let Some(idx) = self.plan(tenant) {
            return Some(PricedPlan::Full(idx));
        }
        if self.cfg.queue.repricing {
            let steps: Vec<f64> = tenant.degrade_steps().collect();
            for fps in steps {
                if let Some(idx) = self.plan(&tenant.at_fps(fps)) {
                    return Some(PricedPlan::Degraded(idx, fps));
                }
            }
        }
        None
    }

    /// Whether some node could ever carry `tenant` once load drains —
    /// at its requested rate or, under re-pricing, at any ladder step.
    /// Best-case latency is load-independent, so a tenant failing the
    /// gate everywhere at every price can never fit and queueing it
    /// would only block the queue.
    fn queue_feasible(&self, tenant: &TenantSpec) -> bool {
        let fits = |t: &TenantSpec| {
            self.nodes
                .iter()
                .any(|node| self.admission.best_case_latency(node, t) <= t.period())
        };
        if fits(tenant) {
            return true;
        }
        self.cfg.queue.repricing
            && tenant
                .degrade_steps()
                .any(|fps| fits(&tenant.at_fps(fps)))
    }

    /// Removes the named tenant wherever it lives (node or queue).
    /// Returns `true` when something was removed. Under the uniqueness
    /// contract of [`TenantSpec::name`] (enforced by [`Self::dispatch`])
    /// at most one active tenant can match.
    pub fn remove(&mut self, name: &str) -> bool {
        if let Some((idx, pos)) = self.locate(name) {
            self.nodes[idx].tenants.remove(pos);
            self.active.remove(name);
            self.degraded.remove(name);
            // A departure frees node capacity: the next drain pass must
            // actually scan the queue again.
            self.capacity_released = true;
            if let Some(router) = self.router.as_mut() {
                router.invalidate_node(idx);
            }
            return true;
        }
        if self.queue.remove(name) {
            self.active.remove(name);
            return true;
        }
        false
    }

    /// Retries queued tenants in policy order; returns how many were
    /// admitted. Stops at the first tenant that still does not fit (at
    /// any admissible price when re-pricing is on), so the queue stays
    /// fair: nothing overtakes within the policy order. When no node
    /// capacity was released since the last pass the scan is skipped
    /// outright — admission is monotone in node load, so a head that did
    /// not fit then cannot fit now.
    pub fn drain_queue(&mut self) -> u64 {
        self.drain_queue_admissions().len() as u64
    }

    /// [`Self::drain_queue`], reporting each admission's name, price, and
    /// wait so `run` can attribute it to the right deferral.
    pub(crate) fn drain_queue_admissions(&mut self) -> Vec<QueueAdmission> {
        let mut admitted = Vec::new();
        if !self.capacity_released {
            return admitted;
        }
        self.drain_scans += 1;
        while let Some(entry) = self.queue.pop_first(self.now) {
            let Some(plan) = self.plan_repriced(&entry.tenant) else {
                // The head fits at no price: stop (no overtaking) and put
                // it back — `reinsert` keeps its arrival serial, so the
                // drain order is unchanged.
                self.queue.reinsert(entry);
                break;
            };
            let waited = self.now.duration_since(entry.enqueued_at);
            let (idx, spec, was_degraded) = match plan {
                PricedPlan::Full(idx) => (idx, entry.tenant, false),
                PricedPlan::Degraded(idx, fps) => {
                    self.degraded
                        .insert(entry.tenant.name.clone(), entry.tenant.fps);
                    (idx, entry.tenant.at_fps(fps), true)
                }
            };
            admitted.push(QueueAdmission {
                name: spec.name.clone(),
                degraded: was_degraded,
                waited,
            });
            self.commit(idx, spec);
        }
        self.capacity_released = false;
        admitted
    }

    /// Drains the wait queue and folds each admission into `builder`
    /// under the shared accounting contract — admissions of *this run's*
    /// deferrals (not `pre_run_queued` carry-overs) count toward
    /// `admitted_after_wait` and the wait statistics, degraded
    /// admissions are tallied, and (with re-pricing on) leftover
    /// capacity then upgrades degraded residents. One definition for
    /// both execution modes, so epoch and event accounting cannot
    /// silently drift; the admissions are returned for mode-specific
    /// bookkeeping (the event engine starts release clocks from them).
    pub(crate) fn drain_and_upgrade_accounted(
        &mut self,
        builder: &mut FleetMetricsBuilder,
        pre_run_queued: &mut HashSet<String>,
    ) -> Vec<QueueAdmission> {
        let admissions = self.drain_queue_admissions();
        for adm in &admissions {
            if !pre_run_queued.remove(&adm.name) {
                builder.admitted_after_wait += 1;
                builder.record_wait(adm.waited);
            }
            if adm.degraded {
                builder.degraded += 1;
            }
        }
        // Leftover capacity steps degraded residents back up their
        // ladders (an in-place partition switch, not a migration) —
        // after waiting admissions: serving more tenants beats serving
        // fewer faster.
        if self.cfg.queue.repricing {
            builder.upgrades += self.upgrade_degraded();
        }
        admissions
    }

    /// Drops queued tenants whose [`TenantSpec::max_wait`] elapsed,
    /// returning their names.
    pub(crate) fn expire_queued(&mut self) -> Vec<String> {
        let expired = self.queue.take_expired(self.now);
        expired
            .into_iter()
            .map(|e| {
                self.active.remove(&e.tenant.name);
                e.tenant.name
            })
            .collect()
    }

    /// Tries to move every degraded resident back up its ladder — to the
    /// requested rate if the node now carries it, else to the highest
    /// ladder step that fits. Upgrades are in-place partition switches on
    /// the resident node (SGPRS's zero-cost reconfiguration), never
    /// migrations, and run in tenant-name order for determinism. Returns
    /// the number of upgrade steps taken.
    pub(crate) fn upgrade_degraded(&mut self) -> u64 {
        if self.degraded.is_empty() {
            return 0;
        }
        let names: Vec<String> = self.degraded.keys().cloned().collect();
        let mut upgrades = 0;
        for name in names {
            let requested = self.degraded[&name];
            // Find the resident (it may have migrated since it degraded).
            let Some((idx, pos)) = self.locate(&name) else {
                // Defensive: a degraded entry with no resident would mean
                // a removal missed the map; drop it rather than retry
                // forever.
                self.degraded.remove(&name);
                continue;
            };
            let resident = self.nodes[idx].tenants.remove(pos);
            // Candidate prices above the current rate, best first.
            let candidates: Vec<f64> = std::iter::once(requested)
                .chain(
                    resident
                        .fps_ladder
                        .iter()
                        .copied()
                        .filter(|&s| s < requested),
                )
                .filter(|&s| s > resident.fps)
                .collect();
            let mut upgraded = None;
            for fps in candidates {
                let priced = resident.at_fps(fps);
                if self.admission.evaluate(&self.nodes[idx], &priced).is_admit() {
                    upgraded = Some(priced);
                    break;
                }
            }
            match upgraded {
                Some(priced) => {
                    if (priced.fps - requested).abs() < 1e-12 {
                        self.degraded.remove(&name);
                    }
                    // Same slot, so placement order (and migration's LIFO
                    // victim choice) is unaffected by the price change.
                    self.nodes[idx].tenants.insert(pos, priced);
                    upgrades += 1;
                    if let Some(router) = self.router.as_mut() {
                        router.invalidate_node(idx);
                    }
                }
                None => self.nodes[idx].tenants.insert(pos, resident),
            }
        }
        upgrades
    }

    /// The node index and tenant slot of the named resident.
    pub(crate) fn locate(&self, name: &str) -> Option<(usize, usize)> {
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Some(pos) = node.tenants.iter().position(|t| t.name == name) {
                return Some((idx, pos));
            }
        }
        None
    }

    /// Drain passes that actually scanned the queue (the skip-scan
    /// fast path does not count).
    #[cfg(test)]
    fn drain_scans(&self) -> u64 {
        self.drain_scans
    }

    fn compiled_for(&mut self, tenant: &TenantSpec, node_idx: usize) -> CompiledTask {
        let key = (
            tenant.model,
            tenant.stages,
            tenant.period().as_nanos(),
            node_idx,
        );
        let pool = self.nodes[node_idx].spec.pool();
        let mut task = self
            .compiled
            .entry(key)
            .or_insert_with(|| tenant.compile_for(&pool))
            .clone();
        task.spec.name = tenant.name.clone();
        task
    }

    /// Runs the fleet over `trace` until `horizon`, returning the
    /// aggregated metrics.
    ///
    /// # Panics
    ///
    /// Panics if the configured epoch is zero.
    #[must_use]
    pub fn run(&mut self, trace: ChurnTrace, horizon: SimDuration) -> FleetMetrics {
        assert!(!self.cfg.epoch.is_zero(), "epoch must be positive");
        let mut builder = FleetMetricsBuilder::new(
            self.nodes.iter().map(|n| n.spec.name.clone()).collect(),
            self.nodes.iter().map(|n| n.spec.gpu.total_sms).collect(),
        );
        let workers = epoch_workers(self.cfg.parallel, self.cfg.workers);
        // Tenants already waiting when `run` starts are not this run's
        // deferrals: their later admission must not offset the eventual-
        // rejection count of arrivals deferred *by this run*.
        let mut pre_run_queued: HashSet<String> =
            self.queue.iter().map(|t| t.name.clone()).collect();
        // Every run is its own timeline starting at zero (matching its
        // trace), so waiters carried over from before this run are
        // re-stamped as enqueued at the start: their wait is excluded
        // from this run's statistics anyway (`pre_run_queued`), and
        // their `max_wait` patience restarts on the new clock rather
        // than expiring against a stale one.
        self.now = SimTime::ZERO;
        self.queue.rebase(SimTime::ZERO);
        let mut events = VecDeque::from(trace.into_sorted());
        let mut epoch_start = SimTime::ZERO;
        let end = SimTime::ZERO + horizon;
        let mut epoch_index = 0u64;
        // Departures observed mid-epoch, applied at the *next* epoch
        // boundary (the granularity contract: a departing tenant serves
        // out its final partial epoch).
        let mut deferred_departures: Vec<String> = Vec::new();
        while epoch_start < end {
            let epoch_len = self.cfg.epoch.min(end.duration_since(epoch_start));
            let epoch_end = epoch_start + epoch_len;
            // 1a. Apply departures from the previous epoch.
            self.now = epoch_start;
            for name in deferred_departures.drain(..) {
                if self.remove(&name) {
                    builder.departures += 1;
                    // A departing pre-run waiter must not leave its name
                    // behind: a later same-named deferred arrival would
                    // match the stale entry and be miscounted as
                    // rejected.
                    pre_run_queued.remove(&name);
                }
            }
            // Waiters whose queue deadline elapsed give up first; an
            // expired in-run deferral was never served, so the eventual-
            // rejection accounting below picks it up.
            for name in self.expire_queued() {
                builder.expired += 1;
                pre_run_queued.remove(&name);
            }
            // The departures may have freed room for queued tenants;
            // the shared helper folds admissions and upgrades in.
            let _ = self.drain_and_upgrade_accounted(&mut builder, &mut pre_run_queued);
            // 1b. Apply churn falling inside this epoch.
            while let Some((at, _)) = events.front() {
                if *at >= epoch_end {
                    break;
                }
                let (at, event) = events.pop_front().expect("front exists");
                match event {
                    ChurnEvent::Arrival(tenant) => {
                        builder.arrivals += 1;
                        let phase = at.duration_since(epoch_start);
                        self.now = at;
                        match self.dispatch(tenant.clone()) {
                            DispatchOutcome::Placed(_) => {
                                builder.admitted += 1;
                                self.pending_phase.insert(tenant.name, phase);
                            }
                            DispatchOutcome::PlacedDegraded { .. } => {
                                builder.admitted += 1;
                                builder.degraded += 1;
                                self.pending_phase.insert(tenant.name, phase);
                            }
                            DispatchOutcome::Queued => builder.deferred += 1,
                            DispatchOutcome::Infeasible => builder.infeasible += 1,
                            DispatchOutcome::Duplicate => builder.duplicates += 1,
                        }
                    }
                    ChurnEvent::Departure(name) => deferred_departures.push(name),
                }
            }
            self.now = epoch_end;
            // 2. Sample utilisation and prepare each non-empty node's
            // compiled tasks. Preparation needs `&mut self` (the compile
            // cache), so it runs before the fan-out, which only reads
            // `&self.nodes`.
            let mut epoch_dmr: Vec<f64> = vec![0.0; self.nodes.len()];
            let mut jobs: Vec<NodeEpochJob> = Vec::new();
            // Indexing (not iterating `self.nodes`) because the body
            // needs `&mut self` for the compiled-task cache.
            #[allow(clippy::needless_range_loop)]
            for idx in 0..self.nodes.len() {
                let budget = self.admission.budget(&self.nodes[idx], None);
                let demand = self.nodes[idx].total_demand();
                builder.record_utilization(
                    idx,
                    if budget > 0.0 { demand / budget } else { 0.0 },
                );
                if self.nodes[idx].tenants.is_empty() {
                    continue;
                }
                let tenants = self.nodes[idx].tenants.clone();
                let tasks: Vec<CompiledTask> = tenants
                    .iter()
                    .map(|t| {
                        let mut task = self.compiled_for(t, idx);
                        task.spec.phase = self
                            .pending_phase
                            .get(&t.name)
                            .copied()
                            .unwrap_or(SimDuration::ZERO);
                        task
                    })
                    .collect();
                let seed = self
                    .cfg
                    .seed
                    .wrapping_add(epoch_index.wrapping_mul(0x9E37_79B9))
                    .wrapping_add(idx as u64);
                jobs.push(NodeEpochJob { idx, tasks, seed });
            }
            self.pending_phase.clear();
            // Nodes are independent within an epoch: fan out, then fold
            // in ascending node index so the metrics are bit-identical
            // to the sequential path.
            for (idx, m) in run_node_epochs(&self.nodes, jobs, epoch_len, workers) {
                if m.released > 0 {
                    epoch_dmr[idx] = (m.late + m.skipped + m.dropped) as f64 / m.released as f64;
                }
                builder.record_epoch(idx, &m);
            }
            // 3. Shed load from nodes that missed too much this epoch.
            if self.cfg.migration.enabled {
                builder.migrations += self.migrate_overloaded(&epoch_dmr);
            }
            epoch_start = epoch_end;
            epoch_index += 1;
        }
        // Departures whose boundary is the end of the run still count.
        for name in deferred_departures.drain(..) {
            if self.remove(&name) {
                builder.departures += 1;
            }
        }
        // Rejections are *eventual* outcomes: a deferred arrival that was
        // never admitted later — still queued at the end, or departed
        // while waiting — never got served. `admitted_after_wait` counts
        // only this run's deferrals (pre-run queue admissions are
        // filtered above), so it never exceeds `deferred`.
        builder.rejected = builder.deferred - builder.admitted_after_wait;
        let final_tenants: Vec<usize> = self.nodes.iter().map(|n| n.tenants.len()).collect();
        builder.finish(horizon, &final_tenants, self.queue.len() as u64)
    }

    /// Runs the fleet over `trace` until `horizon` in **event-driven**
    /// mode, returning the aggregated metrics.
    ///
    /// Where [`Fleet::run`] quantises to the epoch grid, this path
    /// processes a monotonic event queue (see [`crate::event`] for the
    /// ordering/determinism contract): scheduler state carries across
    /// what used to be epoch boundaries so no in-flight job is ever
    /// truncated ([`FleetMetrics::truncated_jobs`] is asserted zero),
    /// departures apply at their exact instant, and DMR-triggered
    /// migration fires at job-release boundaries, paying the
    /// [`MigrationConfig::cost`] state-transfer stall — while re-pricing
    /// degrade/upgrade switches stay free partition switches. The run is
    /// single-threaded and deterministic: [`FleetConfig::workers`] /
    /// [`FleetConfig::parallel`] have no effect, so the metrics are
    /// byte-identical across those knobs; sharding steers placement
    /// exactly as on the epoch path (deterministic per configuration,
    /// identical to flat only for a whole-fleet shard).
    ///
    /// # Panics
    ///
    /// Panics if the configured epoch is zero (it paces utilisation
    /// sampling and the migration DMR window), or — defensively — if any
    /// admitted job failed to run to completion.
    #[must_use]
    pub fn run_events(&mut self, trace: ChurnTrace, horizon: SimDuration) -> FleetMetrics {
        crate::event::run_events(self, trace, horizon)
    }

    /// Runs `trace` in whichever execution mode the configuration
    /// selects: [`Fleet::run_events`] when
    /// [`FleetConfig::event_driven`] is set, the classic epoch-driven
    /// [`Fleet::run`] otherwise.
    #[must_use]
    pub fn run_configured(&mut self, trace: ChurnTrace, horizon: SimDuration) -> FleetMetrics {
        if self.cfg.event_driven {
            self.run_events(trace, horizon)
        } else {
            self.run(trace, horizon)
        }
    }

    /// Chooses the destination for migrating `victim` off `src`: among
    /// the *other* nodes, those whose miss estimate is at or under
    /// `threshold` (admission alone would happily bounce a tenant
    /// between two hot nodes forever) and that admit the victim, the
    /// least loaded by demand/budget. One policy shared by the epoch
    /// path's per-boundary sweep and the event engine's release-boundary
    /// migration, so the two modes cannot silently fork.
    pub(crate) fn migration_destination(
        &self,
        src: usize,
        victim: &TenantSpec,
        node_dmr: &[f64],
        threshold: f64,
    ) -> Option<usize> {
        (0..self.nodes.len())
            .filter(|&j| j != src)
            .filter(|&j| node_dmr[j] <= threshold)
            .filter(|&j| self.admission.evaluate(&self.nodes[j], victim).is_admit())
            .min_by(|&a, &b| {
                let load = |j: usize| {
                    let budget = self.admission.budget(&self.nodes[j], None);
                    if budget > 0.0 {
                        self.nodes[j].total_demand() / budget
                    } else {
                        f64::INFINITY
                    }
                };
                load(a).total_cmp(&load(b))
            })
    }

    /// Moves the most recently placed tenant off every node whose epoch
    /// miss rate crossed the threshold, if another node admits it.
    fn migrate_overloaded(&mut self, epoch_dmr: &[f64]) -> u64 {
        let mut migrations = 0;
        // Indexing because the body mutates several nodes at once.
        #[allow(clippy::needless_range_loop)]
        for idx in 0..self.nodes.len() {
            if epoch_dmr[idx] <= self.cfg.migration.dmr_threshold
                || self.nodes[idx].tenants.len() < 2
            {
                continue;
            }
            let Some(tenant) = self.nodes[idx].tenants.pop() else {
                continue;
            };
            let moved = {
                let candidate_idx = self.migration_destination(
                    idx,
                    &tenant,
                    epoch_dmr,
                    self.cfg.migration.dmr_threshold,
                );
                match candidate_idx {
                    Some(j) => {
                        self.nodes[j].tenants.push(tenant.clone());
                        if let Some(router) = self.router.as_mut() {
                            router.invalidate_node(idx);
                            router.invalidate_node(j);
                        }
                        // The source node freed capacity: a waiter that
                        // routed anywhere may now fit there.
                        self.capacity_released = true;
                        true
                    }
                    None => false,
                }
            };
            if moved {
                migrations += 1;
            } else {
                // Nobody can take it; keep it where it was.
                self.nodes[idx].tenants.push(tenant);
            }
        }
        migrations
    }
}

/// Where the re-pricing ladder found room for a tenant.
enum PricedPlan {
    /// Fits at its requested rate on this node.
    Full(usize),
    /// Fits only at the given degraded ladder step on this node.
    Degraded(usize, f64),
}

/// One admission out of the wait queue: who got in, at what price, and
/// after how long a wait.
pub(crate) struct QueueAdmission {
    pub(crate) name: String,
    pub(crate) degraded: bool,
    pub(crate) waited: SimDuration,
}

/// One node's prepared work for an epoch: the compiled tasks (with their
/// release phases applied) and the node's jitter seed.
struct NodeEpochJob {
    idx: usize,
    tasks: Vec<CompiledTask>,
    seed: u64,
}

impl NodeEpochJob {
    fn run(self, nodes: &[FleetNode], epoch_len: SimDuration) -> (usize, RunMetrics) {
        let m = nodes[self.idx].spec.run_epoch(self.tasks, epoch_len, self.seed);
        (self.idx, m)
    }
}

/// Worker-thread count for the per-epoch fan-out: the override (or every
/// available core) when `parallel`, one otherwise.
fn epoch_workers(parallel: bool, over: Option<usize>) -> usize {
    if parallel {
        over.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    } else {
        1
    }
}

/// Runs the prepared per-node epoch jobs — over `workers` scoped worker
/// threads when more than one — and returns `(node index, metrics)`
/// pairs sorted by node index, so folding them is deterministic
/// regardless of the execution strategy.
fn run_node_epochs(
    nodes: &[FleetNode],
    jobs: Vec<NodeEpochJob>,
    epoch_len: SimDuration,
    workers: usize,
) -> Vec<(usize, RunMetrics)> {
    let workers = workers.min(jobs.len());
    let mut results: Vec<(usize, RunMetrics)> = if workers <= 1 {
        jobs.into_iter().map(|job| job.run(nodes, epoch_len)).collect()
    } else {
        // Partition the node indices round-robin across the workers; each
        // worker hands its (idx, metrics) pairs back through its join
        // handle, so no locks are involved.
        let mut buckets: Vec<Vec<NodeEpochJob>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            buckets[i % workers].push(job);
        }
        crossbeam::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move |_| {
                        bucket
                            .into_iter()
                            .map(|job| job.run(nodes, epoch_len))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("node epoch workers never panic"))
                .collect()
        })
        .expect("epoch worker scope never fails")
    };
    results.sort_by_key(|&(idx, _)| idx);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChurnConfig, ModelKind, NodeScheduler};
    use sgprs_gpu_sim::GpuSpec;

    fn three_node_fleet() -> FleetConfig {
        FleetConfig::new(vec![
            NodeSpec::sgprs("gpu0", GpuSpec::rtx_2080_ti()),
            NodeSpec::sgprs("gpu1", GpuSpec::rtx_2080_ti()),
            NodeSpec::sgprs("gpu2", GpuSpec::rtx_2080_ti()),
        ])
    }

    fn tenant(i: usize) -> TenantSpec {
        TenantSpec::new(format!("cam-{i}"), ModelKind::ResNet18, 30.0)
    }

    #[test]
    fn dispatch_places_until_saturation_then_queues() {
        let mut fleet = Fleet::new(three_node_fleet());
        let mut placed = 0;
        let mut queued = 0;
        for i in 0..100 {
            match fleet.dispatch(tenant(i)) {
                DispatchOutcome::Placed(_) => placed += 1,
                DispatchOutcome::Queued => queued += 1,
                other => panic!("resnet18@30fps with a fresh name always dispatches: {other:?}"),
            }
        }
        assert!(placed >= 45, "3 GPUs take ≥ 15 tenants each, got {placed}");
        assert!(queued > 0, "admission control must eventually say no");
        assert_eq!(fleet.queued(), queued);
    }

    #[test]
    fn infeasible_tenants_are_dropped_not_queued() {
        let mut fleet = Fleet::new(three_node_fleet());
        // VGG-16 at 30 fps cannot meet its period on any node: dropping
        // it keeps the wait queue's head from blocking forever.
        let hopeless = TenantSpec::new("vgg", ModelKind::Vgg16, 30.0);
        assert_eq!(fleet.dispatch(hopeless), DispatchOutcome::Infeasible);
        assert_eq!(fleet.queued(), 0);
        // And a run over a trace containing one reports it as such.
        let mut trace = ChurnTrace::new();
        trace.push(
            sgprs_rt::SimTime::ZERO,
            crate::ChurnEvent::Arrival(TenantSpec::new("vgg", ModelKind::Vgg16, 30.0)),
        );
        trace.push(
            sgprs_rt::SimTime::ZERO,
            crate::ChurnEvent::Arrival(tenant(0)),
        );
        let m = fleet.run(trace, SimDuration::from_secs(1));
        assert_eq!(m.infeasible, 1);
        assert_eq!(m.admitted, 1);
        assert_eq!(m.still_queued, 0);
        assert!((m.rejection_rate - 0.5).abs() < 1e-9);
    }

    #[test]
    fn departures_take_effect_at_the_following_boundary() {
        let mut fleet = Fleet::new(three_node_fleet());
        let mut trace = ChurnTrace::new();
        let t = tenant(0);
        let name = t.name.clone();
        trace.push(sgprs_rt::SimTime::ZERO, crate::ChurnEvent::Arrival(t));
        // Departs mid-second-epoch: it must still serve epoch 2 fully.
        trace.push(
            sgprs_rt::SimTime::ZERO + SimDuration::from_millis(1_500),
            crate::ChurnEvent::Departure(name),
        );
        let m = fleet.run(trace, SimDuration::from_secs(3));
        assert_eq!(m.departures, 1);
        assert!(fleet.nodes().iter().all(|n| n.tenants.is_empty()));
        // Two full epochs of 30 fps service (minus boundary truncation),
        // not one: retroactive removal would roughly halve this.
        assert!(
            m.nodes[0].completed + m.nodes[1].completed + m.nodes[2].completed >= 50,
            "{m:?}"
        );
    }

    #[test]
    fn departures_let_queued_tenants_in() {
        let mut fleet = Fleet::new(three_node_fleet());
        let mut names = Vec::new();
        // Saturate, then one more that must queue.
        let mut i = 0;
        loop {
            let t = tenant(i);
            let name = t.name.clone();
            match fleet.dispatch(t) {
                DispatchOutcome::Placed(_) => names.push(name),
                DispatchOutcome::Queued => break,
                other => panic!("resnet18@30fps with a fresh name always dispatches: {other:?}"),
            }
            i += 1;
        }
        assert_eq!(fleet.queued(), 1);
        assert!(fleet.remove(&names[0]), "departure frees capacity");
        assert_eq!(fleet.drain_queue(), 1, "queued tenant admitted");
        assert_eq!(fleet.queued(), 0);
    }

    #[test]
    fn static_population_run_produces_fleet_throughput() {
        let mut fleet = Fleet::new(three_node_fleet());
        let trace = ChurnTrace::static_population((0..6).map(tenant));
        let m = fleet.run(trace, SimDuration::from_secs(2));
        assert!(m.total_fps > 150.0, "6 × 30 fps minus truncation: {m:?}");
        assert_eq!(m.arrivals, 6);
        assert_eq!(m.admitted, 6);
        assert_eq!(m.rejection_rate, 0.0);
        let node_sum: f64 = m.nodes.iter().map(|n| n.fps).sum();
        assert!((node_sum - m.total_fps).abs() < 1e-6);
    }

    #[test]
    fn churn_run_reports_rejections_under_pressure() {
        // One small GPU, heavy arrivals: rejections are inevitable.
        let cfg = FleetConfig::new(vec![NodeSpec::sgprs("small", GpuSpec::synthetic(23))]);
        let mut fleet = Fleet::new(cfg);
        let churn = ChurnConfig {
            mean_interarrival: SimDuration::from_millis(100),
            min_lifetime: SimDuration::from_secs(2),
            max_lifetime: SimDuration::from_secs(4),
            ..ChurnConfig::default()
        };
        let horizon = SimDuration::from_secs(4);
        let trace = ChurnTrace::generate(&churn, horizon, 11);
        let m = fleet.run(trace, horizon);
        assert!(m.arrivals > 10);
        assert!(m.rejected > 0, "{m:?}");
        assert!(m.rejection_rate > 0.0 && m.rejection_rate <= 1.0);
        assert!(m.total_fps > 0.0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run_once = || {
            let mut fleet = Fleet::new(three_node_fleet().with_seed(99));
            let churn = ChurnConfig::default();
            let horizon = SimDuration::from_secs(3);
            let trace = ChurnTrace::generate(&churn, horizon, 5);
            fleet.run(trace, horizon)
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn queued_then_admitted_tenants_are_not_rejections() {
        // Regression: `rejection_rate` used to count a queued-then-
        // admitted tenant as rejected forever. Saturate one small node,
        // queue one extra arrival, then free room with a departure: the
        // waiter is admitted and must not appear as a rejection.
        let cfg = || FleetConfig::new(vec![NodeSpec::sgprs("small", GpuSpec::synthetic(23))]);
        let mut scratch = Fleet::new(cfg());
        let mut fit = 0;
        while matches!(scratch.dispatch(tenant(fit)), DispatchOutcome::Placed(_)) {
            fit += 1;
        }
        assert!(fit >= 2, "a 23-SM node takes a few tenants");
        let mut trace = ChurnTrace::new();
        for i in 0..=fit {
            trace.push(sgprs_rt::SimTime::ZERO, crate::ChurnEvent::Arrival(tenant(i)));
        }
        trace.push(
            sgprs_rt::SimTime::ZERO + SimDuration::from_millis(500),
            crate::ChurnEvent::Departure(tenant(0).name),
        );
        let mut fleet = Fleet::new(cfg());
        let m = fleet.run(trace, SimDuration::from_secs(3));
        assert_eq!(m.arrivals as usize, fit + 1);
        assert_eq!(m.deferred, 1, "one arrival had to wait");
        assert_eq!(m.admitted_after_wait, 1, "and got in after the departure");
        assert_eq!(m.rejected, 0, "eventual admission is not a rejection: {m:?}");
        assert_eq!(m.rejection_rate, 0.0);
        assert_eq!(m.still_queued, 0);
    }

    #[test]
    fn pre_run_queue_admissions_do_not_mask_in_run_rejections() {
        // Regression: a tenant queued via `dispatch` *before* `run` and
        // admitted mid-run used to cancel out one genuinely-rejected
        // in-run deferral in the eventual accounting.
        let mut fleet = Fleet::new(FleetConfig::new(vec![NodeSpec::sgprs(
            "small",
            GpuSpec::synthetic(23),
        )]));
        let mut i = 0;
        let resident = loop {
            match fleet.dispatch(tenant(i)) {
                DispatchOutcome::Placed(_) => i += 1,
                DispatchOutcome::Queued => break i,
                other => panic!("unexpected {other:?}"),
            }
        };
        assert_eq!(fleet.queued(), 1, "tenant {resident} waits pre-run");
        let mut trace = ChurnTrace::new();
        // An in-run arrival that must also wait, behind the pre-run one…
        trace.push(
            sgprs_rt::SimTime::ZERO + SimDuration::from_millis(200),
            crate::ChurnEvent::Arrival(tenant(resident + 1)),
        );
        // …and one departure, freeing room for exactly one of them.
        trace.push(
            sgprs_rt::SimTime::ZERO + SimDuration::from_millis(500),
            crate::ChurnEvent::Departure(tenant(0).name),
        );
        let m = fleet.run(trace, SimDuration::from_secs(3));
        assert_eq!(m.deferred, 1, "the in-run arrival waited");
        assert_eq!(
            m.admitted_after_wait, 0,
            "the freed slot went to the pre-run tenant, which is not this run's deferral"
        );
        assert_eq!(m.rejected, 1, "the in-run arrival was never served: {m:?}");
        assert_eq!(m.still_queued, 1);
    }

    #[test]
    fn still_waiting_arrivals_do_count_as_rejections() {
        // The flip side: with no departures the deferred tenant never
        // gets in, and the eventual accounting reports it rejected.
        let cfg = FleetConfig::new(vec![NodeSpec::sgprs("small", GpuSpec::synthetic(23))]);
        let mut scratch = Fleet::new(cfg.clone());
        let mut fit = 0;
        while matches!(scratch.dispatch(tenant(fit)), DispatchOutcome::Placed(_)) {
            fit += 1;
        }
        let trace = ChurnTrace::static_population((0..=fit).map(tenant));
        let m = Fleet::new(cfg).run(trace, SimDuration::from_secs(2));
        assert_eq!(m.deferred, 1);
        assert_eq!(m.admitted_after_wait, 0);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.still_queued, 1);
        assert!((m.rejection_rate - 1.0 / (fit as f64 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn duplicate_active_names_are_rejected() {
        let mut fleet = Fleet::new(three_node_fleet());
        assert!(matches!(fleet.dispatch(tenant(0)), DispatchOutcome::Placed(_)));
        assert_eq!(fleet.dispatch(tenant(0)), DispatchOutcome::Duplicate);
        let resident: usize = fleet.nodes().iter().map(|n| n.tenants.len()).sum();
        assert_eq!(resident, 1, "no ghost twin was placed");
        // Departure frees the name for reuse.
        assert!(fleet.remove(&tenant(0).name));
        assert!(matches!(fleet.dispatch(tenant(0)), DispatchOutcome::Placed(_)));
        // Queued names are active too: a duplicate of a waiting tenant
        // would equally confuse removal.
        let mut small = Fleet::new(FleetConfig::new(vec![NodeSpec::sgprs(
            "small",
            GpuSpec::synthetic(23),
        )]));
        let mut i = 0;
        while matches!(small.dispatch(tenant(i)), DispatchOutcome::Placed(_)) {
            i += 1;
        }
        assert_eq!(small.queued(), 1, "tenant {i} waits");
        assert_eq!(small.dispatch(tenant(i)), DispatchOutcome::Duplicate);
    }

    #[test]
    fn duplicate_arrivals_in_a_trace_are_counted_not_served() {
        let mut fleet = Fleet::new(three_node_fleet());
        let mut trace = ChurnTrace::new();
        trace.push(sgprs_rt::SimTime::ZERO, crate::ChurnEvent::Arrival(tenant(1)));
        trace.push(sgprs_rt::SimTime::ZERO, crate::ChurnEvent::Arrival(tenant(1)));
        let m = fleet.run(trace, SimDuration::from_secs(1));
        assert_eq!(m.arrivals, 2);
        assert_eq!(m.admitted, 1);
        assert_eq!(m.duplicates, 1);
        assert_eq!(m.rejection_rate, 0.0, "duplicates are not capacity rejections");
        let resident: usize = fleet.nodes().iter().map(|n| n.tenants.len()).sum();
        assert_eq!(resident, 1);
    }

    #[test]
    fn parallel_and_sequential_epochs_are_bit_identical() {
        // Heterogeneous devices *and* schedulers under churn plus
        // migration — the worst case for accidental order dependence.
        let nodes = || {
            vec![
                NodeSpec::sgprs("a", GpuSpec::rtx_2080_ti()),
                NodeSpec::sgprs("b", GpuSpec::synthetic(34)).with_scheduler(NodeScheduler::Naive),
                NodeSpec::sgprs("c", GpuSpec::synthetic(23)),
            ]
        };
        let run_with = |cfg: FleetConfig| {
            let churn = ChurnConfig {
                mean_interarrival: SimDuration::from_millis(120),
                ..ChurnConfig::default()
            };
            let horizon = SimDuration::from_secs(4);
            let trace = ChurnTrace::generate(&churn, horizon, 17);
            Fleet::new(cfg).run(trace, horizon)
        };
        let par = run_with(FleetConfig::new(nodes()).with_migration(0.1));
        let seq = run_with(FleetConfig::new(nodes()).with_migration(0.1).sequential());
        assert_eq!(par, seq, "parallelism must never change results");
        assert_eq!(par.to_json(), seq.to_json());
    }

    #[test]
    fn migration_moves_load_off_an_overloaded_node() {
        // Two nodes, round-robin placement is blind to the size gap, so
        // the small node overloads and migration must bail it out.
        let cfg = FleetConfig::new(vec![
            NodeSpec::sgprs("small", GpuSpec::synthetic(16)),
            NodeSpec::sgprs("big", GpuSpec::rtx_2080_ti()),
        ])
        .with_placement(PlacementPolicy::RoundRobin)
        .with_migration(0.05);
        // Force-load the small node beyond its means.
        let mut fleet = Fleet::new(cfg);
        for i in 0..6 {
            fleet.nodes[0].tenants.push(tenant(i));
        }
        let m = fleet.run(ChurnTrace::new(), SimDuration::from_secs(3));
        assert!(m.migrations > 0, "{m:?}");
        assert!(
            fleet.nodes()[0].tenants.len() < 6,
            "the small node shed load"
        );
        assert!(
            !fleet.nodes()[1].tenants.is_empty(),
            "the big node absorbed it"
        );
    }

    #[test]
    fn forced_multi_worker_fanout_matches_inline_execution() {
        // `available_parallelism()` is 1 in small CI containers, which
        // would leave the scoped-thread path untested: drive
        // `run_node_epochs` with an explicit worker count instead.
        let nodes: Vec<FleetNode> = three_node_fleet()
            .nodes
            .into_iter()
            .map(FleetNode::new)
            .collect();
        let jobs = || -> Vec<NodeEpochJob> {
            (0..nodes.len())
                .map(|idx| NodeEpochJob {
                    idx,
                    tasks: (0..3)
                        .map(|j| tenant(idx * 3 + j).compile_for(&nodes[idx].spec.pool()))
                        .collect(),
                    seed: 42 + idx as u64,
                })
                .collect()
        };
        let epoch = SimDuration::from_secs(1);
        let inline = run_node_epochs(&nodes, jobs(), epoch, 1);
        let fanned = run_node_epochs(&nodes, jobs(), epoch, 4);
        assert_eq!(inline.len(), nodes.len());
        assert!(inline.iter().all(|(_, m)| m.released > 0));
        assert_eq!(inline, fanned, "thread count must never change results");
    }

    #[test]
    fn migration_never_targets_a_node_over_the_dmr_threshold() {
        // Regression: the destination filter used to check admission
        // only. A naive-scheduler node sized well under its *fluid*
        // budget still misses deadlines (the budget is calibrated for
        // SGPRS), so admission would happily accept a migrant onto a
        // node that is itself hot — and two such nodes ping-pong the
        // same tenant forever. Destinations past the DMR threshold are
        // now excluded.
        let cfg = FleetConfig::new(vec![
            NodeSpec::sgprs("src", GpuSpec::synthetic(16)),
            NodeSpec::sgprs("hot-dest", GpuSpec::rtx_2080_ti())
                .with_scheduler(NodeScheduler::Naive),
        ])
        .with_migration(0.05);
        let mut fleet = Fleet::new(cfg);
        // Overload the small source node outright.
        for i in 0..6 {
            fleet.nodes[0].tenants.push(tenant(i));
        }
        // Load the naive node under its admission budget but past what
        // it can actually serve.
        for i in 6..24 {
            fleet.nodes[1].tenants.push(tenant(i));
        }
        let migrant = fleet.nodes[0].tenants.last().cloned().expect("loaded");
        assert!(
            fleet
                .admission()
                .evaluate(&fleet.nodes()[1], &migrant)
                .is_admit(),
            "the destination must look admissible (that is the trap)"
        );
        let m = fleet.run(ChurnTrace::new(), SimDuration::from_secs(3));
        assert!(
            m.nodes[1].dmr > 0.05,
            "the naive node must actually be hot: {m:?}"
        );
        assert_eq!(
            m.migrations, 0,
            "no tenant may migrate onto a node over the DMR threshold: {m:?}"
        );
        assert_eq!(fleet.nodes()[0].tenants.len(), 6, "source population intact");
        assert_eq!(fleet.nodes()[1].tenants.len(), 18, "destination untouched");
    }

    #[test]
    fn drain_skips_the_scan_until_capacity_is_released() {
        // Regression for the epoch-drain hot path: once a pass leaves the
        // head unplaced, further drains are O(1) until a departure (or
        // migration) frees node capacity.
        let mut fleet = Fleet::new(FleetConfig::new(vec![NodeSpec::sgprs(
            "small",
            GpuSpec::synthetic(23),
        )]));
        let mut i = 0;
        let mut names = Vec::new();
        loop {
            let t = tenant(i);
            let name = t.name.clone();
            match fleet.dispatch(t) {
                DispatchOutcome::Placed(_) => names.push(name),
                DispatchOutcome::Queued => break,
                other => panic!("unexpected {other:?}"),
            }
            i += 1;
        }
        // Queue one more waiter behind the first.
        assert_eq!(fleet.dispatch(tenant(i + 1)), DispatchOutcome::Queued);
        let before = fleet.drain_scans();
        assert_eq!(fleet.drain_queue(), 0, "nothing departed yet");
        assert_eq!(fleet.drain_scans(), before + 1, "first pass scans");
        for _ in 0..5 {
            assert_eq!(fleet.drain_queue(), 0);
        }
        assert_eq!(
            fleet.drain_scans(),
            before + 1,
            "no release, no further scans"
        );
        // Ordering is preserved across the skipped passes: the departure
        // admits the first-queued tenant, not the later one.
        assert_eq!(
            fleet.queued_names(),
            vec![tenant(i).name, tenant(i + 1).name]
        );
        assert!(fleet.remove(&names[0]));
        assert_eq!(fleet.drain_queue(), 1);
        assert_eq!(fleet.drain_scans(), before + 2, "release re-arms the scan");
        assert_eq!(fleet.queued_names(), vec![tenant(i + 1).name]);
    }

    #[test]
    fn priority_policy_admits_heavier_waiters_first() {
        let cfg = FleetConfig::new(vec![NodeSpec::sgprs("small", GpuSpec::synthetic(23))])
            .with_queue_policy(crate::QueuePolicy::Priority);
        let mut fleet = Fleet::new(cfg);
        let mut i = 0;
        let mut resident = Vec::new();
        loop {
            let t = tenant(i);
            let name = t.name.clone();
            match fleet.dispatch(t) {
                DispatchOutcome::Placed(_) => resident.push(name),
                DispatchOutcome::Queued => break,
                other => panic!("unexpected {other:?}"),
            }
            i += 1;
        }
        // The saturating arrival queued with default weight; add a
        // heavier later waiter that must overtake it in drain order.
        let vip = TenantSpec::new("vip", ModelKind::ResNet18, 30.0).with_weight(9);
        assert_eq!(fleet.dispatch(vip), DispatchOutcome::Queued);
        assert_eq!(fleet.queued_names()[0], "vip");
        assert!(fleet.remove(&resident[0]));
        assert_eq!(fleet.drain_queue(), 1);
        assert!(
            fleet.queued_names().iter().all(|n| n != "vip"),
            "the heavier waiter was admitted first"
        );
    }

    #[test]
    fn repricing_admits_degraded_then_upgrades_after_departures() {
        let cfg = FleetConfig::new(vec![NodeSpec::sgprs("gpu", GpuSpec::rtx_2080_ti())])
            .with_repricing();
        let mut fleet = Fleet::new(cfg);
        // Saturate at 30 fps with no-ladder fillers: leftover headroom is
        // strictly below one filler demand `d`.
        let mut i = 0;
        let mut fillers = Vec::new();
        loop {
            let t = tenant(i);
            let name = t.name.clone();
            match fleet.dispatch(t) {
                DispatchOutcome::Placed(_) => fillers.push(name),
                DispatchOutcome::Queued => {
                    assert!(fleet.remove(&name), "scaffolding waiter removed");
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
            i += 1;
        }
        // One departure lifts headroom into [d, 2d): a 60 fps request
        // (demand exactly 2d) cannot fit, its 30 fps ladder step (demand
        // exactly d) must.
        assert!(fleet.remove(&fillers[0]));
        let priced = TenantSpec::new("elastic", ModelKind::ResNet18, 60.0)
            .with_fps_ladder([30.0, 24.0, 15.0]);
        let outcome = fleet.dispatch(priced);
        let DispatchOutcome::PlacedDegraded { fps, .. } = outcome else {
            panic!("expected a degraded admission, got {outcome:?}");
        };
        assert!((fps - 30.0).abs() < 1e-12, "top viable step wins: {fps}");
        assert_eq!(fleet.degraded_residents(), 1);
        // Two more departures free 2d; a run over an empty trace upgrades
        // the tenant back to its requested rate (one more d) at the next
        // epoch boundary.
        assert!(fleet.remove(&fillers[1]));
        assert!(fleet.remove(&fillers[2]));
        let m = fleet.run(ChurnTrace::new(), SimDuration::from_secs(2));
        assert!(m.upgrades >= 1, "{m:?}");
        assert_eq!(fleet.degraded_residents(), 0, "fully restored");
        let restored = fleet
            .nodes()
            .iter()
            .flat_map(|n| n.tenants.iter())
            .find(|t| t.name == "elastic")
            .expect("still resident");
        assert!((restored.fps - 60.0).abs() < 1e-12, "{}", restored.fps);
    }

    #[test]
    fn repricing_keeps_infeasible_models_out_unless_a_step_fits() {
        // VGG-16@30fps is latency-infeasible everywhere; with a ladder
        // step at 15 fps (feasible on a full device) re-pricing admits it
        // degraded instead of dropping it.
        let mut fleet = Fleet::new(
            FleetConfig::new(vec![NodeSpec::sgprs("gpu", GpuSpec::rtx_2080_ti())])
                .with_repricing(),
        );
        let vgg = TenantSpec::new("vgg", ModelKind::Vgg16, 30.0).with_fps_ladder([15.0]);
        match fleet.dispatch(vgg) {
            DispatchOutcome::PlacedDegraded { fps, .. } => {
                assert!((fps - 15.0).abs() < 1e-12);
            }
            other => panic!("expected degraded admission, got {other:?}"),
        }
        // Without a ladder the same model is still dropped outright.
        let hopeless = TenantSpec::new("vgg2", ModelKind::Vgg16, 30.0);
        assert_eq!(fleet.dispatch(hopeless), DispatchOutcome::Infeasible);
    }

    #[test]
    fn expired_waiters_count_as_rejections() {
        // One saturated small node; a waiter with a 1-epoch patience
        // gives up and is accounted as an eventual rejection.
        let cfg = || FleetConfig::new(vec![NodeSpec::sgprs("small", GpuSpec::synthetic(23))]);
        let mut scratch = Fleet::new(cfg());
        let mut fit = 0;
        while matches!(scratch.dispatch(tenant(fit)), DispatchOutcome::Placed(_)) {
            fit += 1;
        }
        let mut trace = ChurnTrace::new();
        for i in 0..fit {
            trace.push(sgprs_rt::SimTime::ZERO, crate::ChurnEvent::Arrival(tenant(i)));
        }
        trace.push(
            sgprs_rt::SimTime::ZERO,
            crate::ChurnEvent::Arrival(
                TenantSpec::new("impatient", ModelKind::ResNet18, 30.0)
                    .with_max_wait(SimDuration::from_secs(1)),
            ),
        );
        let mut fleet = Fleet::new(cfg());
        let m = fleet.run(trace, SimDuration::from_secs(4));
        assert_eq!(m.deferred, 1);
        assert_eq!(m.expired, 1, "{m:?}");
        assert_eq!(m.rejected, 1, "an expired waiter was never served");
        assert_eq!(m.still_queued, 0, "it left the queue");
        assert_eq!(fleet.queued(), 0);
    }

    #[test]
    fn second_run_restarts_the_queue_clock_for_carried_over_waiters() {
        // Regression: a waiter surviving run 1 used to keep its absolute
        // enqueue stamp, so run 2 (whose clock restarts at zero) measured
        // nonsense waits and stretched the patience window far past
        // `max_wait`. Each run now re-stamps carried-over waiters at its
        // own start.
        let mut fleet = Fleet::new(FleetConfig::new(vec![NodeSpec::sgprs(
            "small",
            GpuSpec::synthetic(23),
        )]));
        let mut fit = 0;
        while matches!(fleet.dispatch(tenant(fit)), DispatchOutcome::Placed(_)) {
            fit += 1;
        }
        assert!(fleet.remove(&tenant(fit).name), "scaffolding waiter out");
        let mut trace = ChurnTrace::new();
        trace.push(
            sgprs_rt::SimTime::ZERO + SimDuration::from_millis(3_500),
            crate::ChurnEvent::Arrival(
                TenantSpec::new("patient", ModelKind::ResNet18, 30.0)
                    .with_max_wait(SimDuration::from_secs(2)),
            ),
        );
        let m1 = fleet.run(trace, SimDuration::from_secs(4));
        assert_eq!(m1.deferred, 1);
        assert_eq!(m1.expired, 0, "deadline 5.5s is past run 1's horizon");
        assert_eq!(m1.still_queued, 1);
        // Run 2 is short: the re-based 2-second patience does not elapse.
        let m2 = fleet.run(ChurnTrace::new(), SimDuration::from_secs(2));
        assert_eq!(m2.expired, 0, "patience restarted, not inherited");
        assert_eq!(m2.still_queued, 1);
        // Run 3 is long enough for the re-based patience to elapse.
        let m3 = fleet.run(ChurnTrace::new(), SimDuration::from_secs(4));
        assert_eq!(m3.expired, 1, "{m3:?}");
        assert_eq!(m3.still_queued, 0);
    }

    #[test]
    fn fifo_default_metrics_are_bit_identical_to_the_pre_queue_dispatcher() {
        // The default config must not change behaviour: same run, same
        // JSON, with the new counters pinned at zero.
        let run_once = || {
            let mut fleet = Fleet::new(three_node_fleet().with_seed(7));
            let churn = ChurnConfig {
                mean_interarrival: SimDuration::from_millis(150),
                ..ChurnConfig::default()
            };
            let horizon = SimDuration::from_secs(3);
            let trace = ChurnTrace::generate(&churn, horizon, 3);
            fleet.run(trace, horizon)
        };
        let m = run_once();
        assert_eq!(m.degraded, 0);
        assert_eq!(m.upgrades, 0);
        assert_eq!(m.expired, 0);
        assert_eq!(m, run_once());
    }

    #[test]
    fn event_runs_are_deterministic_and_truncation_free() {
        let run_once = || {
            let mut fleet = Fleet::new(three_node_fleet().with_seed(99));
            let churn = ChurnConfig::default();
            let horizon = SimDuration::from_secs(3);
            let trace = ChurnTrace::generate(&churn, horizon, 5);
            fleet.run_events(trace, horizon)
        };
        let m = run_once();
        assert_eq!(m, run_once(), "event runs are deterministic per seed");
        assert_eq!(m.truncated_jobs, 0, "{m:?}");
        assert!(m.total_fps > 0.0);
        assert_eq!(m.schema_version, crate::METRICS_SCHEMA_VERSION);
    }

    #[test]
    fn event_departures_apply_at_their_exact_instant() {
        // The epoch path serves a departing tenant through the end of
        // its final partial epoch; the event path stops its releases at
        // the departure instant exactly. One 30 fps tenant departing at
        // 1.5 s into a 3 s run: ~45 releases, not ~60 and not ~90.
        let mut fleet = Fleet::new(three_node_fleet());
        let t = tenant(0);
        let name = t.name.clone();
        let mut trace = ChurnTrace::new();
        trace.push(sgprs_rt::SimTime::ZERO, crate::ChurnEvent::Arrival(t));
        trace.push(
            sgprs_rt::SimTime::ZERO + SimDuration::from_millis(1_500),
            crate::ChurnEvent::Departure(name),
        );
        let m = fleet.run_events(trace, SimDuration::from_secs(3));
        assert_eq!(m.departures, 1);
        assert!(fleet.nodes().iter().all(|n| n.tenants.is_empty()));
        let released: u64 = m.nodes.iter().map(|n| n.released).sum();
        assert!(
            (44..=46).contains(&released),
            "30 fps × 1.5 s at the exact boundary: {released}"
        );
        assert_eq!(m.truncated_jobs, 0, "the final in-flight job completed");
    }

    #[test]
    fn event_migration_pays_the_configured_stall() {
        // Force-overload the small node (mirroring the epoch-path
        // migration test): event mode must shed load at a release
        // boundary and charge the state-transfer stall for it.
        let cfg = FleetConfig::new(vec![
            NodeSpec::sgprs("small", GpuSpec::synthetic(16)),
            NodeSpec::sgprs("big", GpuSpec::rtx_2080_ti()),
        ])
        .with_migration(0.05)
        .with_migration_cost(SimDuration::from_millis(100));
        let mut fleet = Fleet::new(cfg);
        for i in 0..6 {
            fleet.nodes[0].tenants.push(tenant(i));
        }
        let m = fleet.run_events(ChurnTrace::new(), SimDuration::from_secs(3));
        assert!(m.migrations > 0, "{m:?}");
        assert!(
            (m.migration_stall_secs - 0.1 * m.migrations as f64).abs() < 1e-9,
            "each migration stalls for exactly the configured cost: {m:?}"
        );
        assert!(fleet.nodes()[0].tenants.len() < 6, "the small node shed load");
        assert!(!fleet.nodes()[1].tenants.is_empty(), "the big node absorbed it");
        assert_eq!(m.truncated_jobs, 0);
    }

    #[test]
    fn migration_cost_survives_builder_order() {
        // Regression: `with_migration` used to rebuild the whole
        // MigrationConfig from its default, silently resetting a cost
        // set earlier in the chain.
        let cost = SimDuration::from_millis(500);
        let early = FleetConfig::new(vec![NodeSpec::sgprs("g", GpuSpec::rtx_2080_ti())])
            .with_migration_cost(cost)
            .with_migration(0.1);
        let late = FleetConfig::new(vec![NodeSpec::sgprs("g", GpuSpec::rtx_2080_ti())])
            .with_migration(0.1)
            .with_migration_cost(cost);
        assert_eq!(early.migration.cost, cost, "cost set before with_migration");
        assert_eq!(early.migration, late.migration, "builder order is irrelevant");
        assert!(early.migration.enabled);
    }

    #[test]
    fn reused_tenant_name_is_immune_to_its_predecessors_stale_events() {
        // Regression: a departed tenant's still-pending JobCompletion /
        // DeadlineCheck used to match a same-named successor (job serials
        // restart at 0), clearing the new run's busy flag so it served
        // overlapping jobs. Overload one node past its period (admission
        // bound deliberately past capacity), churn the same name out and
        // back in while the first incarnation's job is in flight, and
        // pin the deterministic outcome.
        let cfg = || {
            let mut c = FleetConfig::new(vec![NodeSpec::sgprs("g", GpuSpec::synthetic(34))]);
            c.admission.utilization_bound = 1.5;
            c
        };
        let trace = || {
            let mut trace = ChurnTrace::new();
            for i in 0..16 {
                trace.push(sgprs_rt::SimTime::ZERO, crate::ChurnEvent::Arrival(tenant(i)));
            }
            // Depart while cam-15's stretched first job is still
            // running (arrivals interleave with releases, so the LAST
            // arrival's first job is the one admitted at full load and
            // still in flight here)…
            trace.push(
                sgprs_rt::SimTime::ZERO + SimDuration::from_millis(38),
                crate::ChurnEvent::Departure(tenant(15).name),
            );
            // …and reuse the name before that job's completion fires.
            trace.push(
                sgprs_rt::SimTime::ZERO + SimDuration::from_millis(40),
                crate::ChurnEvent::Arrival(tenant(15)),
            );
            trace
        };
        let horizon = SimDuration::from_secs(2);
        let m = Fleet::new(cfg()).run_events(trace(), horizon);
        assert_eq!(m.departures, 1);
        assert_eq!(m.admitted, 17, "the reused name is re-admitted: {m:?}");
        assert_eq!(m.truncated_jobs, 0);
        // A guard regression trips the engine's overlapping-jobs
        // debug assertion mid-run (verified by mutation); the pinned
        // totals additionally lock the deterministic outcome.
        assert_eq!(m, Fleet::new(cfg()).run_events(trace(), horizon));
        let node = &m.nodes[0];
        assert_eq!(
            (node.released, node.completed, node.missed),
            (976, 496, 964),
            "stale-event immunity changed the served-frame accounting: {m:?}"
        );
    }

    #[test]
    fn departed_pre_run_waiter_does_not_shadow_a_reused_name() {
        // Regression (both paths): a pre-run waiter departing mid-run
        // used to leave its name in the pre-run set, so a later
        // same-named deferred arrival that was eventually admitted
        // matched the stale entry and was reported rejected.
        let saturated = || {
            let mut fleet = Fleet::new(FleetConfig::new(vec![NodeSpec::sgprs(
                "small",
                GpuSpec::synthetic(23),
            )]));
            let mut i = 0;
            while matches!(fleet.dispatch(tenant(i)), DispatchOutcome::Placed(_)) {
                i += 1;
            }
            // tenant(i) queued pre-run under the name the trace reuses.
            (fleet, i)
        };
        let trace = |i: usize| {
            let mut trace = ChurnTrace::new();
            // The pre-run waiter departs while still queued (the epoch
            // path applies this at the 1 s boundary — the granularity
            // contract — so the name reuse below waits past it)…
            trace.push(
                sgprs_rt::SimTime::ZERO + SimDuration::from_millis(100),
                crate::ChurnEvent::Departure(tenant(i).name),
            );
            // …a fresh arrival reuses its name and must wait too…
            trace.push(
                sgprs_rt::SimTime::ZERO + SimDuration::from_millis(1_200),
                crate::ChurnEvent::Arrival(tenant(i)),
            );
            // …until a resident departs (applied at the 2 s boundary on
            // the epoch path) and frees one slot.
            trace.push(
                sgprs_rt::SimTime::ZERO + SimDuration::from_millis(1_400),
                crate::ChurnEvent::Departure(tenant(0).name),
            );
            trace
        };
        for event_driven in [false, true] {
            let (mut fleet, i) = saturated();
            let horizon = SimDuration::from_secs(3);
            let m = if event_driven {
                fleet.run_events(trace(i), horizon)
            } else {
                fleet.run(trace(i), horizon)
            };
            assert_eq!(m.deferred, 1, "event={event_driven}: {m:?}");
            assert_eq!(
                m.admitted_after_wait, 1,
                "event={event_driven}: the reused name is this run's deferral, \
                 not the departed pre-run waiter: {m:?}"
            );
            assert_eq!(m.rejected, 0, "event={event_driven}: {m:?}");
            assert!(m.queue_wait_mean_secs > 0.0, "event={event_driven}: {m:?}");
        }
    }

    #[test]
    fn run_configured_dispatches_on_the_event_flag() {
        let trace = || ChurnTrace::static_population((0..3).map(tenant));
        let horizon = SimDuration::from_secs(2);
        let epoch = Fleet::new(three_node_fleet())
            .run_configured(trace(), horizon);
        let event = Fleet::new(three_node_fleet().with_event_driven())
            .run_configured(trace(), horizon);
        // The epoch path truncates the final in-flight job per tenant
        // per epoch; the event path never does — the flag observably
        // switched modes.
        assert!(epoch.truncated_jobs > 0, "{epoch:?}");
        assert_eq!(event.truncated_jobs, 0, "{event:?}");
        assert_eq!(
            epoch,
            Fleet::new(three_node_fleet()).run(trace(), horizon),
            "default mode is the classic epoch path, bit for bit"
        );
    }

    #[test]
    fn heterogeneous_nodes_and_schedulers_coexist() {
        let cfg = FleetConfig::new(vec![
            NodeSpec::sgprs("sgprs", GpuSpec::rtx_2080_ti()),
            NodeSpec::sgprs("naive", GpuSpec::synthetic(34))
                .with_scheduler(NodeScheduler::Naive),
        ]);
        let mut fleet = Fleet::new(cfg);
        let trace = ChurnTrace::static_population((0..4).map(tenant));
        let m = fleet.run(trace, SimDuration::from_secs(2));
        assert!(m.total_fps > 0.0);
        assert_eq!(m.nodes.len(), 2);
        assert!(m.nodes.iter().all(|n| n.released > 0));
    }
}
