//! The fleet dispatcher: epoch-driven simulation of many GPU nodes under
//! tenant churn.
//!
//! This file is **orchestration only**. Every decision — admission and
//! placement planning (flat, shard-scan, or power-of-two-choices), the
//! re-pricing ladder walk, queue feasibility and demand-aware expiry,
//! upgrade candidates, and migration victim/destination choice — lives
//! in the shared [`crate::policy`] kernel, consumed identically by this
//! epoch path, the event engine ([`crate::event`]), and the sharded
//! front door ([`crate::ShardedFleet`]). Configuration lives in
//! [`crate::config`]. What remains here is the epoch loop, the shared
//! dispatch/queue/upgrade *orchestration* both engines call, and the
//! shared accounting helpers that fold outcomes into
//! [`FleetMetricsBuilder`] so the two engines cannot drift.
//!
//! # Interned tenant ids
//!
//! Tenant names cross the fleet boundary exactly once: `dispatch`
//! interns each arriving name into a dense [`TenantId`]
//! (first-appearance order, slots recycled LIFO on departure — see
//! [`crate::interner`]), and every per-tenant structure from there on is
//! id-indexed: resident location (`resident_node` + per-node id lists),
//! queue entries, the degraded-rate table, pending release phases, and
//! the event engine's payloads. Names are resolved back only at the
//! render edge (JSON, telemetry, the execution model's name-keyed
//! jitter). Interning is a pure function of the arrival sequence, so it
//! is deterministic across engines and worker counts; recycling bounds
//! the id space — and every id-indexed `Vec` — by the *peak
//! concurrently-active* population, which is what lets a run stream
//! millions of tenants in O(active) memory.
//!
//! Simulated time is divided into *epochs*. At each epoch boundary the
//! dispatcher applies churn events (arrivals are planned through the
//! policy kernel; departures free capacity, expire overdue waiters, and
//! drain the wait queue in [`crate::QueuePolicy`] order), then every
//! non-empty node runs its scheduler for one epoch and reports
//! [`sgprs_core::RunMetrics`], which the [`FleetMetricsBuilder`] folds
//! into fleet totals. Optional migration moves a tenant off any node
//! whose epoch miss rate crossed a threshold.
//!
//! With [`crate::QueueConfig::repricing`] on, an arrival that does not fit at
//! its requested rate may be admitted at a degraded
//! [`TenantSpec::fps_ladder`] step — SGPRS's zero-cost partition switch
//! makes the later upgrade free — and each epoch boundary steps degraded
//! residents back up: departures first admit waiting tenants (policy
//! order), then leftover capacity upgrades degraded residents in place,
//! in tenant-name order, jumping each as high up its ladder as the node
//! admits. Degrades and upgrades never move a tenant between nodes.
//!
//! Granularity contract: arrivals keep sub-epoch precision (they enter
//! as release phases inside their first epoch); departures and
//! migrations take effect at the epoch boundary *following* the event,
//! so a departing tenant serves out its final partial epoch. Jobs still
//! in flight when an epoch ends are not counted as completed — with the
//! default one-second epoch and the paper's 33 ms periods this
//! truncation is under 3 % and affects every scheduler equally; the
//! count is surfaced as [`FleetMetrics::truncated_jobs`]. The
//! event-driven mode ([`Fleet::run_events`], see [`crate::event`])
//! removes the grid entirely: exact boundaries, zero truncation, and
//! migration at job-release boundaries paying
//! [`crate::MigrationConfig::cost`].
//!
//! Parallel-execution determinism: within one epoch the nodes are
//! mutually independent — they share no simulator state, their compiled
//! tasks are prepared before any node runs, and each node's jitter seed
//! is a pure function of `(fleet seed, epoch index, node index)`. `run`
//! therefore fans the per-node `run_epoch` calls out over scoped worker
//! threads and folds the results back in ascending node index, so the
//! resulting [`FleetMetrics`] is bit-identical to sequential execution
//! ([`crate::FleetConfig::sequential`] is the escape hatch): parallelism
//! changes wall-clock time, never results.

use crate::interner::{TenantId, TenantInterner};
use crate::policy::{self, DispatchPlanner, FleetState, PricedPlan, QueueAdmission};
use crate::queue::DispatchQueue;
use crate::shard::ShardDirectory;
use crate::telemetry::{Span, SpanProfile, Telemetry, PLAN_LATENCY_BINS};
use crate::{
    AdmissionController, ArrivalStream, ChurnEvent, FleetConfig, FleetMetrics,
    FleetMetricsBuilder, FleetNode, TenantSpec,
};
use sgprs_core::{CompiledTask, RunMetrics};
use sgprs_rt::{SimDuration, SimTime};
use std::collections::{HashMap, HashSet};

/// Where a dispatched tenant ended up.
#[derive(Debug, Clone, PartialEq)]
pub enum DispatchOutcome {
    /// Placed on the node with the given index.
    Placed(usize),
    /// Did not fit at its requested rate, but the re-pricing ladder found
    /// room at the degraded rate `fps` on node `node` — the tenant is
    /// resident and will be upgraded back toward its requested rate when
    /// capacity frees (requires [`crate::QueueConfig::repricing`]).
    PlacedDegraded {
        /// The node the tenant landed on.
        node: usize,
        /// The degraded rate it serves at.
        fps: f64,
    },
    /// Currently over capacity everywhere; the tenant waits in the
    /// dispatch queue for departures to free room.
    Queued,
    /// Latency-infeasible on every node: no departure can ever make it
    /// fit, so it is dropped rather than queued (queueing it would block
    /// the FIFO queue's head forever).
    Infeasible,
    /// A tenant with the same name is already active (resident or
    /// queued). Names key the interner's active set, so the dispatcher
    /// enforces the uniqueness contract documented on
    /// [`TenantSpec::name`] instead of letting a later `remove` delete
    /// the wrong instance and leave a resident ghost.
    Duplicate,
}

/// Counters from a dispatch-only replay ([`Fleet::replay_dispatch`]):
/// the arrival-path outcomes plus the interner's memory evidence.
#[derive(Debug, Default, Clone)]
pub struct DispatchReplay {
    /// Arrivals offered to the dispatcher.
    pub arrivals: u64,
    /// Arrivals placed (at full or degraded rate).
    pub placed: u64,
    /// Placements that landed at a degraded ladder step.
    pub degraded: u64,
    /// Arrivals deferred to the wait queue.
    pub queued: u64,
    /// Arrivals dropped as latency-infeasible everywhere.
    pub infeasible: u64,
    /// Arrivals rejected as duplicate active names.
    pub duplicates: u64,
    /// Departures that removed an active tenant.
    pub departures: u64,
    /// Waiters expired out of the queue (patience elapsed).
    pub expired: u64,
    /// Waiters admitted from the queue by a drain pass.
    pub admitted_after_wait: u64,
    /// High-water mark of concurrently active tenants.
    pub peak_active: usize,
    /// Tenant-id slots ever allocated — with LIFO recycling this equals
    /// `peak_active`, **not** the number of tenants streamed: the
    /// trace-length-independent memory bound.
    pub id_capacity: usize,
    /// Tenants still active when the replay ended.
    pub final_active: usize,
}

/// A simulated multi-GPU fleet with admission control, load balancing,
/// and tenant churn.
#[derive(Debug)]
pub struct Fleet {
    pub(crate) cfg: FleetConfig,
    pub(crate) nodes: Vec<FleetNode>,
    pub(crate) admission: AdmissionController,
    /// The mutable half of the policy kernel: placement cursor + shard
    /// directory (see [`crate::policy`]).
    pub(crate) planner: DispatchPlanner,
    pub(crate) queue: DispatchQueue,
    /// Tenant-name ⇄ id table; its active-name map doubles as the
    /// duplicate gate (keyed lookup only, never iterated).
    pub(crate) interner: TenantInterner,
    /// Sub-epoch release phase of tenants that arrived mid-epoch,
    /// id-indexed, consumed by the next `run_epoch`.
    pending_phase: Vec<Option<SimDuration>>,
    /// Compiled-task cache keyed by (model, stages, period ns, node).
    compiled: HashMap<(crate::ModelKind, usize, u64, usize), CompiledTask>,
    /// Node index of each resident, id-indexed (`None` = queued or
    /// free slot).
    resident_node: Vec<Option<usize>>,
    /// Per-node resident ids, parallel to each node's `tenants` Vec, so
    /// slot resolution is an integer scan instead of a string compare.
    pub(crate) node_ids: Vec<Vec<TenantId>>,
    /// Per-node mutation counter, bumped whenever a node's resident
    /// population or prices change (attach/detach/restore/remove/
    /// upgrade). Pure-function-of-node-state caches (the event engine's
    /// fluid load and utilisation samples) revalidate against it, which
    /// replaces blanket whole-fleet invalidation with O(changed nodes)
    /// recomputation — bit-identical values, since an unchanged version
    /// pins unchanged inputs.
    pub(crate) node_version: Vec<u64>,
    /// Events handled by the last `run_events` merge loop — the
    /// run-length figure perf benches read when profiling is off (the
    /// profiler's `event_pop`/`arrival_pull` calls measure the same
    /// thing, at the price of clock reads the raw mode exists to avoid).
    pub(crate) events_processed: u64,
    /// The dispatcher's clock: advanced by `run`/`run_events`, stamps
    /// queue entries so waits and queue deadlines are measurable.
    pub(crate) now: SimTime,
    /// Whether node capacity was released (departure or migration) since
    /// the last drain pass — when it was not, the queue head still cannot
    /// fit and the whole retry scan is skipped.
    pub(crate) capacity_released: bool,
    /// Drain passes that actually scanned the queue (skip-scan
    /// observability for tests).
    drain_scans: u64,
    /// Requested fps of residents currently serving below it, id-indexed
    /// (`None` = not degraded). Upgrade passes sort by resolved name so
    /// their order matches the pre-interning contract.
    degraded: Vec<Option<f64>>,
    /// Memoised [`policy::can_ever_fit`] answers per price point
    /// `(model, stages, fps bits)` — the answer is load-independent, so
    /// demand-aware expiry sweeps cost one map lookup per queued waiter
    /// after the first.
    hopeless_cache: HashMap<(crate::ModelKind, usize, u64), bool>,
    /// The telemetry recorder (see [`crate::telemetry`]): armed by
    /// `begin_run` when [`crate::TelemetryConfig::enabled`], a no-op on
    /// every hook otherwise. All recording happens on the
    /// single-threaded orchestration path, never inside the parallel
    /// fan-out, so the report is deterministic across worker counts.
    pub(crate) telemetry: Telemetry,
}

impl Fleet {
    /// Builds an empty fleet from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.nodes` is empty (possible despite the check in
    /// [`FleetConfig::new`], since the config's fields are public).
    #[must_use]
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(!cfg.nodes.is_empty(), "a fleet needs at least one node");
        let nodes: Vec<FleetNode> = cfg.nodes.iter().cloned().map(FleetNode::new).collect();
        let admission = AdmissionController::new(cfg.admission.clone());
        let planner = DispatchPlanner::new(cfg.placement, nodes.len(), cfg.sharding.as_ref());
        let queue = DispatchQueue::new(cfg.queue.policy);
        let telemetry = Telemetry::new(cfg.telemetry.clone());
        let node_ids = vec![Vec::new(); nodes.len()];
        let node_version = vec![0; nodes.len()];
        Fleet {
            cfg,
            nodes,
            admission,
            planner,
            queue,
            interner: TenantInterner::new(),
            pending_phase: Vec::new(),
            compiled: HashMap::new(),
            resident_node: Vec::new(),
            node_ids,
            node_version,
            events_processed: 0,
            now: SimTime::ZERO,
            capacity_released: true,
            drain_scans: 0,
            degraded: Vec::new(),
            hopeless_cache: HashMap::new(),
            telemetry,
        }
    }

    /// The nodes with their resident tenants.
    #[must_use]
    pub fn nodes(&self) -> &[FleetNode] {
        &self.nodes
    }

    /// Tenants waiting for capacity.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Names of the waiting tenants in drain (policy) order.
    #[must_use]
    pub fn queued_names(&self) -> Vec<String> {
        self.queue.names_in_order(self.now)
    }

    /// Number of residents currently serving below their requested rate.
    #[must_use]
    pub fn degraded_residents(&self) -> usize {
        self.degraded.iter().flatten().count()
    }

    /// Number of currently active tenants (resident or queued).
    #[must_use]
    pub fn active_tenants(&self) -> usize {
        self.interner.live()
    }

    /// High-water mark of concurrently active tenants across the fleet's
    /// lifetime.
    #[must_use]
    pub fn peak_active_tenants(&self) -> usize {
        self.interner.peak_live()
    }

    /// Tenant-id slots ever allocated. With LIFO recycling this equals
    /// [`Fleet::peak_active_tenants`] — independent of how many tenants
    /// ever streamed through — which is the capacity check the
    /// O(active)-memory claim rests on.
    #[must_use]
    pub fn tenant_id_capacity(&self) -> usize {
        self.interner.capacity()
    }

    /// The admission controller in use.
    #[must_use]
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The shard directory, when sharding is configured.
    pub(crate) fn router(&self) -> Option<&ShardDirectory> {
        self.planner.router()
    }

    /// The interned id of an active tenant, if `name` is active.
    pub(crate) fn tenant_id(&self, name: &str) -> Option<TenantId> {
        self.interner.lookup(name)
    }

    /// The node a resident tenant lives on (`None` when queued or
    /// unknown).
    pub(crate) fn resident_node_of(&self, id: TenantId) -> Option<usize> {
        self.resident_node.get(id.index()).copied().flatten()
    }

    /// The tenant slot of `id` on node `idx`, by integer scan of the
    /// node's id list.
    pub(crate) fn node_slot(&self, idx: usize, id: TenantId) -> Option<usize> {
        self.node_ids[idx].iter().position(|&x| x == id)
    }

    /// Chooses a node for `tenant` without committing the placement —
    /// the per-arrival hot path the placement benches measure, delegated
    /// to the policy kernel's [`DispatchPlanner::plan`].
    #[must_use]
    pub fn plan(&mut self, tenant: &TenantSpec) -> Option<usize> {
        self.planner
            .plan(&FleetState::new(&self.nodes, &self.admission), tenant)
    }

    /// Plans `tenant` down its re-pricing ladder (kernel
    /// [`DispatchPlanner::plan_repriced`], honouring
    /// [`crate::QueueConfig::repricing`]).
    fn plan_repriced(&mut self, tenant: &TenantSpec) -> Option<PricedPlan> {
        let clock = self.telemetry.prof_clock();
        let before = self.planner.probes();
        let plan = self.planner.plan_repriced(
            &FleetState::new(&self.nodes, &self.admission),
            tenant,
            self.cfg.queue.repricing,
        );
        self.telemetry
            .note_plan(self.planner.probes() - before, clock);
        plan
    }

    /// Interns an arriving tenant name and grows the id-indexed side
    /// tables to cover the new slot.
    fn intern(&mut self, name: &str) -> TenantId {
        let id = self.interner.intern(name);
        let slot = id.index();
        if slot >= self.resident_node.len() {
            self.resident_node.resize(slot + 1, None);
            self.degraded.resize(slot + 1, None);
            self.pending_phase.resize(slot + 1, None);
        }
        debug_assert!(
            self.resident_node[slot].is_none()
                && self.degraded[slot].is_none()
                && self.pending_phase[slot].is_none(),
            "recycled id slots start clean"
        );
        id
    }

    /// Releases an id: clears every id-indexed slot and frees the
    /// interner entry for LIFO reuse.
    fn release(&mut self, id: TenantId) {
        let slot = id.index();
        self.resident_node[slot] = None;
        self.degraded[slot] = None;
        self.pending_phase[slot] = None;
        self.interner.release(id);
    }

    /// Makes the tenant resident at the end of node `idx`'s slot list,
    /// keeping the id tables and shard summaries in sync.
    fn commit(&mut self, id: TenantId, idx: usize, tenant: TenantSpec) {
        self.planner.note_place(idx, tenant.demand_sm_equivalents());
        self.attach_resident(idx, id, tenant);
    }

    /// Appends a resident to node `idx`, maintaining the parallel id
    /// list and the id → node index.
    pub(crate) fn attach_resident(&mut self, idx: usize, id: TenantId, tenant: TenantSpec) {
        self.node_ids[idx].push(id);
        self.nodes[idx].tenants.push(tenant);
        self.resident_node[id.index()] = Some(idx);
        self.node_version[idx] += 1;
    }

    /// Removes the resident at `slot` on node `idx`, returning its id
    /// and spec (the migration victim path).
    pub(crate) fn detach_resident(&mut self, idx: usize, slot: usize) -> (TenantId, TenantSpec) {
        let id = self.node_ids[idx].remove(slot);
        let spec = self.nodes[idx].tenants.remove(slot);
        self.resident_node[id.index()] = None;
        self.node_version[idx] += 1;
        (id, spec)
    }

    /// Restores a detached resident to its original slot (a migration
    /// that found no destination).
    pub(crate) fn restore_resident(
        &mut self,
        idx: usize,
        slot: usize,
        id: TenantId,
        tenant: TenantSpec,
    ) {
        self.node_ids[idx].insert(slot, id);
        self.nodes[idx].tenants.insert(slot, tenant);
        self.resident_node[id.index()] = Some(idx);
        self.node_version[idx] += 1;
    }

    /// Offers `tenant` to the placement policy: on success the tenant
    /// becomes resident; when it does not fit at its requested rate and
    /// re-pricing is on, its [`TenantSpec::fps_ladder`] steps are tried
    /// next (degrade instead of defer); when merely over capacity it
    /// joins the wait queue; when latency-infeasible on every node (at
    /// every admissible price) it is dropped; when its name is already
    /// active it is rejected as a duplicate.
    pub fn dispatch(&mut self, tenant: TenantSpec) -> DispatchOutcome {
        self.dispatch_interned(tenant).0
    }

    /// [`Self::dispatch`], also reporting the id assigned to an arrival
    /// that became active (placed or queued) — the engines' handle for
    /// all further bookkeeping.
    pub(crate) fn dispatch_interned(
        &mut self,
        tenant: TenantSpec,
    ) -> (DispatchOutcome, Option<TenantId>) {
        if self.interner.lookup(&tenant.name).is_some() {
            return (DispatchOutcome::Duplicate, None);
        }
        match self.plan_repriced(&tenant) {
            Some(PricedPlan::Full(idx)) => {
                let id = self.intern(&tenant.name);
                self.commit(id, idx, tenant);
                return (DispatchOutcome::Placed(idx), Some(id));
            }
            Some(PricedPlan::Degraded(idx, fps)) => {
                let id = self.intern(&tenant.name);
                self.degraded[id.index()] = Some(tenant.fps);
                self.commit(id, idx, tenant.at_fps(fps));
                return (DispatchOutcome::PlacedDegraded { node: idx, fps }, Some(id));
            }
            None => {}
        }
        let feasible = policy::queue_feasible(
            &FleetState::new(&self.nodes, &self.admission),
            &tenant,
            self.cfg.queue.repricing,
        );
        if feasible {
            let id = self.intern(&tenant.name);
            self.queue.push(id, tenant, self.now);
            (DispatchOutcome::Queued, Some(id))
        } else {
            (DispatchOutcome::Infeasible, None)
        }
    }

    /// [`Self::dispatch`] plus the shared arrival accounting: one
    /// definition of how each [`DispatchOutcome`] maps onto the metrics
    /// counters, used by both execution engines so the books cannot
    /// drift.
    pub(crate) fn dispatch_accounted(
        &mut self,
        tenant: TenantSpec,
        builder: &mut FleetMetricsBuilder,
    ) -> (DispatchOutcome, Option<TenantId>) {
        builder.arrivals += 1;
        let traced_name = self.telemetry.enabled().then(|| tenant.name.clone());
        let probes_before = self.planner.probes();
        let (outcome, id) = self.dispatch_interned(tenant);
        match &outcome {
            DispatchOutcome::Placed(_) => builder.admitted += 1,
            DispatchOutcome::PlacedDegraded { .. } => {
                builder.admitted += 1;
                builder.degraded += 1;
            }
            DispatchOutcome::Queued => builder.deferred += 1,
            DispatchOutcome::Infeasible => builder.infeasible += 1,
            DispatchOutcome::Duplicate => builder.duplicates += 1,
        }
        if let Some(name) = traced_name {
            let probes = self.planner.probes() - probes_before;
            let depth = self.queue.len();
            self.telemetry
                .record_arrival(self.now, &name, &outcome, probes, depth);
        }
        (outcome, id)
    }

    /// Removes the named tenant wherever it lives (node or queue).
    /// Returns `true` when something was removed. Under the uniqueness
    /// contract of [`TenantSpec::name`] (enforced by [`Self::dispatch`])
    /// at most one active tenant can match.
    pub fn remove(&mut self, name: &str) -> bool {
        match self.interner.lookup(name) {
            Some(id) => self.remove_id(id),
            None => false,
        }
    }

    /// [`Self::remove`] by interned id: the engines' departure path.
    pub(crate) fn remove_id(&mut self, id: TenantId) -> bool {
        if let Some((idx, pos)) = self.locate_id(id) {
            self.nodes[idx].tenants.remove(pos);
            self.node_ids[idx].remove(pos);
            self.node_version[idx] += 1;
            self.release(id);
            // A departure frees node capacity: the next drain pass must
            // actually scan the queue again.
            self.capacity_released = true;
            self.planner.invalidate_node(idx);
            return true;
        }
        if self.queue.remove_id(id).is_some() {
            self.release(id);
            return true;
        }
        false
    }

    /// [`Self::remove_id`] plus the shared departure accounting: a
    /// removed tenant counts as a departure, and a departing pre-run
    /// waiter must not leave its id behind (a later same-named deferred
    /// arrival would reuse the slot and be miscounted as rejected). One
    /// definition for both execution engines.
    pub(crate) fn remove_accounted(
        &mut self,
        id: TenantId,
        builder: &mut FleetMetricsBuilder,
        pre_run_queued: &mut HashSet<TenantId>,
    ) -> bool {
        // Resolve the render-edge name before the id is released.
        let traced = self.telemetry.enabled().then(|| {
            (
                self.interner.name(id).to_string(),
                self.resident_node_of(id).is_some(),
            )
        });
        if self.remove_id(id) {
            builder.departures += 1;
            pre_run_queued.remove(&id);
            if let Some((name, resident)) = traced {
                let depth = self.queue.len();
                self.telemetry.record_departure(self.now, &name, resident, depth);
            }
            true
        } else {
            false
        }
    }

    /// Retries queued tenants in policy order; returns how many were
    /// admitted. Stops at the first tenant that still does not fit (at
    /// any admissible price when re-pricing is on), so the queue stays
    /// fair: nothing overtakes within the policy order. When no node
    /// capacity was released since the last pass the scan is skipped
    /// outright — admission is monotone in node load, so a head that did
    /// not fit then cannot fit now.
    pub fn drain_queue(&mut self) -> u64 {
        self.drain_queue_admissions().len() as u64
    }

    /// [`Self::drain_queue`], reporting each admission's id, price, and
    /// wait so the engines can attribute it to the right deferral.
    pub(crate) fn drain_queue_admissions(&mut self) -> Vec<QueueAdmission> {
        let mut admitted = Vec::new();
        if !self.capacity_released {
            return admitted;
        }
        self.drain_scans += 1;
        self.telemetry.note_drain_scan();
        let scan_clock = self.telemetry.prof_clock();
        while let Some(entry) = self.queue.pop_first(self.now) {
            let Some(plan) = self.plan_repriced(&entry.tenant) else {
                // The head fits at no price: stop (no overtaking) and put
                // it back — `reinsert` keeps its arrival serial, so the
                // drain order is unchanged.
                self.queue.reinsert(entry);
                break;
            };
            let waited = self.now.duration_since(entry.enqueued_at);
            let id = entry.id;
            let (idx, spec, was_degraded) = match plan {
                PricedPlan::Full(idx) => (idx, entry.tenant, false),
                PricedPlan::Degraded(idx, fps) => {
                    self.degraded[id.index()] = Some(entry.tenant.fps);
                    (idx, entry.tenant.at_fps(fps), true)
                }
            };
            admitted.push(QueueAdmission {
                id,
                degraded: was_degraded,
                waited,
            });
            self.commit(id, idx, spec);
        }
        self.telemetry.prof_record(Span::DrainScan, scan_clock);
        self.capacity_released = false;
        admitted
    }

    /// Drains the wait queue and folds each admission into `builder`
    /// under the shared accounting contract — admissions of *this run's*
    /// deferrals (not `pre_run_queued` carry-overs) count toward
    /// `admitted_after_wait` and the wait statistics, degraded
    /// admissions are tallied, and (with re-pricing on) leftover
    /// capacity then upgrades degraded residents. One definition for
    /// both execution modes, so epoch and event accounting cannot
    /// silently drift; the admissions are returned for mode-specific
    /// bookkeeping (the event engine starts release clocks from them).
    pub(crate) fn drain_and_upgrade_accounted(
        &mut self,
        builder: &mut FleetMetricsBuilder,
        pre_run_queued: &mut HashSet<TenantId>,
    ) -> Vec<QueueAdmission> {
        let admissions = self.drain_queue_admissions();
        for adm in &admissions {
            let counted = !pre_run_queued.remove(&adm.id);
            if counted {
                builder.admitted_after_wait += 1;
                builder.record_wait(adm.waited);
            }
            if adm.degraded {
                builder.degraded += 1;
            }
            if self.telemetry.enabled() {
                let depth = self.queue.len();
                let name = self.interner.name(adm.id).to_string();
                self.telemetry.record_queue_admit(
                    self.now,
                    &name,
                    adm.degraded,
                    adm.waited,
                    counted,
                    depth,
                );
            }
        }
        // Leftover capacity steps degraded residents back up their
        // ladders (an in-place partition switch, not a migration) —
        // after waiting admissions: serving more tenants beats serving
        // fewer faster.
        if self.cfg.queue.repricing {
            builder.upgrades += self.upgrade_degraded();
        }
        admissions
    }

    /// Drops queued tenants whose [`TenantSpec::max_wait`] elapsed,
    /// returning their ids and names (the name is the render-edge
    /// residue the telemetry path needs after the id is freed).
    pub(crate) fn expire_queued(&mut self) -> Vec<(TenantId, String)> {
        let expired = self.queue.take_expired(self.now);
        expired
            .into_iter()
            .map(|e| {
                self.release(e.id);
                (e.id, e.tenant.name)
            })
            .collect()
    }

    /// Memoised [`policy::can_ever_fit`] per price point: the answer is
    /// load-independent (it tests against *emptied* nodes) and ignores
    /// the tenant's name/weight/patience, so one evaluation per
    /// `(model, stages, fps)` serves the whole run and a cache miss only
    /// builds a throwaway probe spec.
    fn price_can_ever_fit(&mut self, model: crate::ModelKind, stages: usize, fps: f64) -> bool {
        let key = (model, stages, fps.to_bits());
        if let Some(&known) = self.hopeless_cache.get(&key) {
            return known;
        }
        let probe = TenantSpec::new("hopeless-probe", model, fps).with_stages(stages);
        let fits =
            policy::can_ever_fit(&FleetState::new(&self.nodes, &self.admission), &probe);
        self.hopeless_cache.insert(key, fits);
        fits
    }

    /// Demand-aware expiry sweep ([`crate::QueueConfig::demand_aware_expiry`]):
    /// drops queued tenants that provably can never be admitted — no
    /// node could carry them even fully drained, at any ladder step —
    /// and returns their ids and names. Waiting longer can never help
    /// such a waiter, so expiring it before its patience elapses loses
    /// nothing. Only the price points matter, so the sweep collects
    /// cheap `(id, price…)` keys instead of cloning whole specs.
    pub(crate) fn expire_hopeless(&mut self) -> Vec<(TenantId, String)> {
        if self.queue.len() == 0 {
            return Vec::new();
        }
        let repricing = self.cfg.queue.repricing;
        let waiters: Vec<(TenantId, crate::ModelKind, usize, Vec<f64>)> = self
            .queue
            .entries()
            .map(|e| {
                let t = &e.tenant;
                let mut prices = vec![t.fps];
                if repricing {
                    prices.extend(t.degrade_steps());
                }
                (e.id, t.model, t.stages, prices)
            })
            .collect();
        let mut doomed = Vec::new();
        for (id, model, stages, prices) in waiters {
            let fits = prices
                .iter()
                .any(|&fps| self.price_can_ever_fit(model, stages, fps));
            if !fits {
                doomed.push(id);
            }
        }
        doomed
            .into_iter()
            .map(|id| {
                let entry = self
                    .queue
                    .remove_id(id)
                    .expect("invariant: hopeless waiters are still queued");
                self.release(id);
                (id, entry.tenant.name)
            })
            .collect()
    }

    /// The shared expiry accounting both engines run at their expiry
    /// instants: patience expiry first (counted as
    /// [`FleetMetrics::expired`]), then — with
    /// [`crate::QueueConfig::demand_aware_expiry`] on — the provably-hopeless
    /// sweep (counted separately as
    /// [`FleetMetrics::expired_hopeless`]). Expired in-run deferrals
    /// fall through to the eventual-rejection accounting either way.
    pub(crate) fn expire_accounted(
        &mut self,
        builder: &mut FleetMetricsBuilder,
        pre_run_queued: &mut HashSet<TenantId>,
    ) {
        for (id, name) in self.expire_queued() {
            builder.expired += 1;
            pre_run_queued.remove(&id);
            let depth = self.queue.len();
            self.telemetry.record_expired(self.now, &name, false, depth);
        }
        if self.cfg.queue.demand_aware_expiry {
            for (id, name) in self.expire_hopeless() {
                builder.expired_hopeless += 1;
                pre_run_queued.remove(&id);
                let depth = self.queue.len();
                self.telemetry.record_expired(self.now, &name, true, depth);
            }
        }
    }

    /// Tries to move every degraded resident back up its ladder — to the
    /// requested rate if the node now carries it, else to the highest
    /// ladder step that fits ([`policy::upgrade_candidates`] orders the
    /// attempts). Upgrades are in-place partition switches on the
    /// resident node (SGPRS's zero-cost reconfiguration), never
    /// migrations, and run in tenant-name order for determinism (the
    /// order the pre-interning `BTreeMap` walked, so output is
    /// unchanged). Returns the number of upgrade steps taken.
    pub(crate) fn upgrade_degraded(&mut self) -> u64 {
        // Collect (name, id, requested) in slot order, then sort by name:
        // slot order is deterministic but recycling-dependent; name order
        // is the documented contract.
        let mut entries: Vec<(String, TenantId, f64)> = Vec::new();
        for (slot, requested) in self.degraded.iter().enumerate() {
            if let Some(requested) = requested {
                let id = TenantId::from_raw(
                    u32::try_from(slot).expect("invariant: id slots fit in u32"),
                );
                entries.push((self.interner.name(id).to_string(), id, *requested));
            }
        }
        if entries.is_empty() {
            return 0;
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut upgrades = 0;
        for (name, id, requested) in entries {
            // Find the resident (it may have migrated since it degraded).
            let Some((idx, pos)) = self.locate_id(id) else {
                // Defensive: a degraded entry with no resident would mean
                // a removal missed the table; drop it rather than retry
                // forever.
                self.degraded[id.index()] = None;
                continue;
            };
            let resident = self.nodes[idx].tenants.remove(pos);
            let candidates = policy::upgrade_candidates(&resident, requested);
            let mut upgraded = None;
            for fps in candidates {
                let priced = resident.at_fps(fps);
                if self.admission.evaluate(&self.nodes[idx], &priced).is_admit() {
                    upgraded = Some(priced);
                    break;
                }
            }
            match upgraded {
                Some(priced) => {
                    if (priced.fps - requested).abs() < 1e-12 {
                        self.degraded[id.index()] = None;
                    }
                    let fps = priced.fps;
                    // Same slot, so placement order (and migration's LIFO
                    // victim choice) is unaffected by the price change —
                    // `node_ids` is untouched for the same reason.
                    self.nodes[idx].tenants.insert(pos, priced);
                    upgrades += 1;
                    // A price change moves the node's demand: caches
                    // keyed on the node version must resample.
                    self.node_version[idx] += 1;
                    self.planner.invalidate_node(idx);
                    self.telemetry.record_upgrade(self.now, &name, fps);
                }
                None => self.nodes[idx].tenants.insert(pos, resident),
            }
        }
        upgrades
    }

    /// The node index and tenant slot of the resident with this id.
    pub(crate) fn locate_id(&self, id: TenantId) -> Option<(usize, usize)> {
        let idx = self.resident_node_of(id)?;
        let pos = self
            .node_slot(idx, id)
            .expect("invariant: resident ids appear in their node's id list");
        Some((idx, pos))
    }

    /// Drain passes that actually scanned the queue (the skip-scan
    /// fast path does not count).
    #[cfg(test)]
    fn drain_scans(&self) -> u64 {
        self.drain_scans
    }

    /// Force-loads a resident onto node `idx`, bypassing admission but
    /// keeping the interner and id tables consistent (tests that build
    /// overload scenarios the dispatcher would refuse).
    #[cfg(test)]
    fn seed_resident(&mut self, idx: usize, tenant: TenantSpec) {
        let id = self.intern(&tenant.name);
        self.attach_resident(idx, id, tenant);
    }

    /// The wall-clock plan-latency histogram of the last finished run
    /// (log2 nanosecond buckets: bucket `i` counts plans that took
    /// `[2^i, 2^(i+1))` ns, the last catching everything above) — the
    /// [`Span::Plan`] row of [`Fleet::span_profile`]. All zeros when
    /// profiling was off. Wall-clock is not deterministic, so this lives
    /// outside [`FleetMetrics`] and its JSON export — see
    /// [`crate::telemetry`].
    #[must_use]
    pub fn plan_latency_histogram(&self) -> [u64; PLAN_LATENCY_BINS] {
        self.telemetry.plan_latency_histogram()
    }

    /// The span profile of the last finished run: per-span call counts
    /// and wall-clock latency histograms over the simulator's own hot
    /// paths. `None` unless the run was armed with
    /// [`FleetConfig::with_profiling`] — the profiler is never even
    /// constructed on the disabled path, which is the zero-cost
    /// contract the end-to-end tests pin. Wall-clock is not
    /// deterministic, so the profile lives outside [`FleetMetrics`] and
    /// its JSON export; it feeds only the `BENCH_*.json` perf sidecars.
    #[must_use]
    pub fn span_profile(&self) -> Option<SpanProfile> {
        self.telemetry.span_profile().cloned()
    }

    /// Events handled by the last [`Self::run_events`] merge loop
    /// (queue pops + stream pulls). Deterministic — a pure function of
    /// `(config, trace, horizon)` — and maintained unconditionally, so
    /// raw-mode perf benches get an events/sec denominator without
    /// arming the profiler (whose per-event clock reads are exactly the
    /// overhead such runs exist to exclude).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Cache key of one resident's compiled task on node `node_idx`.
    fn compile_key(
        tenant: &TenantSpec,
        node_idx: usize,
    ) -> (crate::ModelKind, usize, u64, usize) {
        (
            tenant.model,
            tenant.stages,
            tenant.period().as_nanos(),
            node_idx,
        )
    }

    /// Warms the compile cache for resident `pos` of node `node_idx`
    /// (the only part of task preparation that needs `&mut` state).
    fn ensure_compiled(&mut self, node_idx: usize, pos: usize) {
        let key = Self::compile_key(&self.nodes[node_idx].tenants[pos], node_idx);
        if !self.compiled.contains_key(&key) {
            let pool = self.nodes[node_idx].spec.pool();
            let task = self.nodes[node_idx].tenants[pos].compile_for(&pool);
            self.compiled.insert(key, task);
        }
    }

    /// Runs the fleet over `arrivals` until `horizon`, returning the
    /// aggregated metrics. Accepts a lazily generated
    /// [`ArrivalStream`] or anything convertible into one (a
    /// [`crate::ChurnTrace`] converts via its sorted event sequence);
    /// the two are byte-identical for the same `(config, horizon,
    /// seed)`, so which one drives a run never shows in the output.
    ///
    /// # Panics
    ///
    /// Panics if the configured epoch is zero.
    #[must_use]
    pub fn run(
        &mut self,
        arrivals: impl Into<ArrivalStream>,
        horizon: SimDuration,
    ) -> FleetMetrics {
        assert!(!self.cfg.epoch.is_zero(), "epoch must be positive");
        let mut arrivals = arrivals.into();
        let mut builder = FleetMetricsBuilder::new(
            self.nodes.iter().map(|n| n.spec.name.clone()).collect(),
            self.nodes.iter().map(|n| n.spec.gpu.total_sms).collect(),
        );
        let workers = epoch_workers(self.cfg.parallel, self.cfg.workers);
        self.telemetry.begin_run(self.nodes.len(), horizon);
        // Tenants already waiting when `run` starts are not this run's
        // deferrals: their later admission must not offset the eventual-
        // rejection count of arrivals deferred *by this run*.
        let mut pre_run_queued: HashSet<TenantId> = self.queue.ids().collect();
        // Every run is its own timeline starting at zero (matching its
        // arrivals), so waiters carried over from before this run are
        // re-stamped as enqueued at the start: their wait is excluded
        // from this run's statistics anyway (`pre_run_queued`), and
        // their `max_wait` patience restarts on the new clock rather
        // than expiring against a stale one.
        self.now = SimTime::ZERO;
        self.queue.rebase(SimTime::ZERO);
        let mut epoch_start = SimTime::ZERO;
        let end = SimTime::ZERO + horizon;
        let mut epoch_index = 0u64;
        // Departures observed mid-epoch, applied at the *next* epoch
        // boundary (the granularity contract: a departing tenant serves
        // out its final partial epoch).
        let mut deferred_departures: Vec<String> = Vec::new();
        while epoch_start < end {
            let epoch_len = self.cfg.epoch.min(end.duration_since(epoch_start));
            let epoch_end = epoch_start + epoch_len;
            // 1a. Apply departures from the previous epoch.
            self.now = epoch_start;
            for name in deferred_departures.drain(..) {
                if let Some(id) = self.interner.lookup(&name) {
                    let _ = self.remove_accounted(id, &mut builder, &mut pre_run_queued);
                }
            }
            // Waiters whose queue deadline elapsed give up first; an
            // expired in-run deferral was never served, so the eventual-
            // rejection accounting below picks it up.
            self.expire_accounted(&mut builder, &mut pre_run_queued);
            // The departures may have freed room for queued tenants;
            // the shared helper folds admissions and upgrades in.
            let _ = self.drain_and_upgrade_accounted(&mut builder, &mut pre_run_queued);
            // 1b. Apply churn falling inside this epoch, pulled lazily
            // from the stream — only the departures of currently-live
            // tenants are ever buffered, never the whole trace.
            while let Some(at) = arrivals.peek_time() {
                if at >= epoch_end {
                    break;
                }
                let pull_clock = self.telemetry.prof_clock();
                let (at, event) = arrivals
                    .next_event()
                    .expect("invariant: a peeked stream event exists");
                self.telemetry.prof_record(Span::ArrivalPull, pull_clock);
                match event {
                    ChurnEvent::Arrival(tenant) => {
                        let phase = at.duration_since(epoch_start);
                        self.now = at;
                        let (outcome, id) = self.dispatch_accounted(tenant, &mut builder);
                        match outcome {
                            DispatchOutcome::Placed(_)
                            | DispatchOutcome::PlacedDegraded { .. } => {
                                let id =
                                    id.expect("invariant: placed arrivals are interned");
                                self.pending_phase[id.index()] = Some(phase);
                            }
                            _ => {}
                        }
                    }
                    ChurnEvent::Departure(name) => deferred_departures.push(name),
                }
            }
            self.now = epoch_end;
            // 2. Sample utilisation and prepare each non-empty node's
            // compiled tasks. Preparation needs `&mut self` (the compile
            // cache), so it runs before the fan-out, which only reads
            // `&self.nodes`.
            let mut epoch_dmr: Vec<f64> = vec![0.0; self.nodes.len()];
            let mut jobs: Vec<NodeEpochJob> = Vec::new();
            let compile_clock = self.telemetry.prof_clock();
            // Indexing (not iterating `self.nodes`) because the cache
            // warm-up needs `&mut self` for the compiled-task cache.
            #[allow(clippy::needless_range_loop)]
            for idx in 0..self.nodes.len() {
                let budget = self.admission.budget(&self.nodes[idx], None);
                let demand = self.nodes[idx].total_demand();
                let utilization = if budget > 0.0 { demand / budget } else { 0.0 };
                builder.record_utilization(idx, utilization);
                self.telemetry.record_utilization(self.now, utilization);
                if self.nodes[idx].tenants.is_empty() {
                    continue;
                }
                // Warm the compile cache first (the only `&mut` part),
                // then build the tasks borrowing the resident list in
                // place — no per-epoch clone of the node's tenant and id
                // lists (each task clones only its own cached spec).
                for pos in 0..self.nodes[idx].tenants.len() {
                    self.ensure_compiled(idx, pos);
                }
                let tasks: Vec<CompiledTask> = self.nodes[idx]
                    .tenants
                    .iter()
                    .zip(&self.node_ids[idx])
                    .map(|(t, &id)| {
                        let mut task = self
                            .compiled
                            .get(&Self::compile_key(t, idx))
                            .expect("invariant: the compile cache was warmed for every resident")
                            .clone();
                        task.spec.name = t.name.clone();
                        task.spec.phase = self
                            .pending_phase
                            .get(id.index())
                            .copied()
                            .flatten()
                            .unwrap_or(SimDuration::ZERO);
                        task
                    })
                    .collect();
                let seed = self
                    .cfg
                    .seed
                    .wrapping_add(epoch_index.wrapping_mul(0x9E37_79B9))
                    .wrapping_add(idx as u64);
                jobs.push(NodeEpochJob { idx, tasks, seed });
            }
            self.pending_phase.fill(None);
            self.telemetry.prof_record(Span::EpochCompile, compile_clock);
            // Nodes are independent within an epoch: fan out, then fold
            // in ascending node index so the metrics are bit-identical
            // to the sequential path.
            for (idx, m) in run_node_epochs(&self.nodes, jobs, epoch_len, workers) {
                if m.released > 0 {
                    epoch_dmr[idx] = (m.late + m.skipped + m.dropped) as f64 / m.released as f64;
                }
                builder.record_epoch(idx, &m);
                // Fold order is ascending node index (sorted above), so
                // the latency sketches fill deterministically regardless
                // of the worker count.
                self.telemetry
                    .record_latency_samples(idx, &m.response_samples_ns);
            }
            // 3. Shed load from nodes that missed too much this epoch.
            if self.cfg.migration.enabled {
                builder.migrations += self.migrate_overloaded(&epoch_dmr);
            }
            epoch_start = epoch_end;
            epoch_index += 1;
        }
        // Departures whose boundary is the end of the run still count.
        for name in deferred_departures.drain(..) {
            if let Some(id) = self.interner.lookup(&name) {
                let _ = self.remove_accounted(id, &mut builder, &mut pre_run_queued);
            }
        }
        // Rejections are *eventual* outcomes: a deferred arrival that was
        // never admitted later — still queued at the end, or departed
        // while waiting — never got served. `admitted_after_wait` counts
        // only this run's deferrals (pre-run queue admissions are
        // filtered above), so it never exceeds `deferred`.
        builder.rejected = builder.deferred - builder.admitted_after_wait;
        let final_tenants: Vec<usize> = self.nodes.iter().map(|n| n.tenants.len()).collect();
        let mut metrics = builder.finish(horizon, &final_tenants, self.queue.len() as u64);
        metrics.attach_telemetry(self.telemetry.finish_report());
        metrics
    }

    /// Runs the fleet over `arrivals` until `horizon` in **event-driven**
    /// mode, returning the aggregated metrics.
    ///
    /// Where [`Fleet::run`] quantises to the epoch grid, this path
    /// processes a monotonic event queue (see [`crate::event`] for the
    /// ordering/determinism contract): scheduler state carries across
    /// what used to be epoch boundaries so no in-flight job is ever
    /// truncated ([`FleetMetrics::truncated_jobs`] is asserted zero),
    /// departures apply at their exact instant, and DMR-triggered
    /// migration fires at job-release boundaries, paying the
    /// [`crate::MigrationConfig::cost`] state-transfer stall — while
    /// re-pricing degrade/upgrade switches stay free partition switches.
    /// Churn is merged lazily from the stream, never materialised into
    /// the heap. The run is single-threaded and deterministic:
    /// [`FleetConfig::workers`] / [`FleetConfig::parallel`] have no
    /// effect, so the metrics are byte-identical across those knobs;
    /// sharding steers placement exactly as on the epoch path
    /// (deterministic per configuration, identical to flat only for a
    /// whole-fleet shard).
    ///
    /// # Panics
    ///
    /// Panics if the configured epoch is zero (it paces utilisation
    /// sampling and the migration DMR window), or — defensively — if any
    /// admitted job failed to run to completion.
    #[must_use]
    pub fn run_events(
        &mut self,
        arrivals: impl Into<ArrivalStream>,
        horizon: SimDuration,
    ) -> FleetMetrics {
        crate::event::run_events(self, arrivals.into(), horizon)
    }

    /// Runs `arrivals` in whichever execution mode the configuration
    /// selects: [`Fleet::run_events`] when
    /// [`FleetConfig::event_driven`] is set, the classic epoch-driven
    /// [`Fleet::run`] otherwise.
    #[must_use]
    pub fn run_configured(
        &mut self,
        arrivals: impl Into<ArrivalStream>,
        horizon: SimDuration,
    ) -> FleetMetrics {
        if self.cfg.event_driven {
            self.run_events(arrivals, horizon)
        } else {
            self.run(arrivals, horizon)
        }
    }

    /// Replays `arrivals` through the dispatch path alone — plan,
    /// commit, remove, expire, drain — with no scheduler execution and
    /// no metrics builder: the sustained-throughput surface the
    /// `fleet_stream` bench measures (arrivals/sec through dispatch at
    /// fleet scale). Departure instants apply exactly; each departure is
    /// followed by a patience-expiry sweep and a queue drain so the
    /// wait queue stays bounded over arbitrarily long streams.
    ///
    /// The returned [`DispatchReplay`] carries the interner's
    /// `peak_active` / `id_capacity` counters: with LIFO id recycling
    /// the two are equal and independent of how many tenants streamed
    /// through, which is the trace-length-independent memory evidence.
    #[must_use]
    pub fn replay_dispatch(
        &mut self,
        arrivals: impl Into<ArrivalStream>,
        horizon: SimDuration,
    ) -> DispatchReplay {
        let mut arrivals = arrivals.into();
        let end = SimTime::ZERO + horizon;
        self.now = SimTime::ZERO;
        self.telemetry.begin_profile();
        let mut replay = DispatchReplay::default();
        loop {
            let pull_clock = self.telemetry.prof_clock();
            let Some((at, event)) = arrivals.next_event() else {
                break;
            };
            self.telemetry.prof_record(Span::ArrivalPull, pull_clock);
            if at >= end {
                break;
            }
            self.now = at;
            match event {
                ChurnEvent::Arrival(tenant) => {
                    replay.arrivals += 1;
                    match self.dispatch(tenant) {
                        DispatchOutcome::Placed(_) => replay.placed += 1,
                        DispatchOutcome::PlacedDegraded { .. } => {
                            replay.placed += 1;
                            replay.degraded += 1;
                        }
                        DispatchOutcome::Queued => replay.queued += 1,
                        DispatchOutcome::Infeasible => replay.infeasible += 1,
                        DispatchOutcome::Duplicate => replay.duplicates += 1,
                    }
                }
                ChurnEvent::Departure(name) => {
                    if self.remove(&name) {
                        replay.departures += 1;
                    }
                    replay.expired += self.expire_queued().len() as u64;
                    replay.admitted_after_wait += self.drain_queue();
                }
            }
        }
        replay.peak_active = self.interner.peak_live();
        replay.id_capacity = self.interner.capacity();
        replay.final_active = self.interner.live();
        self.telemetry.finish_profile();
        replay
    }

    /// Moves one tenant (chosen by the configured
    /// [`crate::MigrationVictimPolicy`]) off every node whose epoch miss
    /// rate crossed the threshold, if another node admits it — victim
    /// and destination choice both delegated to the policy kernel.
    fn migrate_overloaded(&mut self, epoch_dmr: &[f64]) -> u64 {
        let mut migrations = 0;
        // Indexing because the body mutates several nodes at once.
        #[allow(clippy::needless_range_loop)]
        for idx in 0..self.nodes.len() {
            if epoch_dmr[idx] <= self.cfg.migration.dmr_threshold
                || self.nodes[idx].tenants.len() < 2
            {
                continue;
            }
            let Some(slot) = policy::select_migration_victim(
                &self.nodes[idx],
                &self.admission,
                self.cfg.migration.victim,
            ) else {
                continue;
            };
            let (id, tenant) = self.detach_resident(idx, slot);
            let dest = policy::migration_destination(
                &FleetState::new(&self.nodes, &self.admission),
                idx,
                &tenant,
                epoch_dmr,
                self.cfg.migration.dmr_threshold,
            );
            let victim = self.telemetry.enabled().then(|| tenant.name.clone());
            match dest {
                Some(j) => {
                    self.attach_resident(j, id, tenant);
                    self.planner.invalidate_node(idx);
                    self.planner.invalidate_node(j);
                    // The source node freed capacity: a waiter that
                    // routed anywhere may now fit there.
                    self.capacity_released = true;
                    migrations += 1;
                }
                // Nobody can take it; restore it to its original slot.
                None => self.restore_resident(idx, slot, id, tenant),
            }
            if let Some(victim) = victim {
                // The epoch path models migration as free (its
                // pre-existing contract): the traced stall is zero.
                self.telemetry
                    .record_migration(self.now, &victim, idx, dest, SimDuration::ZERO);
            }
        }
        migrations
    }
}

/// One node's prepared work for an epoch: the compiled tasks (with their
/// release phases applied) and the node's jitter seed.
struct NodeEpochJob {
    idx: usize,
    tasks: Vec<CompiledTask>,
    seed: u64,
}

impl NodeEpochJob {
    fn run(self, nodes: &[FleetNode], epoch_len: SimDuration) -> (usize, RunMetrics) {
        let m = nodes[self.idx].spec.run_epoch(self.tasks, epoch_len, self.seed);
        (self.idx, m)
    }
}

/// Worker-thread count for the per-epoch fan-out: the override (or every
/// available core) when `parallel`, one otherwise.
fn epoch_workers(parallel: bool, over: Option<usize>) -> usize {
    if parallel {
        over.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    } else {
        1
    }
}

/// Runs the prepared per-node epoch jobs — over `workers` scoped worker
/// threads when more than one — and returns `(node index, metrics)`
/// pairs sorted by node index, so folding them is deterministic
/// regardless of the execution strategy.
fn run_node_epochs(
    nodes: &[FleetNode],
    jobs: Vec<NodeEpochJob>,
    epoch_len: SimDuration,
    workers: usize,
) -> Vec<(usize, RunMetrics)> {
    let workers = workers.min(jobs.len());
    let mut results: Vec<(usize, RunMetrics)> = if workers <= 1 {
        jobs.into_iter().map(|job| job.run(nodes, epoch_len)).collect()
    } else {
        // Partition the node indices round-robin across the workers; each
        // worker hands its (idx, metrics) pairs back through its join
        // handle, so no locks are involved.
        let mut buckets: Vec<Vec<NodeEpochJob>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            buckets[i % workers].push(job);
        }
        crossbeam::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move |_| {
                        bucket
                            .into_iter()
                            .map(|job| job.run(nodes, epoch_len))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("invariant: node epoch workers never panic"))
                .collect()
        })
        .expect("invariant: epoch worker scope never fails")
    };
    results.sort_by_key(|&(idx, _)| idx);
    results
}

#[cfg(test)]
mod tests;
