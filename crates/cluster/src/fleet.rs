//! The fleet dispatcher: epoch-driven simulation of many GPU nodes under
//! tenant churn.
//!
//! This file is **orchestration only**. Every decision — admission and
//! placement planning (flat, shard-scan, or power-of-two-choices), the
//! re-pricing ladder walk, queue feasibility and demand-aware expiry,
//! upgrade candidates, and migration victim/destination choice — lives
//! in the shared [`crate::policy`] kernel, consumed identically by this
//! epoch path, the event engine ([`crate::event`]), and the sharded
//! front door ([`crate::ShardedFleet`]). Configuration lives in
//! [`crate::config`]. What remains here is the epoch loop, the shared
//! dispatch/queue/upgrade *orchestration* both engines call, and the
//! shared accounting helpers that fold outcomes into
//! [`FleetMetricsBuilder`] so the two engines cannot drift.
//!
//! Simulated time is divided into *epochs*. At each epoch boundary the
//! dispatcher applies churn events (arrivals are planned through the
//! policy kernel; departures free capacity, expire overdue waiters, and
//! drain the wait queue in [`crate::QueuePolicy`] order), then every
//! non-empty node runs its scheduler for one epoch and reports
//! [`sgprs_core::RunMetrics`], which the [`FleetMetricsBuilder`] folds
//! into fleet totals. Optional migration moves a tenant off any node
//! whose epoch miss rate crossed a threshold.
//!
//! With [`crate::QueueConfig::repricing`] on, an arrival that does not fit at
//! its requested rate may be admitted at a degraded
//! [`TenantSpec::fps_ladder`] step — SGPRS's zero-cost partition switch
//! makes the later upgrade free — and each epoch boundary steps degraded
//! residents back up: departures first admit waiting tenants (policy
//! order), then leftover capacity upgrades degraded residents in place,
//! in tenant-name order, jumping each as high up its ladder as the node
//! admits. Degrades and upgrades never move a tenant between nodes.
//!
//! Granularity contract: arrivals keep sub-epoch precision (they enter
//! as release phases inside their first epoch); departures and
//! migrations take effect at the epoch boundary *following* the event,
//! so a departing tenant serves out its final partial epoch. Jobs still
//! in flight when an epoch ends are not counted as completed — with the
//! default one-second epoch and the paper's 33 ms periods this
//! truncation is under 3 % and affects every scheduler equally; the
//! count is surfaced as [`FleetMetrics::truncated_jobs`]. The
//! event-driven mode ([`Fleet::run_events`], see [`crate::event`])
//! removes the grid entirely: exact boundaries, zero truncation, and
//! migration at job-release boundaries paying
//! [`crate::MigrationConfig::cost`].
//!
//! Parallel-execution determinism: within one epoch the nodes are
//! mutually independent — they share no simulator state, their compiled
//! tasks are prepared before any node runs, and each node's jitter seed
//! is a pure function of `(fleet seed, epoch index, node index)`. `run`
//! therefore fans the per-node `run_epoch` calls out over scoped worker
//! threads and folds the results back in ascending node index, so the
//! resulting [`FleetMetrics`] is bit-identical to sequential execution
//! ([`crate::FleetConfig::sequential`] is the escape hatch): parallelism
//! changes wall-clock time, never results.

use crate::policy::{self, DispatchPlanner, FleetState, PricedPlan, QueueAdmission};
use crate::queue::DispatchQueue;
use crate::shard::ShardDirectory;
use crate::telemetry::{Telemetry, PLAN_LATENCY_BINS};
use crate::{
    AdmissionController, ChurnEvent, ChurnTrace, FleetConfig, FleetMetrics, FleetMetricsBuilder,
    FleetNode, TenantSpec,
};
use sgprs_core::{CompiledTask, RunMetrics};
use sgprs_rt::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Where a dispatched tenant ended up.
#[derive(Debug, Clone, PartialEq)]
pub enum DispatchOutcome {
    /// Placed on the node with the given index.
    Placed(usize),
    /// Did not fit at its requested rate, but the re-pricing ladder found
    /// room at the degraded rate `fps` on node `node` — the tenant is
    /// resident and will be upgraded back toward its requested rate when
    /// capacity frees (requires [`crate::QueueConfig::repricing`]).
    PlacedDegraded {
        /// The node the tenant landed on.
        node: usize,
        /// The degraded rate it serves at.
        fps: f64,
    },
    /// Currently over capacity everywhere; the tenant waits in the
    /// dispatch queue for departures to free room.
    Queued,
    /// Latency-infeasible on every node: no departure can ever make it
    /// fit, so it is dropped rather than queued (queueing it would block
    /// the FIFO queue's head forever).
    Infeasible,
    /// A tenant with the same name is already active (resident or
    /// queued). Names key removal, migration, and release phases, so the
    /// dispatcher enforces the uniqueness contract documented on
    /// [`TenantSpec::name`] instead of letting a later `remove` delete
    /// the wrong instance and leave a resident ghost.
    Duplicate,
}

/// A simulated multi-GPU fleet with admission control, load balancing,
/// and tenant churn.
#[derive(Debug)]
pub struct Fleet {
    pub(crate) cfg: FleetConfig,
    pub(crate) nodes: Vec<FleetNode>,
    pub(crate) admission: AdmissionController,
    /// The mutable half of the policy kernel: placement cursor + shard
    /// directory (see [`crate::policy`]).
    pub(crate) planner: DispatchPlanner,
    pub(crate) queue: DispatchQueue,
    /// Sub-epoch release phase of tenants that arrived mid-epoch,
    /// consumed by the next `run_epoch`.
    pending_phase: HashMap<String, SimDuration>,
    /// Compiled-task cache keyed by (model, stages, period ns, node).
    compiled: HashMap<(crate::ModelKind, usize, u64, usize), CompiledTask>,
    /// Names of active tenants (resident or queued), enforcing the
    /// uniqueness contract of [`TenantSpec::name`].
    active: HashSet<String>,
    /// The dispatcher's clock: advanced by `run`/`run_events`, stamps
    /// queue entries so waits and queue deadlines are measurable.
    pub(crate) now: SimTime,
    /// Whether node capacity was released (departure or migration) since
    /// the last drain pass — when it was not, the queue head still cannot
    /// fit and the whole retry scan is skipped.
    pub(crate) capacity_released: bool,
    /// Drain passes that actually scanned the queue (skip-scan
    /// observability for tests).
    drain_scans: u64,
    /// Residents currently serving below their requested rate: tenant
    /// name → requested fps. Ordered so upgrade passes are deterministic.
    degraded: BTreeMap<String, f64>,
    /// Memoised [`policy::can_ever_fit`] answers per price point
    /// `(model, stages, fps bits)` — the answer is load-independent, so
    /// demand-aware expiry sweeps cost one map lookup per queued waiter
    /// after the first.
    hopeless_cache: HashMap<(crate::ModelKind, usize, u64), bool>,
    /// The telemetry recorder (see [`crate::telemetry`]): armed by
    /// `begin_run` when [`crate::TelemetryConfig::enabled`], a no-op on
    /// every hook otherwise. All recording happens on the
    /// single-threaded orchestration path, never inside the parallel
    /// fan-out, so the report is deterministic across worker counts.
    pub(crate) telemetry: Telemetry,
}

impl Fleet {
    /// Builds an empty fleet from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.nodes` is empty (possible despite the check in
    /// [`FleetConfig::new`], since the config's fields are public).
    #[must_use]
    pub fn new(cfg: FleetConfig) -> Self {
        assert!(!cfg.nodes.is_empty(), "a fleet needs at least one node");
        let nodes: Vec<FleetNode> = cfg.nodes.iter().cloned().map(FleetNode::new).collect();
        let admission = AdmissionController::new(cfg.admission.clone());
        let planner = DispatchPlanner::new(cfg.placement, nodes.len(), cfg.sharding.as_ref());
        let queue = DispatchQueue::new(cfg.queue.policy);
        let telemetry = Telemetry::new(cfg.telemetry.clone());
        Fleet {
            cfg,
            nodes,
            admission,
            planner,
            queue,
            pending_phase: HashMap::new(),
            compiled: HashMap::new(),
            active: HashSet::new(),
            now: SimTime::ZERO,
            capacity_released: true,
            drain_scans: 0,
            degraded: BTreeMap::new(),
            hopeless_cache: HashMap::new(),
            telemetry,
        }
    }

    /// The nodes with their resident tenants.
    #[must_use]
    pub fn nodes(&self) -> &[FleetNode] {
        &self.nodes
    }

    /// Tenants waiting for capacity.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Names of the waiting tenants in drain (policy) order.
    #[must_use]
    pub fn queued_names(&self) -> Vec<String> {
        self.queue.names_in_order(self.now)
    }

    /// Number of residents currently serving below their requested rate.
    #[must_use]
    pub fn degraded_residents(&self) -> usize {
        self.degraded.len()
    }

    /// The admission controller in use.
    #[must_use]
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The shard directory, when sharding is configured.
    pub(crate) fn router(&self) -> Option<&ShardDirectory> {
        self.planner.router()
    }

    /// Chooses a node for `tenant` without committing the placement —
    /// the per-arrival hot path the placement benches measure, delegated
    /// to the policy kernel's [`DispatchPlanner::plan`].
    #[must_use]
    pub fn plan(&mut self, tenant: &TenantSpec) -> Option<usize> {
        self.planner
            .plan(&FleetState::new(&self.nodes, &self.admission), tenant)
    }

    /// Plans `tenant` down its re-pricing ladder (kernel
    /// [`DispatchPlanner::plan_repriced`], honouring
    /// [`crate::QueueConfig::repricing`]).
    fn plan_repriced(&mut self, tenant: &TenantSpec) -> Option<PricedPlan> {
        let clock = self.telemetry.plan_clock();
        let before = self.planner.probes();
        let plan = self.planner.plan_repriced(
            &FleetState::new(&self.nodes, &self.admission),
            tenant,
            self.cfg.queue.repricing,
        );
        self.telemetry
            .note_plan(self.planner.probes() - before, clock);
        plan
    }

    /// Makes `tenant` resident on node `idx`, keeping the active-name
    /// set and the shard summaries in sync.
    fn commit(&mut self, idx: usize, tenant: TenantSpec) {
        self.planner.note_place(idx, tenant.demand_sm_equivalents());
        self.active.insert(tenant.name.clone());
        self.nodes[idx].tenants.push(tenant);
    }

    /// Offers `tenant` to the placement policy: on success the tenant
    /// becomes resident; when it does not fit at its requested rate and
    /// re-pricing is on, its [`TenantSpec::fps_ladder`] steps are tried
    /// next (degrade instead of defer); when merely over capacity it
    /// joins the wait queue; when latency-infeasible on every node (at
    /// every admissible price) it is dropped; when its name is already
    /// active it is rejected as a duplicate.
    pub fn dispatch(&mut self, tenant: TenantSpec) -> DispatchOutcome {
        if self.active.contains(&tenant.name) {
            return DispatchOutcome::Duplicate;
        }
        match self.plan_repriced(&tenant) {
            Some(PricedPlan::Full(idx)) => {
                self.commit(idx, tenant);
                return DispatchOutcome::Placed(idx);
            }
            Some(PricedPlan::Degraded(idx, fps)) => {
                self.degraded.insert(tenant.name.clone(), tenant.fps);
                self.commit(idx, tenant.at_fps(fps));
                return DispatchOutcome::PlacedDegraded { node: idx, fps };
            }
            None => {}
        }
        let feasible = policy::queue_feasible(
            &FleetState::new(&self.nodes, &self.admission),
            &tenant,
            self.cfg.queue.repricing,
        );
        if feasible {
            self.active.insert(tenant.name.clone());
            self.queue.push(tenant, self.now);
            DispatchOutcome::Queued
        } else {
            DispatchOutcome::Infeasible
        }
    }

    /// [`Self::dispatch`] plus the shared arrival accounting: one
    /// definition of how each [`DispatchOutcome`] maps onto the metrics
    /// counters, used by both execution engines so the books cannot
    /// drift.
    pub(crate) fn dispatch_accounted(
        &mut self,
        tenant: TenantSpec,
        builder: &mut FleetMetricsBuilder,
    ) -> DispatchOutcome {
        builder.arrivals += 1;
        let traced_name = self.telemetry.enabled().then(|| tenant.name.clone());
        let probes_before = self.planner.probes();
        let outcome = self.dispatch(tenant);
        match &outcome {
            DispatchOutcome::Placed(_) => builder.admitted += 1,
            DispatchOutcome::PlacedDegraded { .. } => {
                builder.admitted += 1;
                builder.degraded += 1;
            }
            DispatchOutcome::Queued => builder.deferred += 1,
            DispatchOutcome::Infeasible => builder.infeasible += 1,
            DispatchOutcome::Duplicate => builder.duplicates += 1,
        }
        if let Some(name) = traced_name {
            let probes = self.planner.probes() - probes_before;
            let depth = self.queue.len();
            self.telemetry
                .record_arrival(self.now, &name, &outcome, probes, depth);
        }
        outcome
    }

    /// Removes the named tenant wherever it lives (node or queue).
    /// Returns `true` when something was removed. Under the uniqueness
    /// contract of [`TenantSpec::name`] (enforced by [`Self::dispatch`])
    /// at most one active tenant can match.
    pub fn remove(&mut self, name: &str) -> bool {
        if let Some((idx, pos)) = self.locate(name) {
            self.nodes[idx].tenants.remove(pos);
            self.active.remove(name);
            self.degraded.remove(name);
            // A departure frees node capacity: the next drain pass must
            // actually scan the queue again.
            self.capacity_released = true;
            self.planner.invalidate_node(idx);
            return true;
        }
        if self.queue.remove(name) {
            self.active.remove(name);
            return true;
        }
        false
    }

    /// [`Self::remove`] plus the shared departure accounting: a removed
    /// tenant counts as a departure, and a departing pre-run waiter must
    /// not leave its name behind (a later same-named deferred arrival
    /// would match the stale entry and be miscounted as rejected). One
    /// definition for both execution engines.
    pub(crate) fn remove_accounted(
        &mut self,
        name: &str,
        builder: &mut FleetMetricsBuilder,
        pre_run_queued: &mut HashSet<String>,
    ) -> bool {
        let resident = self.telemetry.enabled() && self.locate(name).is_some();
        if self.remove(name) {
            builder.departures += 1;
            pre_run_queued.remove(name);
            let depth = self.queue.len();
            self.telemetry.record_departure(self.now, name, resident, depth);
            true
        } else {
            false
        }
    }

    /// Retries queued tenants in policy order; returns how many were
    /// admitted. Stops at the first tenant that still does not fit (at
    /// any admissible price when re-pricing is on), so the queue stays
    /// fair: nothing overtakes within the policy order. When no node
    /// capacity was released since the last pass the scan is skipped
    /// outright — admission is monotone in node load, so a head that did
    /// not fit then cannot fit now.
    pub fn drain_queue(&mut self) -> u64 {
        self.drain_queue_admissions().len() as u64
    }

    /// [`Self::drain_queue`], reporting each admission's name, price, and
    /// wait so the engines can attribute it to the right deferral.
    pub(crate) fn drain_queue_admissions(&mut self) -> Vec<QueueAdmission> {
        let mut admitted = Vec::new();
        if !self.capacity_released {
            return admitted;
        }
        self.drain_scans += 1;
        self.telemetry.note_drain_scan();
        while let Some(entry) = self.queue.pop_first(self.now) {
            let Some(plan) = self.plan_repriced(&entry.tenant) else {
                // The head fits at no price: stop (no overtaking) and put
                // it back — `reinsert` keeps its arrival serial, so the
                // drain order is unchanged.
                self.queue.reinsert(entry);
                break;
            };
            let waited = self.now.duration_since(entry.enqueued_at);
            let (idx, spec, was_degraded) = match plan {
                PricedPlan::Full(idx) => (idx, entry.tenant, false),
                PricedPlan::Degraded(idx, fps) => {
                    self.degraded
                        .insert(entry.tenant.name.clone(), entry.tenant.fps);
                    (idx, entry.tenant.at_fps(fps), true)
                }
            };
            admitted.push(QueueAdmission {
                name: spec.name.clone(),
                degraded: was_degraded,
                waited,
            });
            self.commit(idx, spec);
        }
        self.capacity_released = false;
        admitted
    }

    /// Drains the wait queue and folds each admission into `builder`
    /// under the shared accounting contract — admissions of *this run's*
    /// deferrals (not `pre_run_queued` carry-overs) count toward
    /// `admitted_after_wait` and the wait statistics, degraded
    /// admissions are tallied, and (with re-pricing on) leftover
    /// capacity then upgrades degraded residents. One definition for
    /// both execution modes, so epoch and event accounting cannot
    /// silently drift; the admissions are returned for mode-specific
    /// bookkeeping (the event engine starts release clocks from them).
    pub(crate) fn drain_and_upgrade_accounted(
        &mut self,
        builder: &mut FleetMetricsBuilder,
        pre_run_queued: &mut HashSet<String>,
    ) -> Vec<QueueAdmission> {
        let admissions = self.drain_queue_admissions();
        for adm in &admissions {
            let counted = !pre_run_queued.remove(&adm.name);
            if counted {
                builder.admitted_after_wait += 1;
                builder.record_wait(adm.waited);
            }
            if adm.degraded {
                builder.degraded += 1;
            }
            let depth = self.queue.len();
            self.telemetry.record_queue_admit(
                self.now,
                &adm.name,
                adm.degraded,
                adm.waited,
                counted,
                depth,
            );
        }
        // Leftover capacity steps degraded residents back up their
        // ladders (an in-place partition switch, not a migration) —
        // after waiting admissions: serving more tenants beats serving
        // fewer faster.
        if self.cfg.queue.repricing {
            builder.upgrades += self.upgrade_degraded();
        }
        admissions
    }

    /// Drops queued tenants whose [`TenantSpec::max_wait`] elapsed,
    /// returning their names.
    pub(crate) fn expire_queued(&mut self) -> Vec<String> {
        let expired = self.queue.take_expired(self.now);
        expired
            .into_iter()
            .map(|e| {
                self.active.remove(&e.tenant.name);
                e.tenant.name
            })
            .collect()
    }

    /// Memoised [`policy::can_ever_fit`] per price point: the answer is
    /// load-independent (it tests against *emptied* nodes) and ignores
    /// the tenant's name/weight/patience, so one evaluation per
    /// `(model, stages, fps)` serves the whole run and a cache miss only
    /// builds a throwaway probe spec.
    fn price_can_ever_fit(&mut self, model: crate::ModelKind, stages: usize, fps: f64) -> bool {
        let key = (model, stages, fps.to_bits());
        if let Some(&known) = self.hopeless_cache.get(&key) {
            return known;
        }
        let probe = TenantSpec::new("hopeless-probe", model, fps).with_stages(stages);
        let fits =
            policy::can_ever_fit(&FleetState::new(&self.nodes, &self.admission), &probe);
        self.hopeless_cache.insert(key, fits);
        fits
    }

    /// Demand-aware expiry sweep ([`crate::QueueConfig::demand_aware_expiry`]):
    /// drops queued tenants that provably can never be admitted — no
    /// node could carry them even fully drained, at any ladder step —
    /// and returns their names. Waiting longer can never help such a
    /// waiter, so expiring it before its patience elapses loses nothing.
    /// Only the price points matter, so the sweep collects cheap
    /// `(name, price…)` keys instead of cloning whole specs.
    pub(crate) fn expire_hopeless(&mut self) -> Vec<String> {
        if self.queue.len() == 0 {
            return Vec::new();
        }
        let repricing = self.cfg.queue.repricing;
        let waiters: Vec<(String, crate::ModelKind, usize, Vec<f64>)> = self
            .queue
            .iter()
            .map(|t| {
                let mut prices = vec![t.fps];
                if repricing {
                    prices.extend(t.degrade_steps());
                }
                (t.name.clone(), t.model, t.stages, prices)
            })
            .collect();
        let mut doomed = Vec::new();
        for (name, model, stages, prices) in waiters {
            let fits = prices
                .iter()
                .any(|&fps| self.price_can_ever_fit(model, stages, fps));
            if !fits {
                doomed.push(name);
            }
        }
        for name in &doomed {
            self.queue.remove(name);
            self.active.remove(name);
        }
        doomed
    }

    /// The shared expiry accounting both engines run at their expiry
    /// instants: patience expiry first (counted as
    /// [`FleetMetrics::expired`]), then — with
    /// [`crate::QueueConfig::demand_aware_expiry`] on — the provably-hopeless
    /// sweep (counted separately as
    /// [`FleetMetrics::expired_hopeless`]). Expired in-run deferrals
    /// fall through to the eventual-rejection accounting either way.
    pub(crate) fn expire_accounted(
        &mut self,
        builder: &mut FleetMetricsBuilder,
        pre_run_queued: &mut HashSet<String>,
    ) {
        for name in self.expire_queued() {
            builder.expired += 1;
            pre_run_queued.remove(&name);
            let depth = self.queue.len();
            self.telemetry.record_expired(self.now, &name, false, depth);
        }
        if self.cfg.queue.demand_aware_expiry {
            for name in self.expire_hopeless() {
                builder.expired_hopeless += 1;
                pre_run_queued.remove(&name);
                let depth = self.queue.len();
                self.telemetry.record_expired(self.now, &name, true, depth);
            }
        }
    }

    /// Tries to move every degraded resident back up its ladder — to the
    /// requested rate if the node now carries it, else to the highest
    /// ladder step that fits ([`policy::upgrade_candidates`] orders the
    /// attempts). Upgrades are in-place partition switches on the
    /// resident node (SGPRS's zero-cost reconfiguration), never
    /// migrations, and run in tenant-name order for determinism. Returns
    /// the number of upgrade steps taken.
    pub(crate) fn upgrade_degraded(&mut self) -> u64 {
        if self.degraded.is_empty() {
            return 0;
        }
        let names: Vec<String> = self.degraded.keys().cloned().collect();
        let mut upgrades = 0;
        for name in names {
            let requested = self.degraded[&name];
            // Find the resident (it may have migrated since it degraded).
            let Some((idx, pos)) = self.locate(&name) else {
                // Defensive: a degraded entry with no resident would mean
                // a removal missed the map; drop it rather than retry
                // forever.
                self.degraded.remove(&name);
                continue;
            };
            let resident = self.nodes[idx].tenants.remove(pos);
            let candidates = policy::upgrade_candidates(&resident, requested);
            let mut upgraded = None;
            for fps in candidates {
                let priced = resident.at_fps(fps);
                if self.admission.evaluate(&self.nodes[idx], &priced).is_admit() {
                    upgraded = Some(priced);
                    break;
                }
            }
            match upgraded {
                Some(priced) => {
                    if (priced.fps - requested).abs() < 1e-12 {
                        self.degraded.remove(&name);
                    }
                    let fps = priced.fps;
                    // Same slot, so placement order (and migration's LIFO
                    // victim choice) is unaffected by the price change.
                    self.nodes[idx].tenants.insert(pos, priced);
                    upgrades += 1;
                    self.planner.invalidate_node(idx);
                    self.telemetry.record_upgrade(self.now, &name, fps);
                }
                None => self.nodes[idx].tenants.insert(pos, resident),
            }
        }
        upgrades
    }

    /// The node index and tenant slot of the named resident.
    pub(crate) fn locate(&self, name: &str) -> Option<(usize, usize)> {
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Some(pos) = node.tenants.iter().position(|t| t.name == name) {
                return Some((idx, pos));
            }
        }
        None
    }

    /// Drain passes that actually scanned the queue (the skip-scan
    /// fast path does not count).
    #[cfg(test)]
    fn drain_scans(&self) -> u64 {
        self.drain_scans
    }

    /// The wall-clock plan-latency histogram of the last finished run
    /// (log2 nanosecond buckets: bucket `i` counts plans that took
    /// `[2^i, 2^(i+1))` ns, the last catching everything above). All
    /// zeros when telemetry was off. Wall-clock is not deterministic, so
    /// this lives outside [`FleetMetrics`] and its JSON export — see
    /// [`crate::telemetry`].
    #[must_use]
    pub fn plan_latency_histogram(&self) -> [u64; PLAN_LATENCY_BINS] {
        self.telemetry.plan_latency_histogram()
    }

    fn compiled_for(&mut self, tenant: &TenantSpec, node_idx: usize) -> CompiledTask {
        let key = (
            tenant.model,
            tenant.stages,
            tenant.period().as_nanos(),
            node_idx,
        );
        let pool = self.nodes[node_idx].spec.pool();
        let mut task = self
            .compiled
            .entry(key)
            .or_insert_with(|| tenant.compile_for(&pool))
            .clone();
        task.spec.name = tenant.name.clone();
        task
    }

    /// Runs the fleet over `trace` until `horizon`, returning the
    /// aggregated metrics.
    ///
    /// # Panics
    ///
    /// Panics if the configured epoch is zero.
    #[must_use]
    pub fn run(&mut self, trace: ChurnTrace, horizon: SimDuration) -> FleetMetrics {
        assert!(!self.cfg.epoch.is_zero(), "epoch must be positive");
        let mut builder = FleetMetricsBuilder::new(
            self.nodes.iter().map(|n| n.spec.name.clone()).collect(),
            self.nodes.iter().map(|n| n.spec.gpu.total_sms).collect(),
        );
        let workers = epoch_workers(self.cfg.parallel, self.cfg.workers);
        self.telemetry.begin_run(self.nodes.len(), horizon);
        // Tenants already waiting when `run` starts are not this run's
        // deferrals: their later admission must not offset the eventual-
        // rejection count of arrivals deferred *by this run*.
        let mut pre_run_queued: HashSet<String> =
            self.queue.iter().map(|t| t.name.clone()).collect();
        // Every run is its own timeline starting at zero (matching its
        // trace), so waiters carried over from before this run are
        // re-stamped as enqueued at the start: their wait is excluded
        // from this run's statistics anyway (`pre_run_queued`), and
        // their `max_wait` patience restarts on the new clock rather
        // than expiring against a stale one.
        self.now = SimTime::ZERO;
        self.queue.rebase(SimTime::ZERO);
        let mut events = VecDeque::from(trace.into_sorted());
        let mut epoch_start = SimTime::ZERO;
        let end = SimTime::ZERO + horizon;
        let mut epoch_index = 0u64;
        // Departures observed mid-epoch, applied at the *next* epoch
        // boundary (the granularity contract: a departing tenant serves
        // out its final partial epoch).
        let mut deferred_departures: Vec<String> = Vec::new();
        while epoch_start < end {
            let epoch_len = self.cfg.epoch.min(end.duration_since(epoch_start));
            let epoch_end = epoch_start + epoch_len;
            // 1a. Apply departures from the previous epoch.
            self.now = epoch_start;
            for name in deferred_departures.drain(..) {
                let _ = self.remove_accounted(&name, &mut builder, &mut pre_run_queued);
            }
            // Waiters whose queue deadline elapsed give up first; an
            // expired in-run deferral was never served, so the eventual-
            // rejection accounting below picks it up.
            self.expire_accounted(&mut builder, &mut pre_run_queued);
            // The departures may have freed room for queued tenants;
            // the shared helper folds admissions and upgrades in.
            let _ = self.drain_and_upgrade_accounted(&mut builder, &mut pre_run_queued);
            // 1b. Apply churn falling inside this epoch.
            while let Some((at, _)) = events.front() {
                if *at >= epoch_end {
                    break;
                }
                let (at, event) = events.pop_front().expect("invariant: front exists, loop guard checked non-empty");
                match event {
                    ChurnEvent::Arrival(tenant) => {
                        let phase = at.duration_since(epoch_start);
                        self.now = at;
                        match self.dispatch_accounted(tenant.clone(), &mut builder) {
                            DispatchOutcome::Placed(_)
                            | DispatchOutcome::PlacedDegraded { .. } => {
                                self.pending_phase.insert(tenant.name, phase);
                            }
                            _ => {}
                        }
                    }
                    ChurnEvent::Departure(name) => deferred_departures.push(name),
                }
            }
            self.now = epoch_end;
            // 2. Sample utilisation and prepare each non-empty node's
            // compiled tasks. Preparation needs `&mut self` (the compile
            // cache), so it runs before the fan-out, which only reads
            // `&self.nodes`.
            let mut epoch_dmr: Vec<f64> = vec![0.0; self.nodes.len()];
            let mut jobs: Vec<NodeEpochJob> = Vec::new();
            // Indexing (not iterating `self.nodes`) because the body
            // needs `&mut self` for the compiled-task cache.
            #[allow(clippy::needless_range_loop)]
            for idx in 0..self.nodes.len() {
                let budget = self.admission.budget(&self.nodes[idx], None);
                let demand = self.nodes[idx].total_demand();
                let utilization = if budget > 0.0 { demand / budget } else { 0.0 };
                builder.record_utilization(idx, utilization);
                self.telemetry.record_utilization(self.now, utilization);
                if self.nodes[idx].tenants.is_empty() {
                    continue;
                }
                let tenants = self.nodes[idx].tenants.clone();
                let tasks: Vec<CompiledTask> = tenants
                    .iter()
                    .map(|t| {
                        let mut task = self.compiled_for(t, idx);
                        task.spec.phase = self
                            .pending_phase
                            .get(&t.name)
                            .copied()
                            .unwrap_or(SimDuration::ZERO);
                        task
                    })
                    .collect();
                let seed = self
                    .cfg
                    .seed
                    .wrapping_add(epoch_index.wrapping_mul(0x9E37_79B9))
                    .wrapping_add(idx as u64);
                jobs.push(NodeEpochJob { idx, tasks, seed });
            }
            self.pending_phase.clear();
            // Nodes are independent within an epoch: fan out, then fold
            // in ascending node index so the metrics are bit-identical
            // to the sequential path.
            for (idx, m) in run_node_epochs(&self.nodes, jobs, epoch_len, workers) {
                if m.released > 0 {
                    epoch_dmr[idx] = (m.late + m.skipped + m.dropped) as f64 / m.released as f64;
                }
                builder.record_epoch(idx, &m);
                // Fold order is ascending node index (sorted above), so
                // the latency sketches fill deterministically regardless
                // of the worker count.
                self.telemetry
                    .record_latency_samples(idx, &m.response_samples_ns);
            }
            // 3. Shed load from nodes that missed too much this epoch.
            if self.cfg.migration.enabled {
                builder.migrations += self.migrate_overloaded(&epoch_dmr);
            }
            epoch_start = epoch_end;
            epoch_index += 1;
        }
        // Departures whose boundary is the end of the run still count.
        for name in deferred_departures.drain(..) {
            let _ = self.remove_accounted(&name, &mut builder, &mut pre_run_queued);
        }
        // Rejections are *eventual* outcomes: a deferred arrival that was
        // never admitted later — still queued at the end, or departed
        // while waiting — never got served. `admitted_after_wait` counts
        // only this run's deferrals (pre-run queue admissions are
        // filtered above), so it never exceeds `deferred`.
        builder.rejected = builder.deferred - builder.admitted_after_wait;
        let final_tenants: Vec<usize> = self.nodes.iter().map(|n| n.tenants.len()).collect();
        let mut metrics = builder.finish(horizon, &final_tenants, self.queue.len() as u64);
        metrics.attach_telemetry(self.telemetry.finish_report());
        metrics
    }

    /// Runs the fleet over `trace` until `horizon` in **event-driven**
    /// mode, returning the aggregated metrics.
    ///
    /// Where [`Fleet::run`] quantises to the epoch grid, this path
    /// processes a monotonic event queue (see [`crate::event`] for the
    /// ordering/determinism contract): scheduler state carries across
    /// what used to be epoch boundaries so no in-flight job is ever
    /// truncated ([`FleetMetrics::truncated_jobs`] is asserted zero),
    /// departures apply at their exact instant, and DMR-triggered
    /// migration fires at job-release boundaries, paying the
    /// [`crate::MigrationConfig::cost`] state-transfer stall — while
    /// re-pricing degrade/upgrade switches stay free partition switches.
    /// The run is single-threaded and deterministic:
    /// [`FleetConfig::workers`] / [`FleetConfig::parallel`] have no
    /// effect, so the metrics are byte-identical across those knobs;
    /// sharding steers placement exactly as on the epoch path
    /// (deterministic per configuration, identical to flat only for a
    /// whole-fleet shard).
    ///
    /// # Panics
    ///
    /// Panics if the configured epoch is zero (it paces utilisation
    /// sampling and the migration DMR window), or — defensively — if any
    /// admitted job failed to run to completion.
    #[must_use]
    pub fn run_events(&mut self, trace: ChurnTrace, horizon: SimDuration) -> FleetMetrics {
        crate::event::run_events(self, trace, horizon)
    }

    /// Runs `trace` in whichever execution mode the configuration
    /// selects: [`Fleet::run_events`] when
    /// [`FleetConfig::event_driven`] is set, the classic epoch-driven
    /// [`Fleet::run`] otherwise.
    #[must_use]
    pub fn run_configured(&mut self, trace: ChurnTrace, horizon: SimDuration) -> FleetMetrics {
        if self.cfg.event_driven {
            self.run_events(trace, horizon)
        } else {
            self.run(trace, horizon)
        }
    }

    /// Moves one tenant (chosen by the configured
    /// [`crate::MigrationVictimPolicy`]) off every node whose epoch miss
    /// rate crossed the threshold, if another node admits it — victim
    /// and destination choice both delegated to the policy kernel.
    fn migrate_overloaded(&mut self, epoch_dmr: &[f64]) -> u64 {
        let mut migrations = 0;
        // Indexing because the body mutates several nodes at once.
        #[allow(clippy::needless_range_loop)]
        for idx in 0..self.nodes.len() {
            if epoch_dmr[idx] <= self.cfg.migration.dmr_threshold
                || self.nodes[idx].tenants.len() < 2
            {
                continue;
            }
            let Some(slot) = policy::select_migration_victim(
                &self.nodes[idx],
                &self.admission,
                self.cfg.migration.victim,
            ) else {
                continue;
            };
            let tenant = self.nodes[idx].tenants.remove(slot);
            let dest = policy::migration_destination(
                &FleetState::new(&self.nodes, &self.admission),
                idx,
                &tenant,
                epoch_dmr,
                self.cfg.migration.dmr_threshold,
            );
            let victim = self.telemetry.enabled().then(|| tenant.name.clone());
            match dest {
                Some(j) => {
                    self.nodes[j].tenants.push(tenant);
                    self.planner.invalidate_node(idx);
                    self.planner.invalidate_node(j);
                    // The source node freed capacity: a waiter that
                    // routed anywhere may now fit there.
                    self.capacity_released = true;
                    migrations += 1;
                }
                // Nobody can take it; restore it to its original slot.
                None => self.nodes[idx].tenants.insert(slot, tenant),
            }
            if let Some(victim) = victim {
                // The epoch path models migration as free (its
                // pre-existing contract): the traced stall is zero.
                self.telemetry
                    .record_migration(self.now, &victim, idx, dest, SimDuration::ZERO);
            }
        }
        migrations
    }
}

/// One node's prepared work for an epoch: the compiled tasks (with their
/// release phases applied) and the node's jitter seed.
struct NodeEpochJob {
    idx: usize,
    tasks: Vec<CompiledTask>,
    seed: u64,
}

impl NodeEpochJob {
    fn run(self, nodes: &[FleetNode], epoch_len: SimDuration) -> (usize, RunMetrics) {
        let m = nodes[self.idx].spec.run_epoch(self.tasks, epoch_len, self.seed);
        (self.idx, m)
    }
}

/// Worker-thread count for the per-epoch fan-out: the override (or every
/// available core) when `parallel`, one otherwise.
fn epoch_workers(parallel: bool, over: Option<usize>) -> usize {
    if parallel {
        over.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    } else {
        1
    }
}

/// Runs the prepared per-node epoch jobs — over `workers` scoped worker
/// threads when more than one — and returns `(node index, metrics)`
/// pairs sorted by node index, so folding them is deterministic
/// regardless of the execution strategy.
fn run_node_epochs(
    nodes: &[FleetNode],
    jobs: Vec<NodeEpochJob>,
    epoch_len: SimDuration,
    workers: usize,
) -> Vec<(usize, RunMetrics)> {
    let workers = workers.min(jobs.len());
    let mut results: Vec<(usize, RunMetrics)> = if workers <= 1 {
        jobs.into_iter().map(|job| job.run(nodes, epoch_len)).collect()
    } else {
        // Partition the node indices round-robin across the workers; each
        // worker hands its (idx, metrics) pairs back through its join
        // handle, so no locks are involved.
        let mut buckets: Vec<Vec<NodeEpochJob>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            buckets[i % workers].push(job);
        }
        crossbeam::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move |_| {
                        bucket
                            .into_iter()
                            .map(|job| job.run(nodes, epoch_len))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("invariant: node epoch workers never panic"))
                .collect()
        })
        .expect("invariant: epoch worker scope never fails")
    };
    results.sort_by_key(|&(idx, _)| idx);
    results
}

#[cfg(test)]
mod tests;
