//! Tenant churn: arrivals and departures over simulated time.
//!
//! The paper's headline property is the *zero-configuration partition
//! switch* — the thing that makes churn cheap. This module generates the
//! churn itself: a deterministic trace of arrival/departure events a
//! [`crate::Fleet`] replays. Traces can be hand-built (tests) or drawn
//! from a seeded generator with exponential-ish inter-arrival gaps and
//! bounded lifetimes.

use crate::{ModelKind, TenantSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sgprs_rt::{SimDuration, SimTime};

/// One churn event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// A tenant asks to be served.
    Arrival(TenantSpec),
    /// The named tenant leaves the fleet.
    Departure(String),
}

/// A time-ordered churn trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChurnTrace {
    events: Vec<(SimTime, ChurnEvent)>,
}

/// Parameters of the seeded churn generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Mean gap between tenant arrivals.
    pub mean_interarrival: SimDuration,
    /// Minimum tenant lifetime; actual lifetimes are drawn from
    /// `[min_lifetime, max_lifetime]`.
    pub min_lifetime: SimDuration,
    /// Maximum tenant lifetime. Tenants whose lifetime extends past the
    /// trace horizon simply never depart.
    pub max_lifetime: SimDuration,
    /// The model mix arrivals cycle through, with weights (a skewed mix
    /// models a fleet dominated by one architecture).
    pub mix: Vec<(ModelKind, u32)>,
    /// Frame rate of every arriving tenant.
    pub fps: f64,
    /// Stage count of every arriving tenant.
    pub stages: usize,
    /// Re-pricing ladder stamped on every arriving tenant (degraded fps
    /// steps, strictly descending; see [`TenantSpec::fps_ladder`]).
    /// Empty by default: tenants opt out of re-pricing.
    pub fps_ladder: Vec<f64>,
    /// Queue patience stamped on every arriving tenant (see
    /// [`TenantSpec::max_wait`]). `None` (the default) waits forever.
    pub max_wait: Option<SimDuration>,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            mean_interarrival: SimDuration::from_millis(200),
            min_lifetime: SimDuration::from_secs(1),
            max_lifetime: SimDuration::from_secs(8),
            mix: vec![(ModelKind::ResNet18, 1)],
            fps: 30.0,
            stages: 6,
            fps_ladder: Vec::new(),
            max_wait: None,
        }
    }
}

impl ChurnTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        ChurnTrace::default()
    }

    /// Appends an event, keeping the trace time-ordered on finish.
    pub fn push(&mut self, at: SimTime, event: ChurnEvent) {
        self.events.push((at, event));
    }

    /// All events in time order (stable for equal instants: arrivals
    /// keep their insertion order).
    #[must_use]
    pub fn into_sorted(mut self) -> Vec<(SimTime, ChurnEvent)> {
        self.events.sort_by_key(|(t, _)| *t);
        self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the trace holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A trace where `n` tenants all arrive at time zero and never leave
    /// (the paper's static-population setup).
    #[must_use]
    pub fn static_population(tenants: impl IntoIterator<Item = TenantSpec>) -> Self {
        let mut trace = ChurnTrace::new();
        for t in tenants {
            trace.push(SimTime::ZERO, ChurnEvent::Arrival(t));
        }
        trace
    }

    /// Generates a seeded churn trace over `[0, horizon)`.
    ///
    /// Inter-arrival gaps are exponential with the configured mean
    /// (inverse-CDF of a uniform draw); lifetimes are uniform in the
    /// configured band; models are drawn from the weighted mix. The same
    /// `(config, horizon, seed)` triple always yields the same trace —
    /// and the same event sequence as the lazy
    /// [`crate::ArrivalStream::generate`], which pulls from the same
    /// [`ChurnSampler`].
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty or all weights are zero.
    #[must_use]
    pub fn generate(cfg: &ChurnConfig, horizon: SimDuration, seed: u64) -> Self {
        let mut sampler = ChurnSampler::new(cfg, horizon, seed);
        let mut trace = ChurnTrace::new();
        while let Some(arrival) = sampler.next_arrival() {
            // Arrival first: with a zero lifetime the two events share an
            // instant, and the stable sort must keep arrival ahead.
            let name = arrival.tenant.name.clone();
            trace.push(arrival.at, ChurnEvent::Arrival(arrival.tenant));
            if let Some(departure) = arrival.departure {
                trace.push(departure, ChurnEvent::Departure(name));
            }
        }
        trace
    }
}

/// One sampled arrival: the tenant, its instant, and — when it falls
/// inside the horizon — its departure instant.
#[derive(Debug, Clone)]
pub(crate) struct SampledArrival {
    /// The arrival instant.
    pub(crate) at: SimTime,
    /// The arriving tenant.
    pub(crate) tenant: TenantSpec,
    /// The departure instant, `None` when the drawn lifetime extends
    /// past the horizon (the tenant simply never departs).
    pub(crate) departure: Option<SimTime>,
}

/// The seeded churn draw shared by the materialised
/// [`ChurnTrace::generate`] and the lazy [`crate::ArrivalStream`]: one
/// definition of the RNG draw order, so the two paths cannot drift.
///
/// Per arrival the draws are, in order: the uniform behind the
/// exponential gap, the weighted model pick, and (when the lifetime band
/// is non-degenerate) the lifetime. Lifetimes are uniform over the
/// documented **inclusive** band `[min_lifetime, max_lifetime]` — the
/// pre-stream generator drew `0..band` (exclusive), silently making
/// `max_lifetime` unreachable; traces generated for the same seed before
/// that fix differ in their departure instants (arrival instants and
/// specs are unchanged: the draw count per arrival is identical).
#[derive(Debug, Clone)]
pub(crate) struct ChurnSampler {
    cfg: ChurnConfig,
    horizon: SimDuration,
    rng: SmallRng,
    total_weight: u32,
    t: SimTime,
    serial: usize,
    done: bool,
}

impl ChurnSampler {
    /// A sampler over `[0, horizon)` for `(cfg, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty, all weights are zero, or the mean
    /// inter-arrival gap is zero.
    pub(crate) fn new(cfg: &ChurnConfig, horizon: SimDuration, seed: u64) -> Self {
        assert!(!cfg.mix.is_empty(), "churn mix cannot be empty");
        assert!(
            !cfg.mean_interarrival.is_zero(),
            "mean inter-arrival must be positive (zero would never advance time)"
        );
        let total_weight: u32 = cfg.mix.iter().map(|&(_, w)| w).sum();
        assert!(total_weight > 0, "churn mix weights cannot all be zero");
        ChurnSampler {
            cfg: cfg.clone(),
            horizon,
            rng: SmallRng::seed_from_u64(seed),
            total_weight,
            t: SimTime::ZERO,
            serial: 0,
            done: false,
        }
    }

    /// Draws the next arrival, or `None` once the gap carries past the
    /// horizon (after which the sampler stays exhausted).
    pub(crate) fn next_arrival(&mut self) -> Option<SampledArrival> {
        if self.done {
            return None;
        }
        // Exponential gap via inverse CDF; clamp the uniform away
        // from 0 so ln stays finite.
        let u: f64 = self.rng.random_range(1e-12..1.0);
        let gap = self.cfg.mean_interarrival.mul_f64(-u.ln());
        self.t += gap;
        if self.t.duration_since(SimTime::ZERO) >= self.horizon {
            self.done = true;
            return None;
        }
        let mut pick = self.rng.random_range(0..u64::from(self.total_weight)) as u32;
        let model = self
            .cfg
            .mix
            .iter()
            .find(|&&(_, w)| {
                if pick < w {
                    true
                } else {
                    pick -= w;
                    false
                }
            })
            .map_or(self.cfg.mix[0].0, |&(m, _)| m);
        let mut tenant = TenantSpec::new(
            format!("{}-{}", model.name(), self.serial),
            model,
            self.cfg.fps,
        )
        .with_stages(self.cfg.stages)
        .with_fps_ladder(self.cfg.fps_ladder.clone());
        tenant.max_wait = self.cfg.max_wait;
        self.serial += 1;
        let lifetime_band = self
            .cfg
            .max_lifetime
            .saturating_sub(self.cfg.min_lifetime)
            .as_nanos();
        // Inclusive draw over the documented [min, max] band; a
        // degenerate band draws nothing, preserving the per-arrival
        // draw count of earlier generators.
        let lifetime = self.cfg.min_lifetime
            + SimDuration::from_nanos(if lifetime_band == 0 {
                0
            } else {
                self.rng.random_range(0..=lifetime_band)
            });
        let departure = self.t + lifetime;
        let departs = departure.duration_since(SimTime::ZERO) < self.horizon;
        Some(SampledArrival {
            at: self.t,
            tenant,
            departure: departs.then_some(departure),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = ChurnConfig::default();
        let h = SimDuration::from_secs(5);
        assert_eq!(ChurnTrace::generate(&cfg, h, 1), ChurnTrace::generate(&cfg, h, 1));
        assert_ne!(ChurnTrace::generate(&cfg, h, 1), ChurnTrace::generate(&cfg, h, 2));
    }

    #[test]
    fn events_sort_and_pair_up() {
        let cfg = ChurnConfig::default();
        let trace = ChurnTrace::generate(&cfg, SimDuration::from_secs(10), 42);
        assert!(!trace.is_empty());
        let events = trace.into_sorted();
        let mut alive = std::collections::HashSet::new();
        let mut last = SimTime::ZERO;
        for (t, e) in &events {
            assert!(*t >= last, "time-ordered");
            last = *t;
            match e {
                ChurnEvent::Arrival(spec) => {
                    assert!(alive.insert(spec.name.clone()), "unique names");
                }
                ChurnEvent::Departure(name) => {
                    assert!(alive.remove(name), "departures follow arrivals: {name}");
                }
            }
        }
    }

    #[test]
    fn mean_interarrival_controls_volume() {
        let fast = ChurnConfig {
            mean_interarrival: SimDuration::from_millis(50),
            ..ChurnConfig::default()
        };
        let slow = ChurnConfig {
            mean_interarrival: SimDuration::from_millis(800),
            ..ChurnConfig::default()
        };
        let h = SimDuration::from_secs(20);
        let n_fast = ChurnTrace::generate(&fast, h, 7)
            .into_sorted()
            .iter()
            .filter(|(_, e)| matches!(e, ChurnEvent::Arrival(_)))
            .count();
        let n_slow = ChurnTrace::generate(&slow, h, 7)
            .into_sorted()
            .iter()
            .filter(|(_, e)| matches!(e, ChurnEvent::Arrival(_)))
            .count();
        assert!(n_fast > n_slow * 4, "fast {n_fast} vs slow {n_slow}");
    }

    #[test]
    fn skewed_mixes_draw_mostly_the_heavy_model() {
        let cfg = ChurnConfig {
            mix: vec![(ModelKind::Vgg16, 9), (ModelKind::MobileNet, 1)],
            ..ChurnConfig::default()
        };
        let events = ChurnTrace::generate(&cfg, SimDuration::from_secs(30), 3).into_sorted();
        let (mut heavy, mut light) = (0usize, 0usize);
        for (_, e) in &events {
            if let ChurnEvent::Arrival(t) = e {
                match t.model {
                    ModelKind::Vgg16 => heavy += 1,
                    ModelKind::MobileNet => light += 1,
                    _ => panic!("model outside the mix"),
                }
            }
        }
        assert!(heavy > light * 3, "skew holds: {heavy} vs {light}");
    }

    #[test]
    fn lifetime_band_is_inclusive_of_both_endpoints() {
        // A two-value band (min, min + 1 ns) makes both endpoints likely
        // enough that a few hundred arrivals must hit each — pinning the
        // inclusive-draw fix: the old exclusive `0..band` draw could
        // never produce `max_lifetime`.
        let min = SimDuration::from_secs(1);
        let max = min + SimDuration::from_nanos(1);
        let cfg = ChurnConfig {
            mean_interarrival: SimDuration::from_millis(20),
            min_lifetime: min,
            max_lifetime: max,
            ..ChurnConfig::default()
        };
        let horizon = SimDuration::from_secs(30);
        let events = ChurnTrace::generate(&cfg, horizon, 11).into_sorted();
        let mut arrivals: std::collections::HashMap<String, SimTime> =
            std::collections::HashMap::new();
        let (mut hit_min, mut hit_max) = (false, false);
        for (t, e) in &events {
            match e {
                ChurnEvent::Arrival(spec) => {
                    arrivals.insert(spec.name.clone(), *t);
                }
                ChurnEvent::Departure(name) => {
                    let arrived = arrivals[name];
                    let lifetime = t.duration_since(arrived);
                    assert!(
                        lifetime == min || lifetime == max,
                        "lifetime {lifetime:?} outside the two-value band"
                    );
                    hit_min |= lifetime == min;
                    hit_max |= lifetime == max;
                }
            }
        }
        assert!(hit_min, "min_lifetime endpoint reachable");
        assert!(hit_max, "max_lifetime endpoint reachable");
    }

    #[test]
    fn static_population_arrives_at_zero() {
        let tenants =
            (0..4).map(|i| TenantSpec::new(format!("t{i}"), ModelKind::ResNet18, 30.0));
        let events = ChurnTrace::static_population(tenants).into_sorted();
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|(t, _)| *t == SimTime::ZERO));
    }
}
