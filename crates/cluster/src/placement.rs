//! Placement policies: choosing which node a tenant lands on.
//!
//! Every policy consults the same [`AdmissionController`]; they differ
//! only in which *admissible* node they prefer. The policies are the
//! classic trio:
//!
//! * [`PlacementPolicy::RoundRobin`] — rotate through nodes; cheapest
//!   decision, blind to load.
//! * [`PlacementPolicy::LeastUtilization`] — pick the admissible node
//!   with the lowest demand/budget ratio (spreads load; best tail
//!   latencies under skew).
//! * [`PlacementPolicy::BestFit`] — pick the admissible node with the
//!   *least* remaining headroom by SM demand (packs nodes tightly,
//!   keeping whole nodes free for heavy tenants).

use crate::{AdmissionController, AdmissionDecision, FleetNode, TenantSpec};
use serde::{Deserialize, Serialize};

/// The placement policy a fleet dispatches with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Rotate through nodes in order, taking the first that admits.
    RoundRobin,
    /// Prefer the node with the lowest utilisation ratio.
    LeastUtilization,
    /// Prefer the admissible node with the smallest remaining headroom.
    BestFit,
}

impl core::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlacementPolicy::RoundRobin => f.write_str("round-robin"),
            PlacementPolicy::LeastUtilization => f.write_str("least-utilization"),
            PlacementPolicy::BestFit => f.write_str("best-fit"),
        }
    }
}

/// Stateful placer: the policy plus its round-robin cursor.
#[derive(Debug, Clone)]
pub struct Placer {
    policy: PlacementPolicy,
    cursor: usize,
}

impl Placer {
    /// A placer for the given policy.
    #[must_use]
    pub fn new(policy: PlacementPolicy) -> Self {
        Placer { policy, cursor: 0 }
    }

    /// The policy in use.
    #[must_use]
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Chooses a node for `tenant`, or `None` when no node admits it.
    /// Does not mutate the nodes; the caller commits the placement.
    #[must_use]
    pub fn place(
        &mut self,
        nodes: &[FleetNode],
        tenant: &TenantSpec,
        admission: &AdmissionController,
    ) -> Option<usize> {
        if nodes.is_empty() {
            return None;
        }
        match self.policy {
            PlacementPolicy::RoundRobin => {
                for offset in 0..nodes.len() {
                    let idx = (self.cursor + offset) % nodes.len();
                    if admission.evaluate(&nodes[idx], tenant).is_admit() {
                        self.cursor = (idx + 1) % nodes.len();
                        return Some(idx);
                    }
                }
                None
            }
            PlacementPolicy::LeastUtilization => self.pick_by(nodes, tenant, admission, |node, d| {
                // Lowest demand/budget ratio wins.
                match d {
                    AdmissionDecision::Admit { demand, budget } if *budget > 0.0 => {
                        Some(demand / budget)
                    }
                    _ => None,
                }
                .map(|score| (score, node.tenants.len()))
            }),
            PlacementPolicy::BestFit => self.pick_by(nodes, tenant, admission, |node, d| {
                // Smallest headroom that still fits wins.
                d.is_admit().then(|| (d.headroom(), node.tenants.len()))
            }),
        }
    }

    fn pick_by<F>(
        &mut self,
        nodes: &[FleetNode],
        tenant: &TenantSpec,
        admission: &AdmissionController,
        score: F,
    ) -> Option<usize>
    where
        F: Fn(&FleetNode, &AdmissionDecision) -> Option<(f64, usize)>,
    {
        let mut best: Option<(usize, (f64, usize))> = None;
        for (idx, node) in nodes.iter().enumerate() {
            let decision = admission.evaluate(node, tenant);
            if !decision.is_admit() {
                continue;
            }
            if let Some(s) = score(node, &decision) {
                let better = match &best {
                    None => true,
                    Some((_, cur)) => s.0 < cur.0 || (s.0 == cur.0 && s.1 < cur.1),
                };
                if better {
                    best = Some((idx, s));
                }
            }
        }
        best.map(|(idx, _)| idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelKind, NodeSpec};
    use sgprs_gpu_sim::GpuSpec;

    fn fleet(sms: &[u32]) -> Vec<FleetNode> {
        sms.iter()
            .enumerate()
            .map(|(i, &sm)| FleetNode::new(NodeSpec::sgprs(format!("gpu{i}"), GpuSpec::synthetic(sm))))
            .collect()
    }

    fn tenant(i: usize) -> TenantSpec {
        TenantSpec::new(format!("t-{i}"), ModelKind::ResNet18, 30.0)
    }

    #[test]
    fn round_robin_rotates_over_admissible_nodes() {
        let mut nodes = fleet(&[68, 68, 68]);
        let ctl = AdmissionController::default();
        let mut placer = Placer::new(PlacementPolicy::RoundRobin);
        let mut seen = Vec::new();
        for i in 0..6 {
            let t = tenant(i);
            let idx = placer.place(&nodes, &t, &ctl).expect("capacity available");
            nodes[idx].tenants.push(t);
            seen.push(idx);
        }
        assert_eq!(seen, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_utilization_prefers_the_empty_node() {
        let mut nodes = fleet(&[68, 68]);
        let ctl = AdmissionController::default();
        let mut placer = Placer::new(PlacementPolicy::LeastUtilization);
        for i in 0..4 {
            let t = tenant(i);
            let idx = placer.place(&nodes, &t, &ctl).expect("capacity");
            nodes[idx].tenants.push(t);
        }
        assert_eq!(nodes[0].tenants.len(), 2);
        assert_eq!(nodes[1].tenants.len(), 2, "load spread evenly");
    }

    #[test]
    fn best_fit_packs_the_smaller_device_first() {
        let nodes = fleet(&[68, 23]);
        let ctl = AdmissionController::default();
        let mut placer = Placer::new(PlacementPolicy::BestFit);
        let idx = placer.place(&nodes, &tenant(0), &ctl).expect("capacity");
        assert_eq!(idx, 1, "tightest admissible node wins");
    }

    #[test]
    fn full_fleet_places_nothing() {
        let ctl = AdmissionController::default();
        let mut nodes = fleet(&[23]);
        // Saturate the single small node.
        while ctl.evaluate(&nodes[0], &tenant(nodes[0].tenants.len())).is_admit() {
            let i = nodes[0].tenants.len();
            nodes[0].tenants.push(tenant(i));
        }
        for policy in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::LeastUtilization,
            PlacementPolicy::BestFit,
        ] {
            let mut placer = Placer::new(policy);
            assert!(placer.place(&nodes, &tenant(99), &ctl).is_none(), "{policy}");
        }
    }

    #[test]
    fn empty_node_list_is_handled() {
        let mut placer = Placer::new(PlacementPolicy::RoundRobin);
        let ctl = AdmissionController::default();
        assert!(placer.place(&[], &tenant(0), &ctl).is_none());
    }
}
