//! The discrete-event fleet core: exact-boundary simulation beside the
//! epoch-driven [`crate::Fleet::run`] path.
//!
//! The epoch dispatcher quantises every decision to the epoch grid: jobs
//! in flight at an epoch boundary are truncated (~3 % at one-second
//! epochs and the paper's 33 ms periods), departures wait for the next
//! boundary, and DMR-triggered migration can only fire once per epoch.
//! This module replaces the grid with a monotonic event queue:
//! scheduler state carries across what used to be epoch boundaries, so
//! **no in-flight job is ever truncated** ([`crate::FleetMetrics::truncated_jobs`]
//! is asserted zero), departures apply at their exact instant, and
//! migration fires at job-release boundaries mid-epoch — paying an
//! explicit [`crate::MigrationConfig::cost`] state-transfer stall, while
//! re-pricing degrade/upgrade switches stay free partition switches
//! (SGPRS's headline property, now measurably cheaper than migration in
//! the same run).
//!
//! # Event-ordering / determinism contract
//!
//! Events are totally ordered by the triple `(time, node, seq)`:
//!
//! * `time` — the simulated instant, integer nanoseconds
//!   ([`sgprs_rt::SimTime`]), so there is no floating-point drift;
//! * `node` — the owning node's index; fleet-scope events (trace
//!   arrivals/departures, queue expiry, utilisation samples) use
//!   [`NODE_FLEET`] (`usize::MAX`) and therefore sort *after* every
//!   node-local event at the same instant (a tenant departing at `t`
//!   still serves a frame released at `t`);
//! * `seq` — a monotone enqueue serial, the universal tie-break: two
//!   events at the same `(time, node)` pop in the order they were
//!   scheduled.
//!
//! The engine is single-threaded and every source of randomness is a
//! pure function of `(fleet seed, node, tenant, release index)`, so a
//! run is a deterministic function of `(config, trace, horizon)`:
//! rerunning the same configuration yields byte-identical
//! [`crate::FleetMetrics::to_json`], and the
//! [`crate::FleetConfig::with_workers`] / parallel knobs are inert here
//! (they only affect the epoch path's fan-out). Sharding changes
//! *placement* exactly as it does on the epoch path — a multi-node
//! shard may route an arrival differently from the flat scan — but any
//! fixed dispatch configuration stays fully deterministic; a single
//! whole-fleet shard provably routes through the identical scan and is
//! therefore byte-identical to flat dispatch.
//!
//! # Execution model
//!
//! Event mode does not re-run the per-stage schedulers (they are
//! rebuilt per epoch by design); instead each node serves jobs under the
//! fluid approximation of [`exec`]: a job released at `t` on a node with
//! resident demand `D` and effective capacity `C` finishes at
//! `t + max(best_case_latency, period · D/C) · jitter`. Naive/reconfig
//! nodes pay their sequential-execution and partition-switch tax through
//! a single-job-per-context capacity sample plus the calibrated switch
//! cost, so "admission says fine, the node still misses" shows up here
//! exactly as it does on the epoch path. Releases are skip-if-busy: a
//! frame released while the previous job of the same tenant is in
//! flight is dropped and counted as a miss, matching the schedulers'
//! default admission policy.
//!
//! Jobs still in flight when the horizon closes run to completion (their
//! completion events are processed past the horizon) instead of being
//! truncated; no new frame is released at or after the horizon.

use crate::interner::TenantId;
use crate::TenantSpec;
use sgprs_rt::SimTime;

mod engine;
mod exec;
mod wheel;

pub(crate) use engine::run_events;

/// Node index used by fleet-scope events (trace churn, queue expiry,
/// utilisation samples). `usize::MAX`, so fleet-scope events sort after
/// every node-local event at the same instant.
pub const NODE_FLEET: usize = usize::MAX;

/// What a scheduled event does when it pops.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A tenant arrives (from the churn trace) and is dispatched.
    Arrival(Box<TenantSpec>),
    /// The named tenant departs (from the churn trace), effective at the
    /// event's exact instant.
    Departure(String),
    /// The tenant releases a periodic frame on the event's node.
    /// `gen` guards against stale schedules: a migration bumps the
    /// tenant's generation, orphaning releases queued for the old node —
    /// and makes a recycled [`TenantId`]'s stale releases equally inert.
    JobRelease {
        /// Interned tenant id (see [`crate::TenantInterner`]).
        tenant: TenantId,
        /// The tenant-run generation this release was scheduled under.
        gen: u64,
    },
    /// Job `job` of the tenant finishes on the event's node.
    JobCompletion {
        /// Interned tenant id.
        tenant: TenantId,
        /// Per-tenant job serial.
        job: u64,
        /// The tenant-run incarnation that admitted the job (guards a
        /// reused (recycled-id) fresh run against a predecessor's stale
        /// events; unlike `gen`, it survives migration — an in-flight
        /// job finishes on its source node even mid-transfer).
        inc: u64,
        /// The job's absolute deadline (release + period).
        deadline: SimTime,
    },
    /// Job `job`'s deadline elapses: if it is still in flight the miss is
    /// fed into the node's windowed DMR estimate (the migration trigger).
    DeadlineCheck {
        /// Interned tenant id.
        tenant: TenantId,
        /// Per-tenant job serial.
        job: u64,
        /// The admitting incarnation (see [`EventKind::JobCompletion`]).
        inc: u64,
    },
    /// The event's node crossed the DMR threshold at a release boundary:
    /// re-verify and shed one tenant, paying the migration stall.
    Migrate,
    /// A queue-deadline elapsed: expire overdue waiters.
    QueueExpire,
    /// Periodic utilisation sample (every [`crate::FleetConfig::epoch`]),
    /// keeping the histogram comparable with the epoch path.
    Sample,
}

/// One scheduled event. Ordering (and therefore processing order) is by
/// `(time, node, seq)` — see the module-level contract.
#[derive(Debug, Clone, PartialEq)]
pub struct SimEvent {
    /// When the event fires.
    pub time: SimTime,
    /// The owning node, or [`NODE_FLEET`] for fleet-scope events.
    pub node: usize,
    /// Monotone enqueue serial (assigned by [`EventQueue::push`]).
    pub seq: u64,
    /// What happens when the event pops.
    pub kind: EventKind,
}

impl SimEvent {
    fn key(&self) -> (SimTime, usize, u64) {
        (self.time, self.node, self.seq)
    }
}

/// The monotonic event queue: a hierarchical timing wheel
/// ([`wheel::TimingWheel`]) over [`sgprs_rt::SimTime`] with
/// deterministic `(time, node, seq)` tie-breaking — the same total
/// order the original binary heap implemented, at O(1) amortised
/// push/pop for the near-sorted periodic-release workload. See the
/// [`wheel`] module docs for the slot layout, the ordering argument,
/// and the slot-capacity recycling that keeps the steady-state hot
/// path allocation-free.
#[derive(Debug, Default)]
pub struct EventQueue {
    wheel: wheel::TimingWheel,
    next_seq: u64,
    ops: u64,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `kind` at `time` on `node`, assigning the next enqueue
    /// serial.
    pub fn push(&mut self, time: SimTime, node: usize, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ops += 1;
        self.wheel.push(SimEvent {
            time,
            node,
            seq,
            kind,
        });
    }

    /// Removes and returns the earliest event under the
    /// `(time, node, seq)` order.
    pub fn pop(&mut self) -> Option<SimEvent> {
        let popped = self.wheel.pop();
        if popped.is_some() {
            self.ops += 1;
        }
        popped
    }

    /// Whether [`Self::prepare`] has wheel-turning to do (pending events,
    /// empty active slot). O(1); the engine's merge loop checks it so the
    /// common already-prepared iteration skips both the prepare call and
    /// its profiling clock read.
    pub(crate) fn needs_prepare(&self) -> bool {
        self.wheel.needs_prepare()
    }

    /// Advances the wheel so the earliest pending event is ready to
    /// peek/pop. Returns `true` when cascade work ran (an L1 slot
    /// scattered into L0 or an overflow rescan) — the engine bills that
    /// to the `wheel_cascade` profiler span. Idempotent; [`Self::pop`]
    /// self-prepares, so calling this is only needed before
    /// [`Self::peek_key`] or for span attribution.
    pub(crate) fn prepare(&mut self) -> bool {
        self.wheel.prepare()
    }

    /// The `(time, node, seq)` key of the earliest pending event, without
    /// popping it — what the engine's lazy churn merge compares stream
    /// events against. Requires a prepared wheel
    /// ([`Self::needs_prepare`] `== false`); the engine's merge loop
    /// always runs the `needs_prepare` → `prepare` sequence first.
    pub(crate) fn peek_key(&self) -> Option<(SimTime, usize, u64)> {
        self.wheel.peek_key()
    }

    /// The serial the next push will receive. Captured by the engine as
    /// the *stream watermark*: churn events delivered lazily behave as if
    /// they were all enqueued at that instant, so at an equal
    /// `(time, NODE_FLEET)` a queued event beats the stream only when its
    /// seq is below the watermark (it was scheduled before the trace
    /// would have been).
    pub(crate) fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Accounts for one churn event delivered from the lazy stream
    /// *around* the queue: it behaves exactly as a seeded push + pop
    /// (two ops), keeping `event_queue_ops` byte-identical to the
    /// materialised path.
    pub(crate) fn note_stream_event(&mut self) {
        self.ops += 2;
    }

    /// Total pushes + successful pops so far — the queue-traffic figure
    /// telemetry surfaces as `event_queue_ops`. A pure function of the
    /// simulated schedule, so it is deterministic (and byte-identical to
    /// the binary-heap implementation it replaced).
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.wheel.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgprs_rt::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(at(30), 0, EventKind::Sample);
        q.push(at(10), 0, EventKind::Sample);
        q.push(at(20), 0, EventKind::Sample);
        let times: Vec<SimTime> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![at(10), at(20), at(30)]);
    }

    #[test]
    fn same_instant_orders_by_node_then_seq() {
        let mut q = EventQueue::new();
        // Fleet-scope first by enqueue order, but node-local events at
        // the same instant must pop before it regardless.
        q.push(at(5), NODE_FLEET, EventKind::QueueExpire);
        q.push(at(5), 2, EventKind::Sample);
        q.push(at(5), 0, EventKind::Sample);
        q.push(at(5), 0, EventKind::Migrate);
        let order: Vec<(usize, u64)> =
            std::iter::from_fn(|| q.pop()).map(|e| (e.node, e.seq)).collect();
        assert_eq!(
            order,
            vec![(0, 2), (0, 3), (2, 1), (NODE_FLEET, 0)],
            "node groups same-instant events; seq breaks remaining ties"
        );
    }

    #[test]
    fn seq_preserves_scheduling_order_within_a_node() {
        let mut q = EventQueue::new();
        q.push(
            at(1),
            3,
            EventKind::JobRelease {
                tenant: TenantId::from_raw(0),
                gen: 0,
            },
        );
        q.push(at(1), 3, EventKind::Migrate);
        let first = q.pop().expect("two events queued");
        assert!(matches!(first.kind, EventKind::JobRelease { .. }));
        let second = q.pop().expect("one event left");
        assert!(matches!(second.kind, EventKind::Migrate));
    }
}
