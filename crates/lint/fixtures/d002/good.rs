//! D002 good fixture: time comes from the simulated clock; the one
//! wall-clock probe is justified as profiling-only.

pub fn tick(sim_now_ns: u64, step_ns: u64) -> u64 {
    sim_now_ns + step_ns
}

pub fn profile_probe_ns() -> u128 {
    // sgprs-lint: allow(D002) -- profiling-only, kept out of the deterministic export
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}

pub fn mentions_are_fine() {
    // A comment naming Instant::now or SystemTime is not a read, and
    // neither is a diagnostic string:
    let _ = "SystemTime belongs in the profiling layer";
}
