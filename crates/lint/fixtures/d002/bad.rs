//! D002 bad fixture: wall-clock reads outside an allowlisted
//! profiling surface.

pub fn stamp_ns() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}

pub fn wall_secs() -> u64 {
    use std::time::SystemTime;
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
