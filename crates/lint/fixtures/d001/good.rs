//! D001 good fixture: keyed hash lookups, ordered-map iteration, and a
//! justified allow all stay silent.
use std::collections::{BTreeMap, HashMap};

pub struct Registry {
    counts: HashMap<String, u64>,
    ordered: BTreeMap<String, u64>,
}

impl Registry {
    pub fn get(&self, k: &str) -> u64 {
        self.counts.get(k).copied().unwrap_or(0)
    }

    pub fn bump(&mut self, k: String) {
        *self.counts.entry(k).or_default() += 1;
    }

    pub fn ordered_names(&self) -> Vec<String> {
        self.ordered.keys().cloned().collect()
    }

    pub fn total(&self) -> u64 {
        // sgprs-lint: allow(D001) -- commutative u64 sum, order-free
        self.counts.values().sum()
    }
}
