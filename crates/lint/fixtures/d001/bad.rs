//! D001 bad fixture: hash-collection iteration in a deterministic
//! module. Both the method-chain form and the for-loop form must fire.
use std::collections::{HashMap, HashSet};

pub struct Registry {
    counts: HashMap<String, u64>,
    live: HashSet<String>,
}

impl Registry {
    pub fn total(&self) -> u64 {
        let mut sum = 0;
        for (_, v) in &self.counts {
            sum += v;
        }
        sum
    }

    pub fn live_count(&self) -> usize {
        self.live.iter().count()
    }

    pub fn names(&self) -> Vec<String> {
        self.counts.keys().cloned().collect()
    }
}
