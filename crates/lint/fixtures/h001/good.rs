//! H001 good fixture: handled fallbacks and invariant-naming expects
//! are the two sanctioned shapes; `unwrap_or` variants never fire.

pub fn head(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap_or(0)
}

pub fn tail(xs: &[u64]) -> u64 {
    *xs.last().expect("invariant: caller verified xs is non-empty")
}

pub fn head_or_default(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap_or_default()
}
