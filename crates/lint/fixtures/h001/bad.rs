//! H001 bad fixture: a bare `unwrap()` and an `expect` whose message
//! does not name the invariant, both on a hot-path file.

pub fn head(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

pub fn tail(xs: &[u64]) -> u64 {
    *xs.last().expect("non-empty")
}
