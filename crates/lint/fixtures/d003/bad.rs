//! D003 bad fixture: ambient randomness instead of an explicit seed.

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn entropy_seeded() -> u64 {
    let rng = rand::rngs::SmallRng::from_entropy();
    rng.seed()
}
