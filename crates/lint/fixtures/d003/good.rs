//! D003 good fixture: randomness flows from an explicit seed through a
//! deterministic generator (splitmix64-style).

pub struct Seeded(u64);

impl Seeded {
    pub fn new(seed: u64) -> Self {
        Seeded(seed)
    }

    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}
