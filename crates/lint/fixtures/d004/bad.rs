//! D004 bad fixture: a parallel fold with no fold-order marker comment
//! anywhere near the call site.

pub fn fold_all(shards: Vec<Vec<u64>>) -> u64 {
    let parts = run_node_epochs(shards);
    parts.into_iter().sum()
}

fn run_node_epochs(shards: Vec<Vec<u64>>) -> Vec<u64> {
    shards.into_iter().map(|s| s.into_iter().sum()).collect()
}
