//! D004 good fixture: the fold states its order where it happens.

pub fn fold_all(shards: Vec<Vec<u64>>) -> u64 {
    // Folded in node-index order, so the sum is byte-identical across
    // worker counts.
    let parts = run_node_epochs(shards);
    parts.into_iter().sum()
}

fn run_node_epochs(shards: Vec<Vec<u64>>) -> Vec<u64> {
    shards.into_iter().map(|s| s.into_iter().sum()).collect()
}
