//! The whole-workspace clean run: the auditor applied to the very tree
//! it ships in must report nothing. This is the static complement of
//! the determinism-matrix tests — any hash-iteration, wall-clock,
//! ambient-randomness, unmarked-fold, or hot-path-unwrap regression
//! anywhere in the audited surface fails this test before a snapshot
//! ever gets the chance to diverge.

use sgprs_lint::{scan_workspace, Config};
use std::path::Path;

#[test]
fn the_workspace_is_determinism_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let diags = match scan_workspace(&root, &Config::workspace_default()) {
        Ok(d) => d,
        Err(e) => panic!("workspace walk failed: {e}"),
    };
    let rendered: Vec<String> = diags.iter().map(sgprs_lint::Diagnostic::render).collect();
    assert!(
        diags.is_empty(),
        "sgprs-lint must be clean on its own workspace:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn the_walk_actually_covers_the_deterministic_modules() {
    // Guard against the walker silently skipping the code the audit
    // exists for: a planted violation under the cluster sources must
    // surface. (Scan the source text through the public API with its
    // real-tree virtual path; no files are written.)
    let src = "pub fn bad() -> std::time::SystemTime { std::time::SystemTime::now() }\n";
    let diags = sgprs_lint::scan_source(
        "crates/cluster/src/policy.rs",
        src,
        &Config::workspace_default(),
    );
    assert!(
        diags.iter().any(|d| d.rule == "D002"),
        "planted wall-clock read must be caught: {diags:?}"
    );
}
