//! The determinism rule catalog and its per-rule checkers.
//!
//! Every checker works on the masked views of [`ScannedFile`]: token
//! matches never fire inside comments or string literals, and lines
//! inside `#[cfg(test)]` items are skipped (unit tests are not part of
//! the shipped determinism surface). See the crate docs for the
//! catalog and `DETERMINISM.md` at the workspace root for the contract
//! the rules defend.

use crate::lex::ScannedFile;
use crate::{Config, Diagnostic};
use std::collections::BTreeSet;

/// Iteration-order-dependent methods on hash collections (keyed access
/// like `get`/`contains`/`entry`/`insert` is deliberately absent).
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Comment markers that satisfy D004: the fold's order is stated where
/// the fold happens.
const FOLD_MARKERS: &[&str] = &[
    "node-index order",
    "node index order",
    "ascending node index",
    "window order",
    "fold order",
];

/// Ambient (non-seeded) randomness entry points.
const AMBIENT_RANDOM: &[&str] = &["thread_rng", "OsRng", "from_entropy"];

/// Runs every applicable rule over one scanned file.
pub(crate) fn check_file(path: &str, scanned: &ScannedFile, cfg: &Config) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if cfg.deterministic_prefixes.iter().any(|p| path.starts_with(p.as_str())) {
        d001(path, scanned, &mut diags);
    }
    if !cfg.wall_clock_allow.iter().any(|p| path.starts_with(p.as_str())) {
        d002(path, scanned, &mut diags);
    }
    d003(path, scanned, &mut diags);
    d004(path, scanned, cfg, &mut diags);
    if cfg.hot_path_files.iter().any(|p| path == p) {
        h001(path, scanned, &mut diags);
    }
    diags
}

/// **D001** — no `HashMap`/`HashSet` iteration in deterministic
/// modules. Hash iteration order is seeded per process, so any fold,
/// render, or decision driven by it breaks byte-identical output.
fn d001(path: &str, s: &ScannedFile, diags: &mut Vec<Diagnostic>) {
    let names = hash_typed_names(s);
    if names.is_empty() {
        return;
    }
    for (line_no, line) in s.code.iter().enumerate() {
        if s.is_test_line(line_no) {
            continue;
        }
        for name in &names {
            for pos in token_positions(line, name) {
                let mut cur = Cursor::new(&s.code, line_no, pos + name.len());
                let Some((_, _, c)) = cur.next_nonspace() else { continue };
                if c != '.' {
                    continue;
                }
                let Some((mline, _, method)) = cur.next_token() else { continue };
                if ITER_METHODS.contains(&method.as_str())
                    && cur.next_nonspace().map(|(_, _, c)| c) == Some('(')
                {
                    diags.push(Diagnostic::new(
                        "D001",
                        path,
                        mline + 1,
                        format!(
                            "iteration over hash collection `{name}` (`.{method}()`): hash \
                             order is nondeterministic; use BTreeMap/sorted Vec/index \
                             addressing, or justify with an allow"
                        ),
                    ));
                }
            }
        }
        // `for x in &self.map { ... }` — iteration without a method call.
        if let Some(expr) = for_loop_expr(line) {
            let stripped = strip_iteree(&expr);
            if names.contains(stripped) {
                diags.push(Diagnostic::new(
                    "D001",
                    path,
                    line_no + 1,
                    format!(
                        "for-loop over hash collection `{stripped}`: hash order is \
                         nondeterministic; use BTreeMap/sorted Vec/index addressing, or \
                         justify with an allow"
                    ),
                ));
            }
        }
    }
}

/// **D002** — no wall-clock reads outside the allowlisted profiling
/// surfaces. Wall time differs per run; anything it touches must stay
/// out of the deterministic export.
fn d002(path: &str, s: &ScannedFile, diags: &mut Vec<Diagnostic>) {
    for (line_no, line) in s.code.iter().enumerate() {
        if s.is_test_line(line_no) {
            continue;
        }
        for pos in token_positions(line, "Instant") {
            let mut cur = Cursor::new(&s.code, line_no, pos + "Instant".len());
            if cur.next_nonspace().map(|(_, _, c)| c) == Some(':')
                && cur.next_nonspace().map(|(_, _, c)| c) == Some(':')
                && cur.next_token().map(|(_, _, t)| t).as_deref() == Some("now")
            {
                diags.push(Diagnostic::new(
                    "D002",
                    path,
                    line_no + 1,
                    "wall-clock read (`Instant::now`) outside an allowlisted profiling \
                     surface"
                        .to_string(),
                ));
            }
        }
        for _ in token_positions(line, "SystemTime") {
            diags.push(Diagnostic::new(
                "D002",
                path,
                line_no + 1,
                "wall-clock type (`SystemTime`) outside an allowlisted profiling surface"
                    .to_string(),
            ));
        }
    }
}

/// **D003** — no ambient randomness. Every random stream must flow
/// from an explicit seed handed in by a constructor.
fn d003(path: &str, s: &ScannedFile, diags: &mut Vec<Diagnostic>) {
    for (line_no, line) in s.code.iter().enumerate() {
        if s.is_test_line(line_no) {
            continue;
        }
        for tok in AMBIENT_RANDOM {
            for _ in token_positions(line, tok) {
                diags.push(Diagnostic::new(
                    "D003",
                    path,
                    line_no + 1,
                    format!(
                        "ambient randomness (`{tok}`): derive randomness from an \
                         explicit seed instead"
                    ),
                ));
            }
        }
    }
}

/// How many comment lines above a fold call may carry its order marker.
const FOLD_MARKER_WINDOW: usize = 8;

/// **D004** — parallel folds must state their fold order in a nearby
/// comment (`node-index order`, `window order`, ...), so a reader — and
/// this lint — can see the reduce is deterministic by construction.
fn d004(path: &str, s: &ScannedFile, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    for fold in &cfg.fold_fns {
        if let Some(prefix) = &fold.prefix {
            if !path.starts_with(prefix.as_str()) {
                continue;
            }
        }
        for (line_no, line) in s.code.iter().enumerate() {
            if s.is_test_line(line_no) {
                continue;
            }
            for pos in token_positions(line, &fold.name) {
                // Skip the definition site; only call sites need markers.
                if prev_token(&s.code, line_no, pos).as_deref() == Some("fn") {
                    continue;
                }
                let mut cur = Cursor::new(&s.code, line_no, pos + fold.name.len());
                if cur.next_nonspace().map(|(_, _, c)| c) != Some('(') {
                    continue;
                }
                let from = line_no.saturating_sub(FOLD_MARKER_WINDOW);
                let marked = s.comments[from..=line_no].iter().any(|c| {
                    let lower = c.to_lowercase();
                    FOLD_MARKERS.iter().any(|m| lower.contains(m))
                });
                if !marked {
                    diags.push(Diagnostic::new(
                        "D004",
                        path,
                        line_no + 1,
                        format!(
                            "parallel fold `{}` without a fold-order marker comment \
                             (state e.g. `node-index order` or `window order` within \
                             the preceding {FOLD_MARKER_WINDOW} lines)",
                            fold.name
                        ),
                    ));
                }
            }
        }
    }
}

/// **H001** — no `unwrap()`, and only `expect("invariant: ...")`, on
/// the dispatch hot path: when a hot-path invariant breaks in a long
/// fleet run, the panic message is the whole post-mortem.
fn h001(path: &str, s: &ScannedFile, diags: &mut Vec<Diagnostic>) {
    for (line_no, line) in s.code.iter().enumerate() {
        if s.is_test_line(line_no) {
            continue;
        }
        for pos in token_positions(line, "unwrap") {
            if prev_nonspace_char(line, pos) != Some('.') {
                continue;
            }
            let mut cur = Cursor::new(&s.code, line_no, pos + "unwrap".len());
            if cur.next_nonspace().map(|(_, _, c)| c) == Some('(')
                && cur.next_nonspace().map(|(_, _, c)| c) == Some(')')
            {
                diags.push(Diagnostic::new(
                    "H001",
                    path,
                    line_no + 1,
                    "bare `unwrap()` on the dispatch hot path: name the invariant with \
                     `expect(\"invariant: ...\")` or handle the None/Err arm"
                        .to_string(),
                ));
            }
        }
        for pos in token_positions(line, "expect") {
            if prev_nonspace_char(line, pos) != Some('.') {
                continue;
            }
            let mut cur = Cursor::new(&s.code, line_no, pos + "expect".len());
            let Some((pline, pcol, c)) = cur.next_nonspace() else { continue };
            if c != '(' {
                continue;
            }
            match s.string_at_or_after(pline, pcol, 2) {
                Some(lit) if lit.text.starts_with("invariant:") => {}
                Some(lit) => diags.push(Diagnostic::new(
                    "H001",
                    path,
                    line_no + 1,
                    format!(
                        "hot-path `expect(\"{}\")` message must name the invariant \
                         (`expect(\"invariant: ...\")`)",
                        lit.text
                    ),
                )),
                None => diags.push(Diagnostic::new(
                    "H001",
                    path,
                    line_no + 1,
                    "hot-path `expect(...)` must carry a literal `\"invariant: ...\"` \
                     message"
                        .to_string(),
                )),
            }
        }
    }
}

/// Collects identifiers declared with a `HashMap`/`HashSet` type in
/// this file: field/param declarations (`name: HashMap<...>`, possibly
/// through `&mut` or a path like `std::collections::HashMap`) and `let`
/// bindings initialized from a hash-collection constructor.
fn hash_typed_names(s: &ScannedFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in &s.code {
        if line.trim_start().starts_with("use ") {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            for pos in token_positions(line, ty) {
                if let Some(name) = decl_name_before(line, pos) {
                    names.insert(name);
                } else if let Some(name) = let_binding_name(line) {
                    // `let [mut] x = HashMap::new()` and friends.
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// Walks left from a type token over type-ish characters (whitespace,
/// `&`, `<`, `(`, `,`, path segments) looking for the declaration's
/// single `:`; returns the identifier before it. `::` path separators
/// are stepped over; hitting anything else (e.g. `=`) means this is not
/// a typed declaration.
fn decl_name_before(line: &str, type_pos: usize) -> Option<String> {
    let chars: Vec<char> = line.chars().collect();
    let mut i = type_pos;
    loop {
        if i == 0 {
            return None;
        }
        i -= 1;
        let c = chars[i];
        if c == ':' {
            if i > 0 && chars[i - 1] == ':' {
                // A `::` path separator: step over it and keep walking.
                i -= 1;
                continue;
            }
            // Found the declaration colon; the name sits before it.
            let end = chars[..i].iter().rposition(|c| !c.is_whitespace())? + 1;
            let start = chars[..end]
                .iter()
                .rposition(|c| !(c.is_alphanumeric() || *c == '_'))
                .map_or(0, |p| p + 1);
            if start == end {
                return None;
            }
            return Some(chars[start..end].iter().collect());
        }
        let type_ish =
            c.is_whitespace() || c.is_alphanumeric() || "&<(,_".contains(c);
        if !type_ish {
            return None;
        }
    }
}

/// The identifier bound by a `let [mut] name ...` on this line, if any.
fn let_binding_name(line: &str) -> Option<String> {
    let pos = token_positions(line, "let").first().copied()?;
    let mut cur = OneLineTokens::new(line, pos + 3);
    let mut tok = cur.next()?;
    if tok == "mut" {
        tok = cur.next()?;
    }
    Some(tok)
}

/// The iterated expression of a `for ... in EXPR {` on this line.
fn for_loop_expr(line: &str) -> Option<String> {
    let for_pos = token_positions(line, "for").first().copied()?;
    let tail = &line[for_pos..];
    let in_rel = token_positions(tail, "in").first().copied()?;
    let after_in = &tail[in_rel + 2..];
    let expr = match after_in.find('{') {
        Some(b) => &after_in[..b],
        None => after_in,
    };
    Some(expr.trim().to_string())
}

/// Strips reference/`mut`/`self.` prefixes off an iterated expression,
/// leaving the collection identifier when the expression is that
/// simple (anything more complex is out of this heuristic's reach).
fn strip_iteree(expr: &str) -> &str {
    let mut e = expr.trim();
    while let Some(rest) = e.strip_prefix('&') {
        e = rest.trim_start();
    }
    if let Some(rest) = e.strip_prefix("mut ") {
        e = rest.trim_start();
    }
    if let Some(rest) = e.strip_prefix("self.") {
        e = rest;
    }
    e
}

/// Word-bounded occurrences (byte offsets) of `tok` in `line`.
pub(crate) fn token_positions(line: &str, tok: &str) -> Vec<usize> {
    let mut out = Vec::new();
    if tok.is_empty() {
        return out;
    }
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(rel) = line[from..].find(tok) {
        let start = from + rel;
        let end = start + tok.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            out.push(start);
        }
        from = start + 1;
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The last non-whitespace char before byte offset `pos` on `line`.
fn prev_nonspace_char(line: &str, pos: usize) -> Option<char> {
    line[..pos].chars().rev().find(|c| !c.is_whitespace())
}

/// The identifier token ending immediately before byte offset `pos`
/// (used to recognize `fn name(` definition sites).
fn prev_token(code: &[String], line_no: usize, pos: usize) -> Option<String> {
    let line = &code[line_no];
    let chars: Vec<char> = line[..pos].chars().collect();
    let end = chars.iter().rposition(|c| !c.is_whitespace())? + 1;
    let start = chars[..end]
        .iter()
        .rposition(|c| !(c.is_alphanumeric() || *c == '_'))
        .map_or(0, |p| p + 1);
    if start == end {
        return None;
    }
    Some(chars[start..end].iter().collect())
}

/// A forward cursor over masked code that steps across line breaks —
/// how rules follow a method chain that wraps.
struct Cursor<'a> {
    code: &'a [String],
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(code: &'a [String], line: usize, col: usize) -> Self {
        Cursor { code, line, col }
    }

    /// Advances to the next non-whitespace char, returning
    /// `(line, col, char)` and consuming it.
    fn next_nonspace(&mut self) -> Option<(usize, usize, char)> {
        while self.line < self.code.len() {
            let chars: Vec<char> = self.code[self.line].chars().collect();
            while self.col < chars.len() {
                let c = chars[self.col];
                let at = (self.line, self.col, c);
                self.col += 1;
                if !c.is_whitespace() {
                    return Some(at);
                }
            }
            self.line += 1;
            self.col = 0;
        }
        None
    }

    /// Reads the next identifier token, returning `(line, col, token)`.
    fn next_token(&mut self) -> Option<(usize, usize, String)> {
        let (line, col, first) = self.next_nonspace()?;
        if !(first.is_alphanumeric() || first == '_') {
            // Put conceptually nothing back; a non-ident char simply
            // means there is no token here.
            return None;
        }
        let mut tok = String::new();
        tok.push(first);
        let chars: Vec<char> = self.code[line].chars().collect();
        while self.line == line && self.col < chars.len() {
            let c = chars[self.col];
            if c.is_alphanumeric() || c == '_' {
                tok.push(c);
                self.col += 1;
            } else {
                break;
            }
        }
        Some((line, col, tok))
    }
}

/// Simple same-line identifier token reader.
struct OneLineTokens<'a> {
    line: &'a str,
    pos: usize,
}

impl<'a> OneLineTokens<'a> {
    fn new(line: &'a str, pos: usize) -> Self {
        OneLineTokens { line, pos }
    }
}

impl Iterator for OneLineTokens<'_> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        let bytes = self.line.as_bytes();
        while self.pos < bytes.len() && !is_ident_byte(bytes[self.pos]) {
            self.pos += 1;
        }
        if self.pos >= bytes.len() {
            return None;
        }
        let start = self.pos;
        while self.pos < bytes.len() && is_ident_byte(bytes[self.pos]) {
            self.pos += 1;
        }
        Some(self.line[start..self.pos].to_string())
    }
}
