//! The `sgprs-lint` CLI: the workspace determinism auditor's front
//! door, wired into CI ahead of the test matrix.
//!
//! ```text
//! sgprs-lint --workspace                audit the whole workspace from the cwd
//! sgprs-lint --root <dir> --workspace   audit a workspace rooted elsewhere
//! sgprs-lint <file.rs> ...              audit individual files
//! sgprs-lint --fix-annotations ...      also print the allow line each finding needs (dry run)
//! sgprs-lint --rules                    print the rule catalog
//! ```
//!
//! Exit codes: `0` clean, `1` diagnostics found, `2` usage or I/O
//! error.

#![forbid(unsafe_code)]

use sgprs_lint::{scan_source, scan_workspace, Config, Diagnostic, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut fix_annotations = false;
    let mut root = PathBuf::from(".");
    let mut files: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--fix-annotations" => fix_annotations = true,
            "--rules" => {
                for (id, summary) in RULES {
                    println!("{id}  {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => return usage(""),
            _ if arg.starts_with('-') => return usage(&format!("unknown flag `{arg}`")),
            _ => files.push(arg),
        }
    }
    if !workspace && files.is_empty() {
        return usage("nothing to audit: pass --workspace or file paths");
    }

    let cfg = Config::workspace_default();
    let mut diags: Vec<Diagnostic> = Vec::new();
    if workspace {
        match scan_workspace(&root, &cfg) {
            Ok(found) => diags.extend(found),
            Err(err) => {
                eprintln!("sgprs-lint: workspace walk failed: {err}");
                return ExitCode::from(2);
            }
        }
    }
    for file in &files {
        match std::fs::read_to_string(file) {
            Ok(source) => {
                let rel = file.trim_start_matches("./").replace('\\', "/");
                diags.extend(scan_source(&rel, &source, &cfg));
            }
            Err(err) => {
                eprintln!("sgprs-lint: cannot read {file}: {err}");
                return ExitCode::from(2);
            }
        }
    }

    for d in &diags {
        println!("{}", d.render());
        if fix_annotations {
            println!(
                "  + insert above: // sgprs-lint: allow({}) -- <why this is deterministic/safe>",
                d.rule
            );
        }
    }
    if diags.is_empty() {
        println!("sgprs-lint: clean (0 diagnostics)");
        ExitCode::SUCCESS
    } else {
        println!("sgprs-lint: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}

fn usage(problem: &str) -> ExitCode {
    if !problem.is_empty() {
        eprintln!("sgprs-lint: {problem}");
    }
    eprintln!(
        "usage: sgprs-lint [--root <dir>] [--fix-annotations] (--workspace | <file.rs>...)\n\
         \x20      sgprs-lint --rules"
    );
    if problem.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
