//! Fixture-driven self-tests: each rule must fire on its bad fixture
//! and stay silent on its good one, the allow machinery must suppress
//! exactly what it names, and `#[cfg(test)]` code must be exempt.

use super::*;

fn fixture(rule_dir: &str, which: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rule_dir)
        .join(format!("{which}.rs"));
    match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!("fixture {} unreadable: {e}", path.display()),
    }
}

/// Scans a fixture as if it lived at `virtual_path`, so path-scoped
/// rules bind exactly the way they do in the real tree.
fn scan_fixture(rule_dir: &str, which: &str, virtual_path: &str) -> Vec<Diagnostic> {
    scan_source(virtual_path, &fixture(rule_dir, which), &Config::workspace_default())
}

/// A hot-path deterministic-module path: every rule binds here.
const DET_HOT: &str = "crates/cluster/src/fleet.rs";

fn assert_fires(rule_dir: &str, virtual_path: &str, rule: &str, at_least: usize) {
    let diags = scan_fixture(rule_dir, "bad", virtual_path);
    let hits: Vec<_> = diags.iter().filter(|d| d.rule == rule).collect();
    assert!(
        hits.len() >= at_least,
        "{rule} must fire >= {at_least}x on {rule_dir}/bad.rs, got {diags:?}"
    );
    assert!(
        diags.iter().all(|d| d.rule == rule),
        "only {rule} may fire on its own bad fixture: {diags:?}"
    );
}

fn assert_silent(rule_dir: &str, virtual_path: &str) {
    let diags = scan_fixture(rule_dir, "good", virtual_path);
    assert!(diags.is_empty(), "{rule_dir}/good.rs must be clean: {diags:?}");
}

#[test]
fn d001_fires_on_hash_iteration_and_respects_keyed_access() {
    // Three iteration sites: the for-loop, `.iter()`, and `.keys()`.
    assert_fires("d001", DET_HOT, "D001", 3);
    assert_silent("d001", DET_HOT);
}

#[test]
fn d001_guards_the_timing_wheel_module() {
    // The wheel is the event queue's ordering core: HashMap iteration
    // there would randomise pop order run-to-run. Pin that the
    // deterministic-module prefix covers it and H001 binds too.
    assert_fires("d001", "crates/cluster/src/event/wheel.rs", "D001", 3);
    assert_silent("d001", "crates/cluster/src/event/wheel.rs");
    assert_fires("h001", "crates/cluster/src/event/wheel.rs", "H001", 2);
}

#[test]
fn d001_is_scoped_to_deterministic_modules() {
    let diags = scan_fixture("d001", "bad", "crates/workload/src/fleet.rs");
    assert!(
        diags.is_empty(),
        "outside the deterministic modules D001 stays quiet: {diags:?}"
    );
}

#[test]
fn d002_fires_on_wall_clock_and_respects_the_allowlist() {
    // `Instant::now` once, `SystemTime` twice (import + call).
    assert_fires("d002", "crates/cluster/src/event/engine.rs", "D002", 3);
    assert_silent("d002", "crates/cluster/src/event/engine.rs");
    let diags = scan_fixture("d002", "bad", "crates/bench/src/bin/fleet.rs");
    assert!(
        diags.is_empty(),
        "bench bins are an allowlisted profiling surface: {diags:?}"
    );
}

#[test]
fn d002_allowlists_the_profiler_and_bench_report_but_not_other_cluster_modules() {
    // The two PR-9 profiling surfaces are allowlisted...
    for allowed in [
        "crates/cluster/src/telemetry/prof.rs",
        "crates/bench/src/report.rs",
    ] {
        let diags = scan_fixture("d002", "bad", allowed);
        assert!(
            diags.is_empty(),
            "{allowed} is an allowlisted profiling surface: {diags:?}"
        );
    }
    // ...but a wall-clock read in any *other* cluster module still
    // fires: the allowlist names files, it does not open the crate.
    for hot in [
        "crates/cluster/src/fleet.rs",
        "crates/cluster/src/stream.rs",
        "crates/cluster/src/telemetry/sketch.rs",
    ] {
        let diags = scan_fixture("d002", "bad", hot);
        assert!(
            diags.iter().filter(|d| d.rule == "D002").count() >= 3,
            "a wall-clock read in {hot} must keep firing: {diags:?}"
        );
    }
}

#[test]
fn d003_fires_on_ambient_randomness_and_not_on_seeded() {
    // `thread_rng` and `from_entropy`.
    assert_fires("d003", DET_HOT, "D003", 2);
    assert_silent("d003", DET_HOT);
}

#[test]
fn d004_requires_a_fold_order_marker_near_the_call_site() {
    assert_fires("d004", DET_HOT, "D004", 1);
    assert_silent("d004", DET_HOT);
}

#[test]
fn h001_fires_on_hot_path_unwrap_and_unnamed_expect() {
    assert_fires("h001", DET_HOT, "H001", 2);
    assert_silent("h001", DET_HOT);
}

#[test]
fn h001_is_scoped_to_the_hot_path_file_set() {
    let diags = scan_fixture("h001", "bad", "crates/cluster/src/metrics.rs");
    assert!(diags.is_empty(), "H001 binds only to the hot-path files: {diags:?}");
}

#[test]
fn an_allow_suppresses_only_the_rule_it_names() {
    let src = "\
pub fn f() -> u128 {
    // sgprs-lint: allow(D003) -- wrong rule on purpose
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
";
    let diags = scan_source("crates/core/src/lib.rs", src, &Config::workspace_default());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "D002", "the D003 allow must not cover D002");
}

#[test]
fn a_trailing_same_line_allow_works_too() {
    let src = "\
pub fn f() -> u128 {
    let t0 = std::time::Instant::now(); // sgprs-lint: allow(D002) -- profiling probe
    t0.elapsed().as_nanos()
}
";
    let diags = scan_source("crates/core/src/lib.rs", src, &Config::workspace_default());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn malformed_allows_are_their_own_error() {
    for bad in [
        "// sgprs-lint: allow(D002)",        // missing justification
        "// sgprs-lint: allow(D002) -- ",    // empty justification
        "// sgprs-lint: allow(D9999) -- x",  // unknown rule
        "// sgprs-lint: allow(D002 -- x",    // unclosed
        "// sgprs-lint: disallow(D002) -- x", // unknown verb
    ] {
        let src = format!("{bad}\npub fn f() {{}}\n");
        let diags = scan_source("crates/core/src/lib.rs", &src, &Config::workspace_default());
        assert_eq!(diags.len(), 1, "{bad:?} -> {diags:?}");
        assert_eq!(diags[0].rule, "L000", "{bad:?} -> {diags:?}");
    }
}

#[test]
fn cfg_test_code_is_exempt_from_every_rule() {
    let src = "\
pub fn live() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (_, v) in &m {
            let _ = v;
        }
        let t0 = std::time::Instant::now();
        let _ = t0.elapsed();
        let _ = [1u64].first().unwrap();
    }
}
";
    let diags = scan_source(DET_HOT, src, &Config::workspace_default());
    assert!(diags.is_empty(), "test-only code is out of scope: {diags:?}");
}

#[test]
fn patterns_inside_strings_and_comments_never_fire() {
    let src = "\
pub fn f() -> &'static str {
    // Instant::now and thread_rng in a comment are just words.
    \"Instant::now SystemTime thread_rng .unwrap()\"
}
";
    let diags = scan_source(DET_HOT, src, &Config::workspace_default());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn multiline_method_chains_are_still_caught() {
    let src = "\
use std::collections::HashMap;

pub struct S {
    m: HashMap<u32, u32>,
}

impl S {
    pub fn sum(&self) -> u32 {
        self.m
            .values()
            .sum()
    }
}
";
    let diags = scan_source(DET_HOT, src, &Config::workspace_default());
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "D001");
    assert_eq!(diags[0].line, 10, "flagged at the `.values()` line");
}

#[test]
fn rule_ids_are_unique_and_render_is_stable() {
    let mut seen = std::collections::BTreeSet::new();
    for (id, _) in RULES {
        assert!(seen.insert(id), "duplicate rule id {id}");
    }
    let d = Diagnostic::new("D001", "a/b.rs", 7, "msg".to_string());
    assert_eq!(d.render(), "a/b.rs:7: D001: msg");
}
