//! `sgprs-lint` — the workspace determinism auditor.
//!
//! The fleet's core contract is *byte-identical output*: the same
//! scenario produces the same JSON across worker counts {1,2,4,8},
//! both execution engines, and flat/sharded/p2c routing. That contract
//! is defended dynamically by the determinism-matrix tests, but a
//! dynamic test only catches a hazard once a scenario happens to
//! tickle it. This crate is the static half: a self-contained,
//! dependency-free token scanner (comment- and string-aware, see
//! [`lex`]) that audits the workspace sources at CI time and fails on
//! determinism and hot-path hygiene violations.
//!
//! # Rule catalog
//!
//! | ID   | Rule |
//! |------|------|
//! | D001 | No `HashMap`/`HashSet` *iteration* in deterministic modules (`cluster::{fleet, policy, event, shard, queue, telemetry}`). Keyed lookup is fine; `.iter()`/`.keys()`/`for` over them is not — hash order is seeded per process. |
//! | D002 | No wall-clock reads (`Instant::now`, `SystemTime`) outside the allowlisted profiling surfaces (the telemetry clock hooks, the span profiler, the bench bins and their report module). |
//! | D003 | No ambient randomness (`thread_rng`, `OsRng`, `from_entropy`): randomness flows from explicit seeds. |
//! | D004 | Parallel folds (`run_node_epochs`-style reduces, telemetry sketch merges) must state their fold order in a nearby comment (`node-index order`, `window order`, ...). |
//! | H001 | No bare `unwrap()` — and only `expect("invariant: ...")` — on the dispatch hot path (`fleet`, `policy`, `shard`, `queue`, the event engine). |
//! | L000 | A malformed `sgprs-lint` control comment (fires on unparseable allows, unknown rule IDs, and missing justifications). |
//!
//! # Escape hatch
//!
//! A justified allow on the offending line or the line above suppresses
//! a diagnostic:
//!
//! ```text
//! // sgprs-lint: allow(D001) -- commutative u64 sum, order-free
//! let total: u64 = self.counts.values().sum();
//! ```
//!
//! The ` -- justification` part is mandatory; an allow without one is
//! itself an error (L000). `cargo run -p sgprs-lint -- --workspace`
//! runs the audit; `--fix-annotations` prints the annotation each
//! diagnostic would need, as a dry run.
//!
//! Unit tests (`#[cfg(test)]` items), integration-test files, fixture
//! corpora, and the vendored stand-ins are outside the audit surface.

#![forbid(unsafe_code)]

pub mod lex;
mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Every rule ID with a one-line summary, in catalog order.
pub const RULES: &[(&str, &str)] = &[
    (
        "D001",
        "no HashMap/HashSet iteration in deterministic modules (keyed lookup is fine)",
    ),
    (
        "D002",
        "no wall-clock (Instant::now, SystemTime) outside allowlisted profiling surfaces",
    ),
    (
        "D003",
        "no ambient randomness (thread_rng, OsRng, from_entropy); seed explicitly",
    ),
    (
        "D004",
        "parallel folds must state their fold order in a nearby marker comment",
    ),
    (
        "H001",
        "no unwrap(); only expect(\"invariant: ...\") on the dispatch hot path",
    ),
    ("L000", "malformed sgprs-lint control comment"),
];

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule ID (`D001`...`H001`, `L000`).
    pub rule: &'static str,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(rule: &'static str, file: &str, line: usize, message: String) -> Self {
        Diagnostic { rule, file: file.to_string(), line, message }
    }

    /// Renders as `file:line: RULE: message`.
    #[must_use]
    pub fn render(&self) -> String {
        format!("{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// A parallel-fold function D004 watches, optionally scoped to a path
/// prefix (so a generic name like `merge` only binds where it really
/// is a fold).
#[derive(Debug, Clone)]
pub struct FoldFn {
    /// The function or method name at the call site.
    pub name: String,
    /// When set, the rule only applies to files under this prefix.
    pub prefix: Option<String>,
}

/// The auditor's policy: which paths each rule binds to.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes of the deterministic modules D001 guards.
    pub deterministic_prefixes: Vec<String>,
    /// Path prefixes where wall-clock reads are allowed (D002).
    pub wall_clock_allow: Vec<String>,
    /// Exact file paths forming the dispatch hot path (H001).
    pub hot_path_files: Vec<String>,
    /// Parallel-fold call sites D004 requires order markers on.
    pub fold_fns: Vec<FoldFn>,
}

impl Config {
    /// The policy for this workspace: the deterministic `cluster`
    /// modules, the telemetry/bench profiling allowlist, the dispatch
    /// hot-path file set, and the known parallel folds.
    #[must_use]
    pub fn workspace_default() -> Self {
        let own = |s: &[&str]| s.iter().map(|p| (*p).to_string()).collect();
        Config {
            deterministic_prefixes: own(&[
                "crates/cluster/src/fleet",
                "crates/cluster/src/policy.rs",
                "crates/cluster/src/event",
                "crates/cluster/src/shard.rs",
                "crates/cluster/src/queue.rs",
                "crates/cluster/src/telemetry",
                "crates/cluster/src/stream.rs",
                "crates/cluster/src/interner.rs",
            ]),
            wall_clock_allow: own(&[
                // The telemetry clock hooks: wall-clock by design, kept
                // out of the deterministic export.
                "crates/cluster/src/telemetry/mod.rs",
                // The span-scoped hot-path profiler — the one other
                // cluster surface allowed to read `Instant::now`; its
                // histograms feed only the BENCH_*.json sidecars.
                "crates/cluster/src/telemetry/prof.rs",
                // Bench bins measure wall time; that is their job.
                "crates/bench/src/bin/",
                // The shared bench-report module: wall_ms/throughput
                // fields are wall-clock by definition.
                "crates/bench/src/report.rs",
            ]),
            hot_path_files: own(&[
                "crates/cluster/src/fleet.rs",
                "crates/cluster/src/policy.rs",
                "crates/cluster/src/shard.rs",
                "crates/cluster/src/queue.rs",
                "crates/cluster/src/event.rs",
                "crates/cluster/src/event/engine.rs",
                "crates/cluster/src/event/exec.rs",
                "crates/cluster/src/event/wheel.rs",
                "crates/cluster/src/stream.rs",
                "crates/cluster/src/interner.rs",
            ]),
            fold_fns: vec![
                FoldFn { name: "run_node_epochs".to_string(), prefix: None },
                FoldFn {
                    name: "merge".to_string(),
                    prefix: Some("crates/cluster/src/telemetry/".to_string()),
                },
            ],
        }
    }
}

/// Audits one source file. `path` is the workspace-relative path (with
/// forward slashes) that rule scoping and diagnostics use.
#[must_use]
pub fn scan_source(path: &str, source: &str, cfg: &Config) -> Vec<Diagnostic> {
    let scanned = lex::ScannedFile::scan(source);
    let (allows, mut diags) = parse_allow_directives(path, &scanned);
    diags.extend(rules::check_file(path, &scanned, cfg));
    diags.retain(|d| {
        if d.rule == "L000" {
            return true;
        }
        let line0 = d.line - 1;
        let covered = allowed(&allows, line0, d.rule)
            || (line0 > 0 && allowed(&allows, line0 - 1, d.rule));
        !covered
    });
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}

fn allowed(allows: &BTreeMap<usize, Vec<String>>, line0: usize, rule: &str) -> bool {
    allows.get(&line0).is_some_and(|rs| rs.iter().any(|r| r == rule))
}

/// Parses justified allow comments — `allow(D001, D002) -- why` after
/// the `sgprs-lint` marker. Returns the per-line allow sets plus L000
/// diagnostics for malformed directives (unknown rule, missing
/// justification).
fn parse_allow_directives(
    path: &str,
    scanned: &lex::ScannedFile,
) -> (BTreeMap<usize, Vec<String>>, Vec<Diagnostic>) {
    let mut allows: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let mut diags = Vec::new();
    for (line_no, comment) in scanned.comments.iter().enumerate() {
        let Some(at) = comment.find("sgprs-lint:") else { continue };
        let directive = comment[at + "sgprs-lint:".len()..].trim();
        match parse_allow(directive) {
            Ok(rule_ids) => allows.entry(line_no).or_default().extend(rule_ids),
            Err(why) => diags.push(Diagnostic::new(
                "L000",
                path,
                line_no + 1,
                format!("malformed sgprs-lint directive: {why}"),
            )),
        }
    }
    (allows, diags)
}

fn parse_allow(directive: &str) -> Result<Vec<String>, String> {
    let rest = directive
        .strip_prefix("allow(")
        .ok_or_else(|| "expected `allow(<rule>, ...) -- <justification>`".to_string())?;
    let close = rest.find(')').ok_or_else(|| "unclosed `allow(`".to_string())?;
    let mut rule_ids = Vec::new();
    for raw in rest[..close].split(',') {
        let id = raw.trim();
        if !RULES.iter().any(|(known, _)| *known == id) {
            return Err(format!("unknown rule `{id}`"));
        }
        rule_ids.push(id.to_string());
    }
    if rule_ids.is_empty() {
        return Err("empty rule list".to_string());
    }
    let tail = rest[close + 1..].trim();
    let justification = tail
        .strip_prefix("--")
        .map(str::trim)
        .ok_or_else(|| "missing ` -- <justification>`".to_string())?;
    if justification.is_empty() {
        return Err("empty justification after `--`".to_string());
    }
    Ok(rule_ids)
}

/// Directory names the workspace walk never descends into: build
/// output, the vendored stand-ins, test-only corpora.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", "tests", "benches", ".git"];

/// Audits the whole workspace rooted at `root`: every `.rs` file under
/// `crates/`, `src/`, and `examples/`, excluding build output, the
/// vendored stand-ins, integration-test and bench directories, fixture
/// corpora, and out-of-line unit-test files (`tests.rs`).
///
/// # Errors
///
/// Propagates filesystem errors from the walk or file reads.
pub fn scan_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut diags = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = fs::read_to_string(&file)?;
        diags.extend(scan_source(&rel, &source, cfg));
    }
    Ok(diags)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> =
        fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") && name != "tests.rs" {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests;
