//! A comment- and string-aware scanner over one Rust source file.
//!
//! The auditor's rules are textual, so before any rule runs the source
//! is split into three synchronized views:
//!
//! * **masked code** — the source with comment text, string/char
//!   literal *contents*, and raw-string bodies replaced by spaces
//!   (length-preserving, so columns still line up). Rules match tokens
//!   against this view only, which is what makes the pass immune to
//!   `"Instant::now"` appearing inside a diagnostic message or a doc
//!   comment.
//! * **comments** — the text of every `//`, `///`, `//!`, and
//!   (possibly nested) `/* ... */` comment, collected per line. Allow
//!   directives and fold-order markers are read from here.
//! * **string literals** — each literal's content with the line/column
//!   of its opening quote, so a rule can ask "what message does this
//!   `expect(` call carry?" without unmasking the code.
//!
//! The scanner also brace-matches `#[cfg(test)]` items and marks their
//! lines as test-only: unit tests are not part of the shipped
//! determinism surface, so every rule skips them (integration-test
//! *files* are excluded by the workspace walker instead).

/// One string literal: where its opening quote sits and what it says.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 0-based line of the opening quote.
    pub line: usize,
    /// 0-based column of the opening quote within the masked code line.
    pub col: usize,
    /// The literal's unescaped-as-written content (escape sequences are
    /// kept verbatim; rules only ever prefix-match).
    pub text: String,
}

/// The three synchronized views of one scanned source file.
#[derive(Debug, Default)]
pub struct ScannedFile {
    /// Per-line code with comments and literal contents masked.
    pub code: Vec<String>,
    /// Per-line comment text (empty when the line has none).
    pub comments: Vec<String>,
    /// Every string literal, in source order.
    pub strings: Vec<StrLit>,
    /// Lines inside a `#[cfg(test)]` item (rules skip these).
    pub test_lines: Vec<bool>,
}

impl ScannedFile {
    /// Scans `source` into its masked views.
    #[must_use]
    pub fn scan(source: &str) -> Self {
        let mut s = Lexer::new(source).run();
        s.mark_test_regions();
        s
    }

    /// Whether rules should skip `line` (0-based).
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }

    /// The first string literal at or after `(line, col)`, if any lies
    /// within the next `max_lines` lines — how rules bind an `expect(`
    /// call to its message across a line break.
    #[must_use]
    pub fn string_at_or_after(&self, line: usize, col: usize, max_lines: usize) -> Option<&StrLit> {
        self.strings.iter().find(|s| {
            (s.line > line || (s.line == line && s.col >= col)) && s.line <= line + max_lines
        })
    }

    /// Marks the body lines of every `#[cfg(test)]` item by brace
    /// matching over the masked code (mask first, match after: braces
    /// inside strings or comments can no longer confuse the count).
    fn mark_test_regions(&mut self) {
        self.test_lines = vec![false; self.code.len()];
        for start in 0..self.code.len() {
            let compact: String = self.code[start].chars().filter(|c| !c.is_whitespace()).collect();
            if !compact.contains("#[cfg(test)]") {
                continue;
            }
            // Scan forward from the attribute for the item's first `{`;
            // a `;` first means a declaration-only item (e.g. an
            // out-of-line `mod tests;`) with no body in this file.
            let mut depth = 0usize;
            let mut line = start;
            let mut col = self.code[start]
                .find("#[cfg(test)]")
                .map_or(0, |p| p + "#[cfg(test)]".len());
            let mut opened = false;
            'outer: while line < self.code.len() {
                let chars: Vec<char> = self.code[line].chars().collect();
                while col < chars.len() {
                    let c = chars[col];
                    if !opened && c == ';' && depth == 0 {
                        break 'outer;
                    }
                    if c == '{' {
                        opened = true;
                        depth += 1;
                    } else if c == '}' && opened {
                        depth -= 1;
                        if depth == 0 {
                            self.mark_lines(start, line);
                            break 'outer;
                        }
                    }
                    col += 1;
                }
                line += 1;
                col = 0;
            }
            if opened && depth > 0 {
                // Unbalanced (truncated source): treat the rest of the
                // file as test-only rather than under-skipping.
                self.mark_lines(start, self.code.len() - 1);
            }
        }
    }

    fn mark_lines(&mut self, from: usize, to: usize) {
        for l in &mut self.test_lines[from..=to] {
            *l = true;
        }
    }
}

/// The character-level state machine producing a [`ScannedFile`].
struct Lexer {
    chars: Vec<char>,
    i: usize,
    code_line: String,
    comment_line: String,
    out: ScannedFile,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            i: 0,
            code_line: String::new(),
            comment_line: String::new(),
            out: ScannedFile::default(),
        }
    }

    fn run(mut self) -> ScannedFile {
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            match c {
                '\n' => self.newline(),
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(false),
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(),
                'b' if self.peek(1) == Some('"') && !self.prev_is_ident() => {
                    self.push_code('b');
                    self.string(false);
                }
                '\'' => self.char_or_lifetime(),
                _ => self.push_code(c),
            }
        }
        // Flush a trailing unterminated line.
        if !self.code_line.is_empty() || !self.comment_line.is_empty() {
            self.newline_flush();
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Whether the char before the cursor continues an identifier (so a
    /// leading `r`/`b` belongs to a name like `for` or `grab`, not to a
    /// raw/byte string prefix).
    fn prev_is_ident(&self) -> bool {
        self.code_line
            .chars()
            .last()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
    }

    fn push_code(&mut self, c: char) {
        self.code_line.push(c);
        self.i += 1;
    }

    fn newline(&mut self) {
        self.newline_flush();
        self.i += 1;
    }

    fn newline_flush(&mut self) {
        self.out.code.push(std::mem::take(&mut self.code_line));
        self.out.comments.push(std::mem::take(&mut self.comment_line));
    }

    fn line_comment(&mut self) {
        while self.i < self.chars.len() && self.chars[self.i] != '\n' {
            self.comment_line.push(self.chars[self.i]);
            self.code_line.push(' ');
            self.i += 1;
        }
    }

    fn block_comment(&mut self) {
        let mut depth = 0usize;
        loop {
            if self.i >= self.chars.len() {
                return;
            }
            let c = self.chars[self.i];
            if c == '\n' {
                self.newline();
            } else if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.comment_line.push_str("/*");
                self.code_line.push_str("  ");
                self.i += 2;
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.comment_line.push_str("*/");
                self.code_line.push_str("  ");
                self.i += 2;
                if depth == 0 {
                    return;
                }
            } else {
                self.comment_line.push(c);
                self.code_line.push(' ');
                self.i += 1;
            }
        }
    }

    /// A plain (or byte) string literal: quotes stay in the code view,
    /// the content is masked and recorded.
    fn string(&mut self, raw: bool) {
        let line = self.out.code.len();
        let col = self.code_line.len();
        self.push_code('"');
        let mut text = String::new();
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            if c == '\\' && !raw {
                text.push(c);
                self.code_line.push(' ');
                self.i += 1;
                if let Some(e) = self.peek(0) {
                    text.push(e);
                    if e == '\n' {
                        self.newline_flush();
                        self.code_line.clear();
                    } else {
                        self.code_line.push(' ');
                    }
                    self.i += 1;
                }
            } else if c == '"' {
                self.push_code('"');
                break;
            } else if c == '\n' {
                text.push(c);
                self.newline();
            } else {
                text.push(c);
                self.code_line.push(' ');
                self.i += 1;
            }
        }
        self.out.strings.push(StrLit { line, col, text });
    }

    /// Whether the cursor sits on a raw/raw-byte string prefix
    /// (`r"`, `r#"`, `br"`, ...) rather than an identifier.
    fn raw_string_ahead(&self) -> bool {
        if self.prev_is_ident() {
            return false;
        }
        let mut j = self.i;
        if self.chars.get(j) == Some(&'b') {
            j += 1;
        }
        if self.chars.get(j) != Some(&'r') {
            return false;
        }
        j += 1;
        while self.chars.get(j) == Some(&'#') {
            j += 1;
        }
        self.chars.get(j) == Some(&'"')
    }

    fn raw_string(&mut self) {
        // Consume the prefix (`b`? `r` `#`*) into the code view.
        if self.chars[self.i] == 'b' {
            self.push_code('b');
        }
        self.push_code('r');
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            self.push_code('#');
            hashes += 1;
        }
        let line = self.out.code.len();
        let col = self.code_line.len();
        self.push_code('"');
        let mut text = String::new();
        while self.i < self.chars.len() {
            if self.chars[self.i] == '"' && self.hashes_follow(hashes) {
                self.push_code('"');
                for _ in 0..hashes {
                    self.push_code('#');
                }
                break;
            }
            let c = self.chars[self.i];
            if c == '\n' {
                text.push(c);
                self.newline();
            } else {
                text.push(c);
                self.code_line.push(' ');
                self.i += 1;
            }
        }
        self.out.strings.push(StrLit { line, col, text });
    }

    fn hashes_follow(&self, hashes: usize) -> bool {
        (1..=hashes).all(|k| self.peek(k) == Some('#'))
    }

    /// Disambiguates a char literal (`'x'`, `'\n'`, `'\u{1F600}'`) from
    /// a lifetime (`'a`, `'static`, `'_`): an escape or a close quote
    /// two ahead means char literal; anything else is a lifetime and
    /// passes through as code.
    fn char_or_lifetime(&mut self) {
        let is_char = match self.peek(1) {
            Some('\\') => true,
            Some(_) => self.peek(2) == Some('\''),
            None => false,
        };
        if !is_char {
            self.push_code('\'');
            return;
        }
        self.push_code('\'');
        while self.i < self.chars.len() && self.chars[self.i] != '\'' {
            if self.chars[self.i] == '\\' {
                self.code_line.push(' ');
                self.i += 1;
                if self.i < self.chars.len() {
                    self.code_line.push(' ');
                    self.i += 1;
                }
            } else {
                self.code_line.push(' ');
                self.i += 1;
            }
        }
        if self.peek(0) == Some('\'') {
            self.push_code('\'');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_masked_out_of_code() {
        let s = ScannedFile::scan(
            "let x = \"Instant::now\"; // Instant::now here too\nlet y = 1; /* SystemTime */\n",
        );
        assert!(!s.code[0].contains("Instant"));
        assert!(s.comments[0].contains("Instant::now"));
        assert!(!s.code[1].contains("SystemTime"));
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].text, "Instant::now");
    }

    #[test]
    fn raw_strings_and_char_literals_do_not_derail_the_scan() {
        let src = "let a = r#\"no \" end // not a comment\"#;\nlet b = '\"';\nlet c = '{';\nlet real = 1; // tail\n";
        let s = ScannedFile::scan(src);
        assert!(s.comments[0].is_empty(), "raw string content is not a comment");
        assert_eq!(s.strings[0].text, "no \" end // not a comment");
        assert!(!s.code[1].contains('"'), "char-literal quote is masked");
        assert!(!s.code[2].contains('{'), "char-literal brace is masked");
        assert!(s.comments[3].contains("tail"));
    }

    #[test]
    fn lifetimes_stay_in_the_code_view() {
        let s = ScannedFile::scan("impl<'a> Foo<'a> { fn f(&'a self) {} }\n");
        assert!(s.code[0].contains("'a"));
        assert!(s.strings.is_empty());
    }

    #[test]
    fn cfg_test_bodies_are_marked_and_declarations_are_not() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n#[cfg(test)]\nmod out_of_line;\nfn live3() {}\n";
        let s = ScannedFile::scan(src);
        assert!(!s.is_test_line(0));
        assert!(s.is_test_line(2));
        assert!(s.is_test_line(3));
        assert!(s.is_test_line(4));
        assert!(!s.is_test_line(5));
        assert!(!s.is_test_line(8), "declaration-only mod skips nothing");
    }

    #[test]
    fn multiline_strings_keep_line_accounting_straight() {
        let src = "let x = \"line one\nline two\";\nlet y = 2; // after\n";
        let s = ScannedFile::scan(src);
        assert_eq!(s.code.len(), 3);
        assert!(s.comments[2].contains("after"));
        assert_eq!(s.strings[0].text, "line one\nline two");
    }
}
