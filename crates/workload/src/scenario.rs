//! Scenario definitions mirroring §V of the paper.
//!
//! The evaluation uses identical periodic tasks: ResNet18 with a 224×224
//! input at 30 fps and an explicit deadline equal to the period, each task
//! divided into six stages. Scenario 1 uses a pool of two contexts,
//! Scenario 2 three contexts; SGPRS variants differ in the
//! over-subscription level `os ∈ {1.0, 1.5, 2.0}` (written `SGPRS os`).

use serde::{Deserialize, Serialize};
use sgprs_core::{
    offline, CompiledTask, ContextPoolSpec, NaiveConfig, NaiveScheduler, RunMetrics,
    SgprsConfig, SgprsScheduler,
};
use sgprs_dnn::{models, CostModel};
use sgprs_rt::{SimDuration, SimTime};

/// The paper's task rate: 30 frames per second.
pub const PAPER_FPS: f64 = 30.0;

/// The paper's stage count: each task is divided into six stages.
pub const PAPER_STAGES: usize = 6;

/// Which scheduler a scenario curve uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// The naive spatial-partitioning baseline.
    Naive,
    /// SGPRS with the given over-subscription factor.
    Sgprs {
        /// The `os` level (1.0, 1.5, 2.0 in the paper).
        oversubscription: f64,
    },
}

impl core::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SchedulerKind::Naive => f.write_str("naive"),
            SchedulerKind::Sgprs { oversubscription } => {
                write!(f, "SGPRS {oversubscription:.1}")
            }
        }
    }
}

/// One curve of Figures 3/4: a scheduler variant over a context pool,
/// evaluated at varying task counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Curve label (e.g. `"SGPRS 1.5 (np=3)"`).
    pub label: String,
    /// Number of contexts `np`.
    pub contexts: usize,
    /// Scheduler variant.
    pub scheduler: SchedulerKind,
    /// Stages per task.
    pub stages: usize,
    /// Task release rate in frames per second.
    pub fps: f64,
    /// Simulated wall-clock length of each run.
    pub sim: SimDuration,
    /// Jitter seed (deterministic runs).
    pub seed: u64,
}

impl ScenarioSpec {
    /// Creates a scenario with the paper's task parameters.
    #[must_use]
    pub fn new(contexts: usize, scheduler: SchedulerKind, sim_secs: u64) -> Self {
        let label = format!("{scheduler} (np={contexts})");
        ScenarioSpec {
            label,
            contexts,
            scheduler,
            stages: PAPER_STAGES,
            fps: PAPER_FPS,
            sim: SimDuration::from_secs(sim_secs),
            seed: 0x5672_5053,
        }
    }

    /// The task period implied by the frame rate.
    #[must_use]
    pub fn period(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.fps)
    }

    /// The context pool this scenario partitions the GPU into (SGPRS
    /// variants only; the naive baseline always uses an exact partition).
    #[must_use]
    pub fn pool(&self) -> ContextPoolSpec {
        let os = match self.scheduler {
            SchedulerKind::Naive => 1.0,
            SchedulerKind::Sgprs { oversubscription } => oversubscription,
        };
        ContextPoolSpec::new(self.contexts, os)
    }

    /// Compiles `n` identical ResNet18 tasks for this scenario.
    #[must_use]
    pub fn compile_tasks(&self, n: usize) -> Vec<CompiledTask> {
        let net = models::resnet18(1, 224);
        let cost = CostModel::calibrated();
        let pool = self.pool();
        let task = offline::compile_network_task(
            "resnet18",
            &net,
            &cost,
            self.stages,
            self.period(),
            &pool,
        )
        .expect("resnet18 always splits into the paper's stage counts");
        (0..n)
            .map(|i| {
                let mut t = task.clone();
                t.spec.name = format!("resnet18-{i}");
                t
            })
            .collect()
    }

    /// Runs the scenario with `n` tasks and returns the metrics.
    #[must_use]
    pub fn run(&self, n: usize) -> RunMetrics {
        let tasks = self.compile_tasks(n);
        let end = SimTime::ZERO + self.sim;
        match self.scheduler {
            SchedulerKind::Naive => {
                let cfg = NaiveConfig::new(self.contexts).with_seed(self.seed);
                NaiveScheduler::new(cfg, tasks).run(end)
            }
            SchedulerKind::Sgprs { .. } => {
                let cfg = SgprsConfig::new(self.pool()).with_seed(self.seed);
                SgprsScheduler::new(cfg, tasks).run(end)
            }
        }
    }
}

/// The four curves of Figure 3 (Scenario 1, `np = 2`): naive plus SGPRS at
/// `os ∈ {1.0, 1.5, 2.0}`.
#[must_use]
pub fn scenario1_variants(sim_secs: u64) -> Vec<ScenarioSpec> {
    variants_for(2, sim_secs)
}

/// The four curves of Figure 4 (Scenario 2, `np = 3`).
#[must_use]
pub fn scenario2_variants(sim_secs: u64) -> Vec<ScenarioSpec> {
    variants_for(3, sim_secs)
}

fn variants_for(contexts: usize, sim_secs: u64) -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::new(contexts, SchedulerKind::Naive, sim_secs),
        ScenarioSpec::new(
            contexts,
            SchedulerKind::Sgprs {
                oversubscription: 1.0,
            },
            sim_secs,
        ),
        ScenarioSpec::new(
            contexts,
            SchedulerKind::Sgprs {
                oversubscription: 1.5,
            },
            sim_secs,
        ),
        ScenarioSpec::new(
            contexts,
            SchedulerKind::Sgprs {
                oversubscription: 2.0,
            },
            sim_secs,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_period_is_33_milliseconds() {
        let s = ScenarioSpec::new(2, SchedulerKind::Naive, 1);
        let p = s.period();
        assert_eq!(p.as_millis(), 33);
    }

    #[test]
    fn variants_cover_naive_and_three_os_levels() {
        let v = scenario1_variants(1);
        assert_eq!(v.len(), 4);
        assert_eq!(v[0].scheduler, SchedulerKind::Naive);
        for (i, os) in [1.0, 1.5, 2.0].into_iter().enumerate() {
            assert_eq!(
                v[i + 1].scheduler,
                SchedulerKind::Sgprs {
                    oversubscription: os
                }
            );
        }
        assert!(scenario2_variants(1).iter().all(|s| s.contexts == 3));
    }

    #[test]
    fn compile_tasks_gives_unique_names() {
        let s = ScenarioSpec::new(2, SchedulerKind::Naive, 1);
        let tasks = s.compile_tasks(3);
        assert_eq!(tasks.len(), 3);
        assert_ne!(tasks[0].spec.name, tasks[1].spec.name);
        assert!(tasks.iter().all(|t| t.stage_count() == PAPER_STAGES));
    }

    #[test]
    fn naive_and_sgprs_scenarios_run() {
        for kind in [
            SchedulerKind::Naive,
            SchedulerKind::Sgprs {
                oversubscription: 1.5,
            },
        ] {
            let s = ScenarioSpec::new(2, kind, 1);
            let m = s.run(2);
            assert!(m.total_fps > 0.0, "{kind}: {m:?}");
        }
    }

    #[test]
    fn labels_are_descriptive() {
        let s = ScenarioSpec::new(
            3,
            SchedulerKind::Sgprs {
                oversubscription: 1.5,
            },
            1,
        );
        assert_eq!(s.label, "SGPRS 1.5 (np=3)");
    }
}
