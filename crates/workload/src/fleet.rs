//! Fleet scenarios: multi-GPU serving experiments over `sgprs-cluster`.
//!
//! Where [`crate::ScenarioSpec`] reproduces the paper's single-GPU
//! figures, a [`FleetScenario`] drives a whole fleet: heterogeneous SM
//! counts, skewed tenant mixes, and arrival/departure churn — the
//! deployment the paper's introduction motivates but never measures.

use serde::{Deserialize, Serialize};
use sgprs_cluster::{
    ArrivalStream, ChurnConfig, ChurnEvent, ChurnTrace, Fleet, FleetConfig, FleetMetrics,
    ModelKind, NodeScheduler, NodeSpec, PlacementPolicy, QueuePolicy, ShardRouter, TenantSpec,
};
use sgprs_gpu_sim::GpuSpec;
use sgprs_rt::{SimDuration, SimTime};

/// How a fleet scenario generates its tenant population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TenantLoad {
    /// `n` identical tenants (the paper's setup, scaled out), all present
    /// from time zero.
    Static {
        /// Number of tenants.
        n: usize,
        /// Model every tenant serves.
        model: ModelKind,
        /// Common frame rate.
        fps: f64,
    },
    /// Seeded churn: tenants arrive and depart over the run.
    Churn(ChurnConfig),
    /// Metro-scale traffic: seeded base churn with periodic synchronized
    /// arrival *bursts* superimposed (rush-hour waves of camera feeds
    /// landing at once — the pattern that stresses O(1) routing).
    Metro {
        /// The steady base churn.
        base: ChurnConfig,
        /// Gap between burst waves.
        burst_every: SimDuration,
        /// Tenants per burst wave (they inherit the base churn's model
        /// mix head, fps, ladder, and patience, and depart after the
        /// base churn's maximum lifetime).
        burst_size: usize,
    },
}

/// One fleet experiment: nodes, placement policy, and offered load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetScenario {
    /// Scenario label for reports.
    pub label: String,
    /// The fleet's nodes.
    pub nodes: Vec<NodeSpec>,
    /// Placement policy.
    pub placement: PlacementPolicy,
    /// Offered load.
    pub load: TenantLoad,
    /// Simulated run length.
    pub sim: SimDuration,
    /// Jitter/churn seed.
    pub seed: u64,
    /// Two-level sharded dispatch: nodes per shard (`None` = flat
    /// O(nodes) placement scan).
    pub sharding: Option<usize>,
    /// First-level routing strategy when sharding is on:
    /// [`ShardRouter::Scan`] orders every shard (the classic default),
    /// [`ShardRouter::P2c`] probes two — O(1) in the shard count.
    pub shard_router: ShardRouter,
    /// Wait-queue retry order (FIFO is the default and the classic
    /// fleet semantics).
    pub queue_policy: QueuePolicy,
    /// Enable the fps re-pricing ladder (admit degraded instead of
    /// rejecting, upgrade back as capacity frees).
    pub repricing: bool,
    /// DMR threshold enabling migration off overloaded nodes
    /// (`None` = migration off).
    pub migration: Option<f64>,
    /// Overrides the admission utilisation bound (`None` keeps the
    /// default 0.9). Values at or above 1.0 deliberately admit past the
    /// fluid headroom — the overload regime migration studies need.
    pub admission_bound: Option<f64>,
    /// Run the fleet in event-driven mode ([`Fleet::run_events`]):
    /// exact release/departure boundaries, zero truncation, and the
    /// migration stall cost model. Off = the classic epoch path.
    pub event_driven: bool,
    /// Telemetry window (`None` = telemetry off, the zero-cost
    /// default). `Some(w)` enables windowed time-series and quantile
    /// sketches at interval `w`, bumping the export to schema v3
    /// without changing a single simulation decision.
    pub telemetry: Option<SimDuration>,
}

impl FleetScenario {
    /// The shared scenario skeleton: least-utilisation placement, the
    /// reference seed, flat dispatch, FIFO queueing, and every optional
    /// knob off. Constructors customise on top via struct update, so a
    /// new knob is added (and defaulted) in exactly one place.
    fn base(label: String, nodes: Vec<NodeSpec>, load: TenantLoad, sim_secs: u64) -> Self {
        FleetScenario {
            label,
            nodes,
            placement: PlacementPolicy::LeastUtilization,
            load,
            sim: SimDuration::from_secs(sim_secs),
            seed: 0x5672_5053,
            sharding: None,
            shard_router: ShardRouter::Scan,
            queue_policy: QueuePolicy::Fifo,
            repricing: false,
            migration: None,
            admission_bound: None,
            event_driven: false,
            telemetry: None,
        }
    }

    /// A homogeneous fleet of `n_nodes` paper GPUs (RTX 2080 Ti, SGPRS at
    /// `np = 3`, `os = 1.5`) serving `tenants` identical ResNet18 feeds
    /// at the paper's 30 fps.
    #[must_use]
    pub fn homogeneous(n_nodes: usize, tenants: usize, sim_secs: u64) -> Self {
        let nodes = (0..n_nodes)
            .map(|i| NodeSpec::sgprs(format!("gpu{i}"), GpuSpec::rtx_2080_ti()))
            .collect();
        FleetScenario::base(
            format!("homogeneous x{n_nodes} ({tenants} tenants)"),
            nodes,
            TenantLoad::Static {
                n: tenants,
                model: ModelKind::ResNet18,
                fps: crate::PAPER_FPS,
            },
            sim_secs,
        )
    }

    /// A heterogeneous four-GPU fleet — a full 2080 Ti plus 46-, 34-, and
    /// 23-SM devices — under churn with a skewed model mix (70 % ResNet18,
    /// 20 % MobileNet, 10 % ResNet34). The heavy tail is ResNet34 rather
    /// than VGG-16: at the paper's 30 fps a VGG-16 inference cannot meet
    /// its period on any node, so admission (correctly) never places it.
    #[must_use]
    pub fn heterogeneous_churn(sim_secs: u64) -> Self {
        FleetScenario::base(
            "heterogeneous x4 + churn".into(),
            heterogeneous_nodes(),
            TenantLoad::Churn(ChurnConfig {
                mean_interarrival: SimDuration::from_millis(250),
                min_lifetime: SimDuration::from_secs(2),
                max_lifetime: SimDuration::from_secs(10),
                mix: vec![
                    (ModelKind::ResNet18, 7),
                    (ModelKind::MobileNet, 2),
                    (ModelKind::ResNet34, 1),
                ],
                fps: crate::PAPER_FPS,
                stages: crate::PAPER_STAGES,
                ..ChurnConfig::default()
            }),
            sim_secs,
        )
    }

    /// A scale-out fleet of `n_nodes` (the 64–256 node regime where flat
    /// dispatch stops scaling): repeating 68/46/34-SM devices under brisk
    /// churn whose arrival rate grows with the fleet, dispatched through
    /// 8-node shards. Set [`FleetScenario::sharding`] to `None` for the
    /// flat-dispatch baseline.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero.
    #[must_use]
    pub fn scale_out(n_nodes: usize, sim_secs: u64) -> Self {
        assert!(n_nodes > 0, "a scale-out fleet needs nodes");
        let sizes = [68u32, 46, 34];
        let nodes = (0..n_nodes)
            .map(|i| {
                let sm = sizes[i % sizes.len()];
                let gpu = if sm == 68 {
                    GpuSpec::rtx_2080_ti()
                } else {
                    GpuSpec::synthetic(sm)
                };
                NodeSpec::sgprs(format!("gpu{i}-{sm}sm"), gpu)
            })
            .collect();
        // Offered load tracks fleet size: ~2 arrivals per node per
        // second keeps admission under pressure at every scale.
        let mean_interarrival =
            SimDuration::from_nanos((500_000_000 / n_nodes as u64).max(1_000_000));
        FleetScenario {
            sharding: Some(8),
            ..FleetScenario::base(
                format!("scale-out x{n_nodes} + churn [sharded/8]"),
                nodes,
                TenantLoad::Churn(ChurnConfig {
                    mean_interarrival,
                    min_lifetime: SimDuration::from_secs(2),
                    max_lifetime: SimDuration::from_secs(12),
                    mix: vec![
                        (ModelKind::ResNet18, 6),
                        (ModelKind::MobileNet, 3),
                        (ModelKind::ResNet34, 1),
                    ],
                    fps: crate::PAPER_FPS,
                    stages: crate::PAPER_STAGES,
                    ..ChurnConfig::default()
                }),
                sim_secs,
            )
        }
    }

    /// A metro-scale fleet: `n_nodes` heterogeneous devices (cycling
    /// 68/46/34/23-SM sizes) behind power-of-two-choices routing over
    /// 8-node shards — the 512–1024-node regime where even the ordered
    /// O(shards) scan becomes the arrival bottleneck. Load is
    /// [`TenantLoad::Metro`]: brisk base churn whose arrival rate grows
    /// with the fleet (≈ one arrival per node per two seconds, lifetimes
    /// 2–10 s) plus a synchronized burst wave of `n_nodes / 4` extra
    /// feeds every two seconds — rush-hour traffic that lands on the
    /// dispatcher at one instant. Every tenant carries a
    /// 24/15/10 fps re-pricing ladder and two seconds of queue patience;
    /// the queue drains earliest-deadline-first with re-pricing armed, so
    /// bursts degrade gracefully instead of rejecting. Runs in either
    /// engine (`with_event_driven` for the event core).
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero.
    #[must_use]
    pub fn metro_scale(n_nodes: usize, sim_secs: u64) -> Self {
        assert!(n_nodes > 0, "a metro fleet needs nodes");
        let sizes = [68u32, 46, 34, 23];
        let nodes = (0..n_nodes)
            .map(|i| {
                let sm = sizes[i % sizes.len()];
                let gpu = if sm == 68 {
                    GpuSpec::rtx_2080_ti()
                } else {
                    GpuSpec::synthetic(sm)
                };
                NodeSpec::sgprs(format!("gpu{i}-{sm}sm"), gpu)
            })
            .collect();
        // ≈ n/2 arrivals per second: the steady-state population settles
        // around 2–3 tenants per node, keeping every epoch busy without
        // drowning the simulation.
        let mean_interarrival =
            SimDuration::from_nanos((2_000_000_000 / n_nodes as u64).max(1_000_000));
        let base = ChurnConfig {
            mean_interarrival,
            min_lifetime: SimDuration::from_secs(2),
            max_lifetime: SimDuration::from_secs(10),
            mix: vec![
                (ModelKind::ResNet18, 6),
                (ModelKind::MobileNet, 3),
                (ModelKind::ResNet34, 1),
            ],
            fps: crate::PAPER_FPS,
            stages: crate::PAPER_STAGES,
            fps_ladder: vec![24.0, 15.0, 10.0],
            max_wait: Some(SimDuration::from_secs(2)),
        };
        FleetScenario {
            sharding: Some(8),
            shard_router: ShardRouter::P2c,
            queue_policy: QueuePolicy::EarliestDeadline,
            repricing: true,
            ..FleetScenario::base(
                format!("metro-scale x{n_nodes} churn+bursts [p2c/8]"),
                nodes,
                TenantLoad::Metro {
                    base,
                    burst_every: SimDuration::from_secs(2),
                    burst_size: (n_nodes / 4).max(1),
                },
                sim_secs,
            )
        }
    }

    /// An overload burst over a small heterogeneous fleet: arrivals come
    /// several times faster than the two nodes can absorb, every tenant
    /// carries a 30→24→15→10 fps re-pricing ladder and a two-second
    /// queue patience, and lifetimes are short enough that capacity keeps
    /// freeing (so upgrades happen). The constructor returns the
    /// *FIFO-reject baseline* (ladder and patience present but unused:
    /// re-pricing off, FIFO order); contrast it with
    /// `.with_queue(QueuePolicy::EarliestDeadline, true)`, which serves
    /// the same trace with deadline-aware ordering and the ladder armed —
    /// the regime where SGPRS's zero-cost partition switch pays off as a
    /// strictly lower eventual rejection rate.
    #[must_use]
    pub fn overload_burst(sim_secs: u64) -> Self {
        FleetScenario::base(
            "overload burst x2".into(),
            vec![
                NodeSpec::sgprs("gpu0-68sm", GpuSpec::rtx_2080_ti()),
                NodeSpec::sgprs("gpu1-34sm", GpuSpec::synthetic(34)),
            ],
            TenantLoad::Churn(ChurnConfig {
                mean_interarrival: SimDuration::from_millis(50),
                min_lifetime: SimDuration::from_secs(2),
                max_lifetime: SimDuration::from_secs(5),
                mix: vec![(ModelKind::ResNet18, 8), (ModelKind::MobileNet, 2)],
                fps: crate::PAPER_FPS,
                stages: crate::PAPER_STAGES,
                fps_ladder: vec![24.0, 15.0, 10.0],
                max_wait: Some(SimDuration::from_secs(2)),
            }),
            sim_secs,
        )
    }

    /// The event-vs-epoch contrast: three paper GPUs, one of them
    /// running the naive partitioner, admission deliberately at the full
    /// fluid bound (1.0), and a static population heavy enough that the
    /// naive node — whose sequential execution and partition-switch tax
    /// admission cannot see — runs hot while the SGPRS nodes keep
    /// headroom. With migration armed, the epoch path sheds load once
    /// per epoch boundary (and truncates every in-flight job it cuts),
    /// while the event-driven variant
    /// ([`FleetScenario::with_event_driven`]) migrates at the exact
    /// job-release boundary that crossed the threshold and pays the
    /// explicit state-transfer stall — same trace, same rejections
    /// (none), lower DMR, zero truncation.
    #[must_use]
    pub fn event_vs_epoch(sim_secs: u64) -> Self {
        FleetScenario {
            migration: Some(0.1),
            admission_bound: Some(1.0),
            ..FleetScenario::base(
                "event vs epoch x3 (hot naive node)".into(),
                vec![
                    NodeSpec::sgprs("gpu0-naive", GpuSpec::rtx_2080_ti())
                        .with_scheduler(NodeScheduler::Naive),
                    NodeSpec::sgprs("gpu1", GpuSpec::rtx_2080_ti()),
                    NodeSpec::sgprs("gpu2", GpuSpec::rtx_2080_ti()),
                ],
                TenantLoad::Static {
                    n: 50,
                    model: ModelKind::ResNet18,
                    fps: crate::PAPER_FPS,
                },
                sim_secs,
            )
        }
    }

    /// Replaces the queue policy and re-pricing switch (for queueing
    /// comparisons; relabels like [`FleetScenario::with_placement`]).
    #[must_use]
    pub fn with_queue(mut self, policy: QueuePolicy, repricing: bool) -> Self {
        self.queue_policy = policy;
        self.repricing = repricing;
        let pricing = if repricing { "+repricing" } else { "" };
        self.label = format!("{} [{policy}{pricing}]", self.label);
        self
    }

    /// Enables migration off overloaded nodes at the given DMR
    /// threshold (relabels like [`FleetScenario::with_placement`]).
    #[must_use]
    pub fn with_migration(mut self, dmr_threshold: f64) -> Self {
        self.migration = Some(dmr_threshold);
        self.label = format!("{} [migration@{dmr_threshold}]", self.label);
        self
    }

    /// Switches the scenario to event-driven execution
    /// ([`Fleet::run_events`]) and relabels it.
    #[must_use]
    pub fn with_event_driven(mut self) -> Self {
        self.event_driven = true;
        self.label = format!("{} [event-driven]", self.label);
        self
    }

    /// Enables windowed telemetry (time-series + quantile sketches) at
    /// the given window. The label is deliberately untouched: telemetry
    /// observes a run, it does not define a new scenario.
    #[must_use]
    pub fn with_telemetry(mut self, window: SimDuration) -> Self {
        self.telemetry = Some(window);
        self
    }

    /// Replaces the shard routing strategy (for routing comparisons;
    /// only meaningful with [`FleetScenario::sharding`] set) and
    /// relabels like [`FleetScenario::with_placement`].
    #[must_use]
    pub fn with_shard_router(mut self, router: ShardRouter) -> Self {
        self.shard_router = router;
        self.label = format!("{} [router={router}]", self.label);
        self
    }

    /// Replaces the placement policy (for policy comparisons).
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self.label = format!("{} [{placement}]", self.label);
        self
    }

    /// Replaces the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the churn trace this scenario replays.
    #[must_use]
    pub fn trace(&self) -> ChurnTrace {
        match &self.load {
            TenantLoad::Static { n, model, fps } => ChurnTrace::static_population(
                (0..*n).map(|i| TenantSpec::new(format!("{}-{i}", model.name()), *model, *fps)),
            ),
            TenantLoad::Churn(cfg) => ChurnTrace::generate(cfg, self.sim, self.seed),
            TenantLoad::Metro {
                base,
                burst_every,
                burst_size,
            } => {
                let mut trace = ChurnTrace::generate(base, self.sim, self.seed);
                // Superimpose synchronized burst waves: `burst_size`
                // extra feeds landing at one instant, every
                // `burst_every`, each living out the base churn's
                // maximum lifetime (departures inside the horizon are
                // replayed; later ones simply never fire).
                let model = base.mix.first().map_or(ModelKind::ResNet18, |&(m, _)| m);
                let mut wave = 1u64;
                loop {
                    let at = SimTime::ZERO + burst_every.mul_f64(wave as f64);
                    if at.duration_since(SimTime::ZERO) >= self.sim {
                        break;
                    }
                    for i in 0..*burst_size {
                        let mut tenant = TenantSpec::new(
                            format!("burst-{wave}-{i}"),
                            model,
                            base.fps,
                        )
                        .with_stages(base.stages)
                        .with_fps_ladder(base.fps_ladder.clone());
                        tenant.max_wait = base.max_wait;
                        let name = tenant.name.clone();
                        trace.push(at, ChurnEvent::Arrival(tenant));
                        let departure = at + base.max_lifetime;
                        if departure.duration_since(SimTime::ZERO) < self.sim {
                            trace.push(departure, ChurnEvent::Departure(name));
                        }
                    }
                    wave += 1;
                }
                trace
            }
        }
    }

    /// The scenario's offered load as an [`ArrivalStream`]: lazily
    /// generated for [`TenantLoad::Churn`] (O(active-tenants) memory,
    /// byte-identical events to [`FleetScenario::trace`]), materialised
    /// for static populations and metro burst overlays (whose hand-built
    /// waves have no generator form).
    #[must_use]
    pub fn arrivals(&self) -> ArrivalStream {
        match &self.load {
            TenantLoad::Churn(cfg) => ArrivalStream::generate(cfg, self.sim, self.seed),
            TenantLoad::Static { .. } | TenantLoad::Metro { .. } => self.trace().into(),
        }
    }

    /// Whether [`FleetScenario::run`] drives the fleet from the lazy
    /// generator rather than a materialised trace.
    #[must_use]
    pub fn streams_arrivals(&self) -> bool {
        matches!(self.load, TenantLoad::Churn(_))
    }

    /// The scenario lowered to its [`FleetConfig`] — what
    /// [`FleetScenario::run`] constructs internally, exposed so callers
    /// that need the [`Fleet`] handle afterwards (the bench bins read
    /// [`Fleet::span_profile`] post-run) can build it themselves,
    /// optionally arming knobs the scenario does not model
    /// (e.g. [`FleetConfig::with_profiling`]).
    #[must_use]
    pub fn config(&self) -> FleetConfig {
        let mut cfg = FleetConfig::new(self.nodes.clone())
            .with_placement(self.placement)
            .with_seed(self.seed)
            .with_queue_policy(self.queue_policy);
        if self.repricing {
            cfg = cfg.with_repricing();
        }
        if let Some(shard_size) = self.sharding {
            cfg = match self.shard_router {
                ShardRouter::Scan => cfg.with_sharding(shard_size),
                ShardRouter::P2c => cfg.with_p2c_sharding(shard_size),
            };
        }
        if let Some(threshold) = self.migration {
            cfg = cfg.with_migration(threshold);
        }
        if let Some(bound) = self.admission_bound {
            cfg.admission.utilization_bound = bound;
        }
        if self.event_driven {
            cfg = cfg.with_event_driven();
        }
        if let Some(window) = self.telemetry {
            cfg = cfg.with_telemetry_window(window);
        }
        cfg
    }

    /// Runs the scenario and returns the fleet metrics (epoch-driven,
    /// or event-driven when [`FleetScenario::event_driven`] is set).
    /// Churn loads stream their arrivals ([`FleetScenario::arrivals`]);
    /// the metrics are byte-identical to replaying the materialised
    /// [`FleetScenario::trace`].
    #[must_use]
    pub fn run(&self) -> FleetMetrics {
        Fleet::new(self.config()).run_configured(self.arrivals(), self.sim)
    }
}

/// The heterogeneous reference fleet: one full 2080 Ti plus three
/// progressively smaller devices (46, 34, 23 SMs).
#[must_use]
pub fn heterogeneous_nodes() -> Vec<NodeSpec> {
    vec![
        NodeSpec::sgprs("gpu0-68sm", GpuSpec::rtx_2080_ti()),
        NodeSpec::sgprs("gpu1-46sm", GpuSpec::synthetic(46)),
        NodeSpec::sgprs("gpu2-34sm", GpuSpec::synthetic(34)),
        NodeSpec::sgprs("gpu3-23sm", GpuSpec::synthetic(23)).with_contexts(2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_fleet_scales_single_node_throughput() {
        let one = FleetScenario::homogeneous(1, 6, 2).run();
        let three = FleetScenario::homogeneous(3, 18, 2).run();
        assert!(three.total_fps > one.total_fps * 2.0, "one {one:?} three {three:?}");
    }

    #[test]
    fn heterogeneous_churn_scenario_runs_and_reports() {
        let m = FleetScenario::heterogeneous_churn(3).run();
        assert!(m.total_fps > 0.0);
        assert!(m.arrivals > 0);
        assert_eq!(m.nodes.len(), 4);
        let hist_total: u64 = m.utilization_histogram.iter().sum();
        assert!(hist_total > 0, "utilisation was sampled");
    }

    #[test]
    fn scale_out_scenario_runs_sharded_and_flat() {
        let sharded = FleetScenario::scale_out(64, 2);
        assert_eq!(sharded.nodes.len(), 64);
        assert_eq!(sharded.sharding, Some(8));
        let m = sharded.run();
        assert!(m.total_fps > 0.0);
        assert!(m.arrivals > 64, "brisk churn at scale: {m:?}");
        assert_eq!(m.nodes.len(), 64);
        // The flat baseline is the same scenario with routing disabled.
        let mut flat = sharded.clone();
        flat.sharding = None;
        assert_eq!(flat.trace(), sharded.trace(), "same offered load");
    }

    #[test]
    fn metro_scale_traces_superimpose_bursts_deterministically() {
        let s = FleetScenario::metro_scale(512, 4);
        assert_eq!(s.nodes.len(), 512);
        assert_eq!(s.sharding, Some(8));
        assert_eq!(s.shard_router, ShardRouter::P2c);
        assert_eq!(s.trace(), s.trace(), "same seed, same trace");
        let events = s.trace().into_sorted();
        let burst_arrivals = events
            .iter()
            .filter(|(_, e)| matches!(e, ChurnEvent::Arrival(t) if t.name.starts_with("burst-")))
            .count();
        // Sim 4 s, a wave at 2 s of n/4 = 128 feeds.
        assert_eq!(burst_arrivals, 128, "one wave inside the horizon");
        let base_arrivals = events
            .iter()
            .filter(|(_, e)| matches!(e, ChurnEvent::Arrival(_)))
            .count()
            - burst_arrivals;
        assert!(base_arrivals > 256, "brisk base churn: {base_arrivals}");
    }

    #[test]
    fn overload_burst_repricing_contrast_shares_the_trace() {
        let fifo = FleetScenario::overload_burst(3);
        let smart = FleetScenario::overload_burst(3)
            .with_queue(QueuePolicy::EarliestDeadline, true);
        assert_eq!(fifo.trace(), smart.trace(), "same offered load");
        assert!(smart.label.contains("earliest-deadline+repricing"));
        let fifo_m = fifo.run();
        let smart_m = smart.run();
        assert!(fifo_m.rejected > 0, "the burst must overload: {fifo_m:?}");
        assert_eq!(fifo_m.degraded, 0, "baseline never re-prices");
        assert!(smart_m.degraded > 0, "the ladder absorbs overload: {smart_m:?}");
    }

    #[test]
    fn event_vs_epoch_scenario_contrasts_the_modes() {
        let epoch = FleetScenario::event_vs_epoch(4);
        let event = FleetScenario::event_vs_epoch(4).with_event_driven();
        assert!(event.label.contains("event-driven"));
        assert_eq!(epoch.trace(), event.trace(), "same offered load");
        let epoch_m = epoch.run();
        let event_m = event.run();
        assert_eq!(event_m.truncated_jobs, 0, "{event_m:?}");
        assert!(epoch_m.truncated_jobs > 0, "{epoch_m:?}");
        assert_eq!(epoch_m.rejection_rate, event_m.rejection_rate);
        assert!(event_m.migrations > 0 && event_m.migration_stall_secs > 0.0);
    }

    #[test]
    fn placement_override_relabels() {
        let s = FleetScenario::homogeneous(2, 4, 1).with_placement(PlacementPolicy::BestFit);
        assert!(s.label.contains("best-fit"));
        assert_eq!(s.placement, PlacementPolicy::BestFit);
    }

    #[test]
    fn telemetry_knob_attaches_a_v3_report_without_changing_decisions() {
        let base = FleetScenario::overload_burst(2).run();
        let telem = FleetScenario::overload_burst(2)
            .with_telemetry(SimDuration::from_millis(250))
            .run();
        assert_eq!(base.schema_version, sgprs_cluster::BASE_SCHEMA_VERSION);
        assert_eq!(telem.schema_version, sgprs_cluster::METRICS_SCHEMA_VERSION);
        let report = telem.telemetry.as_ref().expect("telemetry attached");
        assert!(!report.windows.is_empty());
        // Observation never steers: every decision counter matches.
        assert_eq!(base.arrivals, telem.arrivals);
        assert_eq!(base.rejected, telem.rejected);
        assert_eq!(base.degraded, telem.degraded);
        assert_eq!(base.total_fps, telem.total_fps);
    }

    #[test]
    fn static_trace_has_one_arrival_per_tenant() {
        let s = FleetScenario::homogeneous(2, 5, 1);
        assert_eq!(s.trace().len(), 5);
    }
}
