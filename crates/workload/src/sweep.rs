//! Task-count sweeps: one scenario evaluated at many task counts.
//!
//! Figures 3 and 4 plot total FPS and DMR against the number of tasks.
//! [`run_sweep`] produces that curve for one scenario; [`run_sweeps`]
//! fans several scenarios out over worker threads.

use crate::ScenarioSpec;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sgprs_core::RunMetrics;

/// One point of a sweep curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Number of concurrent tasks.
    pub tasks: usize,
    /// Total frames per second achieved.
    pub total_fps: f64,
    /// Deadline-miss rate in `[0, 1]`.
    pub dmr: f64,
    /// Raw released/completed/missed counters for deeper analysis.
    pub released: u64,
    /// Completed jobs inside the window.
    pub completed: u64,
    /// Late completions plus skipped releases.
    pub missed: u64,
}

impl SweepPoint {
    /// Builds a point from run metrics.
    #[must_use]
    pub fn from_metrics(tasks: usize, m: &RunMetrics) -> Self {
        SweepPoint {
            tasks,
            total_fps: m.total_fps,
            dmr: m.dmr,
            released: m.released,
            completed: m.completed,
            missed: m.late + m.skipped,
        }
    }
}

/// A full sweep curve for one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSeries {
    /// Curve label (from the scenario).
    pub label: String,
    /// Points in ascending task count.
    pub points: Vec<SweepPoint>,
}

impl SweepSeries {
    /// The paper's *pivot point*: the largest task count handled without a
    /// single deadline miss. Returns 0 when even one task misses.
    #[must_use]
    pub fn pivot_point(&self) -> usize {
        let mut pivot = 0;
        for p in &self.points {
            if p.missed == 0 {
                pivot = pivot.max(p.tasks);
            } else {
                break;
            }
        }
        pivot
    }

    /// FPS at the largest task count in the sweep (the right edge of the
    /// figures, where the paper quotes its plateau numbers).
    #[must_use]
    pub fn final_fps(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.total_fps)
    }

    /// Peak FPS across the sweep.
    #[must_use]
    pub fn peak_fps(&self) -> f64 {
        self.points.iter().fold(0.0, |acc, p| acc.max(p.total_fps))
    }

    /// DMR at the largest task count.
    #[must_use]
    pub fn final_dmr(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.dmr)
    }
}

/// Runs one scenario at every task count in `task_counts` (sequentially).
#[must_use]
pub fn run_sweep(scenario: &ScenarioSpec, task_counts: &[usize]) -> SweepSeries {
    let points = task_counts
        .iter()
        .map(|&n| SweepPoint::from_metrics(n, &scenario.run(n)))
        .collect();
    SweepSeries {
        label: scenario.label.clone(),
        points,
    }
}

/// Runs several scenarios over the same task counts, parallelising across
/// (scenario, task-count) pairs with scoped worker threads.
///
/// Results are returned in the scenarios' input order with points sorted
/// by task count, so output is deterministic regardless of thread timing.
#[must_use]
pub fn run_sweeps(scenarios: &[ScenarioSpec], task_counts: &[usize]) -> Vec<SweepSeries> {
    let jobs: Vec<(usize, usize)> = (0..scenarios.len())
        .flat_map(|s| task_counts.iter().map(move |&n| (s, n)))
        .collect();
    let next = Mutex::new(0usize);
    let results: Mutex<Vec<(usize, SweepPoint)>> = Mutex::new(Vec::with_capacity(jobs.len()));
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(jobs.len().max(1));
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let job = {
                    let mut guard = next.lock();
                    if *guard >= jobs.len() {
                        break;
                    }
                    let j = jobs[*guard];
                    *guard += 1;
                    j
                };
                let (scenario_idx, n) = job;
                let metrics = scenarios[scenario_idx].run(n);
                results
                    .lock()
                    .push((scenario_idx, SweepPoint::from_metrics(n, &metrics)));
            });
        }
    })
    .expect("sweep workers never panic");
    let mut series: Vec<SweepSeries> = scenarios
        .iter()
        .map(|s| SweepSeries {
            label: s.label.clone(),
            points: Vec::new(),
        })
        .collect();
    for (idx, point) in results.into_inner() {
        series[idx].points.push(point);
    }
    for s in &mut series {
        s.points.sort_by_key(|p| p.tasks);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scenario1_variants, SchedulerKind, ScenarioSpec};

    #[test]
    fn pivot_point_is_last_clean_count() {
        let series = SweepSeries {
            label: "x".into(),
            points: vec![
                SweepPoint {
                    tasks: 1,
                    total_fps: 30.0,
                    dmr: 0.0,
                    released: 30,
                    completed: 30,
                    missed: 0,
                },
                SweepPoint {
                    tasks: 2,
                    total_fps: 60.0,
                    dmr: 0.0,
                    released: 60,
                    completed: 60,
                    missed: 0,
                },
                SweepPoint {
                    tasks: 3,
                    total_fps: 80.0,
                    dmr: 0.1,
                    released: 90,
                    completed: 85,
                    missed: 9,
                },
            ],
        };
        assert_eq!(series.pivot_point(), 2);
        assert!((series.final_fps() - 80.0).abs() < 1e-9);
        assert!((series.peak_fps() - 80.0).abs() < 1e-9);
        assert!((series.final_dmr() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn pivot_point_zero_when_first_point_misses() {
        let series = SweepSeries {
            label: "x".into(),
            points: vec![SweepPoint {
                tasks: 1,
                total_fps: 10.0,
                dmr: 0.5,
                released: 30,
                completed: 20,
                missed: 15,
            }],
        };
        assert_eq!(series.pivot_point(), 0);
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree() {
        let s = ScenarioSpec::new(
            2,
            SchedulerKind::Sgprs {
                oversubscription: 1.5,
            },
            1,
        );
        let counts = [1, 3, 5];
        let seq = run_sweep(&s, &counts);
        let par = run_sweeps(std::slice::from_ref(&s), &counts);
        assert_eq!(seq, par[0], "determinism across execution strategies");
    }

    #[test]
    fn sweeps_keep_scenario_order() {
        let variants = scenario1_variants(1);
        let series = run_sweeps(&variants[..2], &[1]);
        assert_eq!(series[0].label, variants[0].label);
        assert_eq!(series[1].label, variants[1].label);
        assert_eq!(series[0].points.len(), 1);
    }
}
