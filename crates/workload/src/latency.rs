//! Response-time distribution experiments.
//!
//! The paper evaluates FPS and DMR; production users also care *how* late
//! the late frames are. This module runs one scenario point and extracts
//! a response-time CDF plus summary percentiles for each scheduler.

use crate::{ScenarioSpec, SchedulerKind};
use serde::{Deserialize, Serialize};
use sgprs_core::RunMetrics;
use sgprs_rt::SimDuration;

/// Summary of one scheduler's response-time behaviour at a load point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Curve label.
    pub label: String,
    /// Number of tasks.
    pub tasks: usize,
    /// Total FPS (context for the latency numbers).
    pub total_fps: f64,
    /// Median response.
    pub p50: SimDuration,
    /// 95th percentile response.
    pub p95: SimDuration,
    /// Worst observed response.
    pub max: SimDuration,
    /// Fraction of completed jobs that finished within the period.
    pub on_time_fraction: f64,
}

impl LatencySummary {
    /// Builds the summary from run metrics.
    #[must_use]
    pub fn from_metrics(label: &str, tasks: usize, m: &RunMetrics) -> Self {
        LatencySummary {
            label: label.to_owned(),
            tasks,
            total_fps: m.total_fps,
            p50: m.response_p50,
            p95: m.response_p95,
            max: m.response_max,
            on_time_fraction: if m.completed > 0 {
                m.met as f64 / m.completed as f64
            } else {
                0.0
            },
        }
    }
}

/// Runs every scheduler variant at one task count and summarises
/// response-time behaviour.
#[must_use]
pub fn compare_at(contexts: usize, tasks: usize, sim_secs: u64) -> Vec<LatencySummary> {
    let kinds = [
        SchedulerKind::Naive,
        SchedulerKind::Sgprs {
            oversubscription: 1.0,
        },
        SchedulerKind::Sgprs {
            oversubscription: 1.5,
        },
        SchedulerKind::Sgprs {
            oversubscription: 2.0,
        },
    ];
    kinds
        .iter()
        .map(|&kind| {
            let spec = ScenarioSpec::new(contexts, kind, sim_secs);
            let m = spec.run(tasks);
            LatencySummary::from_metrics(&spec.label, tasks, &m)
        })
        .collect()
}

/// Renders latency summaries as a fixed-width table.
#[must_use]
pub fn render(summaries: &[LatencySummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>6} {:>10} {:>12} {:>12} {:>12} {:>9}\n",
        "scheduler", "tasks", "FPS", "p50", "p95", "max", "on-time"
    ));
    for s in summaries {
        out.push_str(&format!(
            "{:<22} {:>6} {:>10.1} {:>12} {:>12} {:>12} {:>8.1}%\n",
            s.label,
            s.tasks,
            s.total_fps,
            s.p50.to_string(),
            s.p95.to_string(),
            s.max.to_string(),
            s.on_time_fraction * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_cover_all_variants() {
        let s = compare_at(2, 4, 1);
        assert_eq!(s.len(), 4);
        assert!(s[0].label.starts_with("naive"));
        assert!(s.iter().all(|x| x.tasks == 4));
    }

    #[test]
    fn light_load_is_all_on_time() {
        let s = compare_at(2, 2, 1);
        for x in &s {
            assert!(
                (x.on_time_fraction - 1.0).abs() < 1e-9,
                "{}: {:.3}",
                x.label,
                x.on_time_fraction
            );
            assert!(x.p50 <= x.p95);
            assert!(x.p95 <= x.max);
        }
    }

    #[test]
    fn render_is_one_row_per_summary() {
        let s = compare_at(2, 2, 1);
        let table = render(&s);
        assert_eq!(table.lines().count(), 1 + s.len());
        assert!(table.contains("on-time"));
    }

    #[test]
    fn overloaded_naive_has_worse_tail_than_sgprs() {
        let s = compare_at(2, 24, 2);
        let naive = &s[0];
        let best_sgprs = &s[3];
        assert!(
            naive.on_time_fraction <= best_sgprs.on_time_fraction + 1e-9,
            "naive on-time {:.2} vs sgprs {:.2}",
            naive.on_time_fraction,
            best_sgprs.on_time_fraction
        );
    }
}
