//! Workloads, experiment sweeps, and report rendering for the SGPRS
//! reproduction.
//!
//! This crate turns the schedulers in [`sgprs_core`] into the paper's
//! experiments:
//!
//! * [`ScenarioSpec`] — one curve of Figures 3/4: a scheduler variant
//!   (naive, or SGPRS at a given over-subscription) on a context pool,
//!   driven by `n` identical ResNet18@30fps tasks split into six stages.
//! * [`sweep`] — runs a scenario across task counts (in parallel) and
//!   extracts the paper's metrics: total FPS, DMR, and the *pivot point*.
//! * [`fig1`] — regenerates the speedup-gain analysis of Figure 1.
//! * [`fleet`] — multi-GPU fleet scenarios (heterogeneous devices, tenant
//!   churn, placement-policy comparisons) over `sgprs-cluster`.
//! * [`report`] — fixed-width tables and CSV for every figure.
//! * [`generator`] — synthetic task-set generators (UUniFast, model mixes)
//!   for extension experiments beyond the paper's identical-task setup.
//!
//! # Example
//!
//! ```
//! use sgprs_workload::{scenario1_variants, sweep::run_sweep};
//!
//! let variants = scenario1_variants(1); // 1-second simulations for the doctest
//! let series = run_sweep(&variants[1], &[1, 2]);
//! assert_eq!(series.points.len(), 2);
//! assert!(series.points[0].total_fps > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig1;
pub mod fleet;
pub mod generator;
pub mod latency;
pub mod report;
mod scenario;
pub mod sensitivity;
pub mod sweep;

pub use fleet::{FleetScenario, TenantLoad};
pub use scenario::{
    scenario1_variants, scenario2_variants, SchedulerKind, ScenarioSpec, PAPER_FPS,
    PAPER_STAGES,
};
