//! Synthetic task-set generators for extension experiments.
//!
//! The paper evaluates identical tasks only. These generators produce the
//! harder inputs a real deployment sees — mixed models and randomised
//! utilisations — while staying deterministic under a seed:
//!
//! * [`uunifast`] — the classic UUniFast algorithm: `n` task utilisations
//!   summing to a target total, unbiased over the simplex.
//! * [`mixed_model_tasks`] — a round-robin mix of the reference networks
//!   at a common frame rate.
//! * [`scaled_rate_tasks`] — identical networks at heterogeneous rates.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sgprs_core::{offline, CompiledTask, ContextPoolSpec};
use sgprs_dnn::{models, CostModel, Network};
use sgprs_rt::SimDuration;

/// UUniFast (Bini & Buttazzo, 2005): draws `n` utilisations that sum to
/// `total` with an unbiased distribution over the simplex.
///
/// Returns an empty vector for `n == 0`. `total` may exceed 1 for
/// multiprocessor-style targets.
#[must_use]
pub fn uunifast(n: usize, total: f64, seed: u64) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut utils = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        let exp = 1.0 / (n - i) as f64;
        let next = sum * rng.random_range(0.0..1.0f64).powf(exp);
        utils.push(sum - next);
        sum = next;
    }
    utils.push(sum);
    utils
}

/// Compiles a task from any network at the given frame rate.
#[must_use]
pub fn compile_model_task(
    name: &str,
    net: &Network,
    fps: f64,
    stages: usize,
    pool: &ContextPoolSpec,
) -> CompiledTask {
    let period = SimDuration::from_secs_f64(1.0 / fps);
    offline::compile_network_task(name, net, &CostModel::calibrated(), stages, period, pool)
        .expect("reference networks split into small stage counts")
}

/// A heterogeneous task set cycling through ResNet18, MobileNet, and
/// AlexNet at a common frame rate.
#[must_use]
pub fn mixed_model_tasks(n: usize, fps: f64, stages: usize, pool: &ContextPoolSpec) -> Vec<CompiledTask> {
    let nets = [
        models::resnet18(1, 224),
        models::mobilenet(1, 224),
        models::alexnet(1, 224),
    ];
    (0..n)
        .map(|i| {
            let net = &nets[i % nets.len()];
            compile_model_task(&format!("{}-{i}", net.name), net, fps, stages, pool)
        })
        .collect()
}

/// Identical ResNet18 tasks whose rates are scaled by UUniFast-drawn
/// utilisation shares: task `i` runs at `base_fps · n · u_i` frames per
/// second (so the *total* offered rate matches `n · base_fps`).
#[must_use]
pub fn scaled_rate_tasks(
    n: usize,
    base_fps: f64,
    stages: usize,
    pool: &ContextPoolSpec,
    seed: u64,
) -> Vec<CompiledTask> {
    let net = models::resnet18(1, 224);
    let shares = uunifast(n, 1.0, seed);
    shares
        .iter()
        .enumerate()
        .map(|(i, &u)| {
            // Clamp so no task drops below 1 fps or above 120 fps.
            let fps = (base_fps * n as f64 * u).clamp(1.0, 120.0);
            compile_model_task(&format!("resnet18-{i}"), &net, fps, stages, pool)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uunifast_sums_to_target() {
        for n in [1, 2, 5, 20] {
            let u = uunifast(n, 0.8, 42);
            let sum: f64 = u.iter().sum();
            assert!((sum - 0.8).abs() < 1e-9, "n={n}: sum {sum}");
            assert_eq!(u.len(), n);
        }
    }

    #[test]
    fn uunifast_values_are_positive() {
        let u = uunifast(50, 2.0, 7);
        assert!(u.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn uunifast_is_deterministic_per_seed() {
        assert_eq!(uunifast(10, 1.0, 1), uunifast(10, 1.0, 1));
        assert_ne!(uunifast(10, 1.0, 1), uunifast(10, 1.0, 2));
    }

    #[test]
    fn uunifast_empty_for_zero_tasks() {
        assert!(uunifast(0, 1.0, 0).is_empty());
    }

    #[test]
    fn mixed_models_cycle_architectures() {
        let pool = ContextPoolSpec::new(2, 1.0);
        let tasks = mixed_model_tasks(6, 30.0, 4, &pool);
        assert_eq!(tasks.len(), 6);
        assert!(tasks[0].spec.name.starts_with("resnet18"));
        assert!(tasks[1].spec.name.starts_with("mobilenet"));
        assert!(tasks[2].spec.name.starts_with("alexnet"));
        assert!(tasks.iter().all(|t| t.stage_count() == 4));
    }

    #[test]
    fn scaled_rates_stay_in_bounds() {
        let pool = ContextPoolSpec::new(2, 1.0);
        let tasks = scaled_rate_tasks(8, 30.0, 6, &pool, 3);
        for t in &tasks {
            let fps = 1.0 / t.spec.period.as_secs_f64();
            assert!((1.0..=120.0).contains(&fps), "fps {fps}");
        }
    }

    #[test]
    fn heterogeneous_tasks_have_distinct_wcets() {
        let pool = ContextPoolSpec::new(2, 1.0);
        let tasks = mixed_model_tasks(3, 30.0, 4, &pool);
        let wcets: Vec<_> = tasks.iter().map(|t| t.spec.total_stage_wcet()).collect();
        assert_ne!(wcets[0], wcets[1]);
        assert_ne!(wcets[1], wcets[2]);
    }
}
