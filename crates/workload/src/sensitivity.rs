//! Calibration-sensitivity analysis.
//!
//! The simulator's absolute numbers depend on calibrated constants (the
//! contention efficiency loss β, the naive partition-switch cost, the
//! execution-time jitter). A reproduction is only trustworthy if the
//! paper's *qualitative* conclusions survive perturbations of those
//! constants. This module sweeps them and re-checks the two key claims:
//!
//! 1. every SGPRS variant pivots later than the naive baseline, and
//! 2. SGPRS's saturated FPS stays above the naive plateau.

use crate::{SchedulerKind, ScenarioSpec};
use serde::{Deserialize, Serialize};
use sgprs_core::{NaiveConfig, NaiveScheduler, SgprsConfig, SgprsScheduler};
use sgprs_gpu_sim::ContentionModel;
use sgprs_rt::{SimDuration, SimTime};

/// Result of one perturbed comparison run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// Which knob was perturbed and to what value.
    pub knob: String,
    /// SGPRS total FPS at the probe load.
    pub sgprs_fps: f64,
    /// Naive total FPS at the probe load.
    pub naive_fps: f64,
    /// SGPRS miss rate.
    pub sgprs_dmr: f64,
    /// Naive miss rate.
    pub naive_dmr: f64,
    /// `true` when both paper claims hold under this perturbation.
    pub claims_hold: bool,
}

/// Probes one perturbed configuration at a saturating load (np=3,
/// os=1.5, 28 tasks).
#[must_use]
pub fn probe(
    knob: &str,
    contention: ContentionModel,
    switch_ns: f64,
    sim_secs: u64,
) -> SensitivityPoint {
    let spec = ScenarioSpec::new(
        3,
        SchedulerKind::Sgprs {
            oversubscription: 1.5,
        },
        sim_secs,
    );
    let tasks = spec.compile_tasks(28);
    let end = SimTime::ZERO + SimDuration::from_secs(sim_secs);

    let mut sgprs_cfg = SgprsConfig::new(spec.pool());
    sgprs_cfg.contention = contention;
    let sgprs = SgprsScheduler::new(sgprs_cfg, tasks.clone()).run(end);

    let mut naive_cfg = NaiveConfig::new(3);
    naive_cfg.contention = contention;
    naive_cfg.partition_switch_ns = switch_ns;
    let naive = NaiveScheduler::new(naive_cfg, tasks).run(end);

    let claims_hold = sgprs.total_fps > naive.total_fps && sgprs.dmr < naive.dmr;
    SensitivityPoint {
        knob: knob.to_owned(),
        sgprs_fps: sgprs.total_fps,
        naive_fps: naive.total_fps,
        sgprs_dmr: sgprs.dmr,
        naive_dmr: naive.dmr,
        claims_hold,
    }
}

/// Sweeps the calibrated constants over wide ranges.
#[must_use]
pub fn sweep(sim_secs: u64) -> Vec<SensitivityPoint> {
    let mut points = Vec::new();
    // Contention efficiency loss β: 0 (ideal) to 4x the calibrated value.
    for beta in [0.0, 0.02, 0.04, 0.08, 0.16] {
        let contention = ContentionModel {
            efficiency_loss: beta,
            ..ContentionModel::calibrated()
        };
        points.push(probe(
            &format!("efficiency_loss={beta}"),
            contention,
            450_000.0,
            sim_secs,
        ));
    }
    // Naive switch cost: zero to 4x.
    for switch_us in [0.0, 225.0, 450.0, 900.0, 1_800.0] {
        points.push(probe(
            &format!("switch_cost={switch_us}us"),
            ContentionModel::calibrated(),
            switch_us * 1e3,
            sim_secs,
        ));
    }
    // Jitter: none to 4x.
    for jitter in [0.0, 0.03, 0.06, 0.12, 0.24] {
        let contention = ContentionModel {
            contention_jitter: jitter,
            ..ContentionModel::calibrated()
        };
        points.push(probe(
            &format!("contention_jitter={jitter}"),
            contention,
            450_000.0,
            sim_secs,
        ));
    }
    points
}

/// Renders the sensitivity table.
#[must_use]
pub fn render(points: &[SensitivityPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>10} {:>10} {:>9} {:>9} {:>7}\n",
        "perturbation", "SGPRS fps", "naive fps", "SGPRS dmr", "naive dmr", "holds"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<26} {:>10.1} {:>10.1} {:>8.1}% {:>8.1}% {:>7}\n",
            p.knob,
            p.sgprs_fps,
            p.naive_fps,
            p.sgprs_dmr * 100.0,
            p.naive_dmr * 100.0,
            if p.claims_hold { "yes" } else { "NO" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold_at_the_calibrated_point() {
        let p = probe("calibrated", ContentionModel::calibrated(), 250_000.0, 2);
        assert!(p.claims_hold, "{p:?}");
    }

    #[test]
    fn claims_hold_with_zero_switch_cost() {
        // Even a *free*-switching naive scheduler loses: the gap is not an
        // artefact of the switch-cost constant.
        let p = probe("no-switch", ContentionModel::calibrated(), 0.0, 2);
        assert!(p.claims_hold, "{p:?}");
    }

    #[test]
    fn claims_hold_under_ideal_contention() {
        let ideal_beta = ContentionModel {
            efficiency_loss: 0.0,
            ..ContentionModel::calibrated()
        };
        let p = probe("ideal", ideal_beta, 450_000.0, 2);
        assert!(p.claims_hold, "{p:?}");
    }

    #[test]
    fn render_flags_every_point() {
        let points = vec![probe("x", ContentionModel::calibrated(), 450_000.0, 1)];
        let table = render(&points);
        assert!(table.contains("x"));
        assert!(table.contains("yes") || table.contains("NO"));
    }
}
