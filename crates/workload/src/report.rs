//! Report rendering: fixed-width tables and CSV for every figure.

use crate::fig1::SpeedupCurvePoints;
use crate::sweep::SweepSeries;

/// Renders Figure 1 as a fixed-width table: one row per SM count, one
/// column per curve.
#[must_use]
pub fn fig1_table(curves: &[SpeedupCurvePoints]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>5}", "SMs"));
    for c in curves {
        out.push_str(&format!("  {:>22}", c.label));
    }
    out.push('\n');
    let rows = curves.first().map_or(0, |c| c.points.len());
    for i in 0..rows {
        out.push_str(&format!("{:>5}", curves[0].points[i].0));
        for c in curves {
            out.push_str(&format!("  {:>21.2}x", c.points[i].1));
        }
        out.push('\n');
    }
    out
}

/// Renders Figure 1 as CSV (`sms,label,speedup`).
#[must_use]
pub fn fig1_csv(curves: &[SpeedupCurvePoints]) -> String {
    let mut out = String::from("sms,operation,speedup\n");
    for c in curves {
        for &(m, s) in &c.points {
            out.push_str(&format!("{m},{},{s:.4}\n", c.label));
        }
    }
    out
}

/// Which metric of a sweep a table shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMetric {
    /// Total frames per second (Figures 3a / 4a).
    TotalFps,
    /// Deadline-miss rate (Figures 3b / 4b).
    Dmr,
}

/// Renders a sweep as a fixed-width table: one row per task count, one
/// column per series.
#[must_use]
pub fn sweep_table(series: &[SweepSeries], metric: SweepMetric) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>6}", "tasks"));
    for s in series {
        out.push_str(&format!("  {:>18}", s.label));
    }
    out.push('\n');
    let rows = series.first().map_or(0, |s| s.points.len());
    for i in 0..rows {
        out.push_str(&format!("{:>6}", series[0].points[i].tasks));
        for s in series {
            let p = &s.points[i];
            match metric {
                SweepMetric::TotalFps => out.push_str(&format!("  {:>18.1}", p.total_fps)),
                SweepMetric::Dmr => out.push_str(&format!("  {:>17.1}%", p.dmr * 100.0)),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a sweep as CSV (`tasks,label,total_fps,dmr`).
#[must_use]
pub fn sweep_csv(series: &[SweepSeries]) -> String {
    let mut out = String::from("tasks,scheduler,total_fps,dmr\n");
    for s in series {
        for p in &s.points {
            out.push_str(&format!(
                "{},{},{:.2},{:.4}\n",
                p.tasks, s.label, p.total_fps, p.dmr
            ));
        }
    }
    out
}

/// Summarises a scenario's series the way §V quotes them: pivot points,
/// plateau FPS, and the relative FPS drop of the naive baseline against
/// the best SGPRS variant.
#[must_use]
pub fn headline_summary(series: &[SweepSeries]) -> String {
    let mut out = String::new();
    let mut best_fps = 0.0f64;
    let mut naive_fps = None;
    for s in series {
        out.push_str(&format!(
            "{:<22} pivot point = {:>2} tasks, final FPS = {:>6.1}, final DMR = {:>5.1}%\n",
            s.label,
            s.pivot_point(),
            s.final_fps(),
            s.final_dmr() * 100.0
        ));
        if s.label.starts_with("naive") {
            naive_fps = Some(s.final_fps());
        } else {
            best_fps = best_fps.max(s.final_fps());
        }
    }
    if let Some(naive) = naive_fps {
        if best_fps > 0.0 {
            let drop = 100.0 * (1.0 - naive / best_fps);
            out.push_str(&format!(
                "naive FPS drop vs best SGPRS variant: {drop:.0}% ({naive:.0} vs {best_fps:.0} fps)\n"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepPoint;

    fn series(label: &str, fps: &[f64], missed: &[u64]) -> SweepSeries {
        SweepSeries {
            label: label.into(),
            points: fps
                .iter()
                .zip(missed)
                .enumerate()
                .map(|(i, (&f, &m))| SweepPoint {
                    tasks: i + 1,
                    total_fps: f,
                    dmr: if m > 0 { 0.2 } else { 0.0 },
                    released: 100,
                    completed: 90,
                    missed: m,
                })
                .collect(),
        }
    }

    #[test]
    fn fig1_table_has_header_and_rows() {
        let curves = crate::fig1::generate();
        let table = fig1_table(&curves);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 1 + crate::fig1::SM_POINTS.len());
        assert!(lines[0].contains("convolution"));
        assert!(lines[1].trim_start().starts_with('1'));
    }

    #[test]
    fn fig1_csv_is_well_formed() {
        let curves = crate::fig1::generate();
        let csv = fig1_csv(&curves);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "sms,operation,speedup");
        assert_eq!(
            lines.len(),
            1 + curves.len() * crate::fig1::SM_POINTS.len()
        );
        assert!(lines[1..].iter().all(|l| l.split(',').count() == 3));
    }

    #[test]
    fn sweep_tables_render_both_metrics() {
        let s = [series("naive (np=2)", &[30.0, 55.0], &[0, 10])];
        let fps = sweep_table(&s, SweepMetric::TotalFps);
        assert!(fps.contains("30.0"));
        let dmr = sweep_table(&s, SweepMetric::Dmr);
        assert!(dmr.contains("20.0%"));
        assert!(dmr.contains("0.0%"));
    }

    #[test]
    fn headline_reports_drop_vs_best() {
        let s = [
            series("naive (np=2)", &[30.0, 60.0, 62.0], &[0, 5, 20]),
            series("SGPRS 1.5 (np=2)", &[30.0, 60.0, 100.0], &[0, 0, 3]),
        ];
        let text = headline_summary(&s);
        assert!(text.contains("pivot point =  1"), "naive pivots at 1:\n{text}");
        assert!(text.contains("pivot point =  2"), "sgprs pivots at 2:\n{text}");
        assert!(text.contains("38%"), "62 vs 100 fps is a 38% drop:\n{text}");
    }

    #[test]
    fn sweep_csv_round_trips_counts() {
        let s = [series("a", &[1.0], &[0]), series("b", &[2.0], &[1])];
        let csv = sweep_csv(&s);
        assert_eq!(csv.lines().count(), 1 + 2);
    }
}
