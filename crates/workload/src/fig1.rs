//! Figure 1: speedup gain for different operations in isolation.
//!
//! The paper measures ResNet18's constituent operations on an RTX 2080 Ti
//! while varying the number of SMs: convolution peaks at 32×, max pooling
//! at 14×, everything else stays below 7×, and the full network reaches
//! only 23×. This module regenerates those curves from the calibrated
//! speedup model and the ResNet18 work profile.

use serde::{Deserialize, Serialize};
use sgprs_dnn::{models, CostModel};
use sgprs_gpu_sim::{OpClass, SpeedupModel};

/// The SM counts sampled along the x-axis.
pub const SM_POINTS: [u32; 9] = [1, 2, 4, 8, 16, 24, 32, 48, 68];

/// One curve of Figure 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupCurvePoints {
    /// Curve label (operation name, or `"resnet18 (end-to-end)"`).
    pub label: String,
    /// `(sm_count, speedup)` samples.
    pub points: Vec<(u32, f64)>,
}

impl SpeedupCurvePoints {
    /// The speedup at the full 68-SM device (the figure's right edge).
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.points.last().map_or(0.0, |&(_, s)| s)
    }
}

/// Regenerates every curve of Figure 1: one per operation class plus the
/// end-to-end ResNet18 curve.
#[must_use]
pub fn generate() -> Vec<SpeedupCurvePoints> {
    let model = SpeedupModel::calibrated_rtx_2080_ti();
    let mut curves: Vec<SpeedupCurvePoints> = OpClass::ALL
        .iter()
        .map(|&op| SpeedupCurvePoints {
            label: op.label().to_owned(),
            points: SM_POINTS
                .iter()
                .map(|&m| (m, model.speedup(op, f64::from(m))))
                .collect(),
        })
        .collect();
    let net = models::resnet18(1, 224);
    let profile = net.work_profile(&CostModel::calibrated());
    curves.push(SpeedupCurvePoints {
        label: "resnet18 (end-to-end)".to_owned(),
        points: SM_POINTS
            .iter()
            .map(|&m| (m, profile.effective_speedup(&model, f64::from(m))))
            .collect(),
    });
    curves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve<'a>(curves: &'a [SpeedupCurvePoints], label: &str) -> &'a SpeedupCurvePoints {
        curves.iter().find(|c| c.label == label).expect("curve exists")
    }

    #[test]
    fn figure_1_endpoints_match_the_paper() {
        let curves = generate();
        assert!((curve(&curves, "convolution").peak() - 32.0).abs() < 0.5);
        assert!((curve(&curves, "max_pool").peak() - 14.0).abs() < 0.5);
        let resnet = curve(&curves, "resnet18 (end-to-end)").peak();
        assert!(
            (21.0..=25.0).contains(&resnet),
            "end-to-end ResNet18 should be ~23x, got {resnet:.1}"
        );
    }

    #[test]
    fn non_conv_non_pool_ops_stay_below_seven_x() {
        let curves = generate();
        for c in &curves {
            if c.label == "convolution"
                || c.label == "max_pool"
                || c.label.starts_with("resnet18")
            {
                continue;
            }
            assert!(
                c.peak() <= 7.0 + 1e-9,
                "{} exceeds the paper's 7x ceiling: {:.2}",
                c.label,
                c.peak()
            );
        }
    }

    #[test]
    fn all_curves_are_monotone_in_sms() {
        for c in generate() {
            for w in c.points.windows(2) {
                assert!(
                    w[1].1 >= w[0].1,
                    "{} speedup must not decrease with SMs",
                    c.label
                );
            }
        }
    }

    #[test]
    fn curves_start_at_one() {
        for c in generate() {
            let (m, s) = c.points[0];
            assert_eq!(m, 1);
            assert!((s - 1.0).abs() < 1e-9, "{}: s(1)={s}", c.label);
        }
    }

    #[test]
    fn convolution_dominates_every_other_curve() {
        let curves = generate();
        let conv = curve(&curves, "convolution");
        for c in &curves {
            if c.label == "convolution" {
                continue;
            }
            assert!(conv.peak() >= c.peak(), "conv must lead: {} at {:.1}", c.label, c.peak());
        }
    }
}
