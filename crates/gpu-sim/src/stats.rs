//! Device utilisation statistics.
//!
//! The engine exposes instantaneous state ([`crate::GpuEngine::snapshot`])
//! and cumulative busy fractions; this module adds a sampling recorder
//! that builds occupancy/residency profiles over a run — the data behind
//! "over-subscription harvests idle cycles" (§V of the paper).

use crate::{ContextId, GpuEngine};
use serde::{Deserialize, Serialize};
use sgprs_rt::{SimDuration, SimTime};

/// One utilisation sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// Sample instant.
    pub at: SimTime,
    /// Resident kernels across the whole device.
    pub resident: usize,
    /// Contexts with at least one resident kernel.
    pub busy_contexts: usize,
    /// Idle stream slots across the pool.
    pub idle_slots: usize,
}

/// Periodic sampler of device state.
///
/// Drive it from the simulation loop: call [`UtilizationRecorder::sample_if_due`]
/// whenever simulated time advances; it records at most one sample per
/// configured interval.
///
/// # Example
///
/// ```
/// use sgprs_gpu_sim::{GpuEngine, GpuSpec, ContextConfig, UtilizationRecorder};
/// use sgprs_rt::SimDuration;
///
/// let engine = GpuEngine::builder(GpuSpec::rtx_2080_ti())
///     .context(ContextConfig::new(34))
///     .build();
/// let mut rec = UtilizationRecorder::new(SimDuration::from_millis(1));
/// rec.sample_if_due(&engine);
/// assert_eq!(rec.samples().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct UtilizationRecorder {
    interval: SimDuration,
    next_due: SimTime,
    samples: Vec<UtilizationSample>,
}

impl UtilizationRecorder {
    /// Creates a recorder sampling at most once per `interval`.
    #[must_use]
    pub fn new(interval: SimDuration) -> Self {
        UtilizationRecorder {
            interval,
            next_due: SimTime::ZERO,
            samples: Vec::new(),
        }
    }

    /// Samples the engine if the interval elapsed since the last sample.
    /// Returns `true` when a sample was taken.
    pub fn sample_if_due(&mut self, engine: &GpuEngine) -> bool {
        let now = engine.now();
        if now < self.next_due {
            return false;
        }
        self.next_due = now + self.interval;
        let mut resident = 0;
        let mut busy_contexts = 0;
        let mut idle_slots = 0;
        for c in 0..engine.context_count() {
            let snap = engine.snapshot(ContextId(c));
            resident += snap.resident;
            if !snap.is_idle() {
                busy_contexts += 1;
            }
            idle_slots += snap.idle_high + snap.idle_low;
        }
        self.samples.push(UtilizationSample {
            at: now,
            resident,
            busy_contexts,
            idle_slots,
        });
        true
    }

    /// The recorded samples in chronological order.
    #[must_use]
    pub fn samples(&self) -> &[UtilizationSample] {
        &self.samples
    }

    /// Mean resident kernels over the recorded samples.
    #[must_use]
    pub fn mean_resident(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.resident as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Fraction of samples in which every context had work.
    #[must_use]
    pub fn all_busy_fraction(&self, context_count: usize) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let hits = self
            .samples
            .iter()
            .filter(|s| s.busy_contexts == context_count)
            .count();
        hits as f64 / self.samples.len() as f64
    }

    /// Histogram of resident-kernel counts: `hist[k]` = number of samples
    /// with exactly `k` resident kernels.
    #[must_use]
    pub fn residency_histogram(&self) -> Vec<usize> {
        let max = self.samples.iter().map(|s| s.resident).max().unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for s in &self.samples {
            hist[s.resident] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ContentionModel, ContextConfig, GpuSpec, KernelDesc, OpClass, StreamClass, WorkProfile};

    fn engine() -> GpuEngine {
        GpuEngine::builder(GpuSpec::rtx_2080_ti().with_launch_overhead_ns(0))
            .contention_model(ContentionModel::ideal())
            .context(ContextConfig::new(34))
            .context(ContextConfig::new(34))
            .build()
    }

    fn kernel() -> KernelDesc {
        KernelDesc::new("k", WorkProfile::single(OpClass::Convolution, 1e6))
    }

    #[test]
    fn respects_the_sampling_interval() {
        let mut e = engine();
        let mut rec = UtilizationRecorder::new(SimDuration::from_millis(1));
        assert!(rec.sample_if_due(&e));
        assert!(!rec.sample_if_due(&e), "same instant: not due again");
        e.advance_to(SimTime::ZERO + SimDuration::from_micros(500));
        assert!(!rec.sample_if_due(&e), "interval not elapsed");
        e.advance_to(SimTime::ZERO + SimDuration::from_millis(1));
        assert!(rec.sample_if_due(&e));
        assert_eq!(rec.samples().len(), 2);
    }

    #[test]
    fn counts_resident_and_busy() {
        let mut e = engine();
        e.submit(ContextId(0), StreamClass::High, kernel()).unwrap();
        e.submit(ContextId(0), StreamClass::Low, kernel()).unwrap();
        let mut rec = UtilizationRecorder::new(SimDuration::from_millis(1));
        rec.sample_if_due(&e);
        let s = rec.samples()[0];
        assert_eq!(s.resident, 2);
        assert_eq!(s.busy_contexts, 1);
        assert_eq!(s.idle_slots, 8 - 2);
    }

    #[test]
    fn histogram_and_means_agree() {
        let mut e = engine();
        let mut rec = UtilizationRecorder::new(SimDuration::from_nanos(1));
        rec.sample_if_due(&e); // 0 resident
        e.submit(ContextId(0), StreamClass::High, kernel()).unwrap();
        e.advance_to(SimTime::ZERO + SimDuration::from_nanos(10));
        rec.sample_if_due(&e); // 1 resident
        let hist = rec.residency_histogram();
        assert_eq!(hist[0], 1);
        assert_eq!(hist[1], 1);
        assert!((rec.mean_resident() - 0.5).abs() < 1e-12);
        assert!((rec.all_busy_fraction(2) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn empty_recorder_is_benign() {
        let rec = UtilizationRecorder::new(SimDuration::from_millis(1));
        assert_eq!(rec.mean_resident(), 0.0);
        assert_eq!(rec.all_busy_fraction(2), 0.0);
        assert_eq!(rec.residency_histogram(), vec![0usize; 1]);
        assert!(rec.samples().is_empty());
    }
}
