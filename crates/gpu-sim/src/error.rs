//! Error type for device-simulator operations.

use crate::StreamClass;
use core::fmt;

/// Errors returned by [`crate::GpuEngine`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GpuSimError {
    /// The referenced context does not exist in the pool.
    UnknownContext {
        /// The out-of-range context index.
        context: usize,
    },
    /// Every stream of the requested class in the context is busy.
    NoIdleStream {
        /// The context index.
        context: usize,
        /// The requested stream class.
        class: StreamClass,
    },
}

impl fmt::Display for GpuSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuSimError::UnknownContext { context } => {
                write!(f, "unknown context index {context}")
            }
            GpuSimError::NoIdleStream { context, class } => {
                write!(
                    f,
                    "no idle {class}-priority stream in context {context}"
                )
            }
        }
    }
}

impl std::error::Error for GpuSimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_context() {
        let e = GpuSimError::NoIdleStream {
            context: 2,
            class: StreamClass::High,
        };
        assert!(e.to_string().contains("context 2"));
        assert!(e.to_string().contains("high"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpuSimError>();
    }
}
