//! Global contention model for over-subscribed context pools.
//!
//! The paper's key experimental knob is *over-subscription*: the sum of SM
//! allocations across contexts may exceed the physical SM count (`os` =
//! 1.0, 1.5, 2.0). Why does that ever help? Because an SM allocation is a
//! *cap*, not a demand: a kernel whose speedup saturates at, say, 13× on a
//! 34-SM partition keeps roughly 13 SM-equivalents busy and leaves the
//! rest of its partition idle. Overlapping allocations let other contexts
//! soak up those idle cycles — that is exactly the utilisation SGPRS's
//! over-subscribed pools harvest (§V).
//!
//! The model therefore works in *occupancy* units: a resident kernel
//! running at speedup `s(m_eff)` occupies `s(m_eff)` SM-equivalents. Let
//! `A` be the total occupancy of all resident kernels and `M` the physical
//! SM count. While `A ≤ M` the device can deliver the demanded
//! throughput and nobody slows down. Past that point the hardware
//! time-multiplexes, which both scales everyone by `M/A` and wastes a
//! fraction of the machine on switching and cache pollution; execution
//! times also become noisier — the paper's "higher over-subscription
//! leads to poor predictability and increased resource contention".

use serde::{Deserialize, Serialize};

/// Parameters of the global contention model.
///
/// With `A` = total occupancy (SM-equivalents) of resident kernels and
/// `M` = physical SMs, the *overcommit ratio* is `x = A/M` and every
/// resident kernel's progress rate is multiplied by
///
/// ```text
/// factor(A) = (M / A) · 1 / (1 + efficiency_loss · (x − 1))      if A > M
/// factor(A) = 1                                                  otherwise
/// ```
///
/// Execution-time jitter (sampled per kernel at submit time) has half-width
/// `base_jitter + contention_jitter · (x − 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionModel {
    /// Multiplexing efficiency loss per unit of overcommit (β).
    pub efficiency_loss: f64,
    /// Relative execution-time jitter half-width with no overcommit.
    pub base_jitter: f64,
    /// Additional jitter half-width per unit of overcommit.
    pub contention_jitter: f64,
}

impl ContentionModel {
    /// The calibrated default used by all experiments.
    #[must_use]
    pub fn calibrated() -> Self {
        ContentionModel {
            efficiency_loss: 0.04,
            base_jitter: 0.01,
            contention_jitter: 0.06,
        }
    }

    /// A contention-free model (ideal multiplexing, no jitter) for unit
    /// tests and what-if analysis.
    #[must_use]
    pub fn ideal() -> Self {
        ContentionModel {
            efficiency_loss: 0.0,
            base_jitter: 0.0,
            contention_jitter: 0.0,
        }
    }

    /// The rate multiplier applied to every resident kernel when the
    /// resident set demands `occupancy` SM-equivalents of `total_sms`
    /// physical SMs.
    #[must_use]
    pub fn rate_factor(&self, occupancy: f64, total_sms: f64) -> f64 {
        if occupancy <= total_sms || occupancy <= 0.0 || total_sms <= 0.0 {
            return 1.0;
        }
        let x = occupancy / total_sms;
        (total_sms / occupancy) / (1.0 + self.efficiency_loss * (x - 1.0))
    }

    /// Jitter half-width at the given overcommit state.
    #[must_use]
    pub fn jitter_halfwidth(&self, occupancy: f64, total_sms: f64) -> f64 {
        let x = if total_sms > 0.0 && occupancy > total_sms {
            occupancy / total_sms
        } else {
            1.0
        };
        (self.base_jitter + self.contention_jitter * (x - 1.0)).max(0.0)
    }
}

impl Default for ContentionModel {
    fn default() -> Self {
        ContentionModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_capacity_means_no_slowdown() {
        let m = ContentionModel::calibrated();
        assert_eq!(m.rate_factor(68.0, 68.0), 1.0);
        assert_eq!(m.rate_factor(34.0, 68.0), 1.0);
        assert_eq!(m.rate_factor(0.0, 68.0), 1.0);
    }

    #[test]
    fn overcommit_scales_below_fair_share() {
        let m = ContentionModel::calibrated();
        let fair = 68.0 / 136.0;
        let got = m.rate_factor(136.0, 68.0);
        assert!(got < fair, "efficiency loss must bite: {got} >= {fair}");
        assert!(got > 0.0);
    }

    #[test]
    fn ideal_model_gives_exact_fair_share() {
        let m = ContentionModel::ideal();
        let got = m.rate_factor(136.0, 68.0);
        assert!((got - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rate_factor_monotone_in_overcommit() {
        let m = ContentionModel::calibrated();
        let mut prev = 1.0;
        for a in [68.0, 80.0, 102.0, 136.0, 204.0] {
            let f = m.rate_factor(a, 68.0);
            assert!(f <= prev + 1e-12, "factor must not increase: {a}");
            prev = f;
        }
    }

    #[test]
    fn aggregate_throughput_saturates_but_never_exceeds_device() {
        // occupancy · factor(occupancy) is the delivered SM-equivalents:
        // it must approach M from below and keep shrinking past it.
        let m = ContentionModel::calibrated();
        let delivered = |a: f64| a * m.rate_factor(a, 68.0);
        assert!(delivered(60.0) <= 68.0);
        assert!(delivered(80.0) < 68.0);
        assert!(delivered(136.0) < delivered(80.0));
    }

    #[test]
    fn jitter_grows_with_overcommit() {
        let m = ContentionModel::calibrated();
        let none = m.jitter_halfwidth(68.0, 68.0);
        let some = m.jitter_halfwidth(102.0, 68.0);
        let more = m.jitter_halfwidth(136.0, 68.0);
        assert!(none < some && some < more);
        assert!((none - m.base_jitter).abs() < 1e-12);
    }

    #[test]
    fn jitter_never_negative() {
        let m = ContentionModel {
            efficiency_loss: 0.0,
            base_jitter: 0.0,
            contention_jitter: -1.0,
        };
        assert_eq!(m.jitter_halfwidth(136.0, 68.0), 0.0);
    }
}
