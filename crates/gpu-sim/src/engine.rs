//! The discrete-event GPU engine.
//!
//! The engine is a *processor-sharing* simulator: every kernel resident on
//! the device progresses simultaneously at a rate determined by
//!
//! 1. its context's SM allocation (spatial partitioning),
//! 2. how many kernels currently share that context (stream concurrency,
//!    weighted by stream priority),
//! 3. the global contention factor when the context pool over-subscribes
//!    the physical SMs, and
//! 4. the kernel's own operation mix through the speedup curves.
//!
//! Whenever the resident set changes, rates are recomputed and completion
//! times re-derived — the classic event-driven fluid model. The engine is
//! passive: schedulers drive it by submitting kernels and asking it to
//! advance to the next completion or to a chosen instant (e.g. the next
//! job release).

use crate::{ContentionModel, GpuSimError, KernelDesc, SpeedupModel, TraceRecorder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sgprs_rt::{SimDuration, SimTime};

/// Identifier of a context in the engine's context pool.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ContextId(pub usize);

impl core::fmt::Display for ContextId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "cp{}", self.0)
    }
}

/// Identifier of a stream within a context.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct StreamId {
    /// Owning context.
    pub context: ContextId,
    /// Stream index within the context (0-based, high streams first).
    pub index: usize,
}

/// CUDA stream priority class. SGPRS provisions two streams of each class
/// per context (§IV-B3), so at most four stages run concurrently per
/// context.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum StreamClass {
    /// Low-priority hardware stream.
    Low,
    /// High-priority hardware stream.
    High,
}

impl core::fmt::Display for StreamClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            StreamClass::High => "high",
            StreamClass::Low => "low",
        })
    }
}

/// Static configuration of one context (spatial partition).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContextConfig {
    /// SMs allocated to the context (the MPS-style partition size).
    pub sm_alloc: u32,
    /// Number of high-priority streams (paper: 2).
    pub high_streams: usize,
    /// Number of low-priority streams (paper: 2).
    pub low_streams: usize,
    /// Processor-sharing weight of a kernel on a high stream.
    pub high_weight: f64,
    /// Processor-sharing weight of a kernel on a low stream.
    pub low_weight: f64,
}

impl ContextConfig {
    /// A context with `sm_alloc` SMs and the paper's 2+2 stream layout.
    #[must_use]
    pub fn new(sm_alloc: u32) -> Self {
        ContextConfig {
            sm_alloc,
            high_streams: 2,
            low_streams: 2,
            high_weight: 2.0,
            low_weight: 1.0,
        }
    }

    /// Overrides the stream counts.
    #[must_use]
    pub fn with_streams(mut self, high: usize, low: usize) -> Self {
        self.high_streams = high;
        self.low_streams = low;
        self
    }

    /// Overrides the priority weights.
    #[must_use]
    pub fn with_weights(mut self, high: f64, low: f64) -> Self {
        self.high_weight = high;
        self.low_weight = low;
        self
    }

    /// Total stream slots (max concurrent kernels) in this context.
    #[must_use]
    pub fn total_streams(&self) -> usize {
        self.high_streams + self.low_streams
    }
}

/// Unique handle of a submitted kernel.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct KernelHandle(pub u64);

/// A kernel-completion event produced by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceEvent {
    /// The completed kernel.
    pub kernel: KernelHandle,
    /// Context it ran in.
    pub context: ContextId,
    /// Stream it occupied.
    pub stream: StreamId,
    /// Trace label of the kernel.
    pub label: String,
    /// Submission instant.
    pub submitted_at: SimTime,
    /// Completion instant.
    pub finished_at: SimTime,
}

/// Point-in-time view of a context, for scheduler heuristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContextSnapshot {
    /// The context's SM allocation.
    pub sm_alloc: u32,
    /// Kernels currently resident (running) in the context.
    pub resident: usize,
    /// Idle high-priority streams.
    pub idle_high: usize,
    /// Idle low-priority streams.
    pub idle_low: usize,
}

impl ContextSnapshot {
    /// `true` when no kernel is resident.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.resident == 0
    }
}

#[derive(Debug, Clone)]
struct RunningKernel {
    handle: KernelHandle,
    context: ContextId,
    stream: StreamId,
    class: StreamClass,
    desc: KernelDesc,
    /// Multiplicative execution-time jitter sampled at submit.
    jitter: f64,
    /// Fraction of the kernel still to execute, in [0, 1].
    remaining: f64,
    /// Current progress rate in fraction per nanosecond.
    rate: f64,
    submitted_at: SimTime,
}

#[derive(Debug, Clone)]
struct ContextState {
    config: ContextConfig,
    /// One slot per stream: the handle of the kernel occupying it.
    slots: Vec<Option<KernelHandle>>,
}

impl ContextState {
    fn idle_slot(&self, class: StreamClass) -> Option<usize> {
        let range = match class {
            StreamClass::High => 0..self.config.high_streams,
            StreamClass::Low => {
                self.config.high_streams..self.config.high_streams + self.config.low_streams
            }
        };
        range.into_iter().find(|&i| self.slots[i].is_none())
    }

    fn idle_count(&self, class: StreamClass) -> usize {
        let range = match class {
            StreamClass::High => 0..self.config.high_streams,
            StreamClass::Low => {
                self.config.high_streams..self.config.high_streams + self.config.low_streams
            }
        };
        range.into_iter().filter(|&i| self.slots[i].is_none()).count()
    }

    fn resident(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

/// The discrete-event GPU device simulator. See the module documentation for the algorithm details.
#[derive(Debug)]
pub struct GpuEngine {
    spec: crate::GpuSpec,
    speedup: SpeedupModel,
    contention: ContentionModel,
    contexts: Vec<ContextState>,
    running: Vec<RunningKernel>,
    now: SimTime,
    last_reflow_ns: f64,
    next_handle: u64,
    rng: SmallRng,
    trace: Option<TraceRecorder>,
    /// Cumulative busy nanoseconds per context (≥1 resident kernel).
    busy_ns: Vec<f64>,
    completed_count: u64,
    /// Events already produced but not yet returned (simultaneous
    /// completions split by [`GpuEngine::run_next`]).
    pending: Vec<DeviceEvent>,
}

/// Builder for [`GpuEngine`] (see `C-BUILDER`).
#[derive(Debug)]
pub struct GpuEngineBuilder {
    spec: crate::GpuSpec,
    speedup: SpeedupModel,
    contention: ContentionModel,
    contexts: Vec<ContextConfig>,
    seed: u64,
    trace: bool,
}

impl GpuEngineBuilder {
    /// Adds a context (spatial partition) to the pool.
    #[must_use]
    pub fn context(mut self, config: ContextConfig) -> Self {
        self.contexts.push(config);
        self
    }

    /// Adds `n` identical contexts.
    #[must_use]
    pub fn contexts(mut self, n: usize, config: ContextConfig) -> Self {
        for _ in 0..n {
            self.contexts.push(config);
        }
        self
    }

    /// Replaces the calibrated speedup model.
    #[must_use]
    pub fn speedup_model(mut self, model: SpeedupModel) -> Self {
        self.speedup = model;
        self
    }

    /// Replaces the calibrated contention model.
    #[must_use]
    pub fn contention_model(mut self, model: ContentionModel) -> Self {
        self.contention = model;
        self
    }

    /// Seeds the deterministic jitter RNG (default 0x5672_5053, "SGPRS").
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables timeline tracing.
    #[must_use]
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Builds the engine.
    #[must_use]
    pub fn build(self) -> GpuEngine {
        let contexts: Vec<ContextState> = self
            .contexts
            .into_iter()
            .map(|config| ContextState {
                slots: vec![None; config.total_streams()],
                config,
            })
            .collect();
        let busy_ns = vec![0.0; contexts.len()];
        GpuEngine {
            spec: self.spec,
            speedup: self.speedup,
            contention: self.contention,
            contexts,
            running: Vec::new(),
            now: SimTime::ZERO,
            last_reflow_ns: 0.0,
            next_handle: 0,
            rng: SmallRng::seed_from_u64(self.seed),
            trace: if self.trace {
                Some(TraceRecorder::new())
            } else {
                None
            },
            busy_ns,
            completed_count: 0,
            pending: Vec::new(),
        }
    }
}

impl GpuEngine {
    /// Starts building an engine for the given device.
    #[must_use]
    pub fn builder(spec: crate::GpuSpec) -> GpuEngineBuilder {
        GpuEngineBuilder {
            spec,
            speedup: SpeedupModel::calibrated_rtx_2080_ti(),
            contention: ContentionModel::calibrated(),
            contexts: Vec::new(),
            seed: 0x5672_5053,
            trace: false,
        }
    }

    /// The simulated device.
    #[must_use]
    pub fn spec(&self) -> &crate::GpuSpec {
        &self.spec
    }

    /// The speedup model in use.
    #[must_use]
    pub fn speedup_model(&self) -> &SpeedupModel {
        &self.speedup
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of contexts in the pool.
    #[must_use]
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// Number of kernels completed so far.
    #[must_use]
    pub fn completed_count(&self) -> u64 {
        self.completed_count
    }

    /// A snapshot of one context's occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    #[must_use]
    pub fn snapshot(&self, ctx: ContextId) -> ContextSnapshot {
        let c = &self.contexts[ctx.0];
        ContextSnapshot {
            sm_alloc: c.config.sm_alloc,
            resident: c.resident(),
            idle_high: c.idle_count(StreamClass::High),
            idle_low: c.idle_count(StreamClass::Low),
        }
    }

    /// Estimated isolated duration of `desc` in context `ctx`: the time the
    /// kernel would take if it were the only resident kernel device-wide.
    /// Schedulers use this for finish-time estimation and offline WCET
    /// profiling.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    #[must_use]
    pub fn estimate_isolated(&self, ctx: ContextId, desc: &KernelDesc) -> SimDuration {
        let sm = f64::from(self.contexts[ctx.0].config.sm_alloc);
        let ns = self.spec.launch_overhead_ns as f64
            + desc.extra_ns
            + desc.work.duration_ns_at(&self.speedup, sm);
        SimDuration::from_nanos(ns.round() as u64)
    }

    /// Submits a kernel to an idle stream of `class` in context `ctx`.
    ///
    /// # Errors
    ///
    /// * [`GpuSimError::UnknownContext`] if `ctx` is out of range.
    /// * [`GpuSimError::NoIdleStream`] if every stream of that class is
    ///   busy — schedulers must check [`GpuEngine::snapshot`] first.
    pub fn submit(
        &mut self,
        ctx: ContextId,
        class: StreamClass,
        desc: KernelDesc,
    ) -> Result<KernelHandle, GpuSimError> {
        let state = self
            .contexts
            .get(ctx.0)
            .ok_or(GpuSimError::UnknownContext { context: ctx.0 })?;
        let slot = state
            .idle_slot(class)
            .ok_or(GpuSimError::NoIdleStream {
                context: ctx.0,
                class,
            })?;

        // Progress everyone to `now` under the old rates before the
        // resident set changes.
        self.progress_to(self.now);

        let handle = KernelHandle(self.next_handle);
        self.next_handle += 1;

        // Jitter depends on the overcommit level at submit time.
        let occupancy = self.current_occupancy();
        let half = self
            .contention
            .jitter_halfwidth(occupancy, f64::from(self.spec.total_sms));
        let jitter = if half > 0.0 {
            (1.0 + self.rng.random_range(-1.0..1.0) * half).max(0.5)
        } else {
            1.0
        };

        self.contexts[ctx.0].slots[slot] = Some(handle);
        let stream = StreamId {
            context: ctx,
            index: slot,
        };
        if let Some(trace) = &mut self.trace {
            trace.begin(handle, &desc.label, ctx, stream, self.now);
        }
        self.running.push(RunningKernel {
            handle,
            context: ctx,
            stream,
            class,
            desc,
            jitter,
            remaining: 1.0,
            rate: 0.0,
            submitted_at: self.now,
        });
        self.recompute_rates();
        Ok(handle)
    }

    /// The instant of the next kernel completion, if any kernel is running.
    #[must_use]
    pub fn next_event_time(&self) -> Option<SimTime> {
        let ns = self
            .running
            .iter()
            .map(|k| self.completion_time_of(k))
            .fold(f64::INFINITY, f64::min);
        if ns.is_finite() {
            Some(SimTime::from_nanos(ns.min(u64::MAX as f64).ceil() as u64))
        } else {
            None
        }
    }

    /// Runs until the next completion and returns it, or `None` if the
    /// device is idle.
    pub fn run_next(&mut self) -> Option<DeviceEvent> {
        if !self.pending.is_empty() {
            return Some(self.pending.remove(0));
        }
        let t = self.next_event_time()?;
        let mut events = self.advance_to(t);
        debug_assert!(!events.is_empty(), "a completion was due at {t}");
        if events.len() > 1 {
            // Re-queue the extras by rolling time back is impossible;
            // instead we return the first and keep the rest pending.
            let rest = events.split_off(1);
            self.pending.extend(rest);
        }
        Some(events.remove(0))
    }

    /// Advances simulated time to `t`, returning every completion event in
    /// chronological order. `t` earlier than [`GpuEngine::now`] is a no-op
    /// that returns only pending events.
    pub fn advance_to(&mut self, t: SimTime) -> Vec<DeviceEvent> {
        let mut events: Vec<DeviceEvent> = std::mem::take(&mut self.pending);
        if t <= self.now {
            return events;
        }
        loop {
            let next = self
                .running
                .iter()
                .map(|k| self.completion_time_of(k))
                .fold(f64::INFINITY, f64::min);
            let target_ns = t.as_nanos() as f64;
            if next.is_finite() && next <= target_ns {
                let next_t = SimTime::from_nanos(next.ceil() as u64).max(self.now);
                self.progress_to(next_t);
                // Retire every kernel whose remaining work reached zero.
                let mut retired = Vec::new();
                let mut i = 0;
                while i < self.running.len() {
                    if self.running[i].remaining <= Self::EPSILON {
                        retired.push(self.running.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
                // Deterministic ordering for simultaneous completions.
                retired.sort_by_key(|k| k.handle);
                for k in retired {
                    self.contexts[k.context.0].slots[k.stream.index] = None;
                    self.completed_count += 1;
                    if let Some(trace) = &mut self.trace {
                        trace.end(k.handle, self.now);
                    }
                    events.push(DeviceEvent {
                        kernel: k.handle,
                        context: k.context,
                        stream: k.stream,
                        label: k.desc.label,
                        submitted_at: k.submitted_at,
                        finished_at: self.now,
                    });
                }
                self.recompute_rates();
            } else {
                self.progress_to(t);
                break;
            }
        }
        events
    }

    /// Runs the device until it is completely idle, returning all events.
    pub fn drain(&mut self) -> Vec<DeviceEvent> {
        let mut events = Vec::new();
        while let Some(t) = self.next_event_time() {
            events.extend(self.advance_to(t));
        }
        events.extend(std::mem::take(&mut self.pending));
        events
    }

    /// Fraction of time context `ctx` had at least one resident kernel,
    /// measured since simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    #[must_use]
    pub fn busy_fraction(&self, ctx: ContextId) -> f64 {
        let elapsed = self.now.as_nanos() as f64;
        if elapsed <= 0.0 {
            return 0.0;
        }
        (self.busy_ns[ctx.0] / elapsed).clamp(0.0, 1.0)
    }

    /// The trace recorder, if tracing was enabled at build time.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    const EPSILON: f64 = 1e-9;

    /// The effective SM share of a running kernel: its context's
    /// allocation split among resident kernels by stream-priority weight.
    fn m_eff_of(&self, k: &RunningKernel, weight_sum: &[f64]) -> f64 {
        let cfg = &self.contexts[k.context.0].config;
        let w = match k.class {
            StreamClass::High => cfg.high_weight,
            StreamClass::Low => cfg.low_weight,
        };
        let share = if weight_sum[k.context.0] > 0.0 {
            w / weight_sum[k.context.0]
        } else {
            1.0
        };
        f64::from(cfg.sm_alloc) * share
    }

    fn weight_sums(&self) -> Vec<f64> {
        let mut weight_sum = vec![0.0f64; self.contexts.len()];
        for k in &self.running {
            let cfg = &self.contexts[k.context.0].config;
            weight_sum[k.context.0] += match k.class {
                StreamClass::High => cfg.high_weight,
                StreamClass::Low => cfg.low_weight,
            };
        }
        weight_sum
    }

    /// Total occupancy demanded by the resident kernels, in SM-equivalents
    /// (a kernel at speedup `s` keeps `s` SMs' worth of throughput busy —
    /// the rest of its allocation idles and is up for grabs, which is what
    /// makes over-subscription profitable; see [`ContentionModel`]).
    fn current_occupancy(&self) -> f64 {
        let weight_sum = self.weight_sums();
        self.running
            .iter()
            .map(|k| {
                let m_eff = self.m_eff_of(k, &weight_sum);
                k.desc.work.effective_speedup(&self.speedup, m_eff)
            })
            .sum()
    }

    /// Moves all running kernels' progress forward to instant `t` under the
    /// currently set rates and updates busy-time accounting.
    fn progress_to(&mut self, t: SimTime) {
        let t_ns = t.as_nanos() as f64;
        let dt = t_ns - self.last_reflow_ns;
        if dt > 0.0 {
            for k in &mut self.running {
                k.remaining = (k.remaining - k.rate * dt).max(0.0);
            }
            for (i, c) in self.contexts.iter().enumerate() {
                if c.resident() > 0 {
                    self.busy_ns[i] += dt;
                }
            }
        }
        self.last_reflow_ns = t_ns;
        if t > self.now {
            self.now = t;
        }
    }

    /// Recomputes every running kernel's rate from the current resident
    /// set. Must be called after any submit/retire.
    fn recompute_rates(&mut self) {
        let total = f64::from(self.spec.total_sms);
        let weight_sum = self.weight_sums();
        let m_effs: Vec<f64> = self
            .running
            .iter()
            .map(|k| self.m_eff_of(k, &weight_sum))
            .collect();
        let occupancy: f64 = self
            .running
            .iter()
            .zip(&m_effs)
            .map(|(k, &m)| k.desc.work.effective_speedup(&self.speedup, m))
            .sum();
        let factor = self.contention.rate_factor(occupancy, total);
        let launch_ns = self.spec.launch_overhead_ns as f64;
        let speedup = &self.speedup;
        for (k, &m_eff) in self.running.iter_mut().zip(&m_effs) {
            let duration_ns = launch_ns
                + k.desc.extra_ns
                + k.desc.work.duration_ns_at(speedup, m_eff) * k.jitter;
            k.rate = if duration_ns > 0.0 {
                factor / duration_ns
            } else {
                f64::INFINITY
            };
        }
    }

    /// Absolute completion instant (ns) of a running kernel at its current
    /// rate.
    fn completion_time_of(&self, k: &RunningKernel) -> f64 {
        if k.rate <= 0.0 {
            return f64::INFINITY;
        }
        self.last_reflow_ns + k.remaining / k.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuSpec, OpClass, WorkProfile};

    fn quiet_spec() -> GpuSpec {
        GpuSpec::rtx_2080_ti().with_launch_overhead_ns(0)
    }

    fn conv_kernel(ns: f64) -> KernelDesc {
        KernelDesc::new("conv", WorkProfile::single(OpClass::Convolution, ns))
    }

    fn ideal_engine(contexts: &[u32]) -> GpuEngine {
        let mut b = GpuEngine::builder(quiet_spec())
            .contention_model(ContentionModel::ideal());
        for &sm in contexts {
            b = b.context(ContextConfig::new(sm));
        }
        b.build()
    }

    #[test]
    fn single_kernel_runs_for_its_isolated_duration() {
        let mut e = ideal_engine(&[68]);
        let desc = conv_kernel(1e6);
        let expected = e.estimate_isolated(ContextId(0), &desc);
        e.submit(ContextId(0), StreamClass::High, desc).unwrap();
        let ev = e.run_next().unwrap();
        let got = ev.finished_at.duration_since(ev.submitted_at);
        let diff = got.as_nanos().abs_diff(expected.as_nanos());
        assert!(diff <= 2, "expected {expected}, got {got}");
    }

    #[test]
    fn more_sms_finish_faster() {
        let run = |sms: u32| {
            let mut e = ideal_engine(&[sms]);
            e.submit(ContextId(0), StreamClass::High, conv_kernel(1e7))
                .unwrap();
            e.run_next().unwrap().finished_at
        };
        assert!(run(68) < run(34));
        assert!(run(34) < run(17));
    }

    #[test]
    fn two_kernels_in_one_context_share_sms() {
        let mut e = ideal_engine(&[68]);
        // Two identical kernels on equal-weight streams should each see
        // half the SMs and finish together, later than one alone would.
        let mut solo = ideal_engine(&[68]);
        solo.submit(ContextId(0), StreamClass::High, conv_kernel(1e7))
            .unwrap();
        let solo_t = solo.run_next().unwrap().finished_at;

        e.submit(ContextId(0), StreamClass::High, conv_kernel(1e7))
            .unwrap();
        e.submit(ContextId(0), StreamClass::High, conv_kernel(1e7))
            .unwrap();
        let evs = e.drain();
        assert_eq!(evs.len(), 2);
        assert!(evs[0].finished_at > solo_t);
        assert_eq!(evs[0].finished_at, evs[1].finished_at);
    }

    #[test]
    fn high_priority_stream_gets_larger_share() {
        let mut e = ideal_engine(&[68]);
        e.submit(ContextId(0), StreamClass::High, conv_kernel(1e7))
            .unwrap();
        e.submit(ContextId(0), StreamClass::Low, conv_kernel(1e7))
            .unwrap();
        let evs = e.drain();
        let high = evs.iter().find(|e| e.stream.index < 2).unwrap();
        let low = evs.iter().find(|e| e.stream.index >= 2).unwrap();
        assert!(
            high.finished_at < low.finished_at,
            "high stream must finish first"
        );
    }

    #[test]
    fn no_idle_stream_is_reported() {
        let mut e = ideal_engine(&[68]);
        for _ in 0..2 {
            e.submit(ContextId(0), StreamClass::High, conv_kernel(1e6))
                .unwrap();
        }
        let err = e
            .submit(ContextId(0), StreamClass::High, conv_kernel(1e6))
            .unwrap_err();
        assert!(matches!(err, GpuSimError::NoIdleStream { .. }));
        // Low class still has slots.
        assert!(e
            .submit(ContextId(0), StreamClass::Low, conv_kernel(1e6))
            .is_ok());
    }

    #[test]
    fn unknown_context_is_an_error() {
        let mut e = ideal_engine(&[68]);
        let err = e
            .submit(ContextId(5), StreamClass::High, conv_kernel(1e6))
            .unwrap_err();
        assert!(matches!(err, GpuSimError::UnknownContext { context: 5 }));
    }

    #[test]
    fn oversubscription_is_free_while_occupancy_fits() {
        // Two 68-SM contexts on a 68-SM device, one conv kernel each.
        // Each kernel occupies only s(68) = 32 SM-equivalents, so the
        // device can serve both at full speed: over-subscription harvests
        // the idle cycles a hard spatial split would waste (§V).
        let mut over = ideal_engine(&[68, 68]);
        over.submit(ContextId(0), StreamClass::High, conv_kernel(1e7))
            .unwrap();
        over.submit(ContextId(1), StreamClass::High, conv_kernel(1e7))
            .unwrap();
        let over_done = over.drain().last().unwrap().finished_at;

        // Same work on two half-GPU contexts: no overcommit, but each
        // kernel is capped at s(34) < s(68).
        let mut split = ideal_engine(&[34, 34]);
        split
            .submit(ContextId(0), StreamClass::High, conv_kernel(1e7))
            .unwrap();
        split
            .submit(ContextId(1), StreamClass::High, conv_kernel(1e7))
            .unwrap();
        let split_done = split.drain().last().unwrap().finished_at;
        assert!(
            over_done < split_done,
            "over-subscription should win while occupancy fits: {over_done} vs {split_done}"
        );
    }

    #[test]
    fn occupancy_overflow_triggers_contention() {
        // Saturate two 68-SM contexts with four conv kernels each:
        // occupancy = 8·s(17) ≈ 106 SM-equivalents > 68, so everyone is
        // throttled. The same saturated workload under a model with no
        // efficiency loss must finish strictly earlier than under the
        // lossy calibrated model — the loss is the price of overcommit.
        let run = |model: ContentionModel| {
            let mut e = GpuEngine::builder(quiet_spec())
                .contention_model(model)
                .context(ContextConfig::new(68))
                .context(ContextConfig::new(68))
                .build();
            for ctx in 0..2 {
                for class in [StreamClass::High, StreamClass::High, StreamClass::Low, StreamClass::Low] {
                    e.submit(ContextId(ctx), class, conv_kernel(1e7)).unwrap();
                }
            }
            e.drain().last().unwrap().finished_at
        };
        let ideal = run(ContentionModel::ideal());
        let lossy = run(ContentionModel {
            efficiency_loss: 0.5,
            base_jitter: 0.0,
            contention_jitter: 0.0,
        });
        assert!(lossy > ideal, "efficiency loss must slow the saturated pool");
    }

    #[test]
    fn oversubscription_wins_when_the_peer_context_is_idle() {
        // With 2× over-subscription, a context whose peer is idle enjoys
        // the whole GPU — this is where SGPRS's FPS gains come from.
        let mut over = ideal_engine(&[68, 68]);
        over.submit(ContextId(0), StreamClass::High, conv_kernel(1e7))
            .unwrap();
        let over_done = over.drain().last().unwrap().finished_at;

        let mut split = ideal_engine(&[34, 34]);
        split
            .submit(ContextId(0), StreamClass::High, conv_kernel(1e7))
            .unwrap();
        let split_done = split.drain().last().unwrap().finished_at;
        assert!(over_done < split_done);
    }

    #[test]
    fn advance_to_without_completions_just_moves_time() {
        let mut e = ideal_engine(&[68]);
        let evs = e.advance_to(SimTime::from_nanos(1_000));
        assert!(evs.is_empty());
        assert_eq!(e.now(), SimTime::from_nanos(1_000));
    }

    #[test]
    fn advance_to_past_is_a_no_op() {
        let mut e = ideal_engine(&[68]);
        e.advance_to(SimTime::from_nanos(1_000));
        let evs = e.advance_to(SimTime::from_nanos(500));
        assert!(evs.is_empty());
        assert_eq!(e.now(), SimTime::from_nanos(1_000));
    }

    #[test]
    fn rate_change_mid_flight_is_accounted() {
        // Kernel A runs alone for a while, then B joins; A must finish
        // later than isolated but earlier than if B had been there all
        // along.
        let mut e = ideal_engine(&[68]);
        let a = e
            .submit(ContextId(0), StreamClass::High, conv_kernel(1e7))
            .unwrap();
        let iso = e.estimate_isolated(ContextId(0), &conv_kernel(1e7));
        let half = SimTime::from_nanos(iso.as_nanos() / 2);
        e.advance_to(half);
        e.submit(ContextId(0), StreamClass::High, conv_kernel(1e7))
            .unwrap();
        let evs = e.drain();
        let a_done = evs.iter().find(|ev| ev.kernel == a).unwrap().finished_at;
        assert!(a_done > SimTime::ZERO + iso);
        assert!(a_done < SimTime::ZERO + iso * 2);
    }

    #[test]
    fn busy_fraction_tracks_idle_time() {
        let mut e = ideal_engine(&[68]);
        e.advance_to(SimTime::from_nanos(1_000_000));
        assert_eq!(e.busy_fraction(ContextId(0)), 0.0);
        e.submit(ContextId(0), StreamClass::High, conv_kernel(1e6))
            .unwrap();
        e.drain();
        assert!(e.busy_fraction(ContextId(0)) > 0.0);
        assert!(e.busy_fraction(ContextId(0)) < 1.0);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut e = GpuEngine::builder(quiet_spec())
                .seed(seed)
                .context(ContextConfig::new(68))
                .context(ContextConfig::new(68))
                .build();
            e.submit(ContextId(0), StreamClass::High, conv_kernel(1e7))
                .unwrap();
            e.submit(ContextId(1), StreamClass::High, conv_kernel(1e7))
                .unwrap();
            e.drain().last().unwrap().finished_at
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    #[test]
    fn snapshot_reflects_occupancy() {
        let mut e = ideal_engine(&[68]);
        let s = e.snapshot(ContextId(0));
        assert!(s.is_idle());
        assert_eq!(s.idle_high, 2);
        assert_eq!(s.idle_low, 2);
        e.submit(ContextId(0), StreamClass::High, conv_kernel(1e6))
            .unwrap();
        let s = e.snapshot(ContextId(0));
        assert_eq!(s.resident, 1);
        assert_eq!(s.idle_high, 1);
        assert_eq!(s.idle_low, 2);
    }

    #[test]
    fn extra_ns_lengthens_the_kernel() {
        let mut plain = ideal_engine(&[68]);
        plain
            .submit(ContextId(0), StreamClass::High, conv_kernel(1e6))
            .unwrap();
        let plain_done = plain.run_next().unwrap().finished_at;

        let mut taxed = ideal_engine(&[68]);
        taxed
            .submit(
                ContextId(0),
                StreamClass::High,
                conv_kernel(1e6).with_extra_ns(500_000.0),
            )
            .unwrap();
        let taxed_done = taxed.run_next().unwrap().finished_at;
        let diff = taxed_done.duration_since(plain_done);
        let err = diff.as_nanos().abs_diff(500_000);
        assert!(err <= 2, "extra 0.5ms expected, got {diff}");
    }

    #[test]
    fn completed_count_accumulates() {
        let mut e = ideal_engine(&[68]);
        for _ in 0..3 {
            e.submit(ContextId(0), StreamClass::High, conv_kernel(1e5))
                .unwrap();
            e.run_next().unwrap();
        }
        assert_eq!(e.completed_count(), 3);
    }
}
