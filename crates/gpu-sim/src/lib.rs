//! Discrete-event GPU device simulator for the SGPRS reproduction.
//!
//! The paper runs on an NVIDIA RTX 2080 Ti partitioned into CUDA contexts
//! (spatial partitioning à la MPS) each exposing prioritised CUDA streams
//! (temporal partitioning). This crate replaces that hardware with a
//! calibrated processor-sharing simulator:
//!
//! * [`GpuSpec`] — the device: number of SMs (68 for the 2080 Ti preset).
//! * [`SpeedupModel`] / [`SpeedupCurve`] — per-operation Amdahl speedup
//!   curves fitted to the paper's Figure 1 (convolution 32×, max-pool 14×,
//!   every other op ≤ 7× at 68 SMs).
//! * [`WorkProfile`] / [`KernelDesc`] — the unit of device work: a stage's
//!   mix of operation classes with per-class single-SM execution time.
//! * [`GpuEngine`] — the discrete-event engine: contexts with SM
//!   allocations, prioritised stream slots, weighted processor sharing
//!   within a context, and a global contention model when the context pool
//!   over-subscribes the physical SMs.
//! * [`TraceRecorder`] — optional timeline capture with Chrome-trace JSON
//!   export for debugging schedules visually.
//!
//! # Example
//!
//! ```
//! use sgprs_gpu_sim::{
//!     ContextConfig, ContextId, GpuEngine, GpuSpec, KernelDesc, OpClass, StreamClass,
//!     WorkProfile,
//! };
//!
//! let mut engine = GpuEngine::builder(GpuSpec::rtx_2080_ti())
//!     .context(ContextConfig::new(34))
//!     .context(ContextConfig::new(34))
//!     .build();
//! let work = WorkProfile::single(OpClass::Convolution, 1_000_000.0);
//! let k = engine
//!     .submit(ContextId(0), StreamClass::High, KernelDesc::new("conv", work))
//!     .expect("submit");
//! let event = engine.run_next().expect("one kernel in flight");
//! assert_eq!(event.kernel, k);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod contention;
mod engine;
mod error;
mod kernel;
mod spec;
mod speedup;
mod stats;
mod trace;

pub use contention::ContentionModel;
pub use engine::{
    ContextConfig, ContextId, ContextSnapshot, DeviceEvent, GpuEngine, GpuEngineBuilder,
    KernelHandle, StreamClass, StreamId,
};
pub use error::GpuSimError;
pub use kernel::{KernelDesc, WorkProfile, WorkSegment};
pub use spec::GpuSpec;
pub use speedup::{OpClass, SpeedupCurve, SpeedupModel};
pub use stats::{UtilizationRecorder, UtilizationSample};
pub use trace::{KernelSpan, TraceRecorder};
