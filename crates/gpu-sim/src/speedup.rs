//! Per-operation speedup curves calibrated to the paper's Figure 1.
//!
//! §III of the paper measures the speedup of ResNet18's constituent
//! operations as a function of SM count on an RTX 2080 Ti (68 SMs):
//! convolution peaks at 32×, max-pooling at 14×, and every other operation
//! stays below 7×; the full network reaches only 23× because the weakly
//! scaling layers dominate Amdahl-style.
//!
//! We model each operation class with an Amdahl curve
//! `s(m) = 1 / ((1 − p) + p/m)` and fit the parallel fraction `p` so that
//! `s(68)` reproduces the measured endpoint.

use serde::{Deserialize, Serialize};

/// Operation classes distinguished by the speedup analysis (Fig. 1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[non_exhaustive]
pub enum OpClass {
    /// 2-D convolution — the dominant, best-scaling ResNet18 operation.
    Convolution,
    /// Max pooling.
    MaxPool,
    /// Average pooling (global average pool in ResNet18).
    AvgPool,
    /// Batch normalisation.
    BatchNorm,
    /// Elementwise activation (ReLU).
    Activation,
    /// Elementwise residual addition.
    ElementwiseAdd,
    /// Fully connected / matrix–vector layer.
    Linear,
    /// Softmax / classification head bookkeeping.
    Softmax,
}

impl OpClass {
    /// Every class, in Figure-1 presentation order.
    pub const ALL: [OpClass; 8] = [
        OpClass::Convolution,
        OpClass::MaxPool,
        OpClass::AvgPool,
        OpClass::BatchNorm,
        OpClass::Activation,
        OpClass::ElementwiseAdd,
        OpClass::Linear,
        OpClass::Softmax,
    ];

    /// Short lowercase label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Convolution => "convolution",
            OpClass::MaxPool => "max_pool",
            OpClass::AvgPool => "avg_pool",
            OpClass::BatchNorm => "batch_norm",
            OpClass::Activation => "relu",
            OpClass::ElementwiseAdd => "add",
            OpClass::Linear => "linear",
            OpClass::Softmax => "softmax",
        }
    }
}

impl core::fmt::Display for OpClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// An Amdahl speedup curve `s(m) = 1 / ((1 − p) + p/m)`.
///
/// `p` is the parallelisable fraction of the operation's single-SM
/// execution time. For `m < 1` (a kernel squeezed below one SM by
/// processor sharing) the curve degrades linearly: `s(m) = m`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupCurve {
    parallel_fraction: f64,
}

impl SpeedupCurve {
    /// Creates a curve from a parallel fraction in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` or not finite.
    #[must_use]
    pub fn from_parallel_fraction(p: f64) -> Self {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "parallel fraction must be in [0,1], got {p}"
        );
        SpeedupCurve {
            parallel_fraction: p,
        }
    }

    /// Fits `p` so that `s(m_ref) == target` (e.g. 32× at 68 SMs).
    ///
    /// # Panics
    ///
    /// Panics if `target < 1`, `m_ref ≤ 1`, or the target exceeds the
    /// theoretical maximum speedup `m_ref`.
    #[must_use]
    pub fn fitted(target: f64, m_ref: f64) -> Self {
        assert!(target >= 1.0, "speedup target must be ≥ 1, got {target}");
        assert!(m_ref > 1.0, "reference SM count must exceed 1");
        assert!(
            target <= m_ref,
            "target {target} exceeds linear speedup at {m_ref} SMs"
        );
        // 1/target = (1-p) + p/m_ref  ⇒  p = (1 - 1/target) / (1 - 1/m_ref)
        let p = (1.0 - 1.0 / target) / (1.0 - 1.0 / m_ref);
        SpeedupCurve::from_parallel_fraction(p)
    }

    /// The fitted parallel fraction.
    #[must_use]
    pub fn parallel_fraction(self) -> f64 {
        self.parallel_fraction
    }

    /// Speedup at `m` SMs (fractional `m` allowed; `m ≤ 0` yields 0).
    #[must_use]
    pub fn speedup(self, m: f64) -> f64 {
        if m <= 0.0 {
            return 0.0;
        }
        if m < 1.0 {
            return m;
        }
        let p = self.parallel_fraction;
        1.0 / ((1.0 - p) + p / m)
    }

    /// Asymptotic speedup `1 / (1 − p)` (∞ for p = 1).
    #[must_use]
    pub fn asymptote(self) -> f64 {
        let serial = 1.0 - self.parallel_fraction;
        if serial <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / serial
        }
    }
}

/// A device-wide speedup model: one fitted curve per operation class.
///
/// # Example
///
/// ```
/// use sgprs_gpu_sim::{OpClass, SpeedupModel};
///
/// let model = SpeedupModel::calibrated_rtx_2080_ti();
/// let conv = model.speedup(OpClass::Convolution, 68.0);
/// assert!((conv - 32.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupModel {
    curves: Vec<(OpClass, SpeedupCurve)>,
    /// Reference SM count the calibration targets refer to.
    pub m_ref: f64,
}

/// Figure-1 calibration targets at 68 SMs: (operation, measured speedup).
///
/// Convolution 32× and max-pool 14× are stated explicitly in the paper;
/// "other operations failed to exceed 7×" pins the remaining classes to
/// plausible values at or below 7.
pub const FIG1_TARGETS: [(OpClass, f64); 8] = [
    (OpClass::Convolution, 32.0),
    (OpClass::MaxPool, 14.0),
    (OpClass::AvgPool, 7.0),
    (OpClass::BatchNorm, 6.5),
    (OpClass::Activation, 5.0),
    (OpClass::ElementwiseAdd, 5.5),
    (OpClass::Linear, 4.0),
    (OpClass::Softmax, 3.0),
];

impl SpeedupModel {
    /// The model calibrated to the paper's Figure 1 on the 68-SM 2080 Ti.
    #[must_use]
    pub fn calibrated_rtx_2080_ti() -> Self {
        Self::from_targets(&FIG1_TARGETS, 68.0)
    }

    /// Builds a model by fitting one curve per `(op, target_speedup)` pair
    /// at the reference SM count `m_ref`.
    ///
    /// # Panics
    ///
    /// Panics if any target is infeasible (see [`SpeedupCurve::fitted`]).
    #[must_use]
    pub fn from_targets(targets: &[(OpClass, f64)], m_ref: f64) -> Self {
        let curves = targets
            .iter()
            .map(|&(op, s)| (op, SpeedupCurve::fitted(s, m_ref)))
            .collect();
        SpeedupModel { curves, m_ref }
    }

    /// The curve for `op`; falls back to the slowest-scaling curve in the
    /// model for unknown classes so behaviour is conservative.
    #[must_use]
    pub fn curve(&self, op: OpClass) -> SpeedupCurve {
        self.curves
            .iter()
            .find(|(o, _)| *o == op)
            .map(|(_, c)| *c)
            .unwrap_or_else(|| {
                self.curves
                    .iter()
                    .map(|(_, c)| *c)
                    .min_by(|a, b| {
                        a.parallel_fraction()
                            .partial_cmp(&b.parallel_fraction())
                            .expect("fractions are finite")
                    })
                    .unwrap_or(SpeedupCurve::from_parallel_fraction(0.0))
            })
    }

    /// Speedup of `op` at `m` SMs.
    #[must_use]
    pub fn speedup(&self, op: OpClass, m: f64) -> f64 {
        self.curve(op).speedup(m)
    }

    /// Iterates over the calibrated `(op, curve)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, SpeedupCurve)> + '_ {
        self.curves.iter().copied()
    }
}

impl Default for SpeedupModel {
    fn default() -> Self {
        SpeedupModel::calibrated_rtx_2080_ti()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitted_curves_hit_their_targets() {
        for (op, target) in FIG1_TARGETS {
            let c = SpeedupCurve::fitted(target, 68.0);
            let got = c.speedup(68.0);
            assert!(
                (got - target).abs() < 1e-9,
                "{op}: wanted {target}, got {got}"
            );
        }
    }

    #[test]
    fn speedup_is_monotone_and_concave() {
        let c = SpeedupCurve::fitted(32.0, 68.0);
        let mut prev = 0.0;
        let mut prev_gain = f64::INFINITY;
        for m in 1..=68 {
            let s = c.speedup(m as f64);
            assert!(s > prev, "monotone at m={m}");
            let gain = s - prev;
            assert!(gain <= prev_gain + 1e-9, "concave at m={m}");
            prev = s;
            prev_gain = gain;
        }
    }

    #[test]
    fn speedup_at_one_sm_is_one() {
        for (_, target) in FIG1_TARGETS {
            let c = SpeedupCurve::fitted(target, 68.0);
            assert!((c.speedup(1.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sub_sm_allocations_degrade_linearly() {
        let c = SpeedupCurve::fitted(14.0, 68.0);
        assert!((c.speedup(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(c.speedup(0.0), 0.0);
        assert_eq!(c.speedup(-3.0), 0.0);
    }

    #[test]
    fn paper_ordering_conv_gt_maxpool_gt_rest() {
        let model = SpeedupModel::calibrated_rtx_2080_ti();
        let at68 = |op| model.speedup(op, 68.0);
        let conv = at68(OpClass::Convolution);
        let maxpool = at68(OpClass::MaxPool);
        assert!(conv > maxpool);
        for op in [
            OpClass::AvgPool,
            OpClass::BatchNorm,
            OpClass::Activation,
            OpClass::ElementwiseAdd,
            OpClass::Linear,
            OpClass::Softmax,
        ] {
            assert!(
                at68(op) <= 7.0 + 1e-9,
                "{op} exceeds the paper's 7x ceiling: {}",
                at68(op)
            );
        }
    }

    #[test]
    fn asymptote_bounds_measured_speedup() {
        let c = SpeedupCurve::fitted(32.0, 68.0);
        assert!(c.asymptote() > 32.0);
        let perfectly_parallel = SpeedupCurve::from_parallel_fraction(1.0);
        assert!(perfectly_parallel.asymptote().is_infinite());
    }

    #[test]
    #[should_panic(expected = "exceeds linear speedup")]
    fn fitting_superlinear_target_panics() {
        let _ = SpeedupCurve::fitted(100.0, 68.0);
    }

    #[test]
    fn unknown_op_falls_back_conservatively() {
        // Build a model missing most classes.
        let model = SpeedupModel::from_targets(
            &[(OpClass::Convolution, 32.0), (OpClass::Softmax, 3.0)],
            68.0,
        );
        // Linear is not in the model: should fall back to the *worst*
        // (softmax) curve, not the conv curve.
        let got = model.speedup(OpClass::Linear, 68.0);
        assert!((got - 3.0).abs() < 1e-9);
    }
}
