//! Kernels and work profiles: the unit of device work.
//!
//! A *kernel* in this simulator stands for everything a DNN stage submits
//! to the GPU in one go. Its [`WorkProfile`] records how much single-SM
//! execution time the stage spends in each operation class, so the engine
//! can derive the stage's running time at any SM allocation through the
//! per-class speedup curves.

use crate::{OpClass, SpeedupModel};
use serde::{Deserialize, Serialize};
use sgprs_rt::SimDuration;

/// One homogeneous slice of a stage's work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkSegment {
    /// Operation class this slice belongs to.
    pub op: OpClass,
    /// Execution time of the slice on a single SM, in nanoseconds.
    pub single_sm_ns: f64,
}

/// The operation-class mix of a kernel.
///
/// # Example
///
/// ```
/// use sgprs_gpu_sim::{OpClass, SpeedupModel, WorkProfile};
///
/// let mut profile = WorkProfile::new();
/// profile.add(OpClass::Convolution, 9_000_000.0);
/// profile.add(OpClass::Activation, 1_000_000.0);
/// let model = SpeedupModel::calibrated_rtx_2080_ti();
/// let t68 = profile.duration_at(&model, 68.0);
/// let t1 = profile.duration_at(&model, 1.0);
/// assert!(t68 < t1);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkProfile {
    segments: Vec<WorkSegment>,
}

impl WorkProfile {
    /// Creates an empty profile.
    #[must_use]
    pub fn new() -> Self {
        WorkProfile {
            segments: Vec::new(),
        }
    }

    /// A profile consisting of a single operation class.
    #[must_use]
    pub fn single(op: OpClass, single_sm_ns: f64) -> Self {
        let mut p = WorkProfile::new();
        p.add(op, single_sm_ns);
        p
    }

    /// Adds `single_sm_ns` nanoseconds of single-SM work of class `op`,
    /// merging with an existing segment of the same class. Non-positive or
    /// non-finite amounts are ignored.
    pub fn add(&mut self, op: OpClass, single_sm_ns: f64) {
        if !single_sm_ns.is_finite() || single_sm_ns <= 0.0 {
            return;
        }
        if let Some(seg) = self.segments.iter_mut().find(|s| s.op == op) {
            seg.single_sm_ns += single_sm_ns;
        } else {
            self.segments.push(WorkSegment { op, single_sm_ns });
        }
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &WorkProfile) {
        for seg in &other.segments {
            self.add(seg.op, seg.single_sm_ns);
        }
    }

    /// The segments of this profile.
    #[must_use]
    pub fn segments(&self) -> &[WorkSegment] {
        &self.segments
    }

    /// Total single-SM execution time in nanoseconds.
    #[must_use]
    pub fn total_single_sm_ns(&self) -> f64 {
        self.segments.iter().map(|s| s.single_sm_ns).sum()
    }

    /// `true` when the profile carries no work.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty() || self.total_single_sm_ns() <= 0.0
    }

    /// Execution time of the whole profile at `m` SMs:
    /// `Σ_op work_op / s_op(m)` (each class scales by its own curve).
    #[must_use]
    pub fn duration_at(&self, model: &SpeedupModel, m: f64) -> SimDuration {
        let ns = self.duration_ns_at(model, m);
        if !ns.is_finite() {
            return SimDuration::MAX;
        }
        SimDuration::from_nanos(ns.round() as u64)
    }

    /// Like [`WorkProfile::duration_at`] but in raw (possibly infinite)
    /// nanoseconds, for rate computations inside the engine.
    #[must_use]
    pub fn duration_ns_at(&self, model: &SpeedupModel, m: f64) -> f64 {
        if m <= 0.0 {
            return f64::INFINITY;
        }
        self.segments
            .iter()
            .map(|s| s.single_sm_ns / model.speedup(s.op, m))
            .sum()
    }

    /// The profile's *effective* speedup at `m` SMs: total single-SM time
    /// divided by the time at `m` SMs. This is what Figure 1 plots for the
    /// whole ResNet18 (≈ 23× at 68 SMs).
    #[must_use]
    pub fn effective_speedup(&self, model: &SpeedupModel, m: f64) -> f64 {
        let t_m = self.duration_ns_at(model, m);
        if t_m <= 0.0 || !t_m.is_finite() {
            return 0.0;
        }
        self.total_single_sm_ns() / t_m
    }

    /// Share of the total single-SM work belonging to class `op` ∈ [0, 1].
    #[must_use]
    pub fn fraction_of(&self, op: OpClass) -> f64 {
        let total = self.total_single_sm_ns();
        if total <= 0.0 {
            return 0.0;
        }
        self.segments
            .iter()
            .filter(|s| s.op == op)
            .map(|s| s.single_sm_ns)
            .sum::<f64>()
            / total
    }
}

impl FromIterator<WorkSegment> for WorkProfile {
    fn from_iter<I: IntoIterator<Item = WorkSegment>>(iter: I) -> Self {
        let mut p = WorkProfile::new();
        for seg in iter {
            p.add(seg.op, seg.single_sm_ns);
        }
        p
    }
}

/// Description of a kernel submitted to the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Label shown in traces (e.g. `"τ3#12/s4"`).
    pub label: String,
    /// The work the kernel performs.
    pub work: WorkProfile,
    /// Fixed serial overhead in nanoseconds added to the kernel's duration
    /// regardless of SM allocation (e.g. the naive baseline's partition
    /// reconfiguration cost — the cost SGPRS's *seamless* switching avoids).
    pub extra_ns: f64,
}

impl KernelDesc {
    /// Creates a kernel with the given trace label and work profile.
    #[must_use]
    pub fn new(label: impl Into<String>, work: WorkProfile) -> Self {
        KernelDesc {
            label: label.into(),
            work,
            extra_ns: 0.0,
        }
    }

    /// Adds a fixed serial overhead to the kernel (see [`KernelDesc::extra_ns`]).
    #[must_use]
    pub fn with_extra_ns(mut self, extra_ns: f64) -> Self {
        self.extra_ns = extra_ns.max(0.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SpeedupModel {
        SpeedupModel::calibrated_rtx_2080_ti()
    }

    #[test]
    fn add_merges_same_class() {
        let mut p = WorkProfile::new();
        p.add(OpClass::Convolution, 100.0);
        p.add(OpClass::Convolution, 50.0);
        assert_eq!(p.segments().len(), 1);
        assert!((p.total_single_sm_ns() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn add_ignores_garbage() {
        let mut p = WorkProfile::new();
        p.add(OpClass::Convolution, -5.0);
        p.add(OpClass::Convolution, f64::NAN);
        p.add(OpClass::Convolution, 0.0);
        assert!(p.is_empty());
    }

    #[test]
    fn duration_shrinks_with_more_sms() {
        let p = WorkProfile::single(OpClass::Convolution, 1e6);
        let m = model();
        let mut prev = SimDuration::MAX;
        for sms in [1.0, 2.0, 4.0, 17.0, 34.0, 68.0] {
            let d = p.duration_at(&m, sms);
            assert!(d < prev, "duration must shrink at {sms} SMs");
            prev = d;
        }
    }

    #[test]
    fn mixed_profile_speedup_is_between_component_speedups() {
        let m = model();
        let mut p = WorkProfile::new();
        p.add(OpClass::Convolution, 9e6);
        p.add(OpClass::Softmax, 1e6);
        let s = p.effective_speedup(&m, 68.0);
        assert!(s < m.speedup(OpClass::Convolution, 68.0));
        assert!(s > m.speedup(OpClass::Softmax, 68.0));
    }

    #[test]
    fn pure_profile_matches_curve() {
        let m = model();
        let p = WorkProfile::single(OpClass::MaxPool, 1e6);
        let s = p.effective_speedup(&m, 68.0);
        assert!((s - 14.0).abs() < 1e-6);
    }

    #[test]
    fn zero_sms_means_infinite_duration() {
        let p = WorkProfile::single(OpClass::Convolution, 1e6);
        assert_eq!(p.duration_at(&model(), 0.0), SimDuration::MAX);
        assert!(p.duration_ns_at(&model(), 0.0).is_infinite());
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut p = WorkProfile::new();
        p.add(OpClass::Convolution, 3.0);
        p.add(OpClass::Linear, 1.0);
        let total: f64 = OpClass::ALL.iter().map(|&op| p.fraction_of(op)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((p.fraction_of(OpClass::Convolution) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_profiles() {
        let mut a = WorkProfile::single(OpClass::Convolution, 10.0);
        let b = WorkProfile::single(OpClass::Convolution, 5.0);
        a.merge(&b);
        assert!((a.total_single_sm_ns() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn extra_ns_is_clamped_non_negative() {
        let desc = KernelDesc::new("k", WorkProfile::single(OpClass::Convolution, 1.0))
            .with_extra_ns(-5.0);
        assert_eq!(desc.extra_ns, 0.0);
        let desc = desc.with_extra_ns(123.0);
        assert_eq!(desc.extra_ns, 123.0);
    }

    #[test]
    fn from_iterator_collects() {
        let p: WorkProfile = [
            WorkSegment {
                op: OpClass::Convolution,
                single_sm_ns: 1.0,
            },
            WorkSegment {
                op: OpClass::Convolution,
                single_sm_ns: 2.0,
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(p.segments().len(), 1);
        assert!((p.total_single_sm_ns() - 3.0).abs() < 1e-12);
    }
}
