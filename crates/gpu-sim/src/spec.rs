//! Device specifications.

use serde::{Deserialize, Serialize};

/// Static description of a simulated GPU device.
///
/// Only the properties the scheduler can observe matter here: the SM count
/// (the spatial-partitioning currency) and a per-kernel launch overhead.
///
/// # Example
///
/// ```
/// use sgprs_gpu_sim::GpuSpec;
///
/// let gpu = GpuSpec::rtx_2080_ti();
/// assert_eq!(gpu.total_sms, 68);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors available for partitioning.
    pub total_sms: u32,
    /// Fixed per-kernel launch overhead in nanoseconds (driver + dispatch).
    pub launch_overhead_ns: u64,
}

impl GpuSpec {
    /// The paper's testbed: NVIDIA RTX 2080 Ti with 68 SMs.
    #[must_use]
    pub fn rtx_2080_ti() -> Self {
        GpuSpec {
            name: "NVIDIA GeForce RTX 2080 Ti".to_owned(),
            total_sms: 68,
            launch_overhead_ns: 5_000,
        }
    }

    /// A synthetic device with an arbitrary SM count (tests, what-if runs).
    #[must_use]
    pub fn synthetic(total_sms: u32) -> Self {
        GpuSpec {
            name: format!("synthetic-{total_sms}sm"),
            total_sms,
            launch_overhead_ns: 5_000,
        }
    }

    /// Overrides the launch overhead.
    #[must_use]
    pub fn with_launch_overhead_ns(mut self, ns: u64) -> Self {
        self.launch_overhead_ns = ns;
        self
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        GpuSpec::rtx_2080_ti()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_matches_paper_testbed() {
        let g = GpuSpec::rtx_2080_ti();
        assert_eq!(g.total_sms, 68);
        assert!(g.name.contains("2080 Ti"));
    }

    #[test]
    fn synthetic_and_overrides() {
        let g = GpuSpec::synthetic(16).with_launch_overhead_ns(123);
        assert_eq!(g.total_sms, 16);
        assert_eq!(g.launch_overhead_ns, 123);
    }

    #[test]
    fn default_is_the_paper_device() {
        assert_eq!(GpuSpec::default(), GpuSpec::rtx_2080_ti());
    }
}
