//! Timeline tracing with Chrome-trace export.
//!
//! When enabled on the engine, every kernel's lifetime is captured as a
//! [`KernelSpan`]. [`TraceRecorder::to_chrome_trace_json`] renders the
//! spans in the Chrome `chrome://tracing` / Perfetto "trace event" format
//! (one complete event per kernel, one row per stream), which makes
//! schedules visually inspectable.

use crate::{ContextId, KernelHandle, StreamId};
use serde::{Deserialize, Serialize};
use sgprs_rt::SimTime;
use std::collections::HashMap;

/// One kernel's lifetime on the device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelSpan {
    /// The kernel.
    pub kernel: KernelHandle,
    /// Trace label.
    pub label: String,
    /// Context it ran in.
    pub context: ContextId,
    /// Stream it occupied.
    pub stream: StreamId,
    /// Submission instant.
    pub begin: SimTime,
    /// Completion instant (`None` while still in flight).
    pub end: Option<SimTime>,
}

impl KernelSpan {
    /// Span duration, if the kernel completed.
    #[must_use]
    pub fn duration(&self) -> Option<sgprs_rt::SimDuration> {
        self.end.map(|e| e.duration_since(self.begin))
    }
}

/// Records kernel spans for later inspection or export.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    spans: Vec<KernelSpan>,
    open: HashMap<KernelHandle, usize>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Records a kernel start.
    pub fn begin(
        &mut self,
        kernel: KernelHandle,
        label: &str,
        context: ContextId,
        stream: StreamId,
        at: SimTime,
    ) {
        self.open.insert(kernel, self.spans.len());
        self.spans.push(KernelSpan {
            kernel,
            label: label.to_owned(),
            context,
            stream,
            begin: at,
            end: None,
        });
    }

    /// Records a kernel completion. Unknown handles are ignored.
    pub fn end(&mut self, kernel: KernelHandle, at: SimTime) {
        if let Some(idx) = self.open.remove(&kernel) {
            self.spans[idx].end = Some(at);
        }
    }

    /// All recorded spans in submission order.
    #[must_use]
    pub fn spans(&self) -> &[KernelSpan] {
        &self.spans
    }

    /// Number of recorded spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Renders the trace in Chrome trace-event JSON (array form).
    ///
    /// Each context maps to a `pid`, each stream to a `tid`, and every
    /// completed kernel to one `"X"` (complete) event with microsecond
    /// timestamps, which is what the Chrome/Perfetto UI expects.
    #[must_use]
    pub fn to_chrome_trace_json(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for span in &self.spans {
            let Some(end) = span.end else { continue };
            if !first {
                out.push(',');
            }
            first = false;
            let ts_us = span.begin.as_nanos() as f64 / 1e3;
            let dur_us = end.duration_since(span.begin).as_nanos() as f64 / 1e3;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":{ts_us},\"dur\":{dur_us},\"pid\":{},\"tid\":{}}}",
                escape_json(&span.label),
                span.context.0,
                span.stream.index,
            ));
        }
        out.push(']');
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(ctx: usize, idx: usize) -> StreamId {
        StreamId {
            context: ContextId(ctx),
            index: idx,
        }
    }

    #[test]
    fn begin_end_produces_closed_span() {
        let mut t = TraceRecorder::new();
        t.begin(KernelHandle(1), "k", ContextId(0), sid(0, 1), SimTime::from_nanos(100));
        assert!(t.spans()[0].end.is_none());
        t.end(KernelHandle(1), SimTime::from_nanos(400));
        let span = &t.spans()[0];
        assert_eq!(span.end, Some(SimTime::from_nanos(400)));
        assert_eq!(
            span.duration().unwrap(),
            sgprs_rt::SimDuration::from_nanos(300)
        );
    }

    #[test]
    fn end_of_unknown_handle_is_ignored() {
        let mut t = TraceRecorder::new();
        t.end(KernelHandle(99), SimTime::from_nanos(1));
        assert!(t.is_empty());
    }

    #[test]
    fn chrome_export_emits_complete_events_only() {
        let mut t = TraceRecorder::new();
        t.begin(KernelHandle(1), "done", ContextId(0), sid(0, 0), SimTime::from_nanos(1_000));
        t.end(KernelHandle(1), SimTime::from_nanos(3_000));
        t.begin(KernelHandle(2), "open", ContextId(1), sid(1, 2), SimTime::from_nanos(2_000));
        let json = t.to_chrome_trace_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"done\""));
        assert!(!json.contains("open"), "unfinished spans are skipped");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"pid\":0"));
    }

    #[test]
    fn json_labels_are_escaped() {
        let mut t = TraceRecorder::new();
        t.begin(
            KernelHandle(1),
            "we\"ird\\label",
            ContextId(0),
            sid(0, 0),
            SimTime::ZERO,
        );
        t.end(KernelHandle(1), SimTime::from_nanos(10));
        let json = t.to_chrome_trace_json();
        assert!(json.contains("we\\\"ird\\\\label"));
    }

    #[test]
    fn empty_trace_is_an_empty_array() {
        assert_eq!(TraceRecorder::new().to_chrome_trace_json(), "[]");
    }
}
