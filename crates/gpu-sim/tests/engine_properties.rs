//! Property-based tests of the device engine: conservation, determinism,
//! and monotonicity under randomised workloads.

use proptest::prelude::*;
use sgprs_gpu_sim::{
    ContentionModel, ContextConfig, ContextId, GpuEngine, GpuSpec, KernelDesc, OpClass,
    StreamClass, WorkProfile,
};
use sgprs_rt::SimTime;

fn engine(contexts: &[u32], seed: u64) -> GpuEngine {
    let mut b = GpuEngine::builder(GpuSpec::rtx_2080_ti().with_launch_overhead_ns(1_000))
        .seed(seed);
    for &sm in contexts {
        b = b.context(ContextConfig::new(sm));
    }
    b.build()
}

fn op_of(tag: u8) -> OpClass {
    match tag % 8 {
        0 => OpClass::Convolution,
        1 => OpClass::MaxPool,
        2 => OpClass::AvgPool,
        3 => OpClass::BatchNorm,
        4 => OpClass::Activation,
        5 => OpClass::ElementwiseAdd,
        6 => OpClass::Linear,
        _ => OpClass::Softmax,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every submitted kernel eventually completes, exactly once.
    #[test]
    fn all_submitted_kernels_complete(
        kernels in prop::collection::vec((0u8..8, 1_000.0f64..5e6), 1..40),
        seed in any::<u64>(),
    ) {
        let mut e = engine(&[34, 34], seed);
        let mut submitted = 0u64;
        let mut completed = Vec::new();
        for (i, &(tag, work)) in kernels.iter().enumerate() {
            let ctx = ContextId(i % 2);
            let class = if i % 4 < 2 { StreamClass::High } else { StreamClass::Low };
            let desc = KernelDesc::new(
                format!("k{i}"),
                WorkProfile::single(op_of(tag), work),
            );
            // Make room if every slot of the class is busy.
            loop {
                match e.submit(ctx, class, desc.clone()) {
                    Ok(h) => {
                        submitted += 1;
                        completed.push(h);
                        break;
                    }
                    Err(_) => {
                        let ev = e.run_next().expect("kernels in flight");
                        prop_assert!(completed.contains(&ev.kernel));
                    }
                }
            }
        }
        let events = e.drain();
        let mut total_done = events.len() as u64;
        // Events already consumed while making room:
        total_done += submitted - e.snapshot_resident() as u64 - events.len() as u64
            - (submitted - e.completed_count());
        prop_assert_eq!(e.completed_count(), submitted, "conservation");
        prop_assert!(e.next_event_time().is_none(), "device drained");
        let _ = total_done;
    }

    /// Identical seeds give identical schedules; the engine is a pure
    /// function of its inputs.
    #[test]
    fn engine_is_deterministic(
        works in prop::collection::vec(1_000.0f64..2e6, 1..16),
        seed in any::<u64>(),
    ) {
        let run = |seed: u64| {
            let mut e = engine(&[68, 68], seed);
            for (i, &w) in works.iter().enumerate() {
                let ctx = ContextId(i % 2);
                let desc = KernelDesc::new("k", WorkProfile::single(OpClass::Convolution, w));
                if e.submit(ctx, StreamClass::High, desc.clone()).is_err() {
                    e.run_next();
                    let _ = e.submit(ctx, StreamClass::High, desc);
                }
            }
            e.drain().into_iter().map(|ev| ev.finished_at).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Adding work never makes previously submitted kernels finish
    /// *earlier* (the engine is work-monotone).
    #[test]
    fn extra_load_never_speeds_anyone_up(work in 1e5f64..5e6, extra in 1e5f64..5e6) {
        let finish_of_first = |with_extra: bool| {
            let mut e = GpuEngine::builder(GpuSpec::rtx_2080_ti().with_launch_overhead_ns(0))
                .contention_model(ContentionModel::ideal())
                .context(ContextConfig::new(68))
                .build();
            let first = e
                .submit(
                    ContextId(0),
                    StreamClass::High,
                    KernelDesc::new("a", WorkProfile::single(OpClass::Convolution, work)),
                )
                .expect("idle");
            if with_extra {
                e.submit(
                    ContextId(0),
                    StreamClass::High,
                    KernelDesc::new("b", WorkProfile::single(OpClass::Convolution, extra)),
                )
                .expect("second high stream");
            }
            e.drain()
                .into_iter()
                .find(|ev| ev.kernel == first)
                .expect("first completes")
                .finished_at
        };
        prop_assert!(finish_of_first(true) >= finish_of_first(false));
    }

    /// Busy fractions always stay within [0, 1].
    #[test]
    fn busy_fractions_are_well_formed(
        works in prop::collection::vec(1_000.0f64..1e6, 1..12),
        horizon_ns in 1_000u64..1_000_000_000,
    ) {
        let mut e = engine(&[23, 23, 22], 7);
        for (i, &w) in works.iter().enumerate() {
            let ctx = ContextId(i % 3);
            let desc = KernelDesc::new("k", WorkProfile::single(OpClass::MaxPool, w));
            let _ = e.submit(ctx, StreamClass::Low, desc);
        }
        e.advance_to(SimTime::from_nanos(horizon_ns));
        for c in 0..3 {
            let f = e.busy_fraction(ContextId(c));
            prop_assert!((0.0..=1.0).contains(&f), "ctx {c}: {f}");
        }
    }
}

/// Helper extension used by the conservation test.
trait ResidentCount {
    fn snapshot_resident(&self) -> usize;
}

impl ResidentCount for GpuEngine {
    fn snapshot_resident(&self) -> usize {
        (0..self.context_count())
            .map(|c| self.snapshot(ContextId(c)).resident)
            .sum()
    }
}
