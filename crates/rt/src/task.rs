//! The paper's task model: periodic DNN tasks structured as DAGs of stages.
//!
//! A task `τi` is a DNN; its nodes are *stages* (sub-tasks) `τi^j`. The
//! whole task has a period, a WCET `Ci`, and a relative deadline `Di`; each
//! stage carries its own WCET `Ci^j` and a *virtual* relative deadline
//! `Di^j` assigned by the offline phase (a share of `Di` proportional to the
//! stage's share of `Ci` — see §IV-A2 of the paper).

use crate::{PriorityLevel, RtError, SimDuration};
use serde::{Deserialize, Serialize};

/// Identifier of a task within a [`TaskSet`] (dense, assigned on insert).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TaskId(pub usize);

/// Identifier of a stage within its task (index into the stage list).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct StageId(pub usize);

impl core::fmt::Display for TaskId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

impl core::fmt::Display for StageId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One stage (sub-task) `τi^j` of a periodic DNN task.
///
/// Stages are produced either by the offline phase of SGPRS (which splits a
/// DNN into `k` stages and profiles each) or manually for synthetic
/// workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Human-readable stage label (e.g. `"layer3"`).
    pub name: String,
    /// Measured worst-case execution time `Ci^j` on the reference partition.
    pub wcet: SimDuration,
    /// Virtual relative deadline `Di^j` (offline phase output). The offline
    /// phase guarantees `Σj Di^j == Di` for chain-structured tasks.
    pub virtual_deadline: SimDuration,
    /// Offline two-level priority: high for the last stage, low otherwise.
    pub priority: PriorityLevel,
    /// Indices of stages that must complete before this one may start.
    pub predecessors: Vec<usize>,
    /// Abstract amount of GPU work (device-model units); the simulator
    /// derives actual running time from this plus the SM allocation.
    pub work: f64,
}

impl StageSpec {
    /// Creates a stage with the given name and WCET, no predecessors, low
    /// priority, and a zero virtual deadline (to be assigned offline).
    #[must_use]
    pub fn new(name: impl Into<String>, wcet: SimDuration) -> Self {
        StageSpec {
            name: name.into(),
            wcet,
            virtual_deadline: SimDuration::ZERO,
            priority: PriorityLevel::Low,
            predecessors: Vec::new(),
            work: wcet.as_nanos() as f64,
        }
    }

    /// Sets the predecessor list (chain edges for sequential DNN stages).
    #[must_use]
    pub fn with_predecessors(mut self, preds: Vec<usize>) -> Self {
        self.predecessors = preds;
        self
    }

    /// Sets the abstract GPU work amount.
    #[must_use]
    pub fn with_work(mut self, work: f64) -> Self {
        self.work = work;
        self
    }
}

/// A periodic real-time DNN task `τi`: a DAG of stages plus timing
/// parameters.
///
/// Construct via [`PeriodicTaskSpec::builder`]; construction validates the
/// timing parameters and the stage graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodicTaskSpec {
    /// Human-readable name (e.g. `"resnet18-cam0"`).
    pub name: String,
    /// Release period (30 fps ⇒ 33.3 ms in the paper's evaluation).
    pub period: SimDuration,
    /// Relative deadline `Di` (implicit deadline = period if not overridden).
    pub deadline: SimDuration,
    /// Whole-task WCET `Ci` (the sum of stage WCETs for chain tasks).
    pub wcet: SimDuration,
    /// The stage DAG. Empty means the task is scheduled as a single
    /// monolithic job (the naive baseline's view).
    pub stages: Vec<StageSpec>,
    /// First release offset (phase); zero for synchronous release.
    pub phase: SimDuration,
}

impl PeriodicTaskSpec {
    /// Starts building a task with the given name.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> PeriodicTaskSpecBuilder {
        PeriodicTaskSpecBuilder::new(name)
    }

    /// Task utilisation `Ci / Ti`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.wcet.ratio(self.period)
    }

    /// Density `Ci / min(Di, Ti)`, the constrained-deadline analogue of
    /// utilisation.
    #[must_use]
    pub fn density(&self) -> f64 {
        let bound = self.deadline.min(self.period);
        self.wcet.ratio(bound)
    }

    /// Number of stages (zero for monolithic tasks).
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Sum of the stage WCETs, or the whole-task WCET when the task has no
    /// stage decomposition.
    #[must_use]
    pub fn total_stage_wcet(&self) -> SimDuration {
        if self.stages.is_empty() {
            return self.wcet;
        }
        self.stages
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.wcet)
    }

    /// Returns the stages in a valid topological order.
    ///
    /// The order is stable for chains (identity). The graph was validated as
    /// acyclic at construction, so this never fails for built tasks.
    #[must_use]
    pub fn topological_order(&self) -> Vec<usize> {
        topological_order(&self.stages).expect("stage graph validated at construction")
    }

    /// Indices of stages with no predecessors (DAG sources).
    #[must_use]
    pub fn source_stages(&self) -> Vec<usize> {
        self.stages
            .iter()
            .enumerate()
            .filter(|(_, s)| s.predecessors.is_empty())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of stages that no other stage depends on (DAG sinks).
    #[must_use]
    pub fn sink_stages(&self) -> Vec<usize> {
        let mut has_successor = vec![false; self.stages.len()];
        for s in &self.stages {
            for &p in &s.predecessors {
                has_successor[p] = true;
            }
        }
        has_successor
            .iter()
            .enumerate()
            .filter(|(_, h)| !**h)
            .map(|(i, _)| i)
            .collect()
    }
}

fn topological_order(stages: &[StageSpec]) -> Result<Vec<usize>, ()> {
    let n = stages.len();
    let mut indegree = vec![0usize; n];
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, s) in stages.iter().enumerate() {
        for &p in &s.predecessors {
            if p >= n {
                return Err(());
            }
            indegree[i] += 1;
            successors[p].push(i);
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    // Keep the order deterministic: smallest index first.
    ready.sort_unstable_by(|a, b| b.cmp(a));
    let mut order = Vec::with_capacity(n);
    while let Some(i) = ready.pop() {
        order.push(i);
        for &succ in &successors[i] {
            indegree[succ] -= 1;
            if indegree[succ] == 0 {
                ready.push(succ);
                ready.sort_unstable_by(|a, b| b.cmp(a));
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(())
    }
}

/// Builder for [`PeriodicTaskSpec`] (see `C-BUILDER`).
///
/// # Example
///
/// ```
/// use sgprs_rt::{PeriodicTaskSpec, SimDuration, StageSpec};
///
/// let task = PeriodicTaskSpec::builder("detector")
///     .period(SimDuration::from_millis(33))
///     .stage(StageSpec::new("stem", SimDuration::from_millis(2)))
///     .stage(StageSpec::new("head", SimDuration::from_millis(3)).with_predecessors(vec![0]))
///     .build()
///     .expect("valid task");
/// assert_eq!(task.stage_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct PeriodicTaskSpecBuilder {
    name: String,
    period: Option<SimDuration>,
    deadline: Option<SimDuration>,
    wcet: Option<SimDuration>,
    stages: Vec<StageSpec>,
    phase: SimDuration,
}

impl PeriodicTaskSpecBuilder {
    fn new(name: impl Into<String>) -> Self {
        PeriodicTaskSpecBuilder {
            name: name.into(),
            period: None,
            deadline: None,
            wcet: None,
            stages: Vec::new(),
            phase: SimDuration::ZERO,
        }
    }

    /// Sets the release period (required).
    #[must_use]
    pub fn period(mut self, period: SimDuration) -> Self {
        self.period = Some(period);
        self
    }

    /// Sets the relative deadline `Di`; defaults to the period (implicit
    /// deadline).
    #[must_use]
    pub fn deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the whole-task WCET `Ci`; defaults to the sum of stage WCETs.
    #[must_use]
    pub fn wcet(mut self, wcet: SimDuration) -> Self {
        self.wcet = Some(wcet);
        self
    }

    /// Appends a stage to the DAG.
    #[must_use]
    pub fn stage(mut self, stage: StageSpec) -> Self {
        self.stages.push(stage);
        self
    }

    /// Appends a chain of `n` equal stages summing to `total_wcet`, each
    /// depending on the previous one — the paper's "divide a network into
    /// multiple stages" in its simplest form.
    #[must_use]
    pub fn equal_stage_chain(mut self, n: usize, total_wcet: SimDuration) -> Self {
        if n == 0 {
            return self;
        }
        let per = total_wcet / n as u64;
        for j in 0..n {
            let mut s = StageSpec::new(format!("stage{j}"), per);
            if j > 0 {
                s.predecessors = vec![self.stages.len() - 1];
            }
            self.stages.push(s);
        }
        self
    }

    /// Sets the first-release offset.
    #[must_use]
    pub fn phase(mut self, phase: SimDuration) -> Self {
        self.phase = phase;
        self
    }

    /// Validates and builds the task.
    ///
    /// # Errors
    ///
    /// Returns [`RtError`] if the period, deadline, or WCET is zero, if a
    /// stage edge dangles, or if the stage graph is cyclic.
    pub fn build(self) -> Result<PeriodicTaskSpec, RtError> {
        let name = self.name;
        let period = self.period.ok_or_else(|| RtError::ZeroPeriod {
            task: name.clone(),
        })?;
        if period.is_zero() {
            return Err(RtError::ZeroPeriod { task: name });
        }
        let deadline = self.deadline.unwrap_or(period);
        if deadline.is_zero() {
            return Err(RtError::ZeroDeadline { task: name });
        }
        let stage_sum = self
            .stages
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.wcet);
        let wcet = self.wcet.unwrap_or(stage_sum);
        if wcet.is_zero() {
            return Err(RtError::ZeroWcet { task: name });
        }
        for (i, s) in self.stages.iter().enumerate() {
            for &p in &s.predecessors {
                if p >= self.stages.len() || p == i {
                    return Err(RtError::DanglingStageEdge {
                        task: name,
                        stage: p,
                    });
                }
            }
        }
        if !self.stages.is_empty() && topological_order(&self.stages).is_err() {
            return Err(RtError::CyclicStageGraph { task: name });
        }
        Ok(PeriodicTaskSpec {
            name,
            period,
            deadline,
            wcet,
            stages: self.stages,
            phase: self.phase,
        })
    }
}

/// An ordered collection of periodic tasks (`S` in the paper).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<PeriodicTaskSpec>,
}

impl TaskSet {
    /// Creates an empty task set.
    #[must_use]
    pub fn new() -> Self {
        TaskSet { tasks: Vec::new() }
    }

    /// Adds a task, returning its dense [`TaskId`].
    pub fn push(&mut self, task: PeriodicTaskSpec) -> TaskId {
        self.tasks.push(task);
        TaskId(self.tasks.len() - 1)
    }

    /// Number of tasks `|S|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id, if present.
    #[must_use]
    pub fn get(&self, id: TaskId) -> Option<&PeriodicTaskSpec> {
        self.tasks.get(id.0)
    }

    /// Mutable access to the task with the given id, if present.
    #[must_use]
    pub fn get_mut(&mut self, id: TaskId) -> Option<&mut PeriodicTaskSpec> {
        self.tasks.get_mut(id.0)
    }

    /// Iterates over `(TaskId, &task)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &PeriodicTaskSpec)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// Iterates mutably over `(TaskId, &mut task)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (TaskId, &mut PeriodicTaskSpec)> {
        self.tasks
            .iter_mut()
            .enumerate()
            .map(|(i, t)| (TaskId(i), t))
    }

    /// Total utilisation `Σ Ci/Ti`.
    #[must_use]
    pub fn total_utilization(&self) -> f64 {
        self.tasks.iter().map(PeriodicTaskSpec::utilization).sum()
    }

    /// Total density `Σ Ci/min(Di,Ti)`.
    #[must_use]
    pub fn total_density(&self) -> f64 {
        self.tasks.iter().map(PeriodicTaskSpec::density).sum()
    }
}

impl FromIterator<PeriodicTaskSpec> for TaskSet {
    fn from_iter<I: IntoIterator<Item = PeriodicTaskSpec>>(iter: I) -> Self {
        TaskSet {
            tasks: iter.into_iter().collect(),
        }
    }
}

impl Extend<PeriodicTaskSpec> for TaskSet {
    fn extend<I: IntoIterator<Item = PeriodicTaskSpec>>(&mut self, iter: I) {
        self.tasks.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn builder_defaults_deadline_to_period_and_wcet_to_stage_sum() {
        let t = PeriodicTaskSpec::builder("t")
            .period(ms(30))
            .stage(StageSpec::new("a", ms(2)))
            .stage(StageSpec::new("b", ms(3)).with_predecessors(vec![0]))
            .build()
            .unwrap();
        assert_eq!(t.deadline, ms(30));
        assert_eq!(t.wcet, ms(5));
        assert_eq!(t.total_stage_wcet(), ms(5));
    }

    #[test]
    fn builder_rejects_zero_period() {
        let err = PeriodicTaskSpec::builder("t")
            .period(SimDuration::ZERO)
            .wcet(ms(1))
            .build()
            .unwrap_err();
        assert!(matches!(err, RtError::ZeroPeriod { .. }));
    }

    #[test]
    fn builder_rejects_missing_period() {
        let err = PeriodicTaskSpec::builder("t").wcet(ms(1)).build().unwrap_err();
        assert!(matches!(err, RtError::ZeroPeriod { .. }));
    }

    #[test]
    fn builder_rejects_zero_wcet() {
        let err = PeriodicTaskSpec::builder("t")
            .period(ms(10))
            .build()
            .unwrap_err();
        assert!(matches!(err, RtError::ZeroWcet { .. }));
    }

    #[test]
    fn builder_rejects_dangling_edges_and_self_loops() {
        let err = PeriodicTaskSpec::builder("t")
            .period(ms(10))
            .stage(StageSpec::new("a", ms(1)).with_predecessors(vec![7]))
            .build()
            .unwrap_err();
        assert!(matches!(err, RtError::DanglingStageEdge { stage: 7, .. }));

        let err = PeriodicTaskSpec::builder("t")
            .period(ms(10))
            .stage(StageSpec::new("a", ms(1)).with_predecessors(vec![0]))
            .build()
            .unwrap_err();
        assert!(matches!(err, RtError::DanglingStageEdge { .. }));
    }

    #[test]
    fn builder_rejects_cycles() {
        let err = PeriodicTaskSpec::builder("t")
            .period(ms(10))
            .stage(StageSpec::new("a", ms(1)).with_predecessors(vec![1]))
            .stage(StageSpec::new("b", ms(1)).with_predecessors(vec![0]))
            .build()
            .unwrap_err();
        assert!(matches!(err, RtError::CyclicStageGraph { .. }));
    }

    #[test]
    fn equal_stage_chain_builds_a_chain() {
        let t = PeriodicTaskSpec::builder("t")
            .period(ms(33))
            .equal_stage_chain(6, ms(12))
            .build()
            .unwrap();
        assert_eq!(t.stage_count(), 6);
        assert_eq!(t.total_stage_wcet(), ms(12));
        assert_eq!(t.source_stages(), vec![0]);
        assert_eq!(t.sink_stages(), vec![5]);
        assert_eq!(t.topological_order(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn utilization_and_density_behave() {
        let t = PeriodicTaskSpec::builder("t")
            .period(ms(20))
            .deadline(ms(10))
            .wcet(ms(5))
            .build()
            .unwrap();
        assert!((t.utilization() - 0.25).abs() < 1e-12);
        assert!((t.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn taskset_accumulates_utilization() {
        let mut s = TaskSet::new();
        for _ in 0..4 {
            s.push(
                PeriodicTaskSpec::builder("t")
                    .period(ms(20))
                    .wcet(ms(5))
                    .build()
                    .unwrap(),
            );
        }
        assert_eq!(s.len(), 4);
        assert!((s.total_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_dag_orders_topologically() {
        let t = PeriodicTaskSpec::builder("t")
            .period(ms(10))
            .stage(StageSpec::new("src", ms(1)))
            .stage(StageSpec::new("l", ms(1)).with_predecessors(vec![0]))
            .stage(StageSpec::new("r", ms(1)).with_predecessors(vec![0]))
            .stage(StageSpec::new("sink", ms(1)).with_predecessors(vec![1, 2]))
            .build()
            .unwrap();
        let order = t.topological_order();
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
        assert_eq!(t.sink_stages(), vec![3]);
    }
}
