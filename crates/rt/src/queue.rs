//! Ready queues: EDF ordering within each priority band.
//!
//! SGPRS schedules stages inside each priority level in Earliest Deadline
//! First order (§IV-B3). [`EdfQueue`] is a deterministic EDF queue with
//! FIFO tie-breaking; [`PriorityBands`] stacks one queue per
//! [`PriorityLevel`] and always serves the highest non-empty band.

use crate::{PriorityLevel, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in an [`EdfQueue`]: a payload plus its absolute deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdfEntry<T> {
    /// Absolute deadline driving the ordering.
    pub deadline: SimTime,
    /// Monotone sequence number for FIFO tie-breaking.
    seq: u64,
    /// The queued payload.
    pub item: T,
}

impl<T: Eq> Ord for EdfEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest deadline wins,
        // breaking ties by arrival order (lower seq first).
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T: Eq> PartialOrd for EdfEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An earliest-deadline-first ready queue with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use sgprs_rt::{EdfQueue, SimTime};
///
/// let mut q = EdfQueue::new();
/// q.push("late", SimTime::from_nanos(200));
/// q.push("early", SimTime::from_nanos(100));
/// assert_eq!(q.pop().map(|e| e.item), Some("early"));
/// ```
#[derive(Debug, Clone)]
pub struct EdfQueue<T: Eq> {
    heap: BinaryHeap<EdfEntry<T>>,
    next_seq: u64,
}

impl<T: Eq> EdfQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EdfQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Enqueues `item` with the given absolute deadline.
    pub fn push(&mut self, item: T, deadline: SimTime) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EdfEntry {
            deadline,
            seq,
            item,
        });
    }

    /// Removes and returns the entry with the earliest deadline.
    pub fn pop(&mut self) -> Option<EdfEntry<T>> {
        self.heap.pop()
    }

    /// Peeks at the earliest-deadline entry without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&EdfEntry<T>> {
        self.heap.peek()
    }

    /// Number of queued entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes every entry matching `pred`, returning the removed payloads.
    /// O(n log n); used only for rare abort paths.
    pub fn drain_matching<F: FnMut(&T) -> bool>(&mut self, mut pred: F) -> Vec<T> {
        let mut kept = BinaryHeap::with_capacity(self.heap.len());
        let mut removed = Vec::new();
        for entry in self.heap.drain() {
            if pred(&entry.item) {
                removed.push(entry.item);
            } else {
                kept.push(entry);
            }
        }
        self.heap = kept;
        removed
    }

    /// Iterates over queued payloads in arbitrary (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.heap.iter().map(|e| &e.item)
    }
}

impl<T: Eq> Default for EdfQueue<T> {
    fn default() -> Self {
        EdfQueue::new()
    }
}

/// One EDF queue per priority level, served high → medium → low.
///
/// This is exactly the stage-queuing structure of §IV-B3: stages of the
/// same level compete by deadline; a higher level always pre-empts queue
/// service of the lower levels (but never running work — SGPRS does not
/// abort in-flight kernels).
#[derive(Debug, Clone, Default)]
pub struct PriorityBands<T: Eq> {
    high: EdfQueue<T>,
    medium: EdfQueue<T>,
    low: EdfQueue<T>,
}

impl<T: Eq> PriorityBands<T> {
    /// Creates the empty three-band structure.
    #[must_use]
    pub fn new() -> Self {
        PriorityBands {
            high: EdfQueue::new(),
            medium: EdfQueue::new(),
            low: EdfQueue::new(),
        }
    }

    /// Enqueues `item` into the band for `level` with the given deadline.
    pub fn push(&mut self, level: PriorityLevel, item: T, deadline: SimTime) {
        self.band_mut(level).push(item, deadline);
    }

    /// Pops the next stage to serve: earliest deadline within the highest
    /// non-empty band.
    pub fn pop(&mut self) -> Option<(PriorityLevel, EdfEntry<T>)> {
        for level in PriorityLevel::DESCENDING {
            if let Some(e) = self.band_mut(level).pop() {
                return Some((level, e));
            }
        }
        None
    }

    /// Pops from a band no higher than `max_level` (used for slots reserved
    /// to low/medium work).
    pub fn pop_at_most(&mut self, max_level: PriorityLevel) -> Option<(PriorityLevel, EdfEntry<T>)> {
        for level in PriorityLevel::DESCENDING {
            if level > max_level {
                continue;
            }
            if let Some(e) = self.band_mut(level).pop() {
                return Some((level, e));
            }
        }
        None
    }

    /// Pops only from the given band.
    pub fn pop_exact(&mut self, level: PriorityLevel) -> Option<EdfEntry<T>> {
        self.band_mut(level).pop()
    }

    /// Total entries across all bands.
    #[must_use]
    pub fn len(&self) -> usize {
        self.high.len() + self.medium.len() + self.low.len()
    }

    /// `true` when every band is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries in one band.
    #[must_use]
    pub fn band_len(&self, level: PriorityLevel) -> usize {
        self.band(level).len()
    }

    /// Earliest deadline across all bands, if any entry is queued.
    #[must_use]
    pub fn earliest_deadline(&self) -> Option<SimTime> {
        [&self.high, &self.medium, &self.low]
            .iter()
            .filter_map(|q| q.peek().map(|e| e.deadline))
            .min()
    }

    /// Moves every entry matching `pred` from the low band into the medium
    /// band (the run-time promotion rule), returning how many moved.
    pub fn promote_low_matching<F: FnMut(&T) -> bool>(&mut self, pred: F) -> usize {
        let moved = self.low.drain_matching(pred);
        let n = moved.len();
        for _item in &moved {}
        for item in moved {
            // Promotion keeps the original deadline semantics: the caller
            // re-supplies deadlines via push when it needs different ones;
            // here we preserve FIFO order at the medium level with the
            // entry's deadline unknown, so this helper is only usable when
            // T itself carries the deadline. Prefer `promote_low_with`.
            self.medium.push(item, SimTime::MAX);
        }
        n
    }

    /// Moves entries matching `pred` from low to medium, computing each
    /// promoted entry's deadline with `deadline_of`.
    pub fn promote_low_with<F, D>(&mut self, pred: F, mut deadline_of: D) -> usize
    where
        F: FnMut(&T) -> bool,
        D: FnMut(&T) -> SimTime,
    {
        let moved = self.low.drain_matching(pred);
        let n = moved.len();
        for item in moved {
            let d = deadline_of(&item);
            self.medium.push(item, d);
        }
        n
    }

    fn band(&self, level: PriorityLevel) -> &EdfQueue<T> {
        match level {
            PriorityLevel::High => &self.high,
            PriorityLevel::Medium => &self.medium,
            PriorityLevel::Low => &self.low,
        }
    }

    fn band_mut(&mut self, level: PriorityLevel) -> &mut EdfQueue<T> {
        match level {
            PriorityLevel::High => &mut self.high,
            PriorityLevel::Medium => &mut self.medium,
            PriorityLevel::Low => &mut self.low,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn edf_orders_by_deadline() {
        let mut q = EdfQueue::new();
        q.push("c", t(300));
        q.push("a", t(100));
        q.push("b", t(200));
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.item)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn edf_breaks_ties_fifo() {
        let mut q = EdfQueue::new();
        q.push("first", t(100));
        q.push("second", t(100));
        q.push("third", t(100));
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.item)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn drain_matching_removes_only_matches() {
        let mut q = EdfQueue::new();
        for i in 0..10u32 {
            q.push(i, t(u64::from(i)));
        }
        let removed = q.drain_matching(|&x| x % 2 == 0);
        assert_eq!(removed.len(), 5);
        assert_eq!(q.len(), 5);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.item)).collect();
        assert_eq!(order, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn bands_serve_high_before_earlier_low_deadlines() {
        let mut b = PriorityBands::new();
        b.push(PriorityLevel::Low, "low-early", t(1));
        b.push(PriorityLevel::High, "high-late", t(1_000));
        let (lvl, e) = b.pop().unwrap();
        assert_eq!(lvl, PriorityLevel::High);
        assert_eq!(e.item, "high-late");
        let (lvl, e) = b.pop().unwrap();
        assert_eq!(lvl, PriorityLevel::Low);
        assert_eq!(e.item, "low-early");
    }

    #[test]
    fn bands_medium_sits_between() {
        let mut b = PriorityBands::new();
        b.push(PriorityLevel::Low, "l", t(1));
        b.push(PriorityLevel::Medium, "m", t(2));
        b.push(PriorityLevel::High, "h", t(3));
        let served: Vec<_> = std::iter::from_fn(|| b.pop().map(|(_, e)| e.item)).collect();
        assert_eq!(served, vec!["h", "m", "l"]);
    }

    #[test]
    fn pop_at_most_skips_higher_bands() {
        let mut b = PriorityBands::new();
        b.push(PriorityLevel::High, "h", t(1));
        b.push(PriorityLevel::Low, "l", t(2));
        let (lvl, e) = b.pop_at_most(PriorityLevel::Medium).unwrap();
        assert_eq!(lvl, PriorityLevel::Low);
        assert_eq!(e.item, "l");
        assert_eq!(b.band_len(PriorityLevel::High), 1);
    }

    #[test]
    fn promotion_moves_low_entries_to_medium() {
        let mut b = PriorityBands::new();
        b.push(PriorityLevel::Low, 1u32, t(10));
        b.push(PriorityLevel::Low, 2u32, t(20));
        let n = b.promote_low_with(|&x| x == 2, |_| t(20));
        assert_eq!(n, 1);
        assert_eq!(b.band_len(PriorityLevel::Medium), 1);
        assert_eq!(b.band_len(PriorityLevel::Low), 1);
        let (lvl, e) = b.pop().unwrap();
        assert_eq!(lvl, PriorityLevel::Medium);
        assert_eq!(e.item, 2);
    }

    #[test]
    fn earliest_deadline_spans_bands() {
        let mut b = PriorityBands::new();
        assert_eq!(b.earliest_deadline(), None);
        b.push(PriorityLevel::High, "h", t(500));
        b.push(PriorityLevel::Low, "l", t(100));
        assert_eq!(b.earliest_deadline(), Some(t(100)));
    }
}
