//! SGPRS priority levels and the offline two-level assignment rule.
//!
//! The offline phase gives the *last* stage of every task high priority and
//! every other stage low priority (§IV-A1). At run time a third, *medium*
//! level is introduced: a low-priority stage is promoted to medium when its
//! preceding stage has missed its virtual deadline (§IV-B3).

use serde::{Deserialize, Serialize};

/// Stage priority in SGPRS's three-level queuing discipline.
///
/// `High > Medium > Low` in scheduling order; [`Ord`] reflects that, so
/// `PriorityLevel::High` compares greatest.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum PriorityLevel {
    /// Default level of every non-final stage (offline assignment).
    Low,
    /// Run-time promotion of a low stage whose predecessor missed its
    /// virtual deadline.
    Medium,
    /// Offline level of the final stage of every task.
    High,
}

impl PriorityLevel {
    /// All levels from highest to lowest scheduling precedence.
    pub const DESCENDING: [PriorityLevel; 3] = [
        PriorityLevel::High,
        PriorityLevel::Medium,
        PriorityLevel::Low,
    ];

    /// `true` for the offline-assigned high level.
    #[must_use]
    pub fn is_high(self) -> bool {
        matches!(self, PriorityLevel::High)
    }

    /// The level a low stage is promoted to after an upstream miss; high
    /// and medium stages keep their level.
    #[must_use]
    pub fn promoted(self) -> PriorityLevel {
        match self {
            PriorityLevel::Low => PriorityLevel::Medium,
            other => other,
        }
    }
}

impl core::fmt::Display for PriorityLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            PriorityLevel::High => "high",
            PriorityLevel::Medium => "medium",
            PriorityLevel::Low => "low",
        };
        f.write_str(s)
    }
}

/// The offline two-level priority assignment of §IV-A1.
///
/// Applied to a task's stage list: sink stages (typically the single final
/// stage) become [`PriorityLevel::High`], all others [`PriorityLevel::Low`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PriorityAssignment;

impl PriorityAssignment {
    /// Computes the offline priority of stage `index` given the task's sink
    /// stage indices.
    #[must_use]
    pub fn offline_level(sink_stages: &[usize], index: usize) -> PriorityLevel {
        if sink_stages.contains(&index) {
            PriorityLevel::High
        } else {
            PriorityLevel::Low
        }
    }

    /// Applies the two-level assignment to every stage of a task in place.
    pub fn assign(task: &mut crate::PeriodicTaskSpec) {
        let sinks = task.sink_stages();
        for (i, stage) in task.stages.iter_mut().enumerate() {
            stage.priority = Self::offline_level(&sinks, i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PeriodicTaskSpec, SimDuration, StageSpec};

    #[test]
    fn ordering_puts_high_first() {
        assert!(PriorityLevel::High > PriorityLevel::Medium);
        assert!(PriorityLevel::Medium > PriorityLevel::Low);
        assert_eq!(
            PriorityLevel::DESCENDING,
            [
                PriorityLevel::High,
                PriorityLevel::Medium,
                PriorityLevel::Low
            ]
        );
    }

    #[test]
    fn promotion_only_raises_low() {
        assert_eq!(PriorityLevel::Low.promoted(), PriorityLevel::Medium);
        assert_eq!(PriorityLevel::Medium.promoted(), PriorityLevel::Medium);
        assert_eq!(PriorityLevel::High.promoted(), PriorityLevel::High);
    }

    #[test]
    fn two_level_assignment_marks_last_stage_high() {
        let mut t = PeriodicTaskSpec::builder("t")
            .period(SimDuration::from_millis(33))
            .equal_stage_chain(6, SimDuration::from_millis(12))
            .build()
            .unwrap();
        PriorityAssignment::assign(&mut t);
        for j in 0..5 {
            assert_eq!(t.stages[j].priority, PriorityLevel::Low, "stage {j}");
        }
        assert_eq!(t.stages[5].priority, PriorityLevel::High);
    }

    #[test]
    fn multi_sink_dag_gets_multiple_high_stages() {
        let mut t = PeriodicTaskSpec::builder("t")
            .period(SimDuration::from_millis(33))
            .stage(StageSpec::new("a", SimDuration::from_millis(1)))
            .stage(StageSpec::new("b", SimDuration::from_millis(1)).with_predecessors(vec![0]))
            .stage(StageSpec::new("c", SimDuration::from_millis(1)).with_predecessors(vec![0]))
            .build()
            .unwrap();
        PriorityAssignment::assign(&mut t);
        assert_eq!(t.stages[0].priority, PriorityLevel::Low);
        assert_eq!(t.stages[1].priority, PriorityLevel::High);
        assert_eq!(t.stages[2].priority, PriorityLevel::High);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(PriorityLevel::High.to_string(), "high");
        assert_eq!(PriorityLevel::Medium.to_string(), "medium");
        assert_eq!(PriorityLevel::Low.to_string(), "low");
    }
}
