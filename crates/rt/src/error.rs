//! Error type for task-model construction and validation.

use core::fmt;

/// Errors produced while building or validating real-time task models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtError {
    /// A task was given a zero (or missing) period.
    ZeroPeriod {
        /// Human-readable task name.
        task: String,
    },
    /// A task was given a zero total WCET.
    ZeroWcet {
        /// Human-readable task name.
        task: String,
    },
    /// A relative deadline of zero was supplied.
    ZeroDeadline {
        /// Human-readable task name.
        task: String,
    },
    /// A stage DAG edge referenced a stage index that does not exist.
    DanglingStageEdge {
        /// Human-readable task name.
        task: String,
        /// The out-of-range stage index.
        stage: usize,
    },
    /// The stage graph contains a cycle, so it is not a DAG.
    CyclicStageGraph {
        /// Human-readable task name.
        task: String,
    },
    /// A task with no stages was supplied where at least one is required.
    EmptyStageList {
        /// Human-readable task name.
        task: String,
    },
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::ZeroPeriod { task } => write!(f, "task `{task}` has a zero period"),
            RtError::ZeroWcet { task } => write!(f, "task `{task}` has a zero WCET"),
            RtError::ZeroDeadline { task } => write!(f, "task `{task}` has a zero deadline"),
            RtError::DanglingStageEdge { task, stage } => {
                write!(f, "task `{task}` references missing stage index {stage}")
            }
            RtError::CyclicStageGraph { task } => {
                write!(f, "task `{task}` has a cyclic stage graph")
            }
            RtError::EmptyStageList { task } => {
                write!(f, "task `{task}` declares no stages")
            }
        }
    }
}

impl std::error::Error for RtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = RtError::ZeroPeriod {
            task: "cam".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("cam"));
        assert!(msg.starts_with(char::is_lowercase) || msg.starts_with("task"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RtError>();
    }
}
