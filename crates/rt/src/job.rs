//! Run-time job instances of periodic tasks.
//!
//! Every period, a task releases a [`Job`]; the job carries one
//! [`StageInstance`] per stage of the task's DAG. The online phase of SGPRS
//! assigns each released stage an absolute deadline derived from the
//! offline virtual relative deadlines (§IV-B1).

use crate::{PeriodicTaskSpec, PriorityLevel, SimDuration, SimTime, StageId, TaskId};
use serde::{Deserialize, Serialize};

/// Globally unique job identifier: the releasing task plus the release
/// index (0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct JobId {
    /// The releasing task.
    pub task: TaskId,
    /// 0-based release index of the task.
    pub release_index: u64,
}

impl core::fmt::Display for JobId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}#{}", self.task, self.release_index)
    }
}

/// Lifecycle of a stage instance inside the online scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageState {
    /// Waiting for one or more predecessor stages to complete.
    Blocked,
    /// All predecessors done; sitting in a context queue.
    Ready,
    /// Currently occupying a stream slot on the device.
    Running,
    /// Finished execution.
    Completed,
    /// Abandoned (job aborted or dropped).
    Aborted,
}

/// One stage `τi^j` of a released job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageInstance {
    /// Which stage of the task this instance embodies.
    pub stage: StageId,
    /// Current lifecycle state.
    pub state: StageState,
    /// Absolute deadline `di^j` assigned at release (§IV-B1).
    pub absolute_deadline: SimTime,
    /// Effective priority (offline level, possibly promoted at run time).
    pub priority: PriorityLevel,
    /// Instant the stage became ready (predecessors all complete).
    pub ready_at: Option<SimTime>,
    /// Instant the stage started running on the device.
    pub started_at: Option<SimTime>,
    /// Instant the stage completed.
    pub completed_at: Option<SimTime>,
}

impl StageInstance {
    /// Creates a blocked instance with the given absolute deadline and
    /// offline priority.
    #[must_use]
    pub fn new(stage: StageId, absolute_deadline: SimTime, priority: PriorityLevel) -> Self {
        StageInstance {
            stage,
            state: StageState::Blocked,
            absolute_deadline,
            priority,
            ready_at: None,
            started_at: None,
            completed_at: None,
        }
    }

    /// `true` once the stage has completed.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self.state, StageState::Completed)
    }

    /// `true` if the stage completed after its absolute (virtual) deadline,
    /// or has not completed although the deadline already passed at `now`.
    #[must_use]
    pub fn missed_deadline(&self, now: SimTime) -> bool {
        match self.completed_at {
            Some(t) => t > self.absolute_deadline,
            None => now > self.absolute_deadline,
        }
    }
}

/// A released instance of a periodic task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique id (task, release index).
    pub id: JobId,
    /// Release instant.
    pub release: SimTime,
    /// Absolute whole-job deadline `release + Di`.
    pub absolute_deadline: SimTime,
    /// Per-stage run-time state, indexed like the task's stage list.
    pub stages: Vec<StageInstance>,
    /// Completion instant of the final stage, once known.
    pub completed_at: Option<SimTime>,
}

impl Job {
    /// Releases a job of `task` at `release`, computing every stage's
    /// absolute deadline from the offline virtual relative deadlines:
    /// stage `j`'s deadline is `release + Σ_{k ≤ j along its chain} D^k`.
    ///
    /// For general DAGs, the cumulative offset of a stage is the maximum
    /// over its predecessors' offsets plus its own virtual deadline, which
    /// reduces to the paper's prefix sums for chain tasks.
    #[must_use]
    pub fn release(task_id: TaskId, release_index: u64, task: &PeriodicTaskSpec, release: SimTime) -> Job {
        let order = if task.stages.is_empty() {
            Vec::new()
        } else {
            task.topological_order()
        };
        let mut offsets: Vec<SimDuration> = vec![SimDuration::ZERO; task.stages.len()];
        for &i in &order {
            let pred_max = task.stages[i]
                .predecessors
                .iter()
                .map(|&p| offsets[p])
                .max()
                .unwrap_or(SimDuration::ZERO);
            offsets[i] = pred_max + task.stages[i].virtual_deadline;
        }
        let stages = task
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut inst =
                    StageInstance::new(StageId(i), release + offsets[i], s.priority);
                if s.predecessors.is_empty() {
                    inst.state = StageState::Ready;
                    inst.ready_at = Some(release);
                }
                inst
            })
            .collect();
        Job {
            id: JobId {
                task: task_id,
                release_index,
            },
            release,
            absolute_deadline: release + task.deadline,
            stages,
            completed_at: None,
        }
    }

    /// `true` once every stage (or the monolithic job) has completed.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        self.completed_at.is_some()
    }

    /// The job's outcome relative to its whole-job deadline, if finished.
    #[must_use]
    pub fn outcome(&self) -> Option<JobOutcome> {
        self.completed_at.map(|t| {
            if t <= self.absolute_deadline {
                JobOutcome::MetDeadline {
                    response: t.duration_since(self.release),
                }
            } else {
                JobOutcome::MissedDeadline {
                    response: t.duration_since(self.release),
                    tardiness: t.duration_since(self.absolute_deadline),
                }
            }
        })
    }

    /// Marks stage `index` complete at `now` and unblocks any successors
    /// whose predecessors are now all complete, returning the indices of
    /// newly ready stages.
    pub fn complete_stage(
        &mut self,
        index: usize,
        now: SimTime,
        task: &PeriodicTaskSpec,
    ) -> Vec<usize> {
        self.stages[index].state = StageState::Completed;
        self.stages[index].completed_at = Some(now);
        let mut newly_ready = Vec::new();
        for (i, spec) in task.stages.iter().enumerate() {
            if self.stages[i].state == StageState::Blocked
                && spec.predecessors.contains(&index)
                && spec
                    .predecessors
                    .iter()
                    .all(|&p| self.stages[p].is_completed())
            {
                self.stages[i].state = StageState::Ready;
                self.stages[i].ready_at = Some(now);
                newly_ready.push(i);
            }
        }
        if self.stages.iter().all(StageInstance::is_completed) {
            self.completed_at = Some(now);
        }
        newly_ready
    }
}

/// Terminal result of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// Completed at or before the absolute deadline.
    MetDeadline {
        /// Response time (completion − release).
        response: SimDuration,
    },
    /// Completed after the absolute deadline.
    MissedDeadline {
        /// Response time (completion − release).
        response: SimDuration,
        /// Lateness beyond the deadline.
        tardiness: SimDuration,
    },
}

impl JobOutcome {
    /// `true` when the deadline was met.
    #[must_use]
    pub fn met(&self) -> bool {
        matches!(self, JobOutcome::MetDeadline { .. })
    }
}

/// Iterator-style generator of periodic release instants for one task.
///
/// # Example
///
/// ```
/// use sgprs_rt::{ReleaseGenerator, SimDuration, SimTime};
///
/// let mut gen = ReleaseGenerator::new(SimTime::ZERO, SimDuration::from_millis(10));
/// assert_eq!(gen.next_release(), SimTime::ZERO);
/// gen.advance();
/// assert_eq!(gen.next_release(), SimTime::from_nanos(10_000_000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseGenerator {
    next: SimTime,
    period: SimDuration,
    index: u64,
}

impl ReleaseGenerator {
    /// Creates a generator whose first release is at `phase`.
    #[must_use]
    pub fn new(phase: SimTime, period: SimDuration) -> Self {
        ReleaseGenerator {
            next: phase,
            period,
            index: 0,
        }
    }

    /// The upcoming release instant.
    #[must_use]
    pub fn next_release(&self) -> SimTime {
        self.next
    }

    /// The 0-based index of the upcoming release.
    #[must_use]
    pub fn next_index(&self) -> u64 {
        self.index
    }

    /// Consumes the upcoming release, moving to the one after.
    pub fn advance(&mut self) {
        self.next += self.period;
        self.index += 1;
    }

    /// Skips forward until the upcoming release is strictly after `now`.
    /// Returns how many releases were skipped.
    pub fn skip_until_after(&mut self, now: SimTime) -> u64 {
        let mut skipped = 0;
        while self.next <= now {
            self.advance();
            skipped += 1;
        }
        skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PriorityAssignment, StageSpec};

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn chain_task() -> PeriodicTaskSpec {
        let mut t = PeriodicTaskSpec::builder("t")
            .period(ms(30))
            .equal_stage_chain(3, ms(9))
            .build()
            .unwrap();
        // Give every stage a 10 ms virtual deadline so offsets are 10/20/30.
        for s in &mut t.stages {
            s.virtual_deadline = ms(10);
        }
        PriorityAssignment::assign(&mut t);
        t
    }

    #[test]
    fn release_assigns_cumulative_absolute_deadlines() {
        let t = chain_task();
        let job = Job::release(TaskId(0), 0, &t, SimTime::from_nanos(0));
        assert_eq!(job.stages[0].absolute_deadline, SimTime::ZERO + ms(10));
        assert_eq!(job.stages[1].absolute_deadline, SimTime::ZERO + ms(20));
        assert_eq!(job.stages[2].absolute_deadline, SimTime::ZERO + ms(30));
        assert_eq!(job.absolute_deadline, SimTime::ZERO + ms(30));
    }

    #[test]
    fn only_sources_start_ready() {
        let t = chain_task();
        let job = Job::release(TaskId(0), 0, &t, SimTime::ZERO);
        assert_eq!(job.stages[0].state, StageState::Ready);
        assert_eq!(job.stages[1].state, StageState::Blocked);
        assert_eq!(job.stages[2].state, StageState::Blocked);
    }

    #[test]
    fn completing_stages_unblocks_successors_and_finishes_job() {
        let t = chain_task();
        let mut job = Job::release(TaskId(0), 0, &t, SimTime::ZERO);
        let ready = job.complete_stage(0, SimTime::ZERO + ms(5), &t);
        assert_eq!(ready, vec![1]);
        let ready = job.complete_stage(1, SimTime::ZERO + ms(12), &t);
        assert_eq!(ready, vec![2]);
        assert!(!job.is_completed());
        let ready = job.complete_stage(2, SimTime::ZERO + ms(20), &t);
        assert!(ready.is_empty());
        assert!(job.is_completed());
        assert!(job.outcome().unwrap().met());
    }

    #[test]
    fn diamond_stage_waits_for_all_predecessors() {
        let mut t = PeriodicTaskSpec::builder("t")
            .period(ms(40))
            .stage(StageSpec::new("src", ms(1)))
            .stage(StageSpec::new("l", ms(1)).with_predecessors(vec![0]))
            .stage(StageSpec::new("r", ms(1)).with_predecessors(vec![0]))
            .stage(StageSpec::new("sink", ms(1)).with_predecessors(vec![1, 2]))
            .build()
            .unwrap();
        for s in &mut t.stages {
            s.virtual_deadline = ms(10);
        }
        let mut job = Job::release(TaskId(0), 0, &t, SimTime::ZERO);
        let r = job.complete_stage(0, SimTime::ZERO + ms(1), &t);
        assert_eq!(r, vec![1, 2]);
        let r = job.complete_stage(1, SimTime::ZERO + ms(2), &t);
        assert!(r.is_empty(), "sink still blocked on the right branch");
        let r = job.complete_stage(2, SimTime::ZERO + ms(3), &t);
        assert_eq!(r, vec![3]);
        // Diamond deadline: max(pred offsets) + own virtual deadline = 30 ms.
        assert_eq!(job.stages[3].absolute_deadline, SimTime::ZERO + ms(30));
    }

    #[test]
    fn missed_outcome_reports_tardiness() {
        let t = chain_task();
        let mut job = Job::release(TaskId(0), 0, &t, SimTime::ZERO);
        job.complete_stage(0, SimTime::ZERO + ms(10), &t);
        job.complete_stage(1, SimTime::ZERO + ms(20), &t);
        job.complete_stage(2, SimTime::ZERO + ms(35), &t);
        match job.outcome().unwrap() {
            JobOutcome::MissedDeadline { tardiness, .. } => assert_eq!(tardiness, ms(5)),
            other => panic!("expected a miss, got {other:?}"),
        }
    }

    #[test]
    fn stage_miss_detection_uses_now_for_unfinished_stages() {
        let t = chain_task();
        let job = Job::release(TaskId(0), 0, &t, SimTime::ZERO);
        assert!(!job.stages[0].missed_deadline(SimTime::ZERO + ms(9)));
        assert!(job.stages[0].missed_deadline(SimTime::ZERO + ms(11)));
    }

    #[test]
    fn release_generator_steps_and_skips() {
        let mut g = ReleaseGenerator::new(SimTime::ZERO, ms(10));
        assert_eq!(g.next_index(), 0);
        g.advance();
        g.advance();
        assert_eq!(g.next_release(), SimTime::ZERO + ms(20));
        assert_eq!(g.next_index(), 2);
        let skipped = g.skip_until_after(SimTime::ZERO + ms(45));
        assert_eq!(skipped, 3);
        assert_eq!(g.next_release(), SimTime::ZERO + ms(50));
    }
}
