//! Simulated time: instants and durations as integer nanoseconds.
//!
//! The whole reproduction runs on a discrete-event simulator, so time is a
//! logical quantity. Integer nanoseconds keep event ordering exact (no
//! floating-point drift) while being fine-grained enough for GPU kernels
//! that last tens of microseconds.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in nanoseconds since simulation start.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. Subtracting
/// two instants yields a [`SimDuration`]; instants saturate at zero instead
/// of going negative.
///
/// # Example
///
/// ```
/// use sgprs_rt::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(5);
/// assert_eq!(t1.duration_since(t0), SimDuration::from_millis(5));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
///
/// # Example
///
/// ```
/// use sgprs_rt::SimDuration;
///
/// let frame = SimDuration::from_micros(33_333);
/// assert_eq!(frame.as_nanos(), 33_333_000);
/// assert!((frame.as_secs_f64() - 0.033333).abs() < 1e-9);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely late" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since the epoch.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The elapsed span since `earlier`, saturating to zero if `earlier`
    /// is actually later than `self`.
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Saturating addition that never overflows past [`SimTime::MAX`].
    #[must_use]
    pub fn saturating_add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Returns the later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as an "unbounded" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond and saturating on overflow or non-finite input.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// The span in nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in microseconds, truncating.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in milliseconds, truncating.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in fractional seconds (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if the span is empty.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative float, saturating.
    ///
    /// Used by the cost model to scale WCETs by speedup/contention factors.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(scaled.round() as u64)
        }
    }

    /// Integer-divides the span, rounding up. `div_ceil(0)` saturates to
    /// [`SimDuration::MAX`] rather than panicking.
    #[must_use]
    pub fn div_ceil(self, divisor: u64) -> SimDuration {
        if divisor == 0 {
            return SimDuration::MAX;
        }
        SimDuration(self.0.div_ceil(divisor))
    }

    /// Checked subtraction; `None` if `rhs` is longer than `self`.
    #[must_use]
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction (clamps at zero).
    #[must_use]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The ratio of two spans as a float. Returns `f64::INFINITY` when
    /// dividing by the empty span.
    #[must_use]
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            f64::INFINITY
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero, mirroring integer division.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<u64> for SimDuration {
    fn from(nanos: u64) -> Self {
        SimDuration(nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_arithmetic_round_trips() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_nanos(500);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).duration_since(t), d);
    }

    #[test]
    fn instant_subtraction_saturates() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(100);
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
        assert_eq!(early - late, SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
    }

    #[test]
    fn from_secs_f64_handles_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_nanos(1));
        assert_eq!(SimDuration::from_secs_f64(1e300), SimDuration::MAX);
    }

    #[test]
    fn mul_f64_scales_and_saturates() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(2.0), SimDuration::from_millis(20));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    fn div_ceil_rounds_up_and_handles_zero() {
        assert_eq!(SimDuration::from_nanos(10).div_ceil(3), SimDuration::from_nanos(4));
        assert_eq!(SimDuration::from_nanos(9).div_ceil(3), SimDuration::from_nanos(3));
        assert_eq!(SimDuration::from_nanos(9).div_ceil(0), SimDuration::MAX);
    }

    #[test]
    fn ratio_matches_float_division() {
        let a = SimDuration::from_millis(30);
        let b = SimDuration::from_millis(10);
        assert!((a.ratio(b) - 3.0).abs() < 1e-12);
        assert!(a.ratio(SimDuration::ZERO).is_infinite());
    }

    #[test]
    fn saturating_add_never_overflows() {
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
        assert_eq!(
            SimDuration::MAX + SimDuration::from_nanos(1),
            SimDuration::MAX
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn min_max_are_consistent() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(a), a);
    }
}
