//! Classic schedulability analysis used to sanity-check workloads.
//!
//! The experiment harness uses these results to (a) predict where the
//! pivot point *should* fall for an ideal fluid scheduler and (b) verify
//! that generated task sets are feasible/infeasible by construction.

use crate::{SimDuration, TaskSet};

/// Greatest common divisor (Euclid).
#[must_use]
pub fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple, saturating on overflow.
#[must_use]
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd(a, b);
    (a / g).saturating_mul(b)
}

/// The hyperperiod (LCM of all periods) of a task set, saturating.
///
/// Returns [`SimDuration::ZERO`] for an empty set.
#[must_use]
pub fn hyperperiod(set: &TaskSet) -> SimDuration {
    let mut h = 0u64;
    for (_, t) in set.iter() {
        let p = t.period.as_nanos();
        h = if h == 0 { p } else { lcm(h, p) };
    }
    SimDuration::from_nanos(h)
}

/// Liu & Layland's rate-monotonic utilisation bound `n(2^{1/n} − 1)`.
#[must_use]
pub fn liu_layland_bound(n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// EDF feasibility on `m` unit-speed processors via the density bound:
/// a task set is schedulable by global EDF-like policies only if its total
/// density does not exceed `m` (necessary condition shown here).
#[must_use]
pub fn density_feasible(set: &TaskSet, processors: f64) -> bool {
    set.total_density() <= processors + 1e-9
}

/// The EDF demand bound function for implicit/constrained-deadline periodic
/// tasks: cumulative execution demand of jobs with both release and
/// deadline inside any window of length `t`.
#[must_use]
pub fn demand_bound(set: &TaskSet, t: SimDuration) -> SimDuration {
    let t_ns = t.as_nanos();
    let mut demand = 0u64;
    for (_, task) in set.iter() {
        let d = task.deadline.as_nanos();
        let p = task.period.as_nanos();
        if t_ns >= d && p > 0 {
            let jobs = (t_ns - d) / p + 1;
            demand = demand.saturating_add(jobs.saturating_mul(task.wcet.as_nanos()));
        }
    }
    SimDuration::from_nanos(demand)
}

/// Processor-demand criterion for uniprocessor EDF: checks
/// `dbf(t) ≤ t` at every deadline up to `min(hyperperiod, horizon)`.
///
/// This is exact for constrained-deadline periodic task sets on one
/// processor; the harness uses it with a scaled-capacity processor to
/// approximate a fluid GPU partition.
#[must_use]
pub fn edf_processor_demand_ok(set: &TaskSet, horizon: SimDuration) -> bool {
    if set.is_empty() {
        return true;
    }
    if set.total_utilization() > 1.0 + 1e-9 {
        return false;
    }
    let limit = hyperperiod(set).min(horizon).as_nanos();
    // Collect all absolute deadlines within the window.
    let mut checkpoints: Vec<u64> = Vec::new();
    for (_, task) in set.iter() {
        let d = task.deadline.as_nanos();
        let p = task.period.as_nanos();
        let mut t = d;
        while t <= limit {
            checkpoints.push(t);
            match t.checked_add(p) {
                Some(next) => t = next,
                None => break,
            }
        }
    }
    checkpoints.sort_unstable();
    checkpoints.dedup();
    checkpoints.into_iter().all(|t| {
        demand_bound(set, SimDuration::from_nanos(t)).as_nanos() <= t
    })
}

/// Exact response-time analysis for fixed-priority preemptive scheduling
/// on one processor, with tasks prioritised in the given order (index 0 =
/// highest). Returns the worst-case response time of every task, or
/// `None` if some task's response exceeds its deadline (unschedulable).
///
/// Classic recurrence (Joseph & Pandya): `R = C + Σ_{hp} ⌈R/T_j⌉·C_j`,
/// iterated to the fixed point.
#[must_use]
pub fn response_times_fixed_priority(set: &TaskSet) -> Option<Vec<SimDuration>> {
    let tasks: Vec<_> = set.iter().map(|(_, t)| t).collect();
    let mut responses = Vec::with_capacity(tasks.len());
    for (i, task) in tasks.iter().enumerate() {
        let c = task.wcet.as_nanos() as u128;
        let d = task.deadline.as_nanos() as u128;
        let mut r: u128 = c;
        loop {
            let mut interference: u128 = 0;
            for hp in tasks.iter().take(i) {
                let t_j = hp.period.as_nanos() as u128;
                let c_j = hp.wcet.as_nanos() as u128;
                interference += r.div_ceil(t_j) * c_j;
            }
            let next = c + interference;
            if next > d {
                return None;
            }
            if next == r {
                break;
            }
            r = next;
        }
        responses.push(SimDuration::from_nanos(r as u64));
    }
    Some(responses)
}

/// Sorts a task set into rate-monotonic priority order (shorter period =
/// higher priority), returning the reordered set.
#[must_use]
pub fn rate_monotonic_order(set: &TaskSet) -> TaskSet {
    let mut tasks: Vec<_> = set.iter().map(|(_, t)| t.clone()).collect();
    tasks.sort_by_key(|t| t.period);
    tasks.into_iter().collect()
}

/// Upper bound on sustainable frames per second for a fluid processor of
/// `capacity` (relative to the WCET's reference speed): each job consumes
/// `wcet` of capacity-1 time, so throughput ≤ `capacity / wcet`.
#[must_use]
pub fn fluid_fps_bound(wcet: SimDuration, capacity: f64) -> f64 {
    if wcet.is_zero() || capacity <= 0.0 {
        return 0.0;
    }
    capacity / wcet.as_secs_f64()
}

/// Predicts the fluid pivot point: the largest task count `n` such that
/// `n` tasks at `fps` frames per second each stay within `capacity`.
#[must_use]
pub fn fluid_pivot(wcet: SimDuration, fps: f64, capacity: f64) -> usize {
    if fps <= 0.0 {
        return 0;
    }
    (fluid_fps_bound(wcet, capacity) / fps).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeriodicTaskSpec;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn simple_set(n: usize, period_ms: u64, wcet_ms: u64) -> TaskSet {
        (0..n)
            .map(|i| {
                PeriodicTaskSpec::builder(format!("t{i}"))
                    .period(ms(period_ms))
                    .wcet(ms(wcet_ms))
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(u64::MAX, 2), u64::MAX, "saturates");
    }

    #[test]
    fn hyperperiod_of_identical_periods_is_the_period() {
        let set = simple_set(5, 33, 1);
        assert_eq!(hyperperiod(&set), ms(33));
    }

    #[test]
    fn hyperperiod_of_coprime_periods_multiplies() {
        let mut set = TaskSet::new();
        set.push(
            PeriodicTaskSpec::builder("a")
                .period(ms(3))
                .wcet(ms(1))
                .build()
                .unwrap(),
        );
        set.push(
            PeriodicTaskSpec::builder("b")
                .period(ms(5))
                .wcet(ms(1))
                .build()
                .unwrap(),
        );
        assert_eq!(hyperperiod(&set), ms(15));
    }

    #[test]
    fn liu_layland_matches_known_values() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.8284).abs() < 1e-4);
        // n → ∞ converges to ln 2.
        assert!((liu_layland_bound(10_000) - core::f64::consts::LN_2).abs() < 1e-4);
        assert_eq!(liu_layland_bound(0), 0.0);
    }

    #[test]
    fn demand_bound_counts_whole_jobs() {
        let set = simple_set(1, 10, 3);
        assert_eq!(demand_bound(&set, ms(9)), ms(0));
        assert_eq!(demand_bound(&set, ms(10)), ms(3));
        assert_eq!(demand_bound(&set, ms(20)), ms(6));
        assert_eq!(demand_bound(&set, ms(25)), ms(6));
    }

    #[test]
    fn pdc_accepts_feasible_and_rejects_overloaded() {
        let feasible = simple_set(3, 30, 9); // U = 0.9
        assert!(edf_processor_demand_ok(&feasible, ms(1_000)));
        let overloaded = simple_set(4, 30, 9); // U = 1.2
        assert!(!edf_processor_demand_ok(&overloaded, ms(1_000)));
    }

    #[test]
    fn pdc_exactly_full_is_feasible() {
        let exact = simple_set(3, 30, 10); // U = 1.0
        assert!(edf_processor_demand_ok(&exact, ms(1_000)));
    }

    #[test]
    fn density_feasibility_scales_with_processors() {
        let set = simple_set(6, 30, 10); // density 2.0
        assert!(!density_feasible(&set, 1.0));
        assert!(density_feasible(&set, 2.0));
        assert!(density_feasible(&set, 3.0));
    }

    #[test]
    fn fluid_bounds_predict_pivot() {
        // 10 ms jobs on capacity 8 ⇒ 800 fps; at 30 fps per task ⇒ 26 tasks.
        let fps = fluid_fps_bound(ms(10), 8.0);
        assert!((fps - 800.0).abs() < 1e-6);
        assert_eq!(fluid_pivot(ms(10), 30.0, 8.0), 26);
        assert_eq!(fluid_pivot(SimDuration::ZERO, 30.0, 8.0), 0);
    }

    #[test]
    fn empty_set_is_trivially_schedulable() {
        let set = TaskSet::new();
        assert!(edf_processor_demand_ok(&set, ms(100)));
        assert_eq!(hyperperiod(&set), SimDuration::ZERO);
    }

    fn named(period_ms: u64, wcet_ms: u64) -> PeriodicTaskSpec {
        PeriodicTaskSpec::builder("t")
            .period(ms(period_ms))
            .wcet(ms(wcet_ms))
            .build()
            .unwrap()
    }

    #[test]
    fn rta_matches_textbook_example() {
        // Classic: T1=(C=1,T=4), T2=(C=2,T=6), T3=(C=3,T=13), RM order.
        // R1 = 1; R2 = 2 + ceil(R2/4)*1 → 3; R3 = 3 + interference → 10.
        let mut set = TaskSet::new();
        set.push(named(4, 1));
        set.push(named(6, 2));
        set.push(named(13, 3));
        let r = response_times_fixed_priority(&set).expect("schedulable");
        assert_eq!(r[0], ms(1));
        assert_eq!(r[1], ms(3));
        assert_eq!(r[2], ms(10));
    }

    #[test]
    fn rta_detects_unschedulable_sets() {
        let mut set = TaskSet::new();
        set.push(named(4, 3));
        set.push(named(5, 3)); // utilisation 1.35, lower task can never fit
        assert!(response_times_fixed_priority(&set).is_none());
    }

    #[test]
    fn rta_highest_priority_response_is_its_wcet() {
        let mut set = TaskSet::new();
        set.push(named(10, 7));
        let r = response_times_fixed_priority(&set).unwrap();
        assert_eq!(r[0], ms(7));
    }

    #[test]
    fn rate_monotonic_order_sorts_by_period() {
        let mut set = TaskSet::new();
        set.push(named(30, 1));
        set.push(named(10, 1));
        set.push(named(20, 1));
        let rm = rate_monotonic_order(&set);
        let periods: Vec<u64> = rm.iter().map(|(_, t)| t.period.as_millis()).collect();
        assert_eq!(periods, vec![10, 20, 30]);
    }

    #[test]
    fn rta_agrees_with_liu_layland_at_the_bound() {
        // Any set under the Liu-Layland bound must pass RTA in RM order.
        let mut set = TaskSet::new();
        set.push(named(10, 2));
        set.push(named(15, 3));
        set.push(named(35, 5)); // U ≈ 0.543 < 0.78
        assert!(set.total_utilization() < liu_layland_bound(3));
        assert!(response_times_fixed_priority(&rate_monotonic_order(&set)).is_some());
    }
}
