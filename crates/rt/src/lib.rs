//! Real-time foundation for the SGPRS reproduction.
//!
//! This crate provides the domain-neutral building blocks that both the
//! GPU simulator ([`sgprs-gpu-sim`]) and the schedulers ([`sgprs-core`])
//! are built on:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulated time.
//! * [`PeriodicTaskSpec`] / [`StageSpec`] / [`TaskSet`] — the paper's task
//!   model: a task set `S = {τ1..τ|S|}` of periodic DNN tasks, each a DAG of
//!   stages `τi^j` with WCETs `Ci^j` and virtual relative deadlines `Di^j`.
//! * [`Job`] / [`StageInstance`] — run-time instances released every period.
//! * [`PriorityLevel`] — the three-level (high/medium/low) priority space of
//!   SGPRS's stage queuing.
//! * [`EdfQueue`] — an earliest-deadline-first ready queue with FIFO
//!   tie-breaking, used inside every priority band.
//! * [`analysis`] — classic schedulability analysis (utilisation bounds,
//!   hyperperiods, demand-bound functions) used by tests and by the
//!   experiment harness to sanity-check generated task sets.
//!
//! # Example
//!
//! ```
//! use sgprs_rt::{PeriodicTaskSpec, SimDuration, TaskSet};
//!
//! let task = PeriodicTaskSpec::builder("camera")
//!     .period(SimDuration::from_millis(33))
//!     .wcet(SimDuration::from_millis(8))
//!     .build()
//!     .expect("valid task");
//! let mut set = TaskSet::new();
//! set.push(task);
//! assert!(set.total_utilization() < 1.0);
//! ```
//!
//! [`sgprs-gpu-sim`]: https://example.invalid/sgprs
//! [`sgprs-core`]: https://example.invalid/sgprs

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod error;
mod job;
mod priority;
mod queue;
mod task;
mod time;

pub use error::RtError;
pub use job::{Job, JobId, JobOutcome, ReleaseGenerator, StageInstance, StageState};
pub use priority::{PriorityAssignment, PriorityLevel};
pub use queue::{EdfEntry, EdfQueue, PriorityBands};
pub use task::{
    PeriodicTaskSpec, PeriodicTaskSpecBuilder, StageId, StageSpec, TaskId, TaskSet,
};
pub use time::{SimDuration, SimTime};
